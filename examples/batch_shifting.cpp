/**
 * @file
 * Batch-shifting scenario: a team owns a nightly analytics pipeline
 * of flexible jobs. Using the cluster's Temporal Shapley intensity
 * signal they let the shifter move the jobs into demand troughs —
 * cutting both the fleet's provisioned capacity and their own
 * attributed carbon.
 */

#include <cstdio>
#include <vector>

#include "carbon/server.hh"
#include "core/temporal.hh"
#include "optimize/shifting.hh"
#include "trace/generators.hh"

using namespace fairco2;

int
main()
{
    // Two days of fleet demand at hourly resolution.
    Rng rng(11);
    trace::AzureLikeGenerator::Config config;
    config.days = 2.0;
    config.baseCores = 50000.0;
    const auto base = trace::AzureLikeGenerator(config)
                          .generate(rng)
                          .resampleMean(12);

    // The pipeline: six stages, 2-5 hours each, all nominally
    // kicked off at 9 am on day one but free to run any time in
    // the following 24 hours.
    std::vector<optimize::FlexibleJob> stages;
    const std::size_t nine_am = 9;
    const std::size_t stage_hours[] = {2, 3, 2, 5, 4, 2};
    for (std::size_t duration : stage_hours) {
        optimize::FlexibleJob job;
        job.cores = 4000.0;
        job.durationSlices = duration;
        job.earliestStart = nine_am;
        job.latestStart = nine_am + 24;
        stages.push_back(job);
    }

    const optimize::TemporalShifter shifter;
    const auto result = shifter.shift(base, stages);

    std::printf("Nightly pipeline shifting (6 stages, 4000 cores "
                "each):\n\n");
    std::printf("  %-8s %-10s %-10s\n", "stage", "was (h)",
                "now (h)");
    for (std::size_t j = 0; j < stages.size(); ++j) {
        std::printf("  stage-%zu  %-10zu %-10zu\n", j + 1,
                    stages[j].earliestStart, result.starts[j]);
    }

    const carbon::ServerCarbonModel server;
    const double grams_per_core =
        server.coreRateGramsPerSecond() * 2.0 * 86400.0;
    std::printf(
        "\n  fleet peak:   %.0f -> %.0f cores (%.1f%% less "
        "capacity)\n  fleet embodied for the window: %.1f -> %.1f "
        "kg\n",
        result.peakBefore, result.peakAfter,
        result.peakReductionPercent,
        result.peakBefore * grams_per_core / 1e3,
        result.peakAfter * grams_per_core / 1e3);

    // Show the signal the team would have seen.
    const core::TemporalShapley engine;
    const double pool = grams_per_core * base.mean();
    const auto signal =
        engine.attribute(result.demand, pool, {2, 24});
    double lo = 1e300, hi = 0.0;
    std::size_t lo_h = 0, hi_h = 0;
    for (std::size_t h = 0; h < signal.intensity.size(); ++h) {
        if (signal.intensity[h] < lo) {
            lo = signal.intensity[h];
            lo_h = h;
        }
        if (signal.intensity[h] > hi) {
            hi = signal.intensity[h];
            hi_h = h;
        }
    }
    std::printf(
        "\n  intensity signal after shifting: trough %.2e g/core-s "
        "(hour %zu),\n  peak %.2e g/core-s (hour %zu) — a %.1fx "
        "spread the next night's\n  scheduling can exploit again.\n",
        lo, lo_h % 24, hi, hi_h % 24, hi / lo);
    return 0;
}
