/**
 * @file
 * Quickstart: attribute one day of embodied carbon on a small
 * cluster with Fair-CO2's Temporal Shapley, and compare with the
 * naive allocation-proportional split.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "carbon/server.hh"
#include "core/baselines.hh"
#include "core/demandgame.hh"
#include "core/temporal.hh"

using namespace fairco2;

int
main()
{
    // --- 1. Describe the day as a schedule of workloads. ---------
    // Six jobs on an hourly grid: a steady daemon, two daytime
    // batch jobs that create the afternoon peak, and three
    // night-time jobs that ride the trough.
    std::vector<core::ScheduledWorkload> jobs;
    jobs.push_back({16.0, 0, 24}); // daemon, all day
    jobs.push_back({64.0, 13, 4}); // peak batch job A
    jobs.push_back({48.0, 14, 4}); // peak batch job B
    jobs.push_back({32.0, 1, 5});  // night job C
    jobs.push_back({32.0, 2, 5});  // night job D
    jobs.push_back({24.0, 20, 4}); // evening job E
    const char *names[] = {"daemon", "peak-A", "peak-B", "night-C",
                           "night-D", "evening-E"};
    const core::Schedule day(jobs, 24, 3600.0);

    // --- 2. How much carbon does the day carry? ------------------
    // Amortize the server fleet's embodied carbon into the day at
    // the capacity the peak requires.
    const carbon::ServerCarbonModel server;
    const double day_grams = server.coreRateGramsPerSecond() *
        day.peakDemand() * 86400.0;
    std::printf("Cluster peak demand: %.0f cores -> %.1f g CO2e of "
                "embodied carbon to attribute today\n\n",
                day.peakDemand(), day_grams);

    // --- 3. Attribute it four ways. -------------------------------
    // attributeSchedule runs the exact Shapley ground truth,
    // Fair-CO2's Temporal Shapley, the demand-proportional scheme,
    // and the RUP baseline in one call.
    const auto result = core::attributeSchedule(day, day_grams);

    std::printf("%-10s %12s %12s %12s %12s\n", "job",
                "ground-truth", "fair-co2", "demand-prop", "rup");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        std::printf("%-10s %11.1fg %11.1fg %11.1fg %11.1fg\n",
                    names[i], result.groundTruth[i],
                    result.fairCo2[i],
                    result.demandProportional[i], result.rup[i]);
    }

    // --- 4. The punchline. ----------------------------------------
    std::printf(
        "\nThe peak jobs force the cluster to exist at its size;\n"
        "Fair-CO2 bills them accordingly, while RUP charges by\n"
        "core-hours and lets them free-ride on the night jobs.\n");
    return 0;
}
