/**
 * @file
 * Carbon-aware service scenario: run a latency-bounded FAISS
 * retrieval service for three days, re-choosing index algorithm,
 * core count, and batch size every five minutes from the live grid
 * and embodied carbon intensity signals (the Section 8 case study
 * as a library user would deploy it).
 */

#include <cstdio>

#include "carbon/server.hh"
#include "core/temporal.hh"
#include "optimize/dynamic.hh"
#include "trace/generators.hh"
#include "workload/perfmodel.hh"

using namespace fairco2;

int
main()
{
    Rng rng(7);

    // Live inputs: a CAISO-like grid and an Azure-like demand trace
    // that Fair-CO2 turns into an embodied intensity signal.
    trace::GridCiGenerator::Config grid_config;
    grid_config.days = 3.0;
    const auto grid =
        trace::GridCiGenerator(grid_config).generate(rng);

    trace::AzureLikeGenerator::Config demand_config;
    demand_config.days = 3.0;
    const auto demand =
        trace::AzureLikeGenerator(demand_config).generate(rng);

    const carbon::ServerCarbonModel server;
    const double window_grams = server.coreRateGramsPerSecond() *
        demand.mean() * 3.0 * 86400.0;
    const auto signal = core::TemporalShapley().attribute(
        demand, window_grams, {3, 8, 12});

    // The service: 2-second tail-latency target at 300 q/s.
    const workload::FaissModel model;
    const optimize::DynamicOptimizer optimizer(server, model);
    const auto result =
        optimizer.optimize(grid, signal.intensity, 2.0, 300.0);

    std::printf("Three-day carbon-aware FAISS deployment:\n");
    std::printf("  reconfigurations : %zu\n", result.configChanges);
    std::printf("  optimized carbon : %.2f kg\n",
                result.optimizedGrams / 1000.0);
    std::printf("  fixed-config carbon: %.2f kg\n",
                result.baselineGrams / 1000.0);
    std::printf("  savings          : %.1f%%\n\n",
                result.savingsPercent);

    // Show a sample of the decision trace: midnight, morning,
    // midday, evening of day 2.
    std::printf("%-12s %-6s %6s %6s %10s %12s\n", "time", "index",
                "cores", "batch", "grid g/kWh", "g per query");
    for (double hour : {24.0, 32.0, 37.0, 44.0}) {
        const auto idx = static_cast<std::size_t>(
            hour * 3600.0 / signal.intensity.stepSeconds());
        const auto &s = result.steps[idx];
        std::printf("day2 %02.0f:00  %-6s %6.0f %6.0f %10.0f "
                    "%12.4f\n",
                    hour - 24.0,
                    workload::faissIndexName(s.config.index),
                    s.config.cores, s.config.batch, s.gridCi,
                    s.carbonPerQueryGrams);
    }
    std::printf(
        "\nWhen the solar dip cleans the grid, the optimizer leans\n"
        "into the power-hungry-but-small-index IVF; on the dirty\n"
        "evening plateau it switches to the low-power HNSW.\n");
    return 0;
}
