/**
 * @file
 * Colocation-audit scenario: a tenant suspects their carbon bill is
 * inflated by a noisy neighbour. The audit compares the realized
 * RUP bill against the interference-aware Fair-CO2 bill and the
 * Shapley ground truth for a rack of colocated pairs.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "carbon/server.hh"
#include "core/colocgame.hh"
#include "workload/interference.hh"
#include "workload/suite.hh"

using namespace fairco2;

int
main()
{
    const workload::Suite suite;
    const workload::InterferenceModel interference;
    const carbon::ServerCarbonModel server;
    // A coal-heavy grid: 500 gCO2e/kWh.
    const core::ColocationCostModel cost(server, interference,
                                         500.0);

    // A rack of eight tenants; the scheduler happened to pair the
    // sensitive NBODY with the aggressive CH — the paper's worst
    // pairing.
    using workload::WorkloadId;
    const std::vector<std::size_t> members = {
        static_cast<std::size_t>(WorkloadId::NBODY),
        static_cast<std::size_t>(WorkloadId::CH),
        static_cast<std::size_t>(WorkloadId::PG100),
        static_cast<std::size_t>(WorkloadId::H265),
        static_cast<std::size_t>(WorkloadId::SPARK),
        static_cast<std::size_t>(WorkloadId::LLAMA),
        static_cast<std::size_t>(WorkloadId::WC),
        static_cast<std::size_t>(WorkloadId::BFS),
    };
    core::ColocationScenario scenario;
    scenario.members = members;
    scenario.pairs = {{0, 1}, {2, 3}, {4, 5}, {6, 7}};

    // The realized bills.
    const auto rup =
        core::rupColocationAttribution(scenario, suite, cost);

    // Fair-CO2's correction uses each tenant's alpha/beta profile
    // from (here: full) colocation history.
    std::vector<core::InterferenceProfile> profiles;
    for (std::size_t m : members) {
        std::vector<std::size_t> history;
        for (std::size_t s = 0; s < suite.size(); ++s) {
            if (s != m)
                history.push_back(s);
        }
        profiles.push_back(core::estimateProfile(
            m, history, suite, interference));
    }
    const auto fair = core::fairCo2ColocationAttribution(
        scenario, suite, cost, profiles);

    // What a fair bill should have been, independent of partner
    // luck: the Shapley ground truth.
    const auto truth =
        core::groundTruthColocation(members, suite, cost);

    std::printf("Rack audit at 500 g/kWh (grams CO2e per run):\n\n");
    std::printf("%-10s %-10s %10s %10s %10s %9s %9s\n", "tenant",
                "partner", "rup", "fair-co2", "shapley",
                "rup-err%", "fair-err%");
    for (std::size_t i = 0; i < members.size(); ++i) {
        const std::size_t partner_pos =
            i % 2 == 0 ? i + 1 : i - 1;
        std::printf(
            "%-10s %-10s %10.1f %10.1f %10.1f %8.1f%% %8.1f%%\n",
            suite.at(members[i]).name.c_str(),
            suite.at(members[partner_pos]).name.c_str(), rup[i],
            fair[i], truth[i],
            (rup[i] / truth[i] - 1.0) * 100.0,
            (fair[i] / truth[i] - 1.0) * 100.0);
    }

    const auto nbody_alpha = profiles[0];
    std::printf(
        "\nNBODY's profile: suffers %.0f%% average slowdown "
        "(alpha), inflicts %.0f%% (beta).\n"
        "RUP bills NBODY for the hours CH stole from it; Fair-CO2 "
        "hands that carbon back.\n",
        (nbody_alpha.alphaRuntime - 1.0) * 100.0,
        (nbody_alpha.betaRuntime - 1.0) * 100.0);
    return 0;
}
