/**
 * @file
 * Request-level billing scenario (the paper's Section 10 future
 * work): a retrieval API owns half a node and serves three request
 * classes; the operator drills the service's hourly carbon down to
 * per-request footprints using the live intensity signal, with the
 * idle reservation reported as its own line item.
 */

#include <cstdio>

#include "carbon/server.hh"
#include "core/requests.hh"
#include "core/temporal.hh"
#include "trace/generators.hh"

using namespace fairco2;

int
main()
{
    // The cluster's live embodied intensity for this hour, from a
    // day of fleet demand.
    Rng rng(3);
    trace::AzureLikeGenerator::Config config;
    config.days = 1.0;
    const auto demand =
        trace::AzureLikeGenerator(config).generate(rng);
    const carbon::ServerCarbonModel server;
    const double day_pool = server.coreRateGramsPerSecond() *
        demand.mean() * 86400.0;
    const auto signal = core::TemporalShapley().attribute(
        demand, day_pool, {24, 12});

    // Peak-hour window for the service.
    const std::size_t peak_step = 15 * 12; // 3 pm, 5-min steps
    core::ServiceWindow window;
    window.cores = 48.0;
    window.memoryGb = 96.0;
    window.windowSeconds = 3600.0;
    // Live embodied intensity at 3 pm, g per core-second.
    window.coreIntensity = signal.intensity[peak_step];
    window.memIntensity = window.coreIntensity *
        server.memRateGramsPerSecond() /
        server.coreRateGramsPerSecond();
    window.staticWatts = 110.0; // half the node's static draw
    window.gridGPerKwh = 280.0;

    // Telemetry for the hour.
    const std::vector<core::RequestClass> classes{
        {"vector-search", 90000.0, 0.50, 22.0},
        {"bulk-ingest", 1200.0, 18.0, 700.0},
        {"health-checks", 36000.0, 0.01, 0.3},
    };

    const auto bill = core::attributeRequests(window, classes);

    std::printf("Peak-hour request billing (48 cores, 96 GB "
                "reserved):\n\n");
    std::printf("%-15s %10s %12s %12s %14s\n", "class", "requests",
                "fixed (g)", "dynamic (g)", "g per request");
    for (const auto &cls : bill.bills) {
        std::printf("%-15s %10.0f %12.2f %12.2f %14.5f\n",
                    cls.name.c_str(), cls.requests,
                    cls.fixedGrams, cls.dynamicGrams,
                    cls.perRequestGrams());
    }
    std::printf("%-15s %10s %12.2f %12s\n", "(idle reserve)", "-",
                bill.idleFixedGrams, "-");
    std::printf(
        "\nHour totals: %.1f g fixed + %.1f g dynamic. A bulk-"
        "ingest call costs\n%.0fx a search call — the number a "
        "team needs before moving ingest\nto the overnight "
        "trough.\n",
        bill.totalFixedGrams, bill.totalDynamicGrams,
        bill.bills[1].perRequestGrams() /
            bill.bills[0].perRequestGrams());
    return 0;
}
