/**
 * @file
 * Cluster-operator scenario: produce a month of live embodied
 * carbon intensity signals for a fleet, including a forecast-driven
 * live extension — the signal a provider would expose on a carbon
 * dashboard so users can time-shift work.
 *
 * Pipeline: synthetic Azure-like fleet demand -> uniform monthly
 * amortization of the fleet's embodied carbon -> hierarchical
 * Temporal Shapley (30 d -> 3 d -> 8 h -> 1 h -> 5 min) -> per-user
 * bills for three example usage profiles -> 21-day fit + 9-day
 * forecast for the live signal.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "carbon/server.hh"
#include "core/baselines.hh"
#include "core/temporal.hh"
#include "forecast/forecaster.hh"
#include "trace/generators.hh"

using namespace fairco2;

namespace
{

/** A user's core reservations over the month, 5-minute steps. */
trace::TimeSeries
usageProfile(const trace::TimeSeries &demand, double cores,
             double start_hour, double hours_per_day)
{
    std::vector<double> usage(demand.size(), 0.0);
    for (std::size_t i = 0; i < usage.size(); ++i) {
        const double t = i * demand.stepSeconds();
        const double hour = std::fmod(t, 86400.0) / 3600.0;
        const bool active =
            hour >= start_hour && hour < start_hour + hours_per_day;
        usage[i] = active ? cores : 0.0;
    }
    return trace::TimeSeries(std::move(usage),
                             demand.stepSeconds());
}

} // namespace

int
main()
{
    // --- Fleet demand for the month. ------------------------------
    Rng rng(2024);
    trace::AzureLikeGenerator::Config config;
    config.days = 30.0;
    const auto demand =
        trace::AzureLikeGenerator(config).generate(rng);

    // --- Fleet embodied carbon, amortized into the month. ---------
    const carbon::ServerCarbonModel server;
    const double nodes =
        demand.peak() / server.config().totalCores();
    const double monthly_grams = nodes *
        server.embodiedGrams() / server.lifetimeSeconds() * 30.0 *
        86400.0;
    std::printf("Fleet: %.0f nodes for %.0f-core peak; %.1f kg "
                "CO2e amortized into the month\n",
                nodes, demand.peak(), monthly_grams / 1000.0);

    // --- The dynamic intensity signal. ----------------------------
    const auto signal = core::TemporalShapley().attribute(
        demand, monthly_grams, {10, 9, 8, 12});
    std::printf("Temporal Shapley: %zu leaf periods, %.2f kg "
                "attributed, %.1e Shapley calculations\n\n",
                signal.leafPeriods,
                signal.attributedGrams / 1000.0,
                static_cast<double>(signal.operations));

    // --- Bill three users with different timing habits. -----------
    struct User
    {
        const char *name;
        double cores;
        double start_hour;
        double hours;
    };
    const User users[] = {
        {"peak-rider (2-6 pm)", 1000.0, 14.0, 4.0},
        {"night-owl (1-5 am)", 1000.0, 1.0, 4.0},
        {"always-on daemon", 167.0, 0.0, 24.0},
    };

    std::printf("%-22s %16s %16s %9s\n", "user", "fair-co2 bill",
                "flat-rate bill", "delta");
    const auto flat = core::rupIntensity(demand, monthly_grams);
    for (const auto &user : users) {
        const auto usage = usageProfile(demand, user.cores,
                                        user.start_hour,
                                        user.hours);
        const double fair =
            core::attributeUsage(signal.intensity, usage);
        const double rup = core::attributeUsage(flat, usage);
        std::printf("%-22s %13.1f kg %13.1f kg %8.1f%%\n",
                    user.name, fair / 1000.0, rup / 1000.0,
                    (fair / rup - 1.0) * 100.0);
    }

    // --- Live signal: extend the trace with a forecast. -----------
    const auto split =
        static_cast<std::size_t>(21.0 * 86400.0 / 300.0);
    forecast::SeasonalForecaster forecaster;
    const auto blended = forecaster.extendWithForecast(
        demand.slice(0, split), demand.size() - split);
    const auto live = core::TemporalShapley().attribute(
        blended, monthly_grams, {10, 9, 8, 12});

    // Peek at the signal a user would see for "tomorrow".
    const std::size_t tomorrow = split + 288 / 2;
    std::printf(
        "\nLive signal day 22 midday: %.3e g/core-s forecast vs "
        "%.3e g/core-s with hindsight\n",
        live.intensity[tomorrow], signal.intensity[tomorrow]);
    std::printf("Users can shift tomorrow's batch work into the "
                "trough before it happens.\n");
    return 0;
}
