#include "core/requests.hh"

#include <cassert>
#include <stdexcept>

#include "carbon/grid.hh"

namespace fairco2::core
{

double
RequestClassBill::perRequestGrams() const
{
    return requests > 0.0 ? totalGrams() / requests : 0.0;
}

RequestAttribution
attributeRequests(const ServiceWindow &window,
                  const std::vector<RequestClass> &classes)
{
    assert(window.cores > 0.0 && window.windowSeconds > 0.0);

    const double reserved_core_seconds =
        window.cores * window.windowSeconds;

    double busy_core_seconds = 0.0;
    double dynamic_joules = 0.0;
    for (const auto &cls : classes) {
        assert(cls.requests >= 0.0);
        assert(cls.coreSecondsPerRequest >= 0.0);
        busy_core_seconds +=
            cls.requests * cls.coreSecondsPerRequest;
        dynamic_joules +=
            cls.requests * cls.dynamicJoulesPerRequest;
    }
    if (busy_core_seconds > reserved_core_seconds * (1.0 + 1e-9)) {
        throw std::invalid_argument(
            "request classes report more CPU time than the "
            "service reserved");
    }

    RequestAttribution out;
    out.totalFixedGrams =
        window.coreIntensity * reserved_core_seconds +
        window.memIntensity * window.memoryGb *
            window.windowSeconds +
        window.staticWatts * window.windowSeconds /
            carbon::kJoulesPerKwh * window.gridGPerKwh;
    out.totalDynamicGrams = dynamic_joules /
        carbon::kJoulesPerKwh * window.gridGPerKwh;

    const double busy_share = reserved_core_seconds > 0.0
        ? busy_core_seconds / reserved_core_seconds
        : 0.0;
    const double fixed_to_classes =
        out.totalFixedGrams * busy_share;
    out.idleFixedGrams = out.totalFixedGrams - fixed_to_classes;

    out.bills.reserve(classes.size());
    for (const auto &cls : classes) {
        RequestClassBill bill;
        bill.name = cls.name;
        bill.requests = cls.requests;
        const double core_seconds =
            cls.requests * cls.coreSecondsPerRequest;
        bill.fixedGrams = busy_core_seconds > 0.0
            ? fixed_to_classes * core_seconds / busy_core_seconds
            : 0.0;
        const double joules =
            cls.requests * cls.dynamicJoulesPerRequest;
        bill.dynamicGrams = joules / carbon::kJoulesPerKwh *
            window.gridGPerKwh;
        out.bills.push_back(bill);
    }
    return out;
}

} // namespace fairco2::core
