/**
 * @file
 * Shared engine-ownership core for incremental live signals.
 *
 * Two deployment surfaces stream demand through a
 * shapley::IncrementalTemporalEngine: LiveIntensityService's
 * incremental mode (one engine, full-window publication per push)
 * and the sharded SignalServer (one engine per shard plus a fleet
 * engine, newest-period publication per closed period). Both need
 * the same plumbing around the engine — a carbon-pool policy, the
 * first-window/advance publication split, and sample retention so a
 * cache-integrity fault can be answered by rebuilding the engine
 * and recomputing. IncrementalSignalCore owns exactly that plumbing
 * so neither surface reimplements it.
 *
 * The core retains the raw samples of the in-window periods; after
 * a CacheIntegrityError it discards the engine, replays the
 * retained samples into a fresh one, and recomputes. Because the
 * engine's output is a pure function of its window samples (cache
 * state is an optimization, never an input), the recovered result
 * is bit-identical to a fault-free computation — the invariant the
 * resilience tests pin down.
 */

#ifndef FAIRCO2_CORE_SIGNALCORE_HH
#define FAIRCO2_CORE_SIGNALCORE_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "shapley/incremental.hh"
#include "shapley/surrogate.hh"

namespace fairco2::core
{

/** Engine ownership, pool policy, and fault recovery for one
 *  incremental live-signal stream. */
class IncrementalSignalCore
{
  public:
    struct Config
    {
        std::size_t windowPeriods = 24;  //!< engine window W
        std::size_t periodSamples = 12;  //!< samples per period M
        double stepSeconds = 300.0;
        /** Inner hierarchy below each period. */
        std::vector<std::size_t> innerSplits{};
        /** Sub-game cache capacity (0 = memoization off). */
        std::size_t cacheCapacity = 64;
        /** Blob-store backend for the memo cache; every combination
         *  publishes byte-identical signals. */
        cache::BackendConfig cacheBackend = cache::defaultBackend();
        /** Pool policy: grams per wall-clock second, amortized over
         *  the window — windowPoolGrams() applies it. */
        double poolGramsPerSecond = 1.0;
        std::uint64_t seed = 42;
        /** Trained surrogate model; null keeps the engine exact
         *  (pure delegation, bitwise identical publications). */
        std::shared_ptr<const surrogate::SurrogateModel>
            surrogateModel;
        /** Residual-guardrail share tolerance for the surrogate. */
        double surrogateTol = 0.01;
    };

    /** What one newest-period publication produced. */
    struct Publication
    {
        /** Newest period's intensity, per sample (M values). */
        std::vector<double> newestIntensity;
        /** Mean of newestIntensity. */
        double newestMeanIntensity = 0.0;
        /** Grams attributed: whole window on the first window,
         *  newest period's share afterwards. */
        double attributedGrams = 0.0;
    };

    explicit IncrementalSignalCore(const Config &config);

    /** Feed one demand sample (resource units). */
    void push(double demand_sample);

    /** True once the engine's window is full. */
    bool ready() const { return engine_->windowReady(); }

    std::uint64_t samplesSeen() const
    {
        return engine_->samplesSeen();
    }

    /** Periods closed since construction (never reset by an engine
     *  rebuild — the rebuilt engine restarts its own count, this one
     *  is the stream's). */
    std::uint64_t periodsClosed() const { return periodsClosed_; }

    /** Samples spanned by one full window (W * M). */
    std::size_t windowSamples() const
    {
        return config_.windowPeriods * config_.periodSamples;
    }

    /** The policy pool: poolGramsPerSecond over the window span. */
    double windowPoolGrams() const;

    /** True until the first window advance: the next publication
     *  covers the whole window, not just the newest period. */
    bool firstWindow() const
    {
        return periodsClosed_ == config_.windowPeriods;
    }

    /**
     * Full-window attribution at @p pool_grams. Requires ready().
     * Recovers from CacheIntegrityError by rebuilding the engine
     * from the retained samples and recomputing.
     */
    shapley::IncrementalTemporalEngine::WindowResult
    computeWindow(double pool_grams);

    /**
     * Publish the newest period: the full window on firstWindow(),
     * one window advance afterwards — the streaming publication
     * step. Requires ready(); recovers like computeWindow().
     */
    Publication publishNewest(double pool_grams);

    /** Convenience: publishNewest(windowPoolGrams()). */
    Publication publishNewest()
    {
        return publishNewest(windowPoolGrams());
    }

    /** Corrupt the engine's most-recently-used cache entry (fault
     *  injection hook); false when the cache is empty. */
    bool corruptCacheEntryForTest()
    {
        return engine_->corruptCacheEntryForTest();
    }

    /** Engine rebuilds forced by cache-integrity faults. */
    std::uint64_t rebuilds() const { return rebuilds_; }

    const shapley::CacheStats &cacheStats() const
    {
        return engine_->cacheStats();
    }

    /** Surrogate decision counters over the stream's lifetime —
     *  engine rebuilds do not reset them (the pre-rebuild totals
     *  are folded into a base, mirroring periodsClosed()). */
    shapley::SurrogateTemporalEngine::Counters
    surrogateCounters() const;

    /** Decision of the most recent compute (false when the
     *  surrogate is off or nothing was computed yet). */
    bool surrogateLastAccepted() const
    {
        return engine_->lastAccepted();
    }

    const Config &config() const { return config_; }

  private:
    void rebuildEngine();

    Config config_;
    std::unique_ptr<shapley::SurrogateTemporalEngine> engine_;
    /** Decision totals of engines discarded by rebuilds. */
    shapley::SurrogateTemporalEngine::Counters countersBase_;
    /** Samples of the current partial period. */
    std::vector<double> partial_;
    /** Raw samples of the in-window closed periods — the rebuild
     *  source. front() is the window's oldest period. */
    std::deque<std::vector<double>> retained_;
    std::uint64_t periodsClosed_ = 0;
    std::uint64_t rebuilds_ = 0;
};

} // namespace fairco2::core

#endif // FAIRCO2_CORE_SIGNALCORE_HH
