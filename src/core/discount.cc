#include "core/discount.hh"

#include <cassert>

namespace fairco2::core
{

UnitResourceTimeAnalysis
unitResourceTimeAnalysis(std::size_t n, std::size_t k,
                         std::size_t m, double off_peak_fraction,
                         double total_grams)
{
    assert(n > 0 && k < n);
    assert(m >= 1);
    assert(off_peak_fraction > 0.0 && off_peak_fraction < 1.0);

    const double nn = static_cast<double>(n);
    const double mm = static_cast<double>(m);
    const double p = off_peak_fraction;
    const double c = total_grams;

    UnitResourceTimeAnalysis a;
    a.shortWorkloadGrams =
        c / nn * (1.0 - (mm - 1.0) / mm * p);
    a.overattributionGrams =
        c * p * (mm - 1.0) / (static_cast<double>(n - k) * mm);
    a.longWorkloadGrams =
        a.shortWorkloadGrams + a.overattributionGrams;
    return a;
}

Schedule
stylizedLongShortSchedule(std::size_t n, std::size_t k,
                          std::size_t m, double off_peak_fraction)
{
    assert(n > 0 && k < n);
    assert(m >= 1);

    // Long workloads hold P/(N-K) "cores" everywhere; to make the
    // first slice peak exactly 1 with per-workload demand 1/N as in
    // the paper's setup, short workloads hold 1/N and long ones
    // must also hold 1/N during slice 0. A single rectangular
    // reservation cannot change level, so each long workload is two
    // reservations: its slice-0 share and its tail share. To keep
    // one reservation per player (the game needs per-player masks),
    // we instead give long workloads P/(N-K) for the whole horizon
    // and shorts (1 - P) / K in slice 0, preserving the analysis'
    // peak structure: slice 0 peaks at 1, later slices at P.
    std::vector<ScheduledWorkload> workloads;
    workloads.reserve(n);
    const double short_cores =
        (1.0 - off_peak_fraction) / static_cast<double>(k);
    const double long_cores =
        off_peak_fraction / static_cast<double>(n - k);
    for (std::size_t i = 0; i < k; ++i)
        workloads.push_back({short_cores, 0, 1});
    for (std::size_t i = k; i < n; ++i)
        workloads.push_back({long_cores, 0, m});
    return Schedule(std::move(workloads), m, 3600.0);
}

std::vector<double>
spanDiscountedAttribution(const std::vector<double> &raw_grams,
                          const std::vector<std::size_t>
                              &periods_spanned,
                          double kappa)
{
    assert(raw_grams.size() == periods_spanned.size());
    assert(kappa >= 0.0);

    double raw_total = 0.0;
    for (double g : raw_grams)
        raw_total += g;

    std::vector<double> discounted(raw_grams.size(), 0.0);
    double discounted_total = 0.0;
    for (std::size_t i = 0; i < raw_grams.size(); ++i) {
        assert(periods_spanned[i] >= 1);
        const double factor = 1.0 /
            (1.0 + kappa *
                       static_cast<double>(periods_spanned[i] - 1));
        discounted[i] = raw_grams[i] * factor;
        discounted_total += discounted[i];
    }
    if (discounted_total > 0.0) {
        const double scale = raw_total / discounted_total;
        for (double &g : discounted)
            g *= scale;
    }
    return discounted;
}

} // namespace fairco2::core
