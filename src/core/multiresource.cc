#include "core/multiresource.hh"

#include <cassert>

#include "core/baselines.hh"
#include "core/temporal.hh"
#include "shapley/exact.hh"

namespace fairco2::core
{

MultiResourceSchedule::MultiResourceSchedule(
    std::vector<MultiResourceWorkload> workloads,
    std::size_t num_slices, double slice_seconds)
    : workloads_(std::move(workloads)), numSlices_(num_slices),
      sliceSeconds_(slice_seconds)
{
    assert(num_slices > 0);
    assert(slice_seconds > 0.0);
    for (const auto &w : workloads_) {
        assert(w.cores > 0.0 && w.memoryGb > 0.0);
        assert(w.durationSlices > 0);
        assert(w.startSlice + w.durationSlices <= numSlices_);
    }
}

namespace
{

Schedule
project(const std::vector<MultiResourceWorkload> &workloads,
        std::size_t num_slices, double slice_seconds, bool cores)
{
    std::vector<ScheduledWorkload> projected;
    projected.reserve(workloads.size());
    for (const auto &w : workloads) {
        projected.push_back({cores ? w.cores : w.memoryGb,
                             w.startSlice, w.durationSlices});
    }
    return Schedule(std::move(projected), num_slices,
                    slice_seconds);
}

} // namespace

Schedule
MultiResourceSchedule::coreSchedule() const
{
    return project(workloads_, numSlices_, sliceSeconds_, true);
}

Schedule
MultiResourceSchedule::memorySchedule() const
{
    return project(workloads_, numSlices_, sliceSeconds_, false);
}

MultiResourceAttributions
attributeMultiResource(const MultiResourceSchedule &schedule,
                       double core_pool_grams,
                       double mem_pool_grams)
{
    const std::size_t n = schedule.numWorkloads();
    MultiResourceAttributions out;
    out.groundTruth.assign(n, 0.0);
    out.fairCo2.assign(n, 0.0);
    out.rup.assign(n, 0.0);
    out.cpuOnly.assign(n, 0.0);
    if (n == 0)
        return out;

    const Schedule cores = schedule.coreSchedule();
    const Schedule memory = schedule.memorySchedule();

    // Per-resource attributions; linearity of the Shapley value
    // makes their sum the exact joint ground truth.
    const auto core_attr =
        attributeSchedule(cores, core_pool_grams);
    const auto mem_attr =
        attributeSchedule(memory, mem_pool_grams);

    for (std::size_t i = 0; i < n; ++i) {
        out.groundTruth[i] =
            core_attr.groundTruth[i] + mem_attr.groundTruth[i];
        out.fairCo2[i] =
            core_attr.fairCo2[i] + mem_attr.fairCo2[i];
        out.rup[i] = core_attr.rup[i] + mem_attr.rup[i];
    }

    // CPU-only tooling: both carbon pools attributed by the CPU
    // usage signal (memory allocations invisible).
    const double total = core_pool_grams + mem_pool_grams;
    const auto demand = cores.demandSeries();
    std::vector<double> peaks(demand.size());
    std::vector<double> usage(demand.size());
    for (std::size_t t = 0; t < demand.size(); ++t) {
        peaks[t] = demand[t];
        usage[t] = demand[t] * demand.stepSeconds();
    }
    const auto intensities =
        TemporalShapley::periodIntensities(peaks, usage, total);
    const trace::TimeSeries signal(intensities,
                                   demand.stepSeconds());
    for (std::size_t i = 0; i < n; ++i)
        out.cpuOnly[i] = attributeUsage(signal, cores.usageSeries(i));
    return out;
}

} // namespace fairco2::core
