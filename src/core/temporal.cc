#include "core/temporal.hh"

#include <cassert>
#include <cmath>
#include <string>

#include "common/errors.hh"
#include "common/obs.hh"
#include "shapley/peak.hh"

namespace fairco2::core
{

std::vector<double>
TemporalShapley::periodIntensities(const std::vector<double> &peaks,
                                   const std::vector<double> &usage,
                                   double total_grams)
{
    assert(peaks.size() == usage.size());
    const auto phi = shapley::peakGameShapley(peaks);

    double denom = 0.0;
    for (std::size_t i = 0; i < phi.size(); ++i)
        denom += phi[i] * usage[i];

    std::vector<double> intensity(phi.size(), 0.0);
    if (denom <= 0.0)
        return intensity;
    for (std::size_t i = 0; i < phi.size(); ++i)
        intensity[i] = phi[i] * total_grams / denom;
    return intensity;
}

void
TemporalShapley::attributeRange(
    const trace::TimeSeries &demand, std::size_t begin,
    std::size_t end, double carbon, std::size_t level,
    const std::vector<std::size_t> &split_counts,
    TemporalResult &result) const
{
    assert(begin <= end);
    if (begin == end) {
        result.unattributedGrams += carbon;
        return;
    }

    if (level == split_counts.size()) {
        // Leaf period: constant intensity carbon / resource-time.
        const double usage = demand.integral(begin, end);
        ++result.leafPeriods;
        if (usage <= 0.0) {
            result.unattributedGrams += carbon;
            return;
        }
        const double intensity = carbon / usage;
        for (std::size_t i = begin; i < end; ++i)
            result.intensity[i] = intensity;
        result.attributedGrams += carbon;
        return;
    }

    const std::size_t span = end - begin;
    const std::size_t chunks = std::min(split_counts[level], span);

    // Near-equal contiguous chunks covering [begin, end).
    std::vector<std::size_t> bounds(chunks + 1);
    for (std::size_t c = 0; c <= chunks; ++c)
        bounds[c] = begin + span * c / chunks;

    std::vector<double> peaks(chunks), usage(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
        peaks[c] = demand.peak(bounds[c], bounds[c + 1]);
        usage[c] = demand.integral(bounds[c], bounds[c + 1]);
    }

    result.operations +=
        static_cast<std::uint64_t>(chunks) * chunks;

    const auto intensities =
        periodIntensities(peaks, usage, carbon);

    double assigned = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) {
        const double chunk_carbon = intensities[c] * usage[c];
        assigned += chunk_carbon;
        attributeRange(demand, bounds[c], bounds[c + 1], chunk_carbon,
                       level + 1, split_counts, result);
    }
    // Zero usage-weighted Shapley mass leaves carbon unassigned.
    result.unattributedGrams += carbon - assigned;
}

TemporalResult
TemporalShapley::attribute(
    const trace::TimeSeries &demand, double total_grams,
    const std::vector<std::size_t> &split_counts) const
{
    assert(total_grams >= 0.0);
    // A poisoned sample would spread through every Shapley weight
    // below it; refuse it here with a sample-level diagnostic
    // instead of emitting NaN intensities.
    if (!std::isfinite(total_grams))
        throw FatalDataError(
            "temporal attribution: total grams is not finite");
    for (std::size_t i = 0; i < demand.size(); ++i) {
        if (!std::isfinite(demand[i]))
            throw FatalDataError(
                "temporal attribution: demand sample " +
                std::to_string(i) + " is not finite");
    }
    FAIRCO2_SPAN("core.temporal.attribute");
    FAIRCO2_COUNT("core.temporal.attributions", 1);
    FAIRCO2_OBSERVE("core.temporal.samples", demand.size());
    FAIRCO2_TIME_NS("core.temporal.attribute_ns");
    TemporalResult result;
    result.intensity = trace::TimeSeries(
        std::vector<double>(demand.size(), 0.0), demand.stepSeconds());
    if (demand.empty()) {
        result.unattributedGrams = total_grams;
        return result;
    }
    attributeRange(demand, 0, demand.size(), total_grams, 0,
                   split_counts, result);
    return result;
}

} // namespace fairco2::core
