/**
 * @file
 * The dynamic-demand attribution problem (Section 6.3 / Figure 7):
 * a schedule of workloads over time slices, the exact Shapley ground
 * truth over workloads-as-players with the peak-capacity
 * characteristic function, and the three attribution methods under
 * evaluation (RUP, demand-proportional, Fair-CO2's Temporal Shapley).
 */

#ifndef FAIRCO2_CORE_DEMANDGAME_HH
#define FAIRCO2_CORE_DEMANDGAME_HH

#include <cstddef>
#include <vector>

#include "shapley/game.hh"
#include "trace/timeseries.hh"

namespace fairco2::core
{

/** One workload's reservation inside a schedule. */
struct ScheduledWorkload
{
    double cores = 8.0;            //!< allocated CPU cores
    std::size_t startSlice = 0;    //!< first occupied time slice
    std::size_t durationSlices = 1;//!< number of consecutive slices
};

/**
 * A complete scenario: workloads placed on a slice grid.
 *
 * Embodied (and static-operational) carbon of the scenario scales
 * with the minimum capacity that must be provisioned — the peak of
 * the aggregate demand curve.
 */
class Schedule
{
  public:
    Schedule(std::vector<ScheduledWorkload> workloads,
             std::size_t num_slices, double slice_seconds);

    std::size_t numWorkloads() const { return workloads_.size(); }
    std::size_t numSlices() const { return numSlices_; }
    double sliceSeconds() const { return sliceSeconds_; }

    const std::vector<ScheduledWorkload> &workloads() const
    {
        return workloads_;
    }

    /** Cores workload @p w holds during slice @p t (0 if absent). */
    double coresAt(std::size_t w, std::size_t t) const;

    /** Aggregate demand per slice as a time series. */
    trace::TimeSeries demandSeries() const;

    /** Workload usage series (cores held per slice). */
    trace::TimeSeries usageSeries(std::size_t w) const;

    /** Core-seconds reserved by workload @p w. */
    double allocation(std::size_t w) const;

    /** Peak aggregate demand across all slices. */
    double peakDemand() const;

  private:
    std::vector<ScheduledWorkload> workloads_;
    std::size_t numSlices_;
    double sliceSeconds_;
};

/**
 * Workloads-as-players peak game: v(S) is the peak aggregate core
 * demand of the workloads in S — the capacity that must exist to run
 * them (Figure 1's "minimum required resource capacity").
 *
 * tabulate() fills all 2^N values in O(2^N * T) using a Gray-code
 * walk, which is what makes the exact ground truth tractable at the
 * paper's scenario sizes (N <= 22).
 */
class DemandPeakGame : public shapley::CoalitionGame
{
  public:
    explicit DemandPeakGame(const Schedule &schedule);

    int numPlayers() const override;
    double value(std::uint64_t mask) const override;

    /** All 2^N coalition values, indexed by mask. */
    std::vector<double> tabulate() const;

  private:
    const Schedule &schedule_;
};

/** Per-workload carbon attributions from each method, in grams. */
struct DemandAttributions
{
    std::vector<double> groundTruth;
    std::vector<double> fairCo2;
    std::vector<double> demandProportional;
    std::vector<double> rup;
};

/**
 * Run all four attribution methods on a schedule that carries
 * @p total_grams of capacity-scaling carbon.
 *
 * The ground truth divides carbon proportional to exact workload
 * Shapley values of the peak game; Fair-CO2 applies single-level
 * Temporal Shapley over the slices; the baselines are as in
 * core/baselines.hh.
 */
DemandAttributions attributeSchedule(const Schedule &schedule,
                                     double total_grams);

} // namespace fairco2::core

#endif // FAIRCO2_CORE_DEMANDGAME_HH
