/**
 * @file
 * Temporal Shapley attribution (Section 5.1 of the paper): cast time
 * periods as players in a peak-demand game and derive a dynamic
 * embodied-carbon intensity signal, refining hierarchically from
 * coarse to fine periods.
 */

#ifndef FAIRCO2_CORE_TEMPORAL_HH
#define FAIRCO2_CORE_TEMPORAL_HH

#include <cstdint>
#include <vector>

#include "trace/timeseries.hh"

namespace fairco2::core
{

/** Output of a Temporal Shapley attribution pass. */
struct TemporalResult
{
    /**
     * Carbon intensity in grams per resource-second at leaf-period
     * granularity (constant within each leaf period), sampled at the
     * input demand's step width.
     */
    trace::TimeSeries intensity;

    /** Carbon actually attributed; equals the input total unless
     *  some periods had zero demand. */
    double attributedGrams = 0.0;

    /** Carbon dropped because periods had zero resource usage. */
    double unattributedGrams = 0.0;

    /** Number of leaf periods produced. */
    std::size_t leafPeriods = 0;

    /**
     * Shapley "calculations" performed, counted as M^2 per M-player
     * peak-game solve — the complexity the paper's Eq. 7 form pays.
     * (The closed form used here is O(M log M); this counter reports
     * the quadratic equivalent for comparability.)
     */
    std::uint64_t operations = 0;
};

/**
 * Hierarchical Temporal Shapley attribution engine.
 *
 * attribute() divides the demand series into split_counts[0] periods,
 * computes each period's Shapley share of the overall peak, assigns
 * carbon at rate y_i = phi_i * C / sum_k(phi_k q_k) (Eq. 5), and then
 * recurses into each period with its assigned carbon using the next
 * split count, until the splits are exhausted; each final chunk is a
 * leaf period with a constant intensity.
 */
class TemporalShapley
{
  public:
    TemporalShapley() = default;

    /**
     * Attribute @p total_grams of fixed carbon across @p demand.
     *
     * @param demand resource demand series (e.g., allocated cores).
     * @param total_grams carbon amortized into this window.
     * @param split_counts periods per level, e.g. {10, 9, 8, 12}
     *        divides a 30-day, 5-minute trace into 8640 leaves.
     *        Empty means a single flat period (uniform intensity).
     */
    TemporalResult attribute(const trace::TimeSeries &demand,
                             double total_grams,
                             const std::vector<std::size_t>
                                 &split_counts) const;

    /**
     * Single-level convenience: one player per explicit period peak.
     *
     * @param peaks per-period peak demand.
     * @param usage per-period resource-time q_i.
     * @param total_grams carbon for the window.
     * @return per-period intensity y_i in grams per resource-second
     *         (zero when all usage-weighted Shapley mass is zero).
     */
    static std::vector<double>
    periodIntensities(const std::vector<double> &peaks,
                      const std::vector<double> &usage,
                      double total_grams);

  private:
    void attributeRange(const trace::TimeSeries &demand,
                        std::size_t begin, std::size_t end,
                        double carbon, std::size_t level,
                        const std::vector<std::size_t> &split_counts,
                        TemporalResult &result) const;
};

} // namespace fairco2::core

#endif // FAIRCO2_CORE_TEMPORAL_HH
