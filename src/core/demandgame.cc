#include "core/demandgame.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "core/baselines.hh"
#include "core/temporal.hh"
#include "shapley/exact.hh"

namespace fairco2::core
{

Schedule::Schedule(std::vector<ScheduledWorkload> workloads,
                   std::size_t num_slices, double slice_seconds)
    : workloads_(std::move(workloads)), numSlices_(num_slices),
      sliceSeconds_(slice_seconds)
{
    assert(num_slices > 0);
    assert(slice_seconds > 0.0);
    for (const auto &w : workloads_) {
        assert(w.cores > 0.0);
        assert(w.durationSlices > 0);
        assert(w.startSlice + w.durationSlices <= numSlices_);
    }
}

double
Schedule::coresAt(std::size_t w, std::size_t t) const
{
    assert(w < workloads_.size() && t < numSlices_);
    const auto &wl = workloads_[w];
    const bool active =
        t >= wl.startSlice && t < wl.startSlice + wl.durationSlices;
    return active ? wl.cores : 0.0;
}

trace::TimeSeries
Schedule::demandSeries() const
{
    std::vector<double> demand(numSlices_, 0.0);
    for (const auto &wl : workloads_) {
        for (std::size_t t = wl.startSlice;
             t < wl.startSlice + wl.durationSlices; ++t) {
            demand[t] += wl.cores;
        }
    }
    return trace::TimeSeries(std::move(demand), sliceSeconds_);
}

trace::TimeSeries
Schedule::usageSeries(std::size_t w) const
{
    std::vector<double> usage(numSlices_, 0.0);
    for (std::size_t t = 0; t < numSlices_; ++t)
        usage[t] = coresAt(w, t);
    return trace::TimeSeries(std::move(usage), sliceSeconds_);
}

double
Schedule::allocation(std::size_t w) const
{
    assert(w < workloads_.size());
    const auto &wl = workloads_[w];
    return wl.cores * static_cast<double>(wl.durationSlices) *
        sliceSeconds_;
}

double
Schedule::peakDemand() const
{
    return demandSeries().peak();
}

DemandPeakGame::DemandPeakGame(const Schedule &schedule)
    : schedule_(schedule)
{
    if (schedule.numWorkloads() >
        static_cast<std::size_t>(shapley::kMaxExactPlayers)) {
        throw std::invalid_argument(
            "DemandPeakGame: schedule too large for exact Shapley");
    }
}

int
DemandPeakGame::numPlayers() const
{
    return static_cast<int>(schedule_.numWorkloads());
}

double
DemandPeakGame::value(std::uint64_t mask) const
{
    const std::size_t slices = schedule_.numSlices();
    double peak = 0.0;
    std::vector<double> demand(slices, 0.0);
    std::uint64_t bits = mask;
    while (bits) {
        const auto w = static_cast<std::size_t>(
            std::countr_zero(bits));
        bits &= bits - 1;
        for (std::size_t t = 0; t < slices; ++t)
            demand[t] += schedule_.coresAt(w, t);
    }
    for (double d : demand)
        peak = std::max(peak, d);
    return peak;
}

std::vector<double>
DemandPeakGame::tabulate() const
{
    const int n = numPlayers();
    const std::size_t slices = schedule_.numSlices();
    const std::uint64_t num_masks = 1ULL << n;
    std::vector<double> values(num_masks, 0.0);

    // Gray-code walk: consecutive visited masks differ in one bit, so
    // the per-slice demand vector is updated incrementally in O(T).
    std::vector<double> demand(slices, 0.0);
    std::uint64_t prev_gray = 0;
    for (std::uint64_t k = 1; k < num_masks; ++k) {
        const std::uint64_t gray = k ^ (k >> 1);
        const std::uint64_t flipped = gray ^ prev_gray;
        const auto w = static_cast<std::size_t>(
            std::countr_zero(flipped));
        const double sign = (gray & flipped) ? 1.0 : -1.0;
        const auto &wl = schedule_.workloads()[w];
        for (std::size_t t = wl.startSlice;
             t < wl.startSlice + wl.durationSlices; ++t) {
            demand[t] += sign * wl.cores;
        }
        double peak = 0.0;
        for (double d : demand)
            peak = std::max(peak, d);
        // Guard against negative drift from float cancellation.
        values[gray] = std::max(0.0, peak);
        prev_gray = gray;
    }
    return values;
}

DemandAttributions
attributeSchedule(const Schedule &schedule, double total_grams)
{
    const std::size_t n = schedule.numWorkloads();
    DemandAttributions out;
    out.groundTruth.assign(n, 0.0);
    out.fairCo2.assign(n, 0.0);
    out.demandProportional.assign(n, 0.0);
    out.rup.assign(n, 0.0);
    if (n == 0)
        return out;

    // --- Ground truth: exact Shapley over workloads-as-players. ---
    const DemandPeakGame game(schedule);
    const shapley::TabulatedGame table(static_cast<int>(n),
                                       game.tabulate());
    const auto phi = shapley::exactShapley(table);
    const double peak = schedule.peakDemand();
    assert(peak > 0.0);
    for (std::size_t i = 0; i < n; ++i)
        out.groundTruth[i] = phi[i] / peak * total_grams;

    // --- Method intensity signals over the slice demand curve. ---
    const auto demand = schedule.demandSeries();

    // Fair-CO2: single-level Temporal Shapley (each slice a player).
    std::vector<double> peaks(demand.size());
    std::vector<double> usage(demand.size());
    for (std::size_t t = 0; t < demand.size(); ++t) {
        peaks[t] = demand[t];
        usage[t] = demand[t] * demand.stepSeconds();
    }
    const auto ts_intensity = TemporalShapley::periodIntensities(
        peaks, usage, total_grams);
    trace::TimeSeries fair_signal(ts_intensity, demand.stepSeconds());

    const auto dp_signal =
        demandProportionalIntensity(demand, total_grams);
    const auto rup_signal = rupIntensity(demand, total_grams);

    for (std::size_t i = 0; i < n; ++i) {
        const auto used = schedule.usageSeries(i);
        out.fairCo2[i] = attributeUsage(fair_signal, used);
        out.demandProportional[i] = attributeUsage(dp_signal, used);
        out.rup[i] = attributeUsage(rup_signal, used);
    }
    return out;
}

} // namespace fairco2::core
