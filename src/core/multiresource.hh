/**
 * @file
 * Multi-resource demand attribution: CPU cores and DRAM capacity
 * provisioned jointly. The paper evaluates the dynamic-demand game
 * on CPU cores; this extension exercises the linearity property the
 * paper highlights (Section 4): the joint game's value is a
 * carbon-weighted sum of per-resource peak games, so the exact
 * Shapley value decomposes into per-resource Shapley values — and
 * Fair-CO2 attributes each resource with its own Temporal Shapley
 * intensity signal.
 */

#ifndef FAIRCO2_CORE_MULTIRESOURCE_HH
#define FAIRCO2_CORE_MULTIRESOURCE_HH

#include <cstddef>
#include <vector>

#include "core/demandgame.hh"

namespace fairco2::core
{

/** One workload's joint reservation. */
struct MultiResourceWorkload
{
    double cores = 8.0;
    double memoryGb = 16.0;
    std::size_t startSlice = 0;
    std::size_t durationSlices = 1;
};

/**
 * A scenario over two provisioned resources. Capacity — and thus
 * embodied carbon — must cover the peak of each resource
 * independently: v(S) = core_rate * peakCores(S) + mem_rate *
 * peakMem(S).
 */
class MultiResourceSchedule
{
  public:
    MultiResourceSchedule(std::vector<MultiResourceWorkload>
                              workloads,
                          std::size_t num_slices,
                          double slice_seconds);

    std::size_t numWorkloads() const { return workloads_.size(); }
    std::size_t numSlices() const { return numSlices_; }
    double sliceSeconds() const { return sliceSeconds_; }

    const std::vector<MultiResourceWorkload> &workloads() const
    {
        return workloads_;
    }

    /** Projection onto one resource as a single-resource Schedule. */
    Schedule coreSchedule() const;
    Schedule memorySchedule() const;

  private:
    std::vector<MultiResourceWorkload> workloads_;
    std::size_t numSlices_;
    double sliceSeconds_;
};

/** Per-workload attributions for the joint game. */
struct MultiResourceAttributions
{
    std::vector<double> groundTruth;
    std::vector<double> fairCo2;
    std::vector<double> rup;
    /** CPU-only attribution of the full carbon (what a tool that
     *  ignores memory would produce), for the ablation. */
    std::vector<double> cpuOnly;
};

/**
 * Attribute a joint scenario carrying @p core_pool_grams of
 * CPU-scaling carbon and @p mem_pool_grams of DRAM-scaling carbon.
 *
 * The exact ground truth uses the Shapley linearity property:
 * phi(joint) = core share of phi(core peak game) + mem share of
 * phi(mem peak game). Fair-CO2 builds one Temporal Shapley
 * intensity signal per resource. RUP splits each pool by
 * allocation-time. The cpuOnly column attributes *both* pools with
 * the CPU signal, scaled by each workload's core usage.
 */
MultiResourceAttributions
attributeMultiResource(const MultiResourceSchedule &schedule,
                       double core_pool_grams,
                       double mem_pool_grams);

} // namespace fairco2::core

#endif // FAIRCO2_CORE_MULTIRESOURCE_HH
