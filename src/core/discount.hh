/**
 * @file
 * Theoretical limits of Temporal Shapley (Section 5.1) and the
 * long-running-workload discount the paper proposes as future work.
 *
 * Under the unit resource-time approximation, a workload spanning
 * many attribution periods absorbs the carbon of late, sparsely
 * shared periods alone, over-attributing long-running workloads by
 * exactly C*P*(m-1) / ((N-K)*m) in the paper's stylized scenario
 * (K short workloads in the first of m periods, N-K long workloads
 * everywhere, off-peak demand fraction P). This module provides the
 * closed-form analysis, a constructor for the stylized schedule so
 * the analysis can be validated against the real attribution
 * pipeline, and a span-based discount that removes the bias.
 */

#ifndef FAIRCO2_CORE_DISCOUNT_HH
#define FAIRCO2_CORE_DISCOUNT_HH

#include <cstddef>
#include <vector>

#include "core/demandgame.hh"

namespace fairco2::core
{

/** Closed-form attributions in the stylized scenario. */
struct UnitResourceTimeAnalysis
{
    double shortWorkloadGrams = 0.0; //!< each of the K short jobs
    double longWorkloadGrams = 0.0;  //!< each of the N-K long jobs
    /** The bias term C*P*(m-1) / ((N-K)*m) per long workload. */
    double overattributionGrams = 0.0;
};

/**
 * Evaluate the paper's closed-form analysis.
 *
 * @param n total workloads; @p k of them short-lived (k < n).
 * @param m attribution periods.
 * @param off_peak_fraction P: later periods' peak as a fraction of
 *        the first period's (0 < P < 1).
 * @param total_grams C: carbon spread uniformly over the periods.
 */
UnitResourceTimeAnalysis
unitResourceTimeAnalysis(std::size_t n, std::size_t k,
                         std::size_t m, double off_peak_fraction,
                         double total_grams);

/**
 * The stylized schedule behind the analysis: K short workloads run
 * only in slice 0; N-K long workloads run in every slice. Demand is
 * normalized so slice 0 peaks at 1 (each workload contributes 1/N)
 * and later slices peak at P (each long workload P/(N-K)).
 */
Schedule stylizedLongShortSchedule(std::size_t n, std::size_t k,
                                   std::size_t m,
                                   double off_peak_fraction);

/**
 * Span-discounted attribution: scale workload i's raw temporal
 * attribution by 1 / (1 + kappa * (periods_i - 1)) and renormalize
 * so the total is conserved. kappa = 0 is the identity; larger
 * kappa hands more of the late-period carbon back to long-running
 * workloads' neighbours.
 */
std::vector<double>
spanDiscountedAttribution(const std::vector<double> &raw_grams,
                          const std::vector<std::size_t>
                              &periods_spanned,
                          double kappa);

} // namespace fairco2::core

#endif // FAIRCO2_CORE_DISCOUNT_HH
