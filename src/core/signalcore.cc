#include "core/signalcore.hh"

#include <utility>

#include "common/obs.hh"

namespace fairco2::core
{

namespace
{

shapley::SurrogateTemporalEngine::Config
engineConfigFor(const IncrementalSignalCore::Config &config)
{
    shapley::SurrogateTemporalEngine::Config sc;
    sc.engine.windowPeriods = config.windowPeriods;
    sc.engine.periodSamples = config.periodSamples;
    sc.engine.stepSeconds = config.stepSeconds;
    sc.engine.innerSplits = config.innerSplits;
    sc.engine.cacheCapacity = config.cacheCapacity;
    sc.engine.backend = config.cacheBackend;
    sc.engine.seed = config.seed;
    sc.model = config.surrogateModel;
    sc.tolerance = config.surrogateTol;
    return sc;
}

double
meanOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace

IncrementalSignalCore::IncrementalSignalCore(const Config &config)
    : config_(config),
      engine_(std::make_unique<shapley::SurrogateTemporalEngine>(
          engineConfigFor(config)))
{
    partial_.reserve(config_.periodSamples);
}

shapley::SurrogateTemporalEngine::Counters
IncrementalSignalCore::surrogateCounters() const
{
    shapley::SurrogateTemporalEngine::Counters out = countersBase_;
    const auto &live = engine_->counters();
    out.accepts += live.accepts;
    out.rejects += live.rejects;
    out.rejectStructure += live.rejectStructure;
    out.rejectOutOfDistribution += live.rejectOutOfDistribution;
    out.rejectResidual += live.rejectResidual;
    out.rejectDegenerate += live.rejectDegenerate;
    return out;
}

double
IncrementalSignalCore::windowPoolGrams() const
{
    return config_.poolGramsPerSecond *
           static_cast<double>(windowSamples()) *
           config_.stepSeconds;
}

void
IncrementalSignalCore::push(double demand_sample)
{
    engine_->pushSample(demand_sample);
    partial_.push_back(demand_sample);
    if (partial_.size() < config_.periodSamples)
        return;
    retained_.push_back(std::move(partial_));
    partial_ = {};
    partial_.reserve(config_.periodSamples);
    if (retained_.size() > config_.windowPeriods)
        retained_.pop_front();
    ++periodsClosed_;
}

void
IncrementalSignalCore::rebuildEngine()
{
    // Memoization is an optimization, never an input: a fresh
    // engine replaying the retained window samples reproduces the
    // corrupted engine's intended output bit for bit. Fold the
    // discarded engine's surrogate decisions into the stream base
    // so surrogateCounters() stays monotonic across rebuilds.
    countersBase_ = surrogateCounters();
    engine_ = std::make_unique<shapley::SurrogateTemporalEngine>(
        engineConfigFor(config_));
    for (const std::vector<double> &period : retained_)
        for (double sample : period)
            engine_->pushSample(sample);
    ++rebuilds_;
    FAIRCO2_COUNT("core.signal.rebuilds", 1);
}

shapley::IncrementalTemporalEngine::WindowResult
IncrementalSignalCore::computeWindow(double pool_grams)
{
    try {
        return engine_->computeWindow(pool_grams);
    } catch (const shapley::CacheIntegrityError &) {
        rebuildEngine();
        return engine_->computeWindow(pool_grams);
    }
}

IncrementalSignalCore::Publication
IncrementalSignalCore::publishNewest(double pool_grams)
{
    Publication out;
    const std::size_t M = config_.periodSamples;
    if (firstWindow()) {
        const auto full = computeWindow(pool_grams);
        const auto &values = full.intensity.values();
        out.newestIntensity.assign(values.end() -
                                       static_cast<std::ptrdiff_t>(M),
                                   values.end());
        out.attributedGrams = full.attributedGrams;
    } else {
        shapley::IncrementalTemporalEngine::PeriodResult advance;
        try {
            advance = engine_->computeNewestPeriod(pool_grams);
        } catch (const shapley::CacheIntegrityError &) {
            rebuildEngine();
            advance = engine_->computeNewestPeriod(pool_grams);
        }
        out.newestIntensity = std::move(advance.intensity);
        out.attributedGrams = advance.periodGrams;
    }
    out.newestMeanIntensity = meanOf(out.newestIntensity);
    return out;
}

} // namespace fairco2::core
