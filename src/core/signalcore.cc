#include "core/signalcore.hh"

#include <utility>

#include "common/obs.hh"

namespace fairco2::core
{

namespace
{

shapley::IncrementalTemporalEngine::Config
engineConfigFor(const IncrementalSignalCore::Config &config)
{
    shapley::IncrementalTemporalEngine::Config ec;
    ec.windowPeriods = config.windowPeriods;
    ec.periodSamples = config.periodSamples;
    ec.stepSeconds = config.stepSeconds;
    ec.innerSplits = config.innerSplits;
    ec.cacheCapacity = config.cacheCapacity;
    ec.backend = config.cacheBackend;
    ec.seed = config.seed;
    return ec;
}

double
meanOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace

IncrementalSignalCore::IncrementalSignalCore(const Config &config)
    : config_(config),
      engine_(std::make_unique<shapley::IncrementalTemporalEngine>(
          engineConfigFor(config)))
{
    partial_.reserve(config_.periodSamples);
}

double
IncrementalSignalCore::windowPoolGrams() const
{
    return config_.poolGramsPerSecond *
           static_cast<double>(windowSamples()) *
           config_.stepSeconds;
}

void
IncrementalSignalCore::push(double demand_sample)
{
    engine_->pushSample(demand_sample);
    partial_.push_back(demand_sample);
    if (partial_.size() < config_.periodSamples)
        return;
    retained_.push_back(std::move(partial_));
    partial_ = {};
    partial_.reserve(config_.periodSamples);
    if (retained_.size() > config_.windowPeriods)
        retained_.pop_front();
    ++periodsClosed_;
}

void
IncrementalSignalCore::rebuildEngine()
{
    // Memoization is an optimization, never an input: a fresh
    // engine replaying the retained window samples reproduces the
    // corrupted engine's intended output bit for bit.
    engine_ = std::make_unique<shapley::IncrementalTemporalEngine>(
        engineConfigFor(config_));
    for (const std::vector<double> &period : retained_)
        for (double sample : period)
            engine_->pushSample(sample);
    ++rebuilds_;
    FAIRCO2_COUNT("core.signal.rebuilds", 1);
}

shapley::IncrementalTemporalEngine::WindowResult
IncrementalSignalCore::computeWindow(double pool_grams)
{
    try {
        return engine_->computeWindow(pool_grams);
    } catch (const shapley::CacheIntegrityError &) {
        rebuildEngine();
        return engine_->computeWindow(pool_grams);
    }
}

IncrementalSignalCore::Publication
IncrementalSignalCore::publishNewest(double pool_grams)
{
    Publication out;
    const std::size_t M = config_.periodSamples;
    if (firstWindow()) {
        const auto full = computeWindow(pool_grams);
        const auto &values = full.intensity.values();
        out.newestIntensity.assign(values.end() -
                                       static_cast<std::ptrdiff_t>(M),
                                   values.end());
        out.attributedGrams = full.attributedGrams;
    } else {
        shapley::IncrementalTemporalEngine::PeriodResult advance;
        try {
            advance = engine_->computeNewestPeriod(pool_grams);
        } catch (const shapley::CacheIntegrityError &) {
            rebuildEngine();
            advance = engine_->computeNewestPeriod(pool_grams);
        }
        out.newestIntensity = std::move(advance.intensity);
        out.attributedGrams = advance.periodGrams;
    }
    out.newestMeanIntensity = meanOf(out.newestIntensity);
    return out;
}

} // namespace fairco2::core
