/**
 * @file
 * Baseline attribution intensity signals the paper compares against:
 * the Resource Utilization Proportional baseline (Google operational
 * accounting + the Green Software Foundation's SCI for embodied) and
 * the demand-proportional scheme evaluated as a demand-aware baseline.
 */

#ifndef FAIRCO2_CORE_BASELINES_HH
#define FAIRCO2_CORE_BASELINES_HH

#include "trace/timeseries.hh"

namespace fairco2::core
{

/**
 * RUP-Baseline embodied intensity: carbon is amortized uniformly over
 * time and attributed proportional to resource allocation, which is a
 * *constant* intensity of total / integral(demand) grams per
 * resource-second (zero when there is no usage at all).
 */
trace::TimeSeries rupIntensity(const trace::TimeSeries &demand,
                               double total_grams);

/**
 * Demand-proportional intensity: y(t) proportional to demand(t),
 * normalized so the usage-weighted integral equals @p total_grams:
 * y_t = D_t * C / sum_k(D_k^2 * dt).
 */
trace::TimeSeries
demandProportionalIntensity(const trace::TimeSeries &demand,
                            double total_grams);

/**
 * Carbon attributed to a consumer whose resource usage over time is
 * @p usage, under intensity signal @p intensity (same shape):
 * sum_t y_t * u_t * dt.
 */
double attributeUsage(const trace::TimeSeries &intensity,
                      const trace::TimeSeries &usage);

} // namespace fairco2::core

#endif // FAIRCO2_CORE_BASELINES_HH
