/**
 * @file
 * Request-level attribution — the finer granularity the paper's
 * Section 10 names as future work. A service that owns cores and
 * memory on a node serves several request classes; its
 * window-level carbon (embodied via the live intensity signals,
 * static and dynamic energy via the grid) is divided down to
 * request classes and per-request footprints, with the service's
 * idle slack reported explicitly rather than smeared.
 */

#ifndef FAIRCO2_CORE_REQUESTS_HH
#define FAIRCO2_CORE_REQUESTS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace fairco2::core
{

/** Aggregated telemetry for one request class over a window. */
struct RequestClass
{
    std::string name;
    double requests = 0.0;              //!< served in the window
    double coreSecondsPerRequest = 0.0; //!< measured CPU time
    double dynamicJoulesPerRequest = 0.0;
};

/** One class's share of the service's window carbon. */
struct RequestClassBill
{
    std::string name;
    double requests = 0.0;
    double fixedGrams = 0.0;   //!< embodied + static share
    double dynamicGrams = 0.0; //!< energy share
    double totalGrams() const { return fixedGrams + dynamicGrams; }
    /** gCO2e per request (0 when the class served nothing). */
    double perRequestGrams() const;
};

/** Attribution of a service window down to request classes. */
struct RequestAttribution
{
    std::vector<RequestClassBill> bills;
    /** Fixed carbon of reserved-but-idle capacity. */
    double idleFixedGrams = 0.0;
    /** Window totals (bills + idle), for conservation checks. */
    double totalFixedGrams = 0.0;
    double totalDynamicGrams = 0.0;
};

/** The service's reservation and window-level carbon rates. */
struct ServiceWindow
{
    double cores = 48.0;
    double memoryGb = 96.0;
    double windowSeconds = 3600.0;
    /** Live embodied intensity for cores, g per core-second. */
    double coreIntensity = 0.0;
    /** Live embodied intensity for DRAM, g per GB-second. */
    double memIntensity = 0.0;
    /** Node static power billed to the service, watts. */
    double staticWatts = 0.0;
    /** Grid carbon intensity, gCO2e/kWh. */
    double gridGPerKwh = 0.0;
};

/**
 * Attribute one service window to its request classes.
 *
 * Fixed carbon (embodied at the live intensities plus static
 * energy) is split across classes proportional to busy
 * core-seconds, with the idle remainder reported separately;
 * dynamic carbon follows measured per-class energy. Conservation:
 * sum of bills + idleFixedGrams == window totals.
 *
 * @throws std::invalid_argument if the classes' busy core-seconds
 *         exceed the reservation.
 */
RequestAttribution
attributeRequests(const ServiceWindow &window,
                  const std::vector<RequestClass> &classes);

} // namespace fairco2::core

#endif // FAIRCO2_CORE_REQUESTS_HH
