/**
 * @file
 * The colocation attribution problem (Sections 5.2, 6.3, Figures 8
 * and 9): pairs of workloads share nodes and interfere; carbon must
 * be split fairly despite the luck of partner assignment.
 *
 * Ground truth: the random-order Shapley value under the arrival
 * process the paper simulates — workloads arrive in uniformly random
 * order and a greedy scheduler fills the open half-node slot if one
 * exists, else opens a new node. Because interference is pairwise,
 * this value has an O(N^2) closed form (see DESIGN.md), verified
 * against permutation sampling in the tests.
 */

#ifndef FAIRCO2_CORE_COLOCGAME_HH
#define FAIRCO2_CORE_COLOCGAME_HH

#include <cstddef>
#include <vector>

#include "carbon/grid.hh"
#include "carbon/server.hh"
#include "common/rng.hh"
#include "workload/interference.hh"
#include "workload/suite.hh"

namespace fairco2::core
{

/**
 * Carbon cost of node occupancies under a fixed grid intensity.
 *
 * A node's cost has a fixed part that scales with uptime (amortized
 * embodied carbon plus static energy carbon) and a dynamic part
 * (per-workload dynamic energy carbon).
 */
class ColocationCostModel
{
  public:
    ColocationCostModel(const carbon::ServerCarbonModel &server,
                        const workload::InterferenceModel &interference,
                        double grid_g_per_kwh);

    /** Fixed node cost rate: embodied + static carbon, grams/s. */
    double fixedGramsPerSecond() const;

    /** Amortized embodied-only rate, grams/s. */
    double embodiedGramsPerSecond() const;

    /** Carbon for @p joules of dynamic energy, grams. */
    double dynamicGrams(double joules) const;

    /** Total carbon of @p w running alone on a node: v({w}). */
    double isolatedCarbon(const workload::WorkloadSpec &w) const;

    /** Total carbon of a colocated pair's node: v({a, b}). */
    double pairCarbon(const workload::WorkloadSpec &a,
                      const workload::WorkloadSpec &b) const;

    /**
     * Total carbon of a node hosting an arbitrary group, each
     * member on its own slot (k-way colocation; reduces to
     * isolatedCarbon / pairCarbon for groups of one / two).
     */
    double groupCarbon(const std::vector<const workload::WorkloadSpec *>
                           &group) const;

    const workload::InterferenceModel &interference() const
    {
        return interference_;
    }

    double gridGPerKwh() const { return gridGPerKwh_; }

  private:
    const carbon::ServerCarbonModel &server_;
    const workload::InterferenceModel &interference_;
    double gridGPerKwh_;
};

/**
 * A realized scenario: which workloads ran and how they were paired.
 * Workloads are indices into a Suite; pairs list positions into
 * `members`; with an odd count the last member runs alone.
 */
struct ColocationScenario
{
    std::vector<std::size_t> members;  //!< suite indices
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    /** Position of the unpaired member, or npos when none. */
    std::size_t isolatedMember = static_cast<std::size_t>(-1);

    /** Draw a uniformly random pairing of @p suite_ids. */
    static ColocationScenario random(std::vector<std::size_t> suite_ids,
                                     Rng &rng);
};

/**
 * Exact random-order Shapley ground truth for a scenario's members:
 * phi_i = P(open) * v({i})
 *       + P(fill) * mean_j [ v({i,j}) - v({j}) ].
 * Independent of the realized pairing — that is the point.
 */
std::vector<double>
groundTruthColocation(const std::vector<std::size_t> &members,
                      const workload::Suite &suite,
                      const ColocationCostModel &cost);

/**
 * Monte Carlo reference for the same value: sample random arrival
 * orders, apply the greedy pair scheduler, average marginal node-cost
 * contributions. Used to validate groundTruthColocation().
 */
std::vector<double>
sampledGroundTruthColocation(const std::vector<std::size_t> &members,
                             const workload::Suite &suite,
                             const ColocationCostModel &cost,
                             Rng &rng, std::size_t num_permutations);

/** Total realized carbon of a scenario under the cost model. */
double realizedTotalCarbon(const ColocationScenario &scenario,
                           const workload::Suite &suite,
                           const ColocationCostModel &cost);

/**
 * RUP-Baseline attribution of the realized scenario: within each
 * node, fixed carbon is split proportional to resource-time
 * (allocation x occupancy) and dynamic carbon proportional to
 * utilization-time; a workload alone on a node carries the whole
 * node. Sums to the realized total.
 */
std::vector<double>
rupColocationAttribution(const ColocationScenario &scenario,
                         const workload::Suite &suite,
                         const ColocationCostModel &cost);

/**
 * Per-workload interference profile estimated from (a sample of)
 * historical colocations: Eq. 8-11's alpha (suffered) and beta
 * (inflicted) factors for runtime and dynamic energy.
 */
struct InterferenceProfile
{
    double alphaRuntime = 1.0; //!< mean slowdown suffered
    double betaRuntime = 1.0;  //!< mean slowdown inflicted
    double alphaEnergy = 1.0;  //!< mean dynamic-energy ratio suffered
    double betaEnergy = 1.0;   //!< mean dynamic-energy ratio inflicted
};

/**
 * Build the profile of suite workload @p subject from a sampled
 * subset of its pairwise colocation history.
 *
 * @param partner_sample suite indices of the historically observed
 *        partners (at least one).
 */
InterferenceProfile
estimateProfile(std::size_t subject,
                const std::vector<std::size_t> &partner_sample,
                const workload::Suite &suite,
                const workload::InterferenceModel &interference);

/**
 * Fair-CO2 interference-aware attribution of the realized scenario
 * (Eq. 8-11): fixed carbon split proportional to
 * (alpha_T + beta_T) x resource-time at isolation, dynamic carbon
 * proportional to (alpha_P + beta_P) x isolated power x isolated
 * runtime. Sums to the realized total.
 *
 * @param profiles one per scenario member, typically from
 *        estimateProfile() with a sparse history sample.
 */
std::vector<double>
fairCo2ColocationAttribution(const ColocationScenario &scenario,
                             const workload::Suite &suite,
                             const ColocationCostModel &cost,
                             const std::vector<InterferenceProfile>
                                 &profiles);

/**
 * A realized k-way scenario: members grouped onto nodes with
 * @p slots workloads each (the last node may be partial).
 */
struct MultiTenantScenario
{
    std::vector<std::size_t> members; //!< suite indices
    /** Positions (into members) hosted together, per node. */
    std::vector<std::vector<std::size_t>> nodes;

    /** Random arrival order grouped greedily into @p slots. */
    static MultiTenantScenario
    random(std::vector<std::size_t> suite_ids, std::size_t slots,
           Rng &rng);
};

/** Total realized carbon of a k-way scenario. */
double realizedTotalMultiTenant(const MultiTenantScenario &scenario,
                                const workload::Suite &suite,
                                const ColocationCostModel &cost);

/**
 * Monte Carlo random-order Shapley ground truth for k-way
 * colocation: random arrival orders with a greedy scheduler that
 * fills the open node up to @p slots before opening another.
 * (With k > 2 the marginal depends on the whole resident group, so
 * no pairwise closed form applies; sampling is the ground truth.)
 */
std::vector<double>
sampledGroundTruthMultiTenant(const std::vector<std::size_t>
                                  &members,
                              const workload::Suite &suite,
                              const ColocationCostModel &cost,
                              std::size_t slots, Rng &rng,
                              std::size_t num_permutations);

/** RUP attribution of a realized k-way scenario (node fixed costs
 *  by resource-time, node dynamic energy by utilization-time). */
std::vector<double>
rupMultiTenantAttribution(const MultiTenantScenario &scenario,
                          const workload::Suite &suite,
                          const ColocationCostModel &cost);

/**
 * Fair-CO2 attribution of a k-way scenario using the same pairwise
 * alpha/beta profiles (Eqs. 8-11 are already group-agnostic: the
 * factors reweight pool shares).
 */
std::vector<double>
fairCo2MultiTenantAttribution(const MultiTenantScenario &scenario,
                              const workload::Suite &suite,
                              const ColocationCostModel &cost,
                              const std::vector<InterferenceProfile>
                                  &profiles);

} // namespace fairco2::core

#endif // FAIRCO2_CORE_COLOCGAME_HH
