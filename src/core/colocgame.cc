#include "core/colocgame.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fairco2::core
{

using workload::RunMetrics;
using workload::WorkloadSpec;

ColocationCostModel::ColocationCostModel(
    const carbon::ServerCarbonModel &server,
    const workload::InterferenceModel &interference,
    double grid_g_per_kwh)
    : server_(server), interference_(interference),
      gridGPerKwh_(grid_g_per_kwh)
{
    assert(grid_g_per_kwh >= 0.0);
}

double
ColocationCostModel::embodiedGramsPerSecond() const
{
    return server_.embodiedGrams() / server_.lifetimeSeconds();
}

double
ColocationCostModel::fixedGramsPerSecond() const
{
    const double static_g_per_s = server_.power().staticWatts *
        gridGPerKwh_ / carbon::kJoulesPerKwh;
    return embodiedGramsPerSecond() + static_g_per_s;
}

double
ColocationCostModel::dynamicGrams(double joules) const
{
    assert(joules >= 0.0);
    return joules / carbon::kJoulesPerKwh * gridGPerKwh_;
}

double
ColocationCostModel::isolatedCarbon(const WorkloadSpec &w) const
{
    const RunMetrics m = interference_.isolated(w);
    return fixedGramsPerSecond() * m.runtimeSeconds +
        dynamicGrams(m.dynamicEnergyJoules);
}

double
ColocationCostModel::pairCarbon(const WorkloadSpec &a,
                                const WorkloadSpec &b) const
{
    const auto [ma, mb] = interference_.colocatedPair(a, b);
    const double uptime =
        std::max(ma.runtimeSeconds, mb.runtimeSeconds);
    return fixedGramsPerSecond() * uptime +
        dynamicGrams(ma.dynamicEnergyJoules +
                     mb.dynamicEnergyJoules);
}

double
ColocationCostModel::groupCarbon(
    const std::vector<const WorkloadSpec *> &group) const
{
    double uptime = 0.0;
    double dyn_joules = 0.0;
    std::vector<const WorkloadSpec *> partners;
    partners.reserve(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
        partners.clear();
        for (std::size_t j = 0; j < group.size(); ++j) {
            if (j != i)
                partners.push_back(group[j]);
        }
        const RunMetrics m =
            interference_.colocatedMulti(*group[i], partners);
        uptime = std::max(uptime, m.runtimeSeconds);
        dyn_joules += m.dynamicEnergyJoules;
    }
    return fixedGramsPerSecond() * uptime + dynamicGrams(dyn_joules);
}

ColocationScenario
ColocationScenario::random(std::vector<std::size_t> suite_ids,
                           Rng &rng)
{
    ColocationScenario scenario;
    scenario.members = std::move(suite_ids);

    const auto order = rng.permutation(scenario.members.size());
    std::size_t k = 0;
    for (; k + 1 < order.size(); k += 2)
        scenario.pairs.emplace_back(order[k], order[k + 1]);
    if (k < order.size())
        scenario.isolatedMember = order[k];
    return scenario;
}

std::vector<double>
groundTruthColocation(const std::vector<std::size_t> &members,
                      const workload::Suite &suite,
                      const ColocationCostModel &cost)
{
    const std::size_t n = members.size();
    std::vector<double> phi(n, 0.0);
    if (n == 0)
        return phi;
    if (n == 1) {
        phi[0] = cost.isolatedCarbon(suite.at(members[0]));
        return phi;
    }

    // Arrival positions alternate open/fill under the greedy pair
    // scheduler; a uniformly random position makes P(open) exactly
    // ceil(n/2)/n, and conditional on filling, the partner already
    // on the node is uniform among the other members.
    const double p_open =
        static_cast<double>((n + 1) / 2) / static_cast<double>(n);
    const double p_fill = 1.0 - p_open;

    // Cache single-node costs.
    std::vector<double> iso(n);
    for (std::size_t i = 0; i < n; ++i)
        iso[i] = cost.isolatedCarbon(suite.at(members[i]));

    for (std::size_t i = 0; i < n; ++i) {
        const WorkloadSpec &wi = suite.at(members[i]);
        double fill_mean = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i)
                continue;
            const WorkloadSpec &wj = suite.at(members[j]);
            fill_mean += cost.pairCarbon(wi, wj) - iso[j];
        }
        fill_mean /= static_cast<double>(n - 1);
        phi[i] = p_open * iso[i] + p_fill * fill_mean;
    }
    return phi;
}

std::vector<double>
sampledGroundTruthColocation(const std::vector<std::size_t> &members,
                             const workload::Suite &suite,
                             const ColocationCostModel &cost,
                             Rng &rng, std::size_t num_permutations)
{
    const std::size_t n = members.size();
    std::vector<double> phi(n, 0.0);
    if (n == 0 || num_permutations == 0)
        return phi;

    for (std::size_t p = 0; p < num_permutations; ++p) {
        const auto order = rng.permutation(n);
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t who = order[k];
            const WorkloadSpec &w = suite.at(members[who]);
            if (k % 2 == 0) {
                // Opens a node.
                phi[who] += cost.isolatedCarbon(w);
            } else {
                // Fills the slot next to the previous arrival.
                const std::size_t partner = order[k - 1];
                const WorkloadSpec &pw = suite.at(members[partner]);
                phi[who] += cost.pairCarbon(w, pw) -
                    cost.isolatedCarbon(pw);
            }
        }
    }
    for (double &x : phi)
        x /= static_cast<double>(num_permutations);
    return phi;
}

double
realizedTotalCarbon(const ColocationScenario &scenario,
                    const workload::Suite &suite,
                    const ColocationCostModel &cost)
{
    double total = 0.0;
    for (const auto &[a, b] : scenario.pairs) {
        total += cost.pairCarbon(suite.at(scenario.members[a]),
                                 suite.at(scenario.members[b]));
    }
    if (scenario.isolatedMember != static_cast<std::size_t>(-1)) {
        total += cost.isolatedCarbon(
            suite.at(scenario.members[scenario.isolatedMember]));
    }
    return total;
}

std::vector<double>
rupColocationAttribution(const ColocationScenario &scenario,
                         const workload::Suite &suite,
                         const ColocationCostModel &cost)
{
    const auto &interference = cost.interference();
    std::vector<double> attribution(scenario.members.size(), 0.0);

    for (const auto &[a, b] : scenario.pairs) {
        const WorkloadSpec &wa = suite.at(scenario.members[a]);
        const WorkloadSpec &wb = suite.at(scenario.members[b]);
        const auto [ma, mb] = interference.colocatedPair(wa, wb);

        const double uptime =
            std::max(ma.runtimeSeconds, mb.runtimeSeconds);
        const double fixed = cost.fixedGramsPerSecond() * uptime;

        // Fixed costs: proportional to resource allocation x time.
        const double ra = wa.cores * ma.runtimeSeconds;
        const double rb = wb.cores * mb.runtimeSeconds;
        const double fixed_share_a = ra / (ra + rb);

        // Dynamic energy: the baseline only observes node energy and
        // per-workload CPU-utilization-time.
        const double node_dyn = cost.dynamicGrams(
            ma.dynamicEnergyJoules + mb.dynamicEnergyJoules);
        const double ua = ma.cpuUtilization * ma.runtimeSeconds *
            wa.cores;
        const double ub = mb.cpuUtilization * mb.runtimeSeconds *
            wb.cores;
        const double dyn_share_a = ua / (ua + ub);

        attribution[a] += fixed * fixed_share_a +
            node_dyn * dyn_share_a;
        attribution[b] += fixed * (1.0 - fixed_share_a) +
            node_dyn * (1.0 - dyn_share_a);
    }

    if (scenario.isolatedMember != static_cast<std::size_t>(-1)) {
        const std::size_t solo = scenario.isolatedMember;
        attribution[solo] += cost.isolatedCarbon(
            suite.at(scenario.members[solo]));
    }
    return attribution;
}

InterferenceProfile
estimateProfile(std::size_t subject,
                const std::vector<std::size_t> &partner_sample,
                const workload::Suite &suite,
                const workload::InterferenceModel &interference)
{
    assert(!partner_sample.empty());
    const WorkloadSpec &w = suite.at(subject);
    const RunMetrics iso = interference.isolated(w);

    InterferenceProfile profile;
    double alpha_t = 0.0, beta_t = 0.0;
    double alpha_p = 0.0, beta_p = 0.0;
    for (std::size_t partner : partner_sample) {
        const WorkloadSpec &pw = suite.at(partner);
        const RunMetrics piso = interference.isolated(pw);
        const auto [mine, theirs] =
            interference.colocatedPair(w, pw);

        alpha_t += mine.runtimeSeconds / iso.runtimeSeconds;
        beta_t += theirs.runtimeSeconds / piso.runtimeSeconds;
        alpha_p +=
            mine.dynamicEnergyJoules / iso.dynamicEnergyJoules;
        beta_p +=
            theirs.dynamicEnergyJoules / piso.dynamicEnergyJoules;
    }
    const double k = static_cast<double>(partner_sample.size());
    profile.alphaRuntime = alpha_t / k;
    profile.betaRuntime = beta_t / k;
    profile.alphaEnergy = alpha_p / k;
    profile.betaEnergy = beta_p / k;
    return profile;
}

std::vector<double>
fairCo2ColocationAttribution(const ColocationScenario &scenario,
                             const workload::Suite &suite,
                             const ColocationCostModel &cost,
                             const std::vector<InterferenceProfile>
                                 &profiles)
{
    const std::size_t n = scenario.members.size();
    if (profiles.size() != n)
        throw std::invalid_argument(
            "one interference profile per scenario member required");
    std::vector<double> attribution(n, 0.0);
    if (n == 0)
        return attribution;

    const auto &interference = cost.interference();

    // Realized pools to divide (efficiency: totals must match).
    double fixed_pool = 0.0;
    double dyn_pool = 0.0;
    for (const auto &[a, b] : scenario.pairs) {
        const WorkloadSpec &wa = suite.at(scenario.members[a]);
        const WorkloadSpec &wb = suite.at(scenario.members[b]);
        const auto [ma, mb] = interference.colocatedPair(wa, wb);
        fixed_pool += cost.fixedGramsPerSecond() *
            std::max(ma.runtimeSeconds, mb.runtimeSeconds);
        dyn_pool += cost.dynamicGrams(ma.dynamicEnergyJoules +
                                      mb.dynamicEnergyJoules);
    }
    if (scenario.isolatedMember != static_cast<std::size_t>(-1)) {
        const WorkloadSpec &w =
            suite.at(scenario.members[scenario.isolatedMember]);
        const RunMetrics iso = interference.isolated(w);
        fixed_pool += cost.fixedGramsPerSecond() * iso.runtimeSeconds;
        dyn_pool += cost.dynamicGrams(iso.dynamicEnergyJoules);
    }

    // Attribution factors (Eq. 8 and Eq. 10), with Q_i interpreted
    // as the member's resource-time at its isolated baseline.
    std::vector<double> f_fixed(n), f_dyn(n);
    double sum_fixed = 0.0, sum_dyn = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const WorkloadSpec &w = suite.at(scenario.members[i]);
        const RunMetrics iso = interference.isolated(w);
        const InterferenceProfile &p = profiles[i];

        f_fixed[i] = (p.alphaRuntime + p.betaRuntime) * w.cores *
            iso.runtimeSeconds;
        f_dyn[i] = (p.alphaEnergy + p.betaEnergy) *
            iso.avgDynamicPowerWatts * iso.runtimeSeconds;
        sum_fixed += f_fixed[i];
        sum_dyn += f_dyn[i];
    }

    for (std::size_t i = 0; i < n; ++i) {
        double grams = 0.0;
        if (sum_fixed > 0.0)
            grams += fixed_pool * f_fixed[i] / sum_fixed;
        if (sum_dyn > 0.0)
            grams += dyn_pool * f_dyn[i] / sum_dyn;
        attribution[i] = grams;
    }
    return attribution;
}

MultiTenantScenario
MultiTenantScenario::random(std::vector<std::size_t> suite_ids,
                            std::size_t slots, Rng &rng)
{
    assert(slots >= 1);
    MultiTenantScenario scenario;
    scenario.members = std::move(suite_ids);

    const auto order = rng.permutation(scenario.members.size());
    for (std::size_t k = 0; k < order.size(); ++k) {
        if (k % slots == 0)
            scenario.nodes.emplace_back();
        scenario.nodes.back().push_back(order[k]);
    }
    return scenario;
}

namespace
{

/** Per-member run metrics of one realized node group. */
std::vector<RunMetrics>
groupMetrics(const std::vector<std::size_t> &node,
             const std::vector<std::size_t> &members,
             const workload::Suite &suite,
             const workload::InterferenceModel &interference)
{
    std::vector<RunMetrics> metrics;
    metrics.reserve(node.size());
    std::vector<const WorkloadSpec *> partners;
    for (std::size_t i = 0; i < node.size(); ++i) {
        partners.clear();
        for (std::size_t j = 0; j < node.size(); ++j) {
            if (j != i)
                partners.push_back(&suite.at(members[node[j]]));
        }
        metrics.push_back(interference.colocatedMulti(
            suite.at(members[node[i]]), partners));
    }
    return metrics;
}

} // namespace

double
realizedTotalMultiTenant(const MultiTenantScenario &scenario,
                         const workload::Suite &suite,
                         const ColocationCostModel &cost)
{
    double total = 0.0;
    std::vector<const WorkloadSpec *> group;
    for (const auto &node : scenario.nodes) {
        group.clear();
        for (std::size_t position : node)
            group.push_back(&suite.at(scenario.members[position]));
        total += cost.groupCarbon(group);
    }
    return total;
}

std::vector<double>
sampledGroundTruthMultiTenant(const std::vector<std::size_t>
                                  &members,
                              const workload::Suite &suite,
                              const ColocationCostModel &cost,
                              std::size_t slots, Rng &rng,
                              std::size_t num_permutations)
{
    assert(slots >= 1);
    const std::size_t n = members.size();
    std::vector<double> phi(n, 0.0);
    if (n == 0 || num_permutations == 0)
        return phi;

    std::vector<const WorkloadSpec *> group;
    for (std::size_t p = 0; p < num_permutations; ++p) {
        const auto order = rng.permutation(n);
        group.clear();
        double prev_cost = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
            if (k % slots == 0) {
                group.clear();
                prev_cost = 0.0;
            }
            group.push_back(&suite.at(members[order[k]]));
            const double cur_cost = cost.groupCarbon(group);
            phi[order[k]] += cur_cost - prev_cost;
            prev_cost = cur_cost;
        }
    }
    for (double &x : phi)
        x /= static_cast<double>(num_permutations);
    return phi;
}

std::vector<double>
rupMultiTenantAttribution(const MultiTenantScenario &scenario,
                          const workload::Suite &suite,
                          const ColocationCostModel &cost)
{
    const auto &interference = cost.interference();
    std::vector<double> attribution(scenario.members.size(), 0.0);

    for (const auto &node : scenario.nodes) {
        const auto metrics = groupMetrics(
            node, scenario.members, suite, interference);

        double uptime = 0.0;
        double node_joules = 0.0;
        double resource_time = 0.0;
        double util_time = 0.0;
        for (std::size_t i = 0; i < node.size(); ++i) {
            const auto &w = suite.at(scenario.members[node[i]]);
            uptime = std::max(uptime, metrics[i].runtimeSeconds);
            node_joules += metrics[i].dynamicEnergyJoules;
            resource_time += w.cores * metrics[i].runtimeSeconds;
            util_time += w.cores * metrics[i].cpuUtilization *
                metrics[i].runtimeSeconds;
        }
        const double fixed = cost.fixedGramsPerSecond() * uptime;
        const double dyn = cost.dynamicGrams(node_joules);

        for (std::size_t i = 0; i < node.size(); ++i) {
            const auto &w = suite.at(scenario.members[node[i]]);
            attribution[node[i]] += fixed *
                (w.cores * metrics[i].runtimeSeconds) /
                resource_time;
            attribution[node[i]] += dyn *
                (w.cores * metrics[i].cpuUtilization *
                 metrics[i].runtimeSeconds) /
                util_time;
        }
    }
    return attribution;
}

std::vector<double>
fairCo2MultiTenantAttribution(const MultiTenantScenario &scenario,
                              const workload::Suite &suite,
                              const ColocationCostModel &cost,
                              const std::vector<InterferenceProfile>
                                  &profiles)
{
    const std::size_t n = scenario.members.size();
    if (profiles.size() != n)
        throw std::invalid_argument(
            "one interference profile per scenario member required");
    std::vector<double> attribution(n, 0.0);
    if (n == 0)
        return attribution;

    const auto &interference = cost.interference();

    // Realized pools.
    double fixed_pool = 0.0;
    double dyn_pool = 0.0;
    for (const auto &node : scenario.nodes) {
        const auto metrics = groupMetrics(
            node, scenario.members, suite, interference);
        double uptime = 0.0;
        double joules = 0.0;
        for (const auto &m : metrics) {
            uptime = std::max(uptime, m.runtimeSeconds);
            joules += m.dynamicEnergyJoules;
        }
        fixed_pool += cost.fixedGramsPerSecond() * uptime;
        dyn_pool += cost.dynamicGrams(joules);
    }

    // Eq. 8/10 attribution factors from the pairwise profiles.
    std::vector<double> f_fixed(n), f_dyn(n);
    double sum_fixed = 0.0, sum_dyn = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const WorkloadSpec &w = suite.at(scenario.members[i]);
        const RunMetrics iso = interference.isolated(w);
        const InterferenceProfile &p = profiles[i];
        f_fixed[i] = (p.alphaRuntime + p.betaRuntime) * w.cores *
            iso.runtimeSeconds;
        f_dyn[i] = (p.alphaEnergy + p.betaEnergy) *
            iso.avgDynamicPowerWatts * iso.runtimeSeconds;
        sum_fixed += f_fixed[i];
        sum_dyn += f_dyn[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
        double grams = 0.0;
        if (sum_fixed > 0.0)
            grams += fixed_pool * f_fixed[i] / sum_fixed;
        if (sum_dyn > 0.0)
            grams += dyn_pool * f_dyn[i] / sum_dyn;
        attribution[i] = grams;
    }
    return attribution;
}

} // namespace fairco2::core
