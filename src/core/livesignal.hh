/**
 * @file
 * Live embodied-carbon intensity service (the deployment shape of
 * Figure 3): demand telemetry streams in sample by sample, a
 * periodically refit forecaster extends the window into the future,
 * and Temporal Shapley turns the blended window into a current and
 * projected intensity signal that carbon-aware schedulers can poll.
 *
 * Two deployment modes share the same surface:
 *
 *  - classic (incrementalWindowPeriods == 0): ring-buffered history,
 *    periodic forecaster refits, full TemporalShapley recompute on
 *    every push.
 *  - incremental (incrementalWindowPeriods > 0): the samples stream
 *    through a shapley::IncrementalTemporalEngine whose memoized
 *    sub-games make each window advance cost one fresh period solve;
 *    the forecast horizon is skipped (the engine attributes measured
 *    demand only) and projectedIntensity() is empty.
 */

#ifndef FAIRCO2_CORE_LIVESIGNAL_HH
#define FAIRCO2_CORE_LIVESIGNAL_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "core/signalcore.hh"
#include "forecast/forecaster.hh"
#include "shapley/incremental.hh"
#include "trace/timeseries.hh"

namespace fairco2::core
{

/** Streaming intensity-signal generator. */
class LiveIntensityService
{
  public:
    struct Config
    {
        /** Telemetry sample width, seconds. */
        double stepSeconds = 300.0;
        /** Samples retained for fitting/attribution (ring). */
        std::size_t historySteps = 21 * 288;
        /** Samples required before the service goes live. */
        std::size_t warmupSteps = 7 * 288;
        /** Forecast horizon appended to the window. */
        std::size_t horizonSteps = 9 * 288;
        /** Pushes between forecaster refits. */
        std::size_t refitIntervalSteps = 288;
        /** Hierarchical splits for the window attribution. */
        std::vector<std::size_t> splits{10, 9, 8, 12};
        /** Fleet fixed-carbon rate amortized into the window,
         *  grams per second of wall-clock time. */
        double poolGramsPerSecond = 1.0;

        /** Sliding-window size, in periods, for incremental mode;
         *  0 keeps the classic full-recompute service. */
        std::size_t incrementalWindowPeriods = 0;
        /** Samples per period in incremental mode. */
        std::size_t incrementalPeriodSamples = 12;
        /** Sub-game cache capacity in incremental mode (0 disables
         *  memoization). */
        std::size_t incrementalCacheCapacity = 64;
        /** Memo-cache blob-store backend in incremental mode. */
        cache::BackendConfig incrementalCacheBackend =
            cache::defaultBackend();
    };

    LiveIntensityService();
    explicit LiveIntensityService(const Config &config);

    /** Feed one demand sample (resource units, e.g. cores). */
    void push(double demand_sample);

    /** True once warmupSteps samples have arrived. */
    bool ready() const;

    /** Samples pushed so far. */
    std::size_t samplesSeen() const { return samplesSeen_; }

    /** Forecaster refits performed so far. */
    std::size_t refits() const { return refits_; }

    /**
     * True while the service is running on a degraded forecaster —
     * the last refit fell back to the seasonal-naive model, so the
     * projected horizon (and hence the published intensity tail) is
     * lower-fidelity. Health reporting surfaces this so consumers of
     * the live signal can tell full-model from fallback output.
     */
    bool forecastDegraded() const
    {
        return forecasterReady_ && forecaster_.degraded();
    }

    /**
     * Intensity for the current (latest) sample, grams per
     * resource-second. Requires ready().
     */
    double currentIntensity() const;

    /**
     * Projected intensity over the forecast horizon. Requires
     * ready().
     */
    trace::TimeSeries projectedIntensity() const;

    /** The full window signal (history + horizon). */
    const trace::TimeSeries &windowIntensity() const;

    const Config &config() const { return config_; }

    /** Incremental mode only: the engine's cache counters; null in
     *  classic mode. */
    const shapley::CacheStats *cacheStats() const
    {
        return core_ ? &core_->cacheStats() : nullptr;
    }

    /** Incremental mode only: the shared engine-ownership core (for
     *  health/fault reporting); null in classic mode. */
    const IncrementalSignalCore *signalCore() const
    {
        return core_.get();
    }

  private:
    void refit();
    void recompute();
    void pushIncremental(double demand_sample);

    Config config_;
    std::vector<double> history_;
    forecast::SeasonalForecaster forecaster_;
    bool forecasterReady_;
    std::size_t samplesSeen_;
    std::size_t refits_;
    std::size_t pushesSinceRefit_;
    /** Global sample index of the fit window's first sample, so
     *  predictions stay phase-aligned as the ring slides. */
    std::size_t fitStartGlobal_;
    trace::TimeSeries windowIntensity_;
    std::size_t historyLenAtCompute_;
    /** Engaged only in incremental mode: engine ownership, pool
     *  policy, and cache-fault recovery live in the shared core. */
    std::unique_ptr<IncrementalSignalCore> core_;
};

} // namespace fairco2::core

#endif // FAIRCO2_CORE_LIVESIGNAL_HH
