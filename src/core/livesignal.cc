#include "core/livesignal.hh"

#include <cassert>
#include <stdexcept>

#include "core/temporal.hh"

namespace fairco2::core
{

LiveIntensityService::LiveIntensityService()
    : LiveIntensityService(Config{})
{
}

LiveIntensityService::LiveIntensityService(const Config &config)
    : config_(config), forecasterReady_(false), samplesSeen_(0),
      refits_(0), pushesSinceRefit_(0), fitStartGlobal_(0),
      historyLenAtCompute_(0)
{
    assert(config.stepSeconds > 0.0);
    assert(config.warmupSteps > 0);
    assert(config.warmupSteps <= config.historySteps);
    assert(config.refitIntervalSteps > 0);
    assert(config.poolGramsPerSecond >= 0.0);
    if (config_.incrementalWindowPeriods > 0) {
        IncrementalSignalCore::Config core_config;
        core_config.windowPeriods =
            config_.incrementalWindowPeriods;
        core_config.periodSamples =
            config_.incrementalPeriodSamples;
        core_config.stepSeconds = config_.stepSeconds;
        if (config_.splits.size() > 1)
            core_config.innerSplits.assign(
                config_.splits.begin() + 1, config_.splits.end());
        core_config.cacheCapacity =
            config_.incrementalCacheCapacity;
        core_config.cacheBackend =
            config_.incrementalCacheBackend;
        core_config.poolGramsPerSecond =
            config_.poolGramsPerSecond;
        core_ = std::make_unique<IncrementalSignalCore>(core_config);
    } else {
        history_.reserve(config.historySteps);
    }
}

bool
LiveIntensityService::ready() const
{
    if (core_)
        return core_->ready();
    return samplesSeen_ >= config_.warmupSteps;
}

void
LiveIntensityService::refit()
{
    const trace::TimeSeries series(history_, config_.stepSeconds);
    try {
        forecaster_.fit(series);
        fitStartGlobal_ = samplesSeen_ - history_.size();
        forecasterReady_ = true;
        ++refits_;
    } catch (const std::invalid_argument &) {
        // Not enough history for the seasonal model yet; the
        // window will be attributed without a forecast extension.
        forecasterReady_ = false;
    }
}

void
LiveIntensityService::recompute()
{
    std::vector<double> window(history_);
    if (forecasterReady_ && config_.horizonSteps > 0) {
        // Predict on the forecaster's own time axis: global sample
        // g maps to (g - fitStartGlobal_ + 0.5) * step, which keeps
        // the daily/weekly phase aligned even when the ring has
        // slid since the last refit.
        for (std::size_t h = 0; h < config_.horizonSteps; ++h) {
            const double t =
                (static_cast<double>(samplesSeen_ -
                                     fitStartGlobal_ + h) +
                 0.5) *
                config_.stepSeconds;
            window.push_back(
                std::max(0.0, forecaster_.predictAt(t)));
        }
    }
    const trace::TimeSeries window_series(std::move(window),
                                          config_.stepSeconds);
    const double pool = config_.poolGramsPerSecond *
        window_series.durationSeconds();
    const TemporalShapley engine;
    auto result =
        engine.attribute(window_series, pool, config_.splits);
    windowIntensity_ = std::move(result.intensity);
    historyLenAtCompute_ = history_.size();
}

void
LiveIntensityService::pushIncremental(double demand_sample)
{
    core_->push(demand_sample);
    ++samplesSeen_;
    if (!core_->ready())
        return;
    // Publish the full window on every push: with a warm cache this
    // is one period solve at most (all other sub-games hit), so the
    // classic "recompute per push" contract stays affordable. The
    // core supplies the pool policy and recovers from cache faults.
    auto result = core_->computeWindow(core_->windowPoolGrams());
    windowIntensity_ = std::move(result.intensity);
    historyLenAtCompute_ = core_->windowSamples();
}

void
LiveIntensityService::push(double demand_sample)
{
    assert(demand_sample >= 0.0);
    if (core_) {
        pushIncremental(demand_sample);
        return;
    }
    if (history_.size() == config_.historySteps)
        history_.erase(history_.begin());
    history_.push_back(demand_sample);
    ++samplesSeen_;
    ++pushesSinceRefit_;

    if (!ready())
        return;

    if (!forecasterReady_ ||
        pushesSinceRefit_ >= config_.refitIntervalSteps) {
        refit();
        pushesSinceRefit_ = 0;
    }
    recompute();
}

double
LiveIntensityService::currentIntensity() const
{
    if (!ready() || windowIntensity_.empty())
        throw std::logic_error(
            "live signal queried before warm-up completed");
    return windowIntensity_[historyLenAtCompute_ - 1];
}

trace::TimeSeries
LiveIntensityService::projectedIntensity() const
{
    if (!ready() || windowIntensity_.empty())
        throw std::logic_error(
            "live signal queried before warm-up completed");
    return windowIntensity_.slice(historyLenAtCompute_,
                                  windowIntensity_.size());
}

const trace::TimeSeries &
LiveIntensityService::windowIntensity() const
{
    return windowIntensity_;
}

} // namespace fairco2::core
