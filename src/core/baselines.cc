#include "core/baselines.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/errors.hh"

namespace fairco2::core
{

trace::TimeSeries
rupIntensity(const trace::TimeSeries &demand, double total_grams)
{
    const double usage = demand.integral();
    const double level = usage > 0.0 ? total_grams / usage : 0.0;
    return trace::TimeSeries(
        std::vector<double>(demand.size(), level),
        demand.stepSeconds());
}

trace::TimeSeries
demandProportionalIntensity(const trace::TimeSeries &demand,
                            double total_grams)
{
    double denom = 0.0;
    for (std::size_t i = 0; i < demand.size(); ++i)
        denom += demand[i] * demand[i] * demand.stepSeconds();

    std::vector<double> intensity(demand.size(), 0.0);
    if (denom > 0.0) {
        for (std::size_t i = 0; i < demand.size(); ++i)
            intensity[i] = demand[i] * total_grams / denom;
    }
    return trace::TimeSeries(std::move(intensity),
                             demand.stepSeconds());
}

double
attributeUsage(const trace::TimeSeries &intensity,
               const trace::TimeSeries &usage)
{
    if (intensity.size() != usage.size() ||
        intensity.stepSeconds() != usage.stepSeconds()) {
        throw std::invalid_argument(
            "intensity/usage series shape mismatch");
    }
    double grams = 0.0;
    for (std::size_t i = 0; i < usage.size(); ++i) {
        // Billing must never absorb a poisoned sample silently.
        if (!std::isfinite(intensity[i]) ||
            !std::isfinite(usage[i]))
            throw FatalDataError(
                "billing: non-finite intensity/usage at sample " +
                std::to_string(i));
        grams += intensity[i] * usage[i] * usage.stepSeconds();
    }
    return grams;
}

} // namespace fairco2::core
