/**
 * @file
 * Write-ahead log for the live-signal server's arrival ticks.
 *
 * The serve event loop appends exactly one WalTickRecord per arrival
 * tick — the admitted telemetry batches, the batches deferred to the
 * next period, and the admission/governor outcome of the tick — in
 * one buffered write flushed before the tick's handler returns
 * (group commit per tick). A server killed at any tick can therefore
 * be rebuilt by re-driving the event loop from the log: the record
 * stream plus the deterministic tenant population reproduces shard
 * engines, seqlock snapshots, token buckets, and governor state bit
 * for bit (see server::Replica::applyArrivalsReplay).
 *
 * ## On-disk layout
 *
 * The log is a directory of fixed-capacity segments:
 *
 *     wal-000001.seg   sealed (immutable, complete)
 *     wal-000002.seg
 *     wal-000003.open  the active tail (append-only)
 *
 * Every segment starts with a header (magic "FC2W", format version,
 * config hash, first record index); records follow back to back:
 *
 *     raw_bytes    u32   serialized record size before the codec
 *     stored_bytes u32   bytes on disk (== raw_bytes for identity)
 *     codec        u8    cache::Codec id (identity | lz)
 *     payload      stored_bytes
 *     checksum     u64   FNV-1a over the frame header + payload
 *
 * When a segment reaches its record capacity it is *sealed*: the
 * file is flushed and atomically renamed `.open` -> `.seg` (the same
 * tmp+rename discipline the checkpoint store uses), and the next
 * `.open` segment is created. Sealing is the replication unit — the
 * hot standby consumes sealed segments only, until failover.
 *
 * ## Integrity contract
 *
 * Sealed segments must parse completely: any truncation, bad magic,
 * config-hash mismatch, or checksum failure raises WalIntegrityError
 * — sealed history is never silently shortened. The `.open` tail is
 * different: a kill -9 can tear its last record, so the loader keeps
 * the longest valid record prefix and *drops* the tail from the
 * first bad checksum on, reporting a named diagnostic. Either way a
 * flipped byte surfaces as an error or a dropped suffix — never as a
 * wrong replayed value.
 */

#ifndef FAIRCO2_DURABILITY_WAL_HH
#define FAIRCO2_DURABILITY_WAL_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "cache/backend.hh"
#include "common/errors.hh"

namespace fairco2::durability
{

/** Unusable WAL state (corrupt sealed segment, mismatched config,
 *  malformed directory); front ends exit 2. */
class WalIntegrityError : public FatalDataError
{
  public:
    explicit WalIntegrityError(const std::string &message)
        : FatalDataError(message)
    {
    }
};

/** WAL segment format version. Version 2 added the running
 *  surrogate accept/reject totals to every tick record. */
constexpr std::uint32_t kWalVersion = 2;

/** One telemetry batch as logged: mirrors server::BatchRef without
 *  depending on the server layer. */
struct WalBatch
{
    std::uint64_t tenant = 0;
    std::uint64_t period = 0;
    std::uint32_t coveredPeriods = 1;
    std::uint8_t deferred = 0;

    bool
    operator==(const WalBatch &other) const
    {
        return tenant == other.tenant && period == other.period &&
            coveredPeriods == other.coveredPeriods &&
            deferred == other.deferred;
    }
};

/** Everything one arrival tick decided, in decision order. */
struct WalTickRecord
{
    std::uint64_t period = 0;
    /** Admitted batches, in admission order. */
    std::vector<WalBatch> admitted;
    /** Batches deferred to the next period's arrival tick. */
    std::vector<WalBatch> deferredOut;
    /** This tick's admission deltas (offers that reached the token
     *  buckets; shed batches never do). */
    std::uint64_t offeredDelta = 0;
    std::uint64_t deferredDelta = 0;
    std::uint64_t rejectedDelta = 0;
    std::uint64_t shedDelta = 0;
    /** Cross-checks: running admission totals, per-class bucket
     *  tokens, and the governor level *after* the tick. Replay
     *  verifies these and raises WalIntegrityError on divergence. */
    std::uint64_t totalOffered = 0;
    std::uint64_t totalAdmitted = 0;
    std::uint64_t totalDeferred = 0;
    std::uint64_t totalRejected = 0;
    std::uint64_t bucketTokens[3] = {0, 0, 0};
    std::uint32_t overloadLevel = 0;
    /** Running fleet-engine surrogate decision totals *after* the
     *  tick. Replay re-drives the same guardrail evaluations and
     *  cross-checks these, so `--recover` provably reproduced every
     *  accept/reject decision (zeros when `--surrogate` is off). */
    std::uint64_t surrogateAccepts = 0;
    std::uint64_t surrogateRejects = 0;

    bool operator==(const WalTickRecord &other) const;
};

/** Serialize @p record (before any codec). */
std::vector<std::uint8_t> encodeRecord(const WalTickRecord &record);

/** Parse a serialized record; throws WalIntegrityError on malformed
 *  bytes (the checksum layer makes this unreachable for torn writes,
 *  but flipped bytes that survive framing land here). */
WalTickRecord decodeRecord(const std::vector<std::uint8_t> &bytes);

/** What loading a WAL directory produced. */
struct WalLoadResult
{
    std::vector<WalTickRecord> records;
    std::uint64_t sealedSegments = 0;
    std::uint64_t tailRecords = 0;  //!< valid records in the .open tail
    bool droppedTail = false;       //!< torn/corrupt tail suffix dropped
    std::string tailDiagnostic;     //!< names the segment + record
    /** Index the next segment should use (the tail's index when a
     *  tail exists, else one past the last sealed segment). */
    std::uint64_t nextSegmentIndex = 1;
};

/**
 * Load every record from @p dir: sealed segments in index order,
 * then the `.open` tail. Sealed-segment damage throws
 * WalIntegrityError; tail damage truncates at the first bad record
 * and reports the drop in the result. An empty directory returns
 * zero records.
 */
WalLoadResult loadWal(const std::string &dir,
                      std::uint64_t config_hash);

/** Load one sealed segment (standby shipping path). Throws
 *  WalIntegrityError on any damage. */
std::vector<WalTickRecord> loadSealedSegment(const std::string &dir,
                                             std::uint64_t index,
                                             std::uint64_t config_hash);

/** Path of segment @p index inside @p dir ("wal-%06llu" + suffix). */
std::string segmentPath(const std::string &dir, std::uint64_t index,
                        bool sealed);

/**
 * Preflight a `--wal-dir` value: create the directory when missing,
 * then probe it for writability. Returns an empty string when
 * usable, else a human-readable diagnostic (front ends print it and
 * exit 2 before the event loop starts).
 */
std::string walDirError(const std::string &dir);

/** Group-commit segment writer. Not thread-safe by design — appends
 *  happen inside the single-threaded event loop's arrival tick. */
class WalWriter
{
  public:
    struct Options
    {
        std::string dir;
        std::uint64_t configHash = 0;
        cache::Codec codec = cache::Codec::Identity;
        /** Records per segment before the seal + rotate. */
        std::uint64_t segmentRecords = 16;
        /** First segment index to write (recovery adoption). */
        std::uint64_t firstSegmentIndex = 1;
        /** Global index of the first record this writer appends
         *  (recovery adoption; 0 for a fresh log). */
        std::uint64_t firstRecordIndex = 0;
        /** Called after a segment seals (standby shipping). */
        std::function<void(std::uint64_t index)> onSeal;
    };

    explicit WalWriter(const Options &options);
    ~WalWriter();

    WalWriter(const WalWriter &) = delete;
    WalWriter &operator=(const WalWriter &) = delete;

    /**
     * Rewrite the adopted tail: atomically replaces the `.open`
     * segment with @p records (tmp + rename), so recovery preserves
     * the valid tail prefix before new appends continue. Call before
     * the first append().
     */
    void adoptTail(const std::vector<WalTickRecord> &records);

    /** Append one tick's record and flush (the group commit). Seals
     *  and rotates when the segment reaches capacity. */
    void append(const WalTickRecord &record);

    /**
     * Seal the current tail segment (flush + atomic rename), even
     * when short — the clean-shutdown path. Idempotent; a later
     * append() starts the next segment.
     */
    void seal();

    /** Test hook: write half of @p record's frame and flush, leaving
     *  a torn tail exactly as a kill -9 mid-write would. */
    void appendTorn(const WalTickRecord &record);

    std::uint64_t recordsAppended() const { return records_; }
    std::uint64_t segmentsSealed() const { return sealed_; }
    /** Serialized record bytes before the codec. */
    std::uint64_t rawBytes() const { return rawBytes_; }
    /** Frame bytes actually written (headers + stored payloads). */
    std::uint64_t storedBytes() const { return storedBytes_; }

  private:
    void openSegment();
    void writeFrame(const WalTickRecord &record, bool torn);

    Options options_;
    std::FILE *file_ = nullptr;
    std::uint64_t segmentIndex_ = 0;   //!< current open segment
    std::uint64_t segmentRecords_ = 0; //!< records in it so far
    std::uint64_t records_ = 0;
    std::uint64_t sealed_ = 0;
    std::uint64_t rawBytes_ = 0;
    std::uint64_t storedBytes_ = 0;
};

/** Anti-entropy scrub digests: FNV-1a over the in-window per-period
 *  unit sums (fleet and per shard) plus the closed-period count. */
struct WindowDigests
{
    std::uint64_t fleet = 0;
    std::vector<std::uint64_t> shard;

    bool
    operator==(const WindowDigests &other) const
    {
        return fleet == other.fleet && shard == other.shard;
    }
};

/**
 * Re-derive the window digests purely from WAL records: accumulate
 * per-period unit sums from each admitted batch's covered periods
 * via @p unitsOf(tenant, period) — the caller binds the tenant
 * population's integer materialization — route shard sums by
 * `tenant % shards`, close periods up to
 * `lastPeriod - watermark`, and digest the last @p windowPeriods
 * closed sums. Matches server::Replica::windowDigests() on an
 * uncorrupted run by construction.
 */
WindowDigests deriveWindowDigests(
    const std::vector<WalTickRecord> &records, std::size_t shards,
    std::size_t window_periods, std::uint64_t watermark,
    const std::function<std::uint64_t(std::uint64_t tenant,
                                      std::uint64_t period)> &unitsOf);

/** The digest formula both sides share: FNV-1a over @p closed_periods
 *  then the window's per-period sums, oldest first. */
std::uint64_t windowSumDigest(std::uint64_t closed_periods,
                              const std::vector<std::uint64_t> &sums);

} // namespace fairco2::durability

#endif // FAIRCO2_DURABILITY_WAL_HH
