#include "durability/wal.hh"

#include <cerrno>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <system_error>

#include "cache/compr_api.hh"
#include "common/obs.hh"
#include "resilience/checkpoint.hh"

namespace fairco2::durability
{

namespace
{

namespace fs = std::filesystem;
using resilience::fnv1a64;

constexpr char kMagic[4] = {'F', 'C', '2', 'W'};
/** Segment header: magic + version + config hash + first record. */
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;
/** Frame header: raw_bytes + stored_bytes + codec. */
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 1;
/** A record frame can never legitimately exceed this — anything
 *  larger is framing damage, not data. */
constexpr std::uint32_t kMaxRecordBytes = 1u << 28;

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/** Bounds-checked little-endian reads over a byte span. */
struct ByteReader
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;

    bool
    need(std::size_t n) const
    {
        return pos + n <= size;
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            throw WalIntegrityError("wal record truncated mid-field");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            throw WalIntegrityError("wal record truncated mid-field");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
        return v;
    }

    std::uint8_t
    u8()
    {
        if (!need(1))
            throw WalIntegrityError("wal record truncated mid-field");
        return data[pos++];
    }
};

void
putBatches(std::vector<std::uint8_t> &out,
           const std::vector<WalBatch> &batches)
{
    putU32(out, static_cast<std::uint32_t>(batches.size()));
    for (const WalBatch &b : batches) {
        putU64(out, b.tenant);
        putU64(out, b.period);
        putU32(out, b.coveredPeriods);
        out.push_back(b.deferred);
    }
}

std::vector<WalBatch>
getBatches(ByteReader &in)
{
    const std::uint32_t n = in.u32();
    if (n > kMaxRecordBytes / 21)
        throw WalIntegrityError("wal record batch count " +
                                std::to_string(n) +
                                " is implausible");
    std::vector<WalBatch> batches(n);
    for (WalBatch &b : batches) {
        b.tenant = in.u64();
        b.period = in.u64();
        b.coveredPeriods = in.u32();
        b.deferred = in.u8();
    }
    return batches;
}

/** Codec dispatch over the cache compressor plug-ins. */
std::vector<std::uint8_t>
encodeBlob(cache::Codec codec, const std::vector<std::uint8_t> &raw)
{
    switch (codec) {
    case cache::Codec::Lz:
        return cache::LzCompr::compress(raw.data(), raw.size());
    case cache::Codec::Identity:
    default:
        return raw;
    }
}

std::vector<std::uint8_t>
decodeBlob(cache::Codec codec, const std::uint8_t *stored,
           std::size_t stored_size, std::size_t raw_size)
{
    std::vector<std::uint8_t> raw(raw_size);
    switch (codec) {
    case cache::Codec::Lz:
        cache::LzCompr::decompress(stored, stored_size, raw.data(),
                                   raw_size);
        break;
    case cache::Codec::Identity:
    default:
        cache::IdentityCompr::decompress(stored, stored_size,
                                         raw.data(), raw_size);
        break;
    }
    return raw;
}

std::vector<std::uint8_t>
headerBytes(std::uint64_t config_hash, std::uint64_t first_record)
{
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderBytes);
    out.insert(out.end(), kMagic, kMagic + 4);
    putU32(out, kWalVersion);
    putU64(out, config_hash);
    putU64(out, first_record);
    return out;
}

/** Serialize one frame (header + payload + checksum). */
std::vector<std::uint8_t>
frameBytes(const WalTickRecord &record, cache::Codec codec,
           std::uint64_t *raw_bytes)
{
    const std::vector<std::uint8_t> raw = encodeRecord(record);
    std::vector<std::uint8_t> stored = encodeBlob(codec, raw);
    // The codec is a capacity optimization, never an integrity
    // risk: when compression does not pay, store raw.
    cache::Codec used = codec;
    if (stored.size() >= raw.size()) {
        stored = raw;
        used = cache::Codec::Identity;
    }
    if (raw_bytes)
        *raw_bytes = raw.size();

    std::vector<std::uint8_t> frame;
    frame.reserve(kFrameHeaderBytes + stored.size() + 8);
    putU32(frame, static_cast<std::uint32_t>(raw.size()));
    putU32(frame, static_cast<std::uint32_t>(stored.size()));
    frame.push_back(static_cast<std::uint8_t>(used));
    frame.insert(frame.end(), stored.begin(), stored.end());
    putU64(frame, fnv1a64(frame.data(), frame.size()));
    return frame;
}

/** Outcome of parsing one segment's record region. */
struct SegmentParse
{
    std::vector<WalTickRecord> records;
    /** Set when the record region ended early (torn frame); names
     *  the damage for the tail-drop diagnostic. */
    std::string damage;
    std::size_t damageOffset = 0;
};

/**
 * Parse records from @p bytes starting after the header. Stops at
 * the first damaged frame and reports it; the caller decides whether
 * that is an error (sealed) or a drop point (tail).
 */
SegmentParse
parseRecords(const std::vector<std::uint8_t> &bytes,
             std::uint64_t first_record)
{
    SegmentParse out;
    std::size_t pos = kHeaderBytes;
    while (pos < bytes.size()) {
        const std::size_t frame_start = pos;
        const auto damaged = [&](const std::string &why) {
            out.damage = "record " +
                std::to_string(first_record + out.records.size()) +
                " at offset " + std::to_string(frame_start) + ": " +
                why;
            out.damageOffset = frame_start;
        };
        if (bytes.size() - pos < kFrameHeaderBytes) {
            damaged("truncated frame header");
            return out;
        }
        ByteReader head{bytes.data(), bytes.size(), pos};
        const std::uint32_t raw_size = head.u32();
        const std::uint32_t stored_size = head.u32();
        const std::uint8_t codec_id = head.u8();
        if (raw_size > kMaxRecordBytes ||
            stored_size > kMaxRecordBytes) {
            damaged("implausible frame size");
            return out;
        }
        if (codec_id > static_cast<std::uint8_t>(cache::Codec::Lz)) {
            damaged("unknown codec id " + std::to_string(codec_id));
            return out;
        }
        const std::size_t frame_size =
            kFrameHeaderBytes + stored_size + 8;
        if (bytes.size() - frame_start < frame_size) {
            damaged("truncated frame payload");
            return out;
        }
        const std::uint64_t want = fnv1a64(
            bytes.data() + frame_start, frame_size - 8);
        ByteReader sum{bytes.data(), bytes.size(),
                       frame_start + frame_size - 8};
        if (sum.u64() != want) {
            damaged("checksum mismatch");
            return out;
        }
        std::vector<std::uint8_t> raw;
        try {
            raw = decodeBlob(static_cast<cache::Codec>(codec_id),
                             bytes.data() + frame_start +
                                 kFrameHeaderBytes,
                             stored_size, raw_size);
            out.records.push_back(decodeRecord(raw));
        } catch (const std::exception &error) {
            // Checksummed-but-undecodable means real corruption that
            // happened before the checksum was computed — surface it
            // the same way so it is never replayed as data.
            damaged(std::string("undecodable payload: ") +
                    error.what());
            return out;
        }
        pos = frame_start + frame_size;
    }
    return out;
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw WalIntegrityError("cannot open wal segment '" + path +
                                "'");
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

/** Validate a segment header; throws naming the defect. */
std::uint64_t
checkHeader(const std::vector<std::uint8_t> &bytes,
            const std::string &path, std::uint64_t config_hash)
{
    if (bytes.size() < kHeaderBytes)
        throw WalIntegrityError("wal segment '" + path +
                                "' is shorter than its header");
    if (std::memcmp(bytes.data(), kMagic, 4) != 0)
        throw WalIntegrityError("wal segment '" + path +
                                "' has bad magic");
    ByteReader in{bytes.data(), bytes.size(), 4};
    const std::uint32_t version = in.u32();
    if (version != kWalVersion)
        throw WalIntegrityError(
            "wal segment '" + path + "' has version " +
            std::to_string(version) + ", expected " +
            std::to_string(kWalVersion));
    const std::uint64_t hash = in.u64();
    if (hash != config_hash)
        throw WalIntegrityError(
            "wal segment '" + path +
            "' was written by a different server configuration "
            "(config hash mismatch)");
    return in.u64(); // first record index
}

} // namespace

bool
WalTickRecord::operator==(const WalTickRecord &other) const
{
    return period == other.period && admitted == other.admitted &&
        deferredOut == other.deferredOut &&
        offeredDelta == other.offeredDelta &&
        deferredDelta == other.deferredDelta &&
        rejectedDelta == other.rejectedDelta &&
        shedDelta == other.shedDelta &&
        totalOffered == other.totalOffered &&
        totalAdmitted == other.totalAdmitted &&
        totalDeferred == other.totalDeferred &&
        totalRejected == other.totalRejected &&
        bucketTokens[0] == other.bucketTokens[0] &&
        bucketTokens[1] == other.bucketTokens[1] &&
        bucketTokens[2] == other.bucketTokens[2] &&
        overloadLevel == other.overloadLevel &&
        surrogateAccepts == other.surrogateAccepts &&
        surrogateRejects == other.surrogateRejects;
}

std::vector<std::uint8_t>
encodeRecord(const WalTickRecord &record)
{
    std::vector<std::uint8_t> out;
    putU64(out, record.period);
    putBatches(out, record.admitted);
    putBatches(out, record.deferredOut);
    putU64(out, record.offeredDelta);
    putU64(out, record.deferredDelta);
    putU64(out, record.rejectedDelta);
    putU64(out, record.shedDelta);
    putU64(out, record.totalOffered);
    putU64(out, record.totalAdmitted);
    putU64(out, record.totalDeferred);
    putU64(out, record.totalRejected);
    for (std::uint64_t tokens : record.bucketTokens)
        putU64(out, tokens);
    putU32(out, record.overloadLevel);
    putU64(out, record.surrogateAccepts);
    putU64(out, record.surrogateRejects);
    return out;
}

WalTickRecord
decodeRecord(const std::vector<std::uint8_t> &bytes)
{
    ByteReader in{bytes.data(), bytes.size(), 0};
    WalTickRecord record;
    record.period = in.u64();
    record.admitted = getBatches(in);
    record.deferredOut = getBatches(in);
    record.offeredDelta = in.u64();
    record.deferredDelta = in.u64();
    record.rejectedDelta = in.u64();
    record.shedDelta = in.u64();
    record.totalOffered = in.u64();
    record.totalAdmitted = in.u64();
    record.totalDeferred = in.u64();
    record.totalRejected = in.u64();
    for (std::uint64_t &tokens : record.bucketTokens)
        tokens = in.u64();
    record.overloadLevel = in.u32();
    record.surrogateAccepts = in.u64();
    record.surrogateRejects = in.u64();
    if (in.pos != bytes.size())
        throw WalIntegrityError(
            "wal record has " +
            std::to_string(bytes.size() - in.pos) +
            " trailing bytes");
    return record;
}

std::string
segmentPath(const std::string &dir, std::uint64_t index, bool sealed)
{
    char name[32];
    std::snprintf(name, sizeof(name), "wal-%06llu.%s",
                  static_cast<unsigned long long>(index),
                  sealed ? "seg" : "open");
    return (fs::path(dir) / name).string();
}

std::string
walDirError(const std::string &dir)
{
    std::error_code ec;
    const fs::file_status status = fs::status(dir, ec);
    if (fs::exists(status) && !fs::is_directory(status))
        return "'" + dir + "' exists and is not a directory";
    if (!fs::exists(status)) {
        fs::create_directories(dir, ec);
        if (ec)
            return "cannot create directory '" + dir +
                "': " + ec.message();
    }
    // Writability probe, same discipline as requireWritableFlagPath:
    // create-then-remove, never touching real segment names.
    const std::string probe =
        (fs::path(dir) / ".wal-probe.tmp").string();
    {
        std::ofstream out(probe, std::ios::trunc);
        if (!out.good())
            return "directory '" + dir + "' is not writable";
    }
    fs::remove(probe, ec);
    return "";
}

WalLoadResult
loadWal(const std::string &dir, std::uint64_t config_hash)
{
    if (!fs::is_directory(dir))
        throw WalIntegrityError("wal directory '" + dir +
                                "' does not exist");

    std::map<std::uint64_t, std::string> sealed;
    std::map<std::uint64_t, std::string> open;
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("wal-", 0) != 0)
            continue;
        const auto dot = name.find('.');
        if (dot == std::string::npos)
            continue;
        const std::string suffix = name.substr(dot + 1);
        std::uint64_t index = 0;
        try {
            index = std::stoull(name.substr(4, dot - 4));
        } catch (const std::exception &) {
            continue;
        }
        if (suffix == "seg")
            sealed[index] = entry.path().string();
        else if (suffix == "open")
            open[index] = entry.path().string();
    }
    if (open.size() > 1)
        throw WalIntegrityError(
            "wal directory '" + dir + "' has " +
            std::to_string(open.size()) +
            " open tail segments; expected at most one");

    WalLoadResult result;
    std::uint64_t expect_index = 1;
    for (const auto &[index, path] : sealed) {
        if (index != expect_index)
            throw WalIntegrityError(
                "wal directory '" + dir + "' skips from segment " +
                std::to_string(expect_index - 1) + " to " +
                std::to_string(index) + " (missing sealed segment)");
        const auto bytes = readFileBytes(path);
        const std::uint64_t first =
            checkHeader(bytes, path, config_hash);
        if (first != result.records.size())
            throw WalIntegrityError(
                "wal segment '" + path + "' starts at record " +
                std::to_string(first) + ", expected " +
                std::to_string(result.records.size()));
        SegmentParse parse = parseRecords(bytes, first);
        if (!parse.damage.empty())
            throw WalIntegrityError("sealed wal segment '" + path +
                                    "' is damaged: " + parse.damage);
        if (parse.records.empty())
            throw WalIntegrityError("sealed wal segment '" + path +
                                    "' holds no records");
        for (auto &record : parse.records)
            result.records.push_back(std::move(record));
        ++result.sealedSegments;
        ++expect_index;
    }

    result.nextSegmentIndex = expect_index;
    if (!open.empty()) {
        const auto &[index, path] = *open.begin();
        if (index != expect_index)
            throw WalIntegrityError(
                "wal tail segment '" + path + "' has index " +
                std::to_string(index) + ", expected " +
                std::to_string(expect_index));
        const auto bytes = readFileBytes(path);
        const std::uint64_t first =
            checkHeader(bytes, path, config_hash);
        if (first != result.records.size())
            throw WalIntegrityError(
                "wal tail segment '" + path +
                "' starts at record " + std::to_string(first) +
                ", expected " +
                std::to_string(result.records.size()));
        SegmentParse parse = parseRecords(bytes, first);
        // The tail is the only place damage is survivable: keep the
        // valid prefix, drop the torn suffix, and say so.
        if (!parse.damage.empty()) {
            result.droppedTail = true;
            result.tailDiagnostic = "dropped torn wal tail of '" +
                path + "' from " + parse.damage;
        }
        result.tailRecords = parse.records.size();
        for (auto &record : parse.records)
            result.records.push_back(std::move(record));
    }
    return result;
}

std::vector<WalTickRecord>
loadSealedSegment(const std::string &dir, std::uint64_t index,
                  std::uint64_t config_hash)
{
    const std::string path = segmentPath(dir, index, true);
    const auto bytes = readFileBytes(path);
    const std::uint64_t first = checkHeader(bytes, path, config_hash);
    SegmentParse parse = parseRecords(bytes, first);
    if (!parse.damage.empty())
        throw WalIntegrityError("sealed wal segment '" + path +
                                "' is damaged: " + parse.damage);
    return std::move(parse.records);
}

WalWriter::WalWriter(const Options &options) : options_(options)
{
    if (options_.dir.empty())
        throw std::invalid_argument("WalWriter: empty directory");
    if (options_.segmentRecords == 0)
        throw std::invalid_argument(
            "WalWriter: segmentRecords must be >= 1");
    segmentIndex_ = options_.firstSegmentIndex;
    records_ = options_.firstRecordIndex;
    sealed_ = options_.firstSegmentIndex - 1;
}

WalWriter::~WalWriter()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
WalWriter::openSegment()
{
    const std::string path =
        segmentPath(options_.dir, segmentIndex_, false);
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        throw WalIntegrityError("cannot create wal segment '" +
                                path + "': " +
                                std::strerror(errno));
    const auto header = headerBytes(options_.configHash, records_);
    std::fwrite(header.data(), 1, header.size(), file_);
    segmentRecords_ = 0;
}

void
WalWriter::writeFrame(const WalTickRecord &record, bool torn)
{
    if (file_ == nullptr)
        openSegment();
    std::uint64_t raw = 0;
    const auto frame = frameBytes(record, options_.codec, &raw);
    const std::size_t n = torn ? frame.size() / 2 : frame.size();
    std::fwrite(frame.data(), 1, n, file_);
    // The group commit: one flush per arrival tick, so a kill after
    // this point can only lose ticks that never returned.
    std::fflush(file_);
    if (torn)
        return;
    rawBytes_ += raw;
    storedBytes_ += frame.size();
    ++records_;
    ++segmentRecords_;
    FAIRCO2_COUNT("durability.wal.appends", 1);
    if (segmentRecords_ >= options_.segmentRecords)
        seal();
}

void
WalWriter::append(const WalTickRecord &record)
{
    writeFrame(record, false);
}

void
WalWriter::appendTorn(const WalTickRecord &record)
{
    writeFrame(record, true);
}

void
WalWriter::seal()
{
    if (file_ == nullptr || segmentRecords_ == 0)
        return;
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
    const std::string open_path =
        segmentPath(options_.dir, segmentIndex_, false);
    const std::string sealed_path =
        segmentPath(options_.dir, segmentIndex_, true);
    // The atomic seal: readers only ever see a complete .seg.
    std::error_code ec;
    fs::rename(open_path, sealed_path, ec);
    if (ec)
        throw WalIntegrityError("cannot seal wal segment '" +
                                open_path + "': " + ec.message());
    const std::uint64_t index = segmentIndex_;
    ++segmentIndex_;
    ++sealed_;
    FAIRCO2_COUNT("durability.wal.seals", 1);
    if (options_.onSeal)
        options_.onSeal(index);
}

void
WalWriter::adoptTail(const std::vector<WalTickRecord> &records)
{
    if (file_ != nullptr || segmentRecords_ != 0 ||
        records_ != options_.firstRecordIndex)
        throw std::logic_error(
            "WalWriter::adoptTail: call before the first append");
    const std::string open_path =
        segmentPath(options_.dir, segmentIndex_, false);
    const std::string tmp_path = open_path + ".tmp";
    std::FILE *tmp = std::fopen(tmp_path.c_str(), "wb");
    if (tmp == nullptr)
        throw WalIntegrityError("cannot rewrite wal tail '" +
                                open_path + "': " +
                                std::strerror(errno));
    const auto header = headerBytes(options_.configHash, records_);
    std::fwrite(header.data(), 1, header.size(), tmp);
    for (const WalTickRecord &record : records) {
        std::uint64_t raw = 0;
        const auto frame = frameBytes(record, options_.codec, &raw);
        std::fwrite(frame.data(), 1, frame.size(), tmp);
        rawBytes_ += raw;
        storedBytes_ += frame.size();
    }
    std::fflush(tmp);
    std::fclose(tmp);
    std::error_code ec;
    fs::rename(tmp_path, open_path, ec);
    if (ec)
        throw WalIntegrityError("cannot rewrite wal tail '" +
                                open_path + "': " + ec.message());
    records_ += records.size();
    segmentRecords_ = records.size();
    file_ = std::fopen(open_path.c_str(), "ab");
    if (file_ == nullptr)
        throw WalIntegrityError("cannot reopen wal tail '" +
                                open_path + "': " +
                                std::strerror(errno));
    // A fully repopulated tail seals exactly as a live append would
    // have, so recovery converges on the uninterrupted layout.
    if (segmentRecords_ >= options_.segmentRecords)
        seal();
}

std::uint64_t
windowSumDigest(std::uint64_t closed_periods,
                const std::vector<std::uint64_t> &sums)
{
    std::uint64_t hash =
        fnv1a64(&closed_periods, sizeof(closed_periods));
    for (std::uint64_t sum : sums)
        hash = fnv1a64(&sum, sizeof(sum), hash);
    return hash;
}

WindowDigests
deriveWindowDigests(
    const std::vector<WalTickRecord> &records, std::size_t shards,
    std::size_t window_periods, std::uint64_t watermark,
    const std::function<std::uint64_t(std::uint64_t tenant,
                                      std::uint64_t period)> &unitsOf)
{
    WindowDigests out;
    std::uint64_t closed = 0;
    if (!records.empty()) {
        const std::uint64_t last_period = records.back().period;
        if (last_period + 1 > watermark)
            closed = last_period + 1 - watermark;
    }
    const std::uint64_t window =
        std::min<std::uint64_t>(window_periods, closed);
    const std::uint64_t first_closed = closed - window;

    // Accumulate per-period unit sums for the in-window closed
    // periods only — the exact quantities the live replicas keep in
    // their windowUnitSums deques.
    std::vector<std::uint64_t> fleet(window, 0);
    std::vector<std::vector<std::uint64_t>> shard_sums(
        shards, std::vector<std::uint64_t>(window, 0));
    for (const WalTickRecord &record : records) {
        for (const WalBatch &batch : record.admitted) {
            for (std::uint32_t p = 0; p < batch.coveredPeriods;
                 ++p) {
                const std::uint64_t covered =
                    batch.period - batch.coveredPeriods + p;
                if (covered < first_closed ||
                    covered >= first_closed + window)
                    continue;
                const std::uint64_t units =
                    unitsOf(batch.tenant, covered);
                const std::uint64_t slot = covered - first_closed;
                fleet[slot] += units;
                shard_sums[batch.tenant % shards][slot] += units;
            }
        }
    }
    out.fleet = windowSumDigest(closed, fleet);
    out.shard.assign(shards, 0);
    for (std::size_t s = 0; s < shards; ++s)
        out.shard[s] = windowSumDigest(closed, shard_sums[s]);
    return out;
}

} // namespace fairco2::durability
