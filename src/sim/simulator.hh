/**
 * @file
 * Event-driven cluster simulation: VM arrivals and departures drive
 * placement, and the simulator extracts exactly the telemetry
 * Fair-CO2 consumes — the aggregate demand series, per-VM usage,
 * and peak provisioning.
 */

#ifndef FAIRCO2_SIM_SIMULATOR_HH
#define FAIRCO2_SIM_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "resilience/faultplan.hh"
#include "sim/cluster.hh"
#include "sim/vm.hh"
#include "trace/timeseries.hh"

namespace fairco2::sim
{

/** What happened to one VM during the simulation. */
struct VmRecord
{
    VmSpec vm;
    std::size_t nodeIndex = 0;
    /** Departure clamped to the simulation horizon. */
    double endSeconds = 0.0;
    /** True when a fault plan cut this VM short. */
    bool truncatedByFault = false;

    /** Core-seconds actually held within the horizon. */
    double coreSeconds() const
    {
        return vm.cores * (endSeconds - vm.arrivalSeconds);
    }
};

/** Simulation outputs. */
struct SimulationResult
{
    /** Aggregate cores in use, sampled every step. */
    trace::TimeSeries coreDemand;
    /** Aggregate DRAM in use, GB, sampled every step. */
    trace::TimeSeries memoryDemand;
    std::vector<VmRecord> records;
    std::size_t peakNodesProvisioned = 0;
    std::size_t peakNodesInUse = 0;
    double peakCores = 0.0;
    /** VMs cut short by an injected preemption. */
    std::size_t preemptedVms = 0;
    /** VMs cut short by an injected node failure. */
    std::size_t nodeFailureEvictions = 0;

    /**
     * Usage series (cores held per sample step) for one record,
     * aligned with coreDemand — the per-VM input to attribution.
     */
    trace::TimeSeries usageSeries(const VmRecord &record) const;
};

/** Event-driven simulator over a fixed horizon. */
class ClusterSimulator
{
  public:
    /**
     * @param step_seconds telemetry sampling period (the paper's
     *        signals are 5-minute).
     */
    explicit ClusterSimulator(double step_seconds = 300.0);

    /**
     * Run the full arrival/departure schedule on @p cluster.
     * @p vms must be sorted by arrival time (the generator's
     * output order). VMs alive at the horizon are clamped.
     *
     * An active @p fault_plan injects node failures (every VM placed
     * on the node before its deterministic failure time is evicted
     * then; VMs arriving after it hold zero residency) and VM
     * preemptions (the VM keeps only its plan-drawn fraction of its
     * lifetime). Decisions are pure per node/VM id, so fault patterns
     * are bit-identical for any `--threads N`.
     */
    SimulationResult run(const std::vector<VmSpec> &vms,
                         double horizon_seconds, Cluster &cluster,
                         const resilience::FaultPlan *fault_plan =
                             nullptr) const;

  private:
    double stepSeconds_;
};

} // namespace fairco2::sim

#endif // FAIRCO2_SIM_SIMULATOR_HH
