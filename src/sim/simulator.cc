#include "sim/simulator.hh"

#include <algorithm>
#include <cassert>
#include <queue>

#include "common/obs.hh"

namespace fairco2::sim
{

trace::TimeSeries
SimulationResult::usageSeries(const VmRecord &record) const
{
    std::vector<double> usage(coreDemand.size(), 0.0);
    const double step = coreDemand.stepSeconds();
    for (std::size_t i = 0; i < usage.size(); ++i) {
        // Sampled occupancy, consistent with how coreDemand is
        // sampled at step boundaries.
        const double t = static_cast<double>(i) * step;
        if (t >= record.vm.arrivalSeconds && t < record.endSeconds)
            usage[i] = record.vm.cores;
    }
    return trace::TimeSeries(std::move(usage), step);
}

ClusterSimulator::ClusterSimulator(double step_seconds)
    : stepSeconds_(step_seconds)
{
    assert(step_seconds > 0.0);
}

SimulationResult
ClusterSimulator::run(const std::vector<VmSpec> &vms,
                      double horizon_seconds, Cluster &cluster,
                      const resilience::FaultPlan *fault_plan) const
{
    assert(horizon_seconds > 0.0);

    FAIRCO2_SPAN("sim.run");
    FAIRCO2_TIME_NS("sim.run_ns");

    SimulationResult result;
    result.records.reserve(vms.size());

    // Departure priority queue: (time, record index).
    using Departure = std::pair<double, std::size_t>;
    std::priority_queue<Departure, std::vector<Departure>,
                        std::greater<>>
        departures;

    const auto steps = static_cast<std::size_t>(
        horizon_seconds / stepSeconds_);
    std::vector<double> core_demand(steps, 0.0);
    std::vector<double> memory_demand(steps, 0.0);

    std::size_t next_arrival = 0;
    double prev_arrival_time = 0.0;
    std::size_t sample = 0;

    // Sample every boundary strictly before `time` with the current
    // state; a boundary coinciding with an event is sampled after
    // that event, matching usageSeries' "arrival <= t < departure"
    // occupancy convention.
    auto sample_until = [&](double time) {
        while (sample < steps &&
               static_cast<double>(sample) * stepSeconds_ < time) {
            core_demand[sample] = cluster.coresInUse();
            memory_demand[sample] = cluster.memoryInUseGb();
            ++sample;
            FAIRCO2_COUNT("sim.demand_samples", 1);
        }
    };

    auto process_departures_until = [&](double time) {
        while (!departures.empty() &&
               departures.top().first <= time) {
            const auto [when, idx] = departures.top();
            departures.pop();
            sample_until(when);
            const auto &record = result.records[idx];
            cluster.remove(record.vm, record.nodeIndex);
            FAIRCO2_COUNT("sim.departures", 1);
        }
    };

    {
        // Event loop over arrivals; departures and demand sampling
        // interleave as the clock advances to each arrival.
        FAIRCO2_SPAN("sim.placement");
        while (next_arrival < vms.size() &&
               vms[next_arrival].arrivalSeconds < horizon_seconds) {
            const VmSpec &vm = vms[next_arrival];
            assert(vm.arrivalSeconds >= prev_arrival_time);
            prev_arrival_time = vm.arrivalSeconds;

            process_departures_until(vm.arrivalSeconds);
            sample_until(vm.arrivalSeconds);

            VmRecord record;
            record.vm = vm;
            record.endSeconds =
                std::min(vm.departureSeconds(), horizon_seconds);
            record.nodeIndex = cluster.place(vm);
            if (fault_plan && fault_plan->active()) {
                // Preemption keeps only a plan-drawn fraction of the
                // lifetime; a node failure evicts every resident VM
                // at the node's deterministic failure time.
                const double frac =
                    fault_plan->vmPreemptionFraction(vm.id);
                if (frac >= 0.0) {
                    record.endSeconds = vm.arrivalSeconds +
                        frac * (record.endSeconds -
                                vm.arrivalSeconds);
                    record.truncatedByFault = true;
                    ++result.preemptedVms;
                    fault_plan->noteInjected();
                    FAIRCO2_COUNT("resilience.fault.vm_preempted", 1);
                }
                const double fail_time = fault_plan->nodeFailureTime(
                    record.nodeIndex, horizon_seconds);
                if (fail_time >= 0.0 &&
                    fail_time < record.endSeconds) {
                    record.endSeconds = std::max(vm.arrivalSeconds,
                                                 fail_time);
                    record.truncatedByFault = true;
                    ++result.nodeFailureEvictions;
                    fault_plan->noteInjected();
                    FAIRCO2_COUNT("resilience.fault.node_evicted", 1);
                }
            }
            FAIRCO2_COUNT("sim.placements", 1);
            FAIRCO2_OBSERVE("sim.placement_cores", vm.cores);
            result.records.push_back(record);
            departures.emplace(record.endSeconds,
                               result.records.size() - 1);

            result.peakNodesProvisioned =
                std::max(result.peakNodesProvisioned,
                         cluster.nodesProvisioned());
            result.peakNodesInUse =
                std::max(result.peakNodesInUse,
                         cluster.nodesInUse());
            result.peakCores =
                std::max(result.peakCores, cluster.coresInUse());
            ++next_arrival;
        }
    }

    {
        // Tail phase: flush departures past the last arrival, then
        // aggregate the remaining demand samples to the horizon.
        FAIRCO2_SPAN("sim.drain");
        process_departures_until(horizon_seconds);
    }
    {
        FAIRCO2_SPAN("sim.demand_aggregate");
        sample_until(horizon_seconds);
    }

    result.coreDemand =
        trace::TimeSeries(std::move(core_demand), stepSeconds_);
    result.memoryDemand =
        trace::TimeSeries(std::move(memory_demand), stepSeconds_);
    return result;
}

} // namespace fairco2::sim
