/**
 * @file
 * Virtual-machine workload model for the cluster simulator.
 *
 * Fair-CO2's production context is a hyperscale fleet running
 * millions of VMs a month (the Azure 2017 trace). The generator
 * reproduces the population statistics the paper leans on: most VMs
 * are small and short-lived with a long tail of effectively
 * permanent ones (Hadary et al., Protean), and the arrival rate
 * follows the diurnal/weekly demand cycle.
 */

#ifndef FAIRCO2_SIM_VM_HH
#define FAIRCO2_SIM_VM_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace fairco2::sim
{

/** One VM request. */
struct VmSpec
{
    std::int64_t id = 0;
    double cores = 2.0;
    double memoryGb = 8.0;
    double arrivalSeconds = 0.0;
    double lifetimeSeconds = 600.0;

    double departureSeconds() const
    {
        return arrivalSeconds + lifetimeSeconds;
    }
};

/** Synthetic VM population generator. */
class VmWorkloadGenerator
{
  public:
    struct Config
    {
        /** Mean arrivals per hour at the diurnal midpoint. */
        double arrivalsPerHour = 400.0;
        /** Diurnal swing of the arrival rate, fraction of mean. */
        double diurnalAmplitude = 0.4;
        /** Fraction of VMs that are short-lived. */
        double shortLivedFraction = 0.85;
        /** Median lifetime of short-lived VMs, seconds. */
        double shortMedianSeconds = 15.0 * 60.0;
        /** Log-normal sigma of short lifetimes. */
        double shortSigma = 1.2;
        /** Median lifetime of long-lived VMs, seconds. */
        double longMedianSeconds = 3.0 * 86400.0;
        /** Log-normal sigma of long lifetimes. */
        double longSigma = 1.0;
        /** DRAM per core, GB (Azure-style 4 GB/core shapes). */
        double memoryPerCoreGb = 4.0;
    };

    VmWorkloadGenerator();
    explicit VmWorkloadGenerator(const Config &config);

    /**
     * Generate all VMs arriving within [0, duration). Arrivals are
     * a non-homogeneous Poisson process (diurnal rate modulation);
     * ids are dense and sorted by arrival.
     */
    std::vector<VmSpec> generate(double duration_seconds,
                                 Rng &rng) const;

    const Config &config() const { return config_; }

  private:
    double coreDraw(Rng &rng) const;
    double lifetimeDraw(Rng &rng) const;

    Config config_;
};

} // namespace fairco2::sim

#endif // FAIRCO2_SIM_VM_HH
