/**
 * @file
 * Elastic cluster with bin-packing VM placement.
 *
 * Nodes mirror the paper's evaluation server (96 logical cores,
 * 192 GB). The cluster grows when no node can host an arrival —
 * the provisioning behaviour whose peak determines embodied carbon.
 */

#ifndef FAIRCO2_SIM_CLUSTER_HH
#define FAIRCO2_SIM_CLUSTER_HH

#include <cstdint>
#include <vector>

#include "sim/vm.hh"

namespace fairco2::sim
{

/** Placement policy for arrivals. */
enum class PlacementPolicy
{
    FirstFit, //!< lowest-index node with room
    BestFit,  //!< feasible node with least remaining cores
    WorstFit, //!< feasible node with most remaining cores
};

/** Human-readable policy name. */
const char *placementPolicyName(PlacementPolicy policy);

/** One node's capacity and current occupancy. */
struct Node
{
    double coresTotal = 96.0;
    double memoryTotalGb = 192.0;
    double coresUsed = 0.0;
    double memoryUsedGb = 0.0;
    std::size_t residents = 0;

    bool fits(const VmSpec &vm) const
    {
        return coresUsed + vm.cores <= coresTotal + 1e-9 &&
            memoryUsedGb + vm.memoryGb <= memoryTotalGb + 1e-9;
    }

    double coresFree() const { return coresTotal - coresUsed; }
};

/**
 * Elastic node pool. place() never fails: if no provisioned node
 * fits, a new node is added (tracking peak provisioning).
 */
class Cluster
{
  public:
    /**
     * @param node_cores logical cores per node.
     * @param node_memory_gb DRAM per node.
     * @param policy arrival placement policy.
     */
    Cluster(double node_cores = 96.0, double node_memory_gb = 192.0,
            PlacementPolicy policy = PlacementPolicy::BestFit);

    /** Place a VM; returns the hosting node index. */
    std::size_t place(const VmSpec &vm);

    /** Release a VM from the node place() returned for it. */
    void remove(const VmSpec &vm, std::size_t node_index);

    /** Nodes currently provisioned (the fleet size). */
    std::size_t nodesProvisioned() const { return nodes_.size(); }

    /** Nodes currently hosting at least one VM. */
    std::size_t nodesInUse() const;

    /** Aggregate cores in use across the fleet. */
    double coresInUse() const { return coresInUse_; }

    /** Aggregate DRAM in use, GB. */
    double memoryInUseGb() const { return memoryInUseGb_; }

    PlacementPolicy policy() const { return policy_; }
    const std::vector<Node> &nodes() const { return nodes_; }

  private:
    std::size_t chooseNode(const VmSpec &vm) const;

    std::vector<Node> nodes_;
    double nodeCores_;
    double nodeMemoryGb_;
    PlacementPolicy policy_;
    double coresInUse_ = 0.0;
    double memoryInUseGb_ = 0.0;
};

} // namespace fairco2::sim

#endif // FAIRCO2_SIM_CLUSTER_HH
