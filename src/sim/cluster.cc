#include "sim/cluster.hh"

#include <cassert>
#include <limits>

namespace fairco2::sim
{

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::FirstFit:
        return "first-fit";
      case PlacementPolicy::BestFit:
        return "best-fit";
      case PlacementPolicy::WorstFit:
        return "worst-fit";
    }
    return "unknown";
}

Cluster::Cluster(double node_cores, double node_memory_gb,
                 PlacementPolicy policy)
    : nodeCores_(node_cores), nodeMemoryGb_(node_memory_gb),
      policy_(policy)
{
    assert(node_cores > 0.0 && node_memory_gb > 0.0);
}

std::size_t
Cluster::chooseNode(const VmSpec &vm) const
{
    const std::size_t none = static_cast<std::size_t>(-1);
    std::size_t best = none;
    double best_free = 0.0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!nodes_[i].fits(vm))
            continue;
        switch (policy_) {
          case PlacementPolicy::FirstFit:
            return i;
          case PlacementPolicy::BestFit:
            if (best == none || nodes_[i].coresFree() < best_free) {
                best = i;
                best_free = nodes_[i].coresFree();
            }
            break;
          case PlacementPolicy::WorstFit:
            if (best == none || nodes_[i].coresFree() > best_free) {
                best = i;
                best_free = nodes_[i].coresFree();
            }
            break;
        }
    }
    return best;
}

std::size_t
Cluster::place(const VmSpec &vm)
{
    assert(vm.cores <= nodeCores_ &&
           vm.memoryGb <= nodeMemoryGb_);
    std::size_t index = chooseNode(vm);
    if (index == static_cast<std::size_t>(-1)) {
        Node fresh;
        fresh.coresTotal = nodeCores_;
        fresh.memoryTotalGb = nodeMemoryGb_;
        nodes_.push_back(fresh);
        index = nodes_.size() - 1;
    }
    Node &node = nodes_[index];
    node.coresUsed += vm.cores;
    node.memoryUsedGb += vm.memoryGb;
    ++node.residents;
    coresInUse_ += vm.cores;
    memoryInUseGb_ += vm.memoryGb;
    return index;
}

void
Cluster::remove(const VmSpec &vm, std::size_t node_index)
{
    assert(node_index < nodes_.size());
    Node &node = nodes_[node_index];
    assert(node.residents > 0);
    node.coresUsed -= vm.cores;
    node.memoryUsedGb -= vm.memoryGb;
    --node.residents;
    coresInUse_ -= vm.cores;
    memoryInUseGb_ -= vm.memoryGb;
    assert(node.coresUsed > -1e-6 && node.memoryUsedGb > -1e-6);
}

std::size_t
Cluster::nodesInUse() const
{
    std::size_t used = 0;
    for (const auto &node : nodes_) {
        if (node.residents > 0)
            ++used;
    }
    return used;
}

} // namespace fairco2::sim
