#include "sim/vm.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace fairco2::sim
{

namespace
{

constexpr double kSecondsPerDay = 86400.0;

/** Azure-style VM shapes: small sizes dominate. */
constexpr double kCoreSizes[] = {1, 2, 4, 8, 16, 32};
constexpr double kCoreWeights[] = {0.30, 0.30, 0.20, 0.12, 0.06,
                                   0.02};

} // namespace

VmWorkloadGenerator::VmWorkloadGenerator()
    : VmWorkloadGenerator(Config{})
{
}

VmWorkloadGenerator::VmWorkloadGenerator(const Config &config)
    : config_(config)
{
    assert(config.arrivalsPerHour > 0.0);
    assert(config.shortLivedFraction >= 0.0 &&
           config.shortLivedFraction <= 1.0);
}

double
VmWorkloadGenerator::coreDraw(Rng &rng) const
{
    double u = rng.uniform();
    for (std::size_t i = 0; i < std::size(kCoreSizes); ++i) {
        if (u < kCoreWeights[i])
            return kCoreSizes[i];
        u -= kCoreWeights[i];
    }
    return kCoreSizes[std::size(kCoreSizes) - 1];
}

double
VmWorkloadGenerator::lifetimeDraw(Rng &rng) const
{
    const bool short_lived =
        rng.bernoulli(config_.shortLivedFraction);
    const double median = short_lived
        ? config_.shortMedianSeconds
        : config_.longMedianSeconds;
    const double sigma =
        short_lived ? config_.shortSigma : config_.longSigma;
    // Log-normal with the given median: exp(ln median + sigma Z).
    const double lifetime =
        std::exp(std::log(median) + sigma * rng.normal());
    return std::max(60.0, lifetime);
}

std::vector<VmSpec>
VmWorkloadGenerator::generate(double duration_seconds,
                              Rng &rng) const
{
    assert(duration_seconds > 0.0);
    std::vector<VmSpec> vms;

    // Thinning for the non-homogeneous Poisson process: the rate
    // peaks in the afternoon like the demand trace.
    const double base_rate = config_.arrivalsPerHour / 3600.0;
    const double max_rate =
        base_rate * (1.0 + config_.diurnalAmplitude);

    double t = 0.0;
    std::int64_t next_id = 0;
    while (true) {
        t += -std::log(1.0 - rng.uniform()) / max_rate;
        if (t >= duration_seconds)
            break;
        const double day_phase = 2.0 * std::numbers::pi *
            (t / kSecondsPerDay - 15.0 / 24.0);
        const double rate = base_rate *
            (1.0 + config_.diurnalAmplitude * std::cos(day_phase));
        if (!rng.bernoulli(rate / max_rate))
            continue;

        VmSpec vm;
        vm.id = next_id++;
        vm.cores = coreDraw(rng);
        vm.memoryGb = vm.cores * config_.memoryPerCoreGb;
        vm.arrivalSeconds = t;
        vm.lifetimeSeconds = lifetimeDraw(rng);
        vms.push_back(vm);
    }
    return vms;
}

} // namespace fairco2::sim
