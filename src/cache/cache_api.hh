/**
 * @file
 * Eviction-policy plug-in API for the blob stores, after the uszram
 * `cache-api.h` pattern: a policy tracks resident keys and nominates
 * victims; the store owns the key→bytes table and calls back into
 * the policy on insert/hit/erase. Two backends ship:
 *
 *  - LruPolicy: exact least-recently-used via an intrusive list.
 *    Hits reorder the list, so `kHitNeedsExclusive` is true and the
 *    store takes the shard's write lock even on reads.
 *  - ClockPolicy: second-chance CLOCK over a slotted ring. Hits only
 *    set an atomic reference bit, so `kHitNeedsExclusive` is false
 *    and concurrent readers proceed under the shard's shared lock.
 */

#ifndef FAIRCO2_CACHE_CACHE_API_HH
#define FAIRCO2_CACHE_CACHE_API_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

namespace fairco2::cache
{

/** Exact LRU: most-recent at the front, victim at the back. */
class LruPolicy
{
  public:
    static constexpr const char *kName = "lru";
    static constexpr bool kHitNeedsExclusive = true;

    void
    insert(std::uint64_t key)
    {
        order_.push_front(key);
        pos_[key] = order_.begin();
    }

    void
    touch(std::uint64_t key)
    {
        const auto it = pos_.find(key);
        if (it != pos_.end())
            order_.splice(order_.begin(), order_, it->second);
    }

    void
    erase(std::uint64_t key)
    {
        const auto it = pos_.find(key);
        if (it != pos_.end()) {
            order_.erase(it->second);
            pos_.erase(it);
        }
    }

    bool
    victim(std::uint64_t *out) const
    {
        if (order_.empty())
            return false;
        *out = order_.back();
        return true;
    }

  private:
    std::list<std::uint64_t> order_;
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator>
        pos_;
};

/** Second-chance CLOCK. Frames live in a deque (stable addresses for
 *  the atomic reference bits); erased frames go on a free list and
 *  are reused by later inserts. touch() is safe under a shared lock:
 *  it only reads the position map and stores the atomic bit. */
class ClockPolicy
{
  public:
    static constexpr const char *kName = "clock";
    static constexpr bool kHitNeedsExclusive = false;

    void
    insert(std::uint64_t key)
    {
        std::size_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
        } else {
            slot = frames_.size();
            frames_.emplace_back();
        }
        frames_[slot].key = key;
        frames_[slot].ref.store(1, std::memory_order_relaxed);
        frames_[slot].live = true;
        pos_[key] = slot;
    }

    void
    touch(std::uint64_t key)
    {
        const auto it = pos_.find(key);
        if (it != pos_.end())
            frames_[it->second].ref.store(
                1, std::memory_order_relaxed);
    }

    void
    erase(std::uint64_t key)
    {
        const auto it = pos_.find(key);
        if (it != pos_.end()) {
            frames_[it->second].live = false;
            free_.push_back(it->second);
            pos_.erase(it);
        }
    }

    bool
    victim(std::uint64_t *out)
    {
        if (pos_.empty())
            return false;
        // At most two sweeps: the first clears reference bits, the
        // second then finds an unreferenced live frame.
        for (std::size_t step = 0; step < 2 * frames_.size() + 1;
             ++step) {
            if (hand_ >= frames_.size())
                hand_ = 0;
            Frame &frame = frames_[hand_];
            ++hand_;
            if (!frame.live)
                continue;
            if (frame.ref.exchange(0, std::memory_order_relaxed) ==
                0) {
                *out = frame.key;
                return true;
            }
        }
        return false;
    }

  private:
    struct Frame
    {
        std::uint64_t key = 0;
        std::atomic<std::uint8_t> ref{0};
        bool live = false;
    };

    std::deque<Frame> frames_;
    std::vector<std::size_t> free_;
    std::unordered_map<std::uint64_t, std::size_t> pos_;
    std::size_t hand_ = 0;
};

} // namespace fairco2::cache

#endif // FAIRCO2_CACHE_CACHE_API_HH
