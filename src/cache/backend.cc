/**
 * @file
 * Backend parsing/formatting and the 16-way BasicBlobStore factory.
 * The compile-time default comes from the FAIRCO2_CACHE_DEFAULT_*
 * macros that src/cache/CMakeLists.txt derives from the
 * FAIRCO2_CACHE_{POLICY,ALLOC,LOCK,COMPRESS} options.
 */

#include "cache/backend.hh"

#include <stdexcept>

#include "cache/blobstore.hh"

#ifndef FAIRCO2_CACHE_DEFAULT_POLICY
#define FAIRCO2_CACHE_DEFAULT_POLICY "lru"
#endif
#ifndef FAIRCO2_CACHE_DEFAULT_ALLOC
#define FAIRCO2_CACHE_DEFAULT_ALLOC "malloc"
#endif
#ifndef FAIRCO2_CACHE_DEFAULT_LOCK
#define FAIRCO2_CACHE_DEFAULT_LOCK "mutex"
#endif
#ifndef FAIRCO2_CACHE_DEFAULT_COMPRESS
#define FAIRCO2_CACHE_DEFAULT_COMPRESS "identity"
#endif

namespace fairco2::cache
{

const char *
policyName(EvictPolicy policy)
{
    return policy == EvictPolicy::Lru ? LruPolicy::kName
                                      : ClockPolicy::kName;
}

const char *
allocName(AllocKind alloc)
{
    return alloc == AllocKind::Malloc ? MallocAlloc::kName
                                      : ArenaAlloc::kName;
}

const char *
lockName(LockKind lock)
{
    return lock == LockKind::Mutex ? MutexLockApi::kName
                                   : ShardedRwLockApi::kName;
}

const char *
codecName(Codec codec)
{
    return codec == Codec::Identity ? IdentityCompr::kName
                                    : LzCompr::kName;
}

EvictPolicy
parsePolicy(const std::string &name)
{
    if (name == LruPolicy::kName)
        return EvictPolicy::Lru;
    if (name == ClockPolicy::kName)
        return EvictPolicy::Clock;
    throw std::invalid_argument("unknown cache policy '" + name +
                                "' (valid: lru, clock)");
}

AllocKind
parseAlloc(const std::string &name)
{
    if (name == MallocAlloc::kName)
        return AllocKind::Malloc;
    if (name == ArenaAlloc::kName)
        return AllocKind::Arena;
    throw std::invalid_argument("unknown cache allocator '" + name +
                                "' (valid: malloc, arena)");
}

LockKind
parseLock(const std::string &name)
{
    if (name == MutexLockApi::kName)
        return LockKind::Mutex;
    if (name == ShardedRwLockApi::kName)
        return LockKind::Sharded;
    throw std::invalid_argument("unknown cache lock '" + name +
                                "' (valid: mutex, sharded)");
}

Codec
parseCodec(const std::string &name)
{
    if (name == IdentityCompr::kName)
        return Codec::Identity;
    if (name == LzCompr::kName)
        return Codec::Lz;
    throw std::invalid_argument("unknown cache codec '" + name +
                                "' (valid: identity, lz)");
}

BackendConfig
parseBackendSpec(const std::string &spec)
{
    BackendConfig config = defaultBackend();
    if (spec.empty())
        return config;
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = spec.find(',', start);
        parts.push_back(spec.substr(start, comma - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (parts.size() > 3)
        throw std::invalid_argument(
            "cache backend spec '" + spec +
            "' has too many components (expected "
            "policy[,alloc[,lock]])");
    config.policy = parsePolicy(parts[0]);
    if (parts.size() > 1)
        config.alloc = parseAlloc(parts[1]);
    if (parts.size() > 2)
        config.lock = parseLock(parts[2]);
    return config;
}

std::string
backendSpec(const BackendConfig &config)
{
    return std::string(policyName(config.policy)) + "," +
        allocName(config.alloc) + "," + lockName(config.lock);
}

const BackendConfig &
defaultBackend()
{
    static const BackendConfig config = [] {
        BackendConfig built;
        built.policy = parsePolicy(FAIRCO2_CACHE_DEFAULT_POLICY);
        built.alloc = parseAlloc(FAIRCO2_CACHE_DEFAULT_ALLOC);
        built.lock = parseLock(FAIRCO2_CACHE_DEFAULT_LOCK);
        built.codec = parseCodec(FAIRCO2_CACHE_DEFAULT_COMPRESS);
        return built;
    }();
    return config;
}

std::vector<BackendConfig>
allBackendCombinations()
{
    std::vector<BackendConfig> combos;
    combos.reserve(16);
    for (const Codec codec : {Codec::Identity, Codec::Lz})
        for (const LockKind lock :
             {LockKind::Mutex, LockKind::Sharded})
            for (const AllocKind alloc :
                 {AllocKind::Malloc, AllocKind::Arena})
                for (const EvictPolicy policy :
                     {EvictPolicy::Lru, EvictPolicy::Clock}) {
                    BackendConfig config;
                    config.policy = policy;
                    config.alloc = alloc;
                    config.lock = lock;
                    config.codec = codec;
                    combos.push_back(config);
                }
    return combos;
}

namespace
{

template <class AllocApi, class PolicyApi, class LockApi>
std::unique_ptr<BlobStore>
makeWithCodec(const BackendConfig &config, std::size_t capacity)
{
    if (config.codec == Codec::Identity)
        return std::make_unique<BasicBlobStore<
            AllocApi, PolicyApi, LockApi, IdentityCompr>>(config,
                                                          capacity);
    return std::make_unique<
        BasicBlobStore<AllocApi, PolicyApi, LockApi, LzCompr>>(
        config, capacity);
}

template <class AllocApi, class PolicyApi>
std::unique_ptr<BlobStore>
makeWithLock(const BackendConfig &config, std::size_t capacity)
{
    if (config.lock == LockKind::Mutex)
        return makeWithCodec<AllocApi, PolicyApi, MutexLockApi>(
            config, capacity);
    return makeWithCodec<AllocApi, PolicyApi, ShardedRwLockApi>(
        config, capacity);
}

template <class AllocApi>
std::unique_ptr<BlobStore>
makeWithPolicy(const BackendConfig &config, std::size_t capacity)
{
    if (config.policy == EvictPolicy::Lru)
        return makeWithLock<AllocApi, LruPolicy>(config, capacity);
    return makeWithLock<AllocApi, ClockPolicy>(config, capacity);
}

} // namespace

std::unique_ptr<BlobStore>
makeBlobStore(const BackendConfig &config, std::size_t capacity)
{
    if (capacity == 0)
        throw std::invalid_argument(
            "makeBlobStore: capacity must be > 0 (callers disable "
            "memoization by not building a store)");
    if (config.alloc == AllocKind::Malloc)
        return makeWithPolicy<MallocAlloc>(config, capacity);
    return makeWithPolicy<ArenaAlloc>(config, capacity);
}

} // namespace fairco2::cache
