/**
 * @file
 * LzCompr implementation: per-block transform selection in front of
 * a deterministic greedy LZSS coder.
 *
 * The memo cache serializes sub-game tables as fixed-width 8-byte
 * words (u64 indices and counts, then IEEE doubles), grouped by type
 * into homogeneous sections. No single byte transform wins on both:
 * a word-wise XOR-delta plus byte-plane shuffle turns small-integer
 * sections into long zero runs, but it destroys the exact 8-byte
 * duplicates (repeated usage values) that dominate the redundancy of
 * the double sections. So the encoder tries three reversible
 * pipelines — plain, XOR-delta, and XOR-delta + byte-plane shuffle —
 * LZSS-codes each, and keeps the smallest, spending one mode byte up
 * front. Ties resolve to the lowest mode, so encoding stays
 * deterministic.
 *
 * Token format after the mode byte: a control byte carries 8 flags
 * (LSB first); flag 0 is a literal byte, flag 1 is a match token
 * with a 12-bit backward offset (1-based) and a 4-bit length code —
 * codes 0..14 mean lengths 3..17, code 15 adds one extension byte
 * for lengths 18..273. The encoder zeroes the unused high flags of
 * the final control byte and the decoder rejects unknown modes,
 * nonzero unused flags, trailing input, and out-of-range tokens, so
 * every stored bit is semantically live.
 */

#include "cache/compr_api.hh"

#include <algorithm>

namespace fairco2::cache
{

namespace
{

constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxShortMatch = 17; // length codes 0..14
constexpr std::size_t kMaxMatch = 273;     // code 15 + extension byte
constexpr std::size_t kWindow = 4095;      // 12-bit backward offset
constexpr std::size_t kHashBits = 13;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;
constexpr std::size_t kWordBytes = 8;

/** Reversible pre-LZSS byte transforms, recorded in the mode byte. */
enum class Transform : std::uint8_t
{
    Plain = 0,        //!< identity — keeps 8-byte duplicates intact
    Delta = 1,        //!< word-wise XOR-delta
    DeltaShuffle = 2, //!< XOR-delta, then byte-plane transpose
};

constexpr std::uint8_t kMaxTransform = 2;

inline std::uint32_t
hash3(const std::uint8_t *p)
{
    const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16);
    return (v * 2654435761u) >> (32 - kHashBits);
}

/** Forward XOR-delta over full 8-byte words; the tail (size % 8)
 *  passes through untouched. Reads only from @p data, so the output
 *  word w is data[w] ^ data[w-1] of the original bytes. */
std::vector<std::uint8_t>
xorDelta(const std::uint8_t *data, std::size_t size)
{
    std::vector<std::uint8_t> out(data, data + size);
    const std::size_t words = size / kWordBytes;
    for (std::size_t w = 1; w < words; ++w)
        for (std::size_t b = 0; b < kWordBytes; ++b)
            out[w * kWordBytes + b] = static_cast<std::uint8_t>(
                data[w * kWordBytes + b] ^
                data[(w - 1) * kWordBytes + b]);
    return out;
}

/** In-place inverse of xorDelta: each word XORs the already-restored
 *  previous word, front to back. */
void
unXorDelta(std::uint8_t *data, std::size_t size)
{
    const std::size_t words = size / kWordBytes;
    for (std::size_t w = 1; w < words; ++w)
        for (std::size_t b = 0; b < kWordBytes; ++b)
            data[w * kWordBytes + b] = static_cast<std::uint8_t>(
                data[w * kWordBytes + b] ^
                data[(w - 1) * kWordBytes + b]);
}

/** Byte-plane transpose over the word-aligned prefix: byte b of
 *  every word becomes one contiguous plane, so the near-zero high
 *  bytes the XOR-delta produces turn into long runs the LZSS stage
 *  can fold. The tail (size % 8) stays in place. */
std::vector<std::uint8_t>
shuffleBytes(const std::vector<std::uint8_t> &in)
{
    const std::size_t words = in.size() / kWordBytes;
    std::vector<std::uint8_t> out(in.size());
    for (std::size_t b = 0; b < kWordBytes; ++b)
        for (std::size_t w = 0; w < words; ++w)
            out[b * words + w] = in[w * kWordBytes + b];
    std::copy(in.begin() +
                  static_cast<std::ptrdiff_t>(words * kWordBytes),
              in.end(),
              out.begin() +
                  static_cast<std::ptrdiff_t>(words * kWordBytes));
    return out;
}

/** In-place inverse of shuffleBytes. */
void
unshuffleBytes(std::uint8_t *data, std::size_t size)
{
    const std::size_t words = size / kWordBytes;
    const std::vector<std::uint8_t> planes(
        data, data + words * kWordBytes);
    for (std::size_t b = 0; b < kWordBytes; ++b)
        for (std::size_t w = 0; w < words; ++w)
            data[w * kWordBytes + b] = planes[b * words + w];
}

/** Greedy single-candidate LZSS over the transformed bytes. */
std::vector<std::uint8_t>
lzssEncode(const std::vector<std::uint8_t> &in)
{
    std::vector<std::uint8_t> out;
    out.reserve(in.size() + in.size() / 8 + 2);

    // One candidate per 3-byte hash keeps the coder deterministic
    // and O(n); -1 marks an empty slot.
    std::vector<std::int64_t> head(kHashSize, -1);

    std::size_t ctrl_pos = 0;
    int bit = 8; // 8 forces a fresh control byte on the first token
    auto begin_token = [&](bool is_match) {
        if (bit == 8) {
            ctrl_pos = out.size();
            out.push_back(0);
            bit = 0;
        }
        if (is_match)
            out[ctrl_pos] =
                static_cast<std::uint8_t>(out[ctrl_pos] | (1u << bit));
        ++bit;
    };

    std::size_t i = 0;
    while (i < in.size()) {
        std::size_t best_len = 0;
        std::size_t best_off = 0;
        if (i + kMinMatch <= in.size()) {
            const std::int64_t cand =
                head[hash3(&in[i])];
            if (cand >= 0 &&
                i - static_cast<std::size_t>(cand) <= kWindow) {
                const std::size_t from =
                    static_cast<std::size_t>(cand);
                const std::size_t cap =
                    std::min(kMaxMatch, in.size() - i);
                std::size_t len = 0;
                while (len < cap && in[from + len] == in[i + len])
                    ++len;
                if (len >= kMinMatch) {
                    best_len = len;
                    best_off = i - from;
                }
            }
        }
        if (best_len > 0) {
            begin_token(true);
            out.push_back(
                static_cast<std::uint8_t>(best_off & 0xff));
            const std::size_t code =
                std::min(best_len, kMaxShortMatch + 1) - kMinMatch;
            out.push_back(static_cast<std::uint8_t>(
                ((best_off >> 8) & 0x0f) | (code << 4)));
            if (best_len > kMaxShortMatch)
                out.push_back(static_cast<std::uint8_t>(
                    best_len - kMaxShortMatch - 1));
            for (std::size_t k = 0;
                 k < best_len && i + k + kMinMatch <= in.size(); ++k)
                head[hash3(&in[i + k])] =
                    static_cast<std::int64_t>(i + k);
            i += best_len;
        } else {
            begin_token(false);
            if (i + kMinMatch <= in.size())
                head[hash3(&in[i])] = static_cast<std::int64_t>(i);
            out.push_back(in[i]);
            ++i;
        }
    }
    return out;
}

} // namespace

std::vector<std::uint8_t>
LzCompr::compress(const std::uint8_t *data, std::size_t size)
{
    std::vector<std::uint8_t> best;
    std::uint8_t best_mode = 0;
    for (std::uint8_t mode = 0; mode <= kMaxTransform; ++mode) {
        std::vector<std::uint8_t> transformed;
        switch (static_cast<Transform>(mode)) {
        case Transform::Plain:
            transformed.assign(data, data + size);
            break;
        case Transform::Delta:
            transformed = xorDelta(data, size);
            break;
        case Transform::DeltaShuffle:
            transformed = shuffleBytes(xorDelta(data, size));
            break;
        }
        std::vector<std::uint8_t> coded = lzssEncode(transformed);
        if (mode == 0 || coded.size() < best.size()) {
            best = std::move(coded);
            best_mode = mode;
        }
    }
    std::vector<std::uint8_t> out;
    out.reserve(best.size() + 1);
    out.push_back(best_mode);
    out.insert(out.end(), best.begin(), best.end());
    return out;
}

void
LzCompr::decompress(const std::uint8_t *data, std::size_t size,
                    std::uint8_t *out, std::size_t raw_size)
{
    if (size == 0)
        throw CorruptBlockError("lz block is empty (mode byte "
                                "missing)");
    const std::uint8_t mode = data[0];
    if (mode > kMaxTransform)
        throw CorruptBlockError("lz block has unknown transform "
                                "mode " + std::to_string(mode));
    std::size_t ip = 1;
    std::size_t op = 0;
    while (op < raw_size) {
        if (ip >= size)
            throw CorruptBlockError("lz block truncated: control "
                                    "byte missing at offset " +
                                    std::to_string(ip));
        const std::uint8_t ctrl = data[ip++];
        for (int bit = 0; bit < 8; ++bit) {
            if (op == raw_size) {
                if ((ctrl >> bit) != 0)
                    throw CorruptBlockError(
                        "lz block has nonzero trailing flag bits");
                break;
            }
            if (ctrl & (1u << bit)) {
                if (ip + 2 > size)
                    throw CorruptBlockError(
                        "lz block truncated inside a match token");
                const std::size_t off =
                    static_cast<std::size_t>(data[ip]) |
                    (static_cast<std::size_t>(data[ip + 1] & 0x0f)
                     << 8);
                std::size_t len =
                    static_cast<std::size_t>(data[ip + 1] >> 4) +
                    kMinMatch;
                ip += 2;
                if (len > kMaxShortMatch) {
                    if (ip >= size)
                        throw CorruptBlockError(
                            "lz block truncated inside a match "
                            "length extension");
                    len = kMaxShortMatch + 1 +
                        static_cast<std::size_t>(data[ip++]);
                }
                if (off == 0 || off > op)
                    throw CorruptBlockError(
                        "lz match offset " + std::to_string(off) +
                        " out of range at output byte " +
                        std::to_string(op));
                if (op + len > raw_size)
                    throw CorruptBlockError(
                        "lz match overruns the block");
                for (std::size_t k = 0; k < len; ++k) {
                    out[op] = out[op - off];
                    ++op;
                }
            } else {
                if (ip >= size)
                    throw CorruptBlockError(
                        "lz block truncated inside a literal");
                out[op++] = data[ip++];
            }
        }
    }
    if (ip != size)
        throw CorruptBlockError(
            "lz block has " + std::to_string(size - ip) +
            " trailing bytes");
    switch (static_cast<Transform>(mode)) {
    case Transform::Plain:
        break;
    case Transform::Delta:
        unXorDelta(out, raw_size);
        break;
    case Transform::DeltaShuffle:
        unshuffleBytes(out, raw_size);
        unXorDelta(out, raw_size);
        break;
    }
}

} // namespace fairco2::cache
