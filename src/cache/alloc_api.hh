/**
 * @file
 * Allocator plug-in API for the blob stores, after the uszram
 * `alloc-api.h` pattern: an allocator hands out Block spans for the
 * stored (possibly compressed) bytes of one cache entry and takes
 * them back on eviction. Allocators are owned one-per-shard and are
 * only touched under that shard's write lock, so they need no
 * internal synchronization. Two backends ship:
 *
 *  - MallocAlloc: one heap allocation per block (the reference
 *    build);
 *  - ArenaAlloc: bump-allocates 64-byte size classes out of 256 KiB
 *    chunks and recycles freed blocks through per-class free lists,
 *    so steady-state eviction churn allocates nothing.
 */

#ifndef FAIRCO2_CACHE_ALLOC_API_HH
#define FAIRCO2_CACHE_ALLOC_API_HH

#include <cstdint>
#include <memory>
#include <vector>

namespace fairco2::cache
{

/** One allocated span. @c sizeClass is allocator bookkeeping (the
 *  rounded size class for ArenaAlloc, unused by MallocAlloc). */
struct Block
{
    std::uint8_t *data = nullptr;
    std::size_t size = 0;
    std::size_t sizeClass = 0;
};

/** Reference allocator: one new[]/delete[] pair per block. */
class MallocAlloc
{
  public:
    static constexpr const char *kName = "malloc";

    Block
    allocate(std::size_t n)
    {
        Block block;
        block.size = n;
        block.data = n > 0 ? new std::uint8_t[n] : nullptr;
        return block;
    }

    void
    deallocate(Block &block)
    {
        delete[] block.data;
        block = Block{};
    }
};

/** Chunked bump allocator with size-class free lists. Freed blocks
 *  are recycled exactly-by-class; chunk memory is only released when
 *  the allocator itself is destroyed (with its shard). */
class ArenaAlloc
{
  public:
    static constexpr const char *kName = "arena";
    static constexpr std::size_t kGranule = 64;
    static constexpr std::size_t kChunkBytes = 256 * 1024;

    Block
    allocate(std::size_t n)
    {
        Block block;
        block.size = n;
        if (n == 0)
            return block;
        const std::size_t cls = (n + kGranule - 1) / kGranule;
        const std::size_t bytes = cls * kGranule;
        block.sizeClass = cls;
        if (cls < freeLists_.size() && !freeLists_[cls].empty()) {
            block.data = freeLists_[cls].back();
            freeLists_[cls].pop_back();
            return block;
        }
        if (chunkUsed_ + bytes > chunkCap_) {
            chunkCap_ = std::max(kChunkBytes, bytes);
            chunks_.push_back(
                std::make_unique<std::uint8_t[]>(chunkCap_));
            chunkUsed_ = 0;
        }
        block.data = chunks_.back().get() + chunkUsed_;
        chunkUsed_ += bytes;
        return block;
    }

    void
    deallocate(Block &block)
    {
        if (block.data != nullptr) {
            if (freeLists_.size() <= block.sizeClass)
                freeLists_.resize(block.sizeClass + 1);
            freeLists_[block.sizeClass].push_back(block.data);
        }
        block = Block{};
    }

  private:
    std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
    std::size_t chunkUsed_ = 0;
    std::size_t chunkCap_ = 0;
    std::vector<std::vector<std::uint8_t *>> freeLists_;
};

} // namespace fairco2::cache

#endif // FAIRCO2_CACHE_ALLOC_API_HH
