/**
 * @file
 * Compressor plug-in API for the memo/checkpoint blob stores, after
 * the uszram `compr-api.h` pattern: a compressor is a stateless
 * struct with a `kName`, a `compress` that returns the stored bytes,
 * and a strict `decompress` that either reproduces the raw bytes
 * exactly or throws CorruptBlockError. Two backends ship:
 *
 *  - IdentityCompr: stored bytes == raw bytes (the reference build);
 *  - LzCompr: word-wise XOR-delta followed by a deterministic greedy
 *    LZSS coder (12-bit offsets, 4-bit lengths), tuned for the
 *    zero-heavy fixed-width serialization of memoized sub-game
 *    tables.
 *
 * Every stored bit is live: LzCompr zeroes unused trailing flag bits
 * on encode and the decoder rejects them when set, rejects trailing
 * bytes, and rejects any out-of-range token, so a single flipped
 * byte in a compressed block is either caught here or changes the
 * decoded bytes (and is then caught by the caller's checksum) — it
 * can never silently round-trip.
 */

#ifndef FAIRCO2_CACHE_COMPR_API_HH
#define FAIRCO2_CACHE_COMPR_API_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace fairco2::cache
{

/** A stored block failed to decode (truncated or corrupt bytes). */
class CorruptBlockError : public std::runtime_error
{
  public:
    explicit CorruptBlockError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Reference no-op compressor: stored bytes are the raw bytes. */
struct IdentityCompr
{
    static constexpr const char *kName = "identity";

    static std::vector<std::uint8_t>
    compress(const std::uint8_t *data, std::size_t size)
    {
        return std::vector<std::uint8_t>(data, data + size);
    }

    static void
    decompress(const std::uint8_t *data, std::size_t size,
               std::uint8_t *out, std::size_t raw_size)
    {
        if (size != raw_size)
            throw CorruptBlockError(
                "identity block size mismatch: stored " +
                std::to_string(size) + " bytes, expected " +
                std::to_string(raw_size));
        if (size > 0)
            std::memcpy(out, data, size);
    }
};

/** XOR-delta + greedy LZSS compressor (implemented in lz.cc). */
struct LzCompr
{
    static constexpr const char *kName = "lz";

    static std::vector<std::uint8_t> compress(const std::uint8_t *data,
                                              std::size_t size);

    /** Decode exactly @p raw_size bytes into @p out or throw
     *  CorruptBlockError; never writes past out + raw_size. */
    static void decompress(const std::uint8_t *data, std::size_t size,
                           std::uint8_t *out, std::size_t raw_size);
};

} // namespace fairco2::cache

#endif // FAIRCO2_CACHE_COMPR_API_HH
