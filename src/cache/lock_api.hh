/**
 * @file
 * Lock plug-in API for the blob stores, after the uszram `locks/`
 * family: a lock API names the per-shard lock type, its read/write
 * guards, and how many shards the store should split its table into.
 * Two backends ship:
 *
 *  - MutexLockApi: one shard under one std::mutex (the reference
 *    build; read and write guards are the same exclusive lock);
 *  - ShardedRwLockApi: eight shards, each under a std::shared_mutex,
 *    so concurrent readers of different keys never contend and
 *    readers of the same shard share the lock (with a policy whose
 *    `kHitNeedsExclusive` is false, e.g. CLOCK).
 */

#ifndef FAIRCO2_CACHE_LOCK_API_HH
#define FAIRCO2_CACHE_LOCK_API_HH

#include <cstddef>
#include <mutex>
#include <shared_mutex>

namespace fairco2::cache
{

/** Reference locking: a single exclusive mutex over one shard. */
struct MutexLockApi
{
    static constexpr const char *kName = "mutex";
    static constexpr std::size_t kShards = 1;
    using Lock = std::mutex;
    using ReadGuard = std::lock_guard<std::mutex>;
    using WriteGuard = std::lock_guard<std::mutex>;
};

/** Eight shards, each under a reader-writer lock. */
struct ShardedRwLockApi
{
    static constexpr const char *kName = "sharded";
    static constexpr std::size_t kShards = 8;
    using Lock = std::shared_mutex;
    using ReadGuard = std::shared_lock<std::shared_mutex>;
    using WriteGuard = std::unique_lock<std::shared_mutex>;
};

} // namespace fairco2::cache

#endif // FAIRCO2_CACHE_LOCK_API_HH
