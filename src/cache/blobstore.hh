/**
 * @file
 * The blob store the memo caches sit on: an entry-capped key→bytes
 * map assembled from the four plug-in APIs (alloc_api.hh,
 * cache_api.hh, lock_api.hh, compr_api.hh). Callers hand in raw
 * serialized bytes; the store compresses, allocates, shards, and
 * evicts; `get` hands back the exact raw bytes or throws
 * CorruptBlockError when the stored block no longer decodes.
 *
 * The store is an optimization layer, never an input: whichever
 * backend combination is plugged in, a hit returns bytes identical
 * to what was put, so computations built on top publish
 * byte-identical results across the whole backend matrix (enforced
 * by tests/test_cache_backends.cc).
 *
 * BasicBlobStore is the single template implementation; makeBlobStore
 * (backend.cc) instantiates it for all 16 combinations so the matrix
 * is runtime-selectable in one build.
 */

#ifndef FAIRCO2_CACHE_BLOBSTORE_HH
#define FAIRCO2_CACHE_BLOBSTORE_HH

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "cache/alloc_api.hh"
#include "cache/backend.hh"
#include "cache/cache_api.hh"
#include "cache/compr_api.hh"
#include "cache/lock_api.hh"

namespace fairco2::cache
{

/** Monotonic/instantaneous store counters. @c storedBytes and
 *  @c rawBytes are the current resident compressed and uncompressed
 *  footprints; @c evictions is cumulative. */
struct StoreCounters
{
    std::uint64_t entries = 0;
    std::uint64_t evictions = 0;
    std::uint64_t storedBytes = 0;
    std::uint64_t rawBytes = 0;
};

/** Runtime interface over one BasicBlobStore instantiation. */
class BlobStore
{
  public:
    virtual ~BlobStore() = default;

    /** Copy the raw bytes stored under @p key into @p out. Returns
     *  false on a miss; throws CorruptBlockError when the stored
     *  block fails to decode. */
    virtual bool get(std::uint64_t key,
                     std::vector<std::uint8_t> &out) = 0;

    /** Store @p size raw bytes under @p key, evicting per policy to
     *  stay within the entry capacity. Overwrites any prior entry. */
    virtual void put(std::uint64_t key, const std::uint8_t *data,
                     std::size_t size) = 0;

    /** Drop @p key; returns true when it was resident. */
    virtual bool erase(std::uint64_t key) = 0;

    virtual StoreCounters counters() const = 0;

    virtual const BackendConfig &backend() const = 0;

    /** Test hook: flip one bit of one resident entry's stored bytes
     *  at @p byte_offset (modulo that entry's stored size). Returns
     *  false when the store is empty. */
    virtual bool corruptOneForTest(std::size_t byte_offset) = 0;
};

/** The one concrete store, parameterized over the four plug-ins. */
template <class AllocApi, class PolicyApi, class LockApi,
          class ComprApi>
class BasicBlobStore final : public BlobStore
{
  public:
    BasicBlobStore(const BackendConfig &backend, std::size_t capacity)
        : backend_(backend),
          perShardCapacity_(std::max<std::size_t>(
              1,
              (capacity + LockApi::kShards - 1) / LockApi::kShards))
    {
    }

    ~BasicBlobStore() override
    {
        for (Shard &shard : shards_)
            for (auto &[key, entry] : shard.table)
                shard.alloc.deallocate(entry.block);
    }

    bool
    get(std::uint64_t key, std::vector<std::uint8_t> &out) override
    {
        Shard &shard = shards_[shardOf(key)];
        if constexpr (PolicyApi::kHitNeedsExclusive) {
            typename LockApi::WriteGuard guard(shard.lock);
            return getLocked(shard, key, out);
        } else {
            typename LockApi::ReadGuard guard(shard.lock);
            return getLocked(shard, key, out);
        }
    }

    void
    put(std::uint64_t key, const std::uint8_t *data,
        std::size_t size) override
    {
        // Compress outside the lock: deterministic and read-only.
        const std::vector<std::uint8_t> stored =
            ComprApi::compress(data, size);
        Shard &shard = shards_[shardOf(key)];
        typename LockApi::WriteGuard guard(shard.lock);
        const auto prior = shard.table.find(key);
        if (prior != shard.table.end())
            removeLocked(shard, prior);
        while (shard.table.size() >= perShardCapacity_) {
            std::uint64_t victim = 0;
            if (!shard.policy.victim(&victim))
                break;
            const auto vit = shard.table.find(victim);
            if (vit == shard.table.end())
                break;
            removeLocked(shard, vit);
            evictions_.fetch_add(1, std::memory_order_relaxed);
        }
        Entry entry;
        entry.rawSize = size;
        entry.block = shard.alloc.allocate(stored.size());
        if (!stored.empty())
            std::memcpy(entry.block.data, stored.data(),
                        stored.size());
        shard.table.emplace(key, entry);
        shard.policy.insert(key);
        shard.lastKey.store(key, std::memory_order_relaxed);
        entries_.fetch_add(1, std::memory_order_relaxed);
        storedBytes_.fetch_add(stored.size(),
                               std::memory_order_relaxed);
        rawBytes_.fetch_add(size, std::memory_order_relaxed);
    }

    bool
    erase(std::uint64_t key) override
    {
        Shard &shard = shards_[shardOf(key)];
        typename LockApi::WriteGuard guard(shard.lock);
        const auto it = shard.table.find(key);
        if (it == shard.table.end())
            return false;
        removeLocked(shard, it);
        return true;
    }

    StoreCounters
    counters() const override
    {
        StoreCounters counters;
        counters.entries = entries_.load(std::memory_order_relaxed);
        counters.evictions =
            evictions_.load(std::memory_order_relaxed);
        counters.storedBytes =
            storedBytes_.load(std::memory_order_relaxed);
        counters.rawBytes = rawBytes_.load(std::memory_order_relaxed);
        return counters;
    }

    const BackendConfig &
    backend() const override
    {
        return backend_;
    }

    bool
    corruptOneForTest(std::size_t byte_offset) override
    {
        for (Shard &shard : shards_) {
            typename LockApi::WriteGuard guard(shard.lock);
            if (shard.table.empty())
                continue;
            auto it = shard.table.find(
                shard.lastKey.load(std::memory_order_relaxed));
            if (it == shard.table.end())
                it = shard.table.begin();
            Entry &entry = it->second;
            if (entry.block.size == 0)
                continue;
            entry.block.data[byte_offset % entry.block.size] ^= 0x01;
            return true;
        }
        return false;
    }

  private:
    struct Entry
    {
        Block block;
        std::size_t rawSize = 0;
    };

    struct Shard
    {
        typename LockApi::Lock lock;
        AllocApi alloc;
        PolicyApi policy;
        std::unordered_map<std::uint64_t, Entry> table;
        // Most recently inserted key, for the corruption test hook;
        // atomic because hits update it under a shared lock.
        std::atomic<std::uint64_t> lastKey{0};
    };

    static std::size_t
    shardOf(std::uint64_t key)
    {
        if constexpr (LockApi::kShards == 1)
            return 0;
        // Fibonacci mix so keys that share low bits still spread.
        return static_cast<std::size_t>(
                   (key * 0x9e3779b97f4a7c15ull) >> 32) %
            LockApi::kShards;
    }

    bool
    getLocked(Shard &shard, std::uint64_t key,
              std::vector<std::uint8_t> &out)
    {
        const auto it = shard.table.find(key);
        if (it == shard.table.end())
            return false;
        const Entry &entry = it->second;
        out.resize(entry.rawSize);
        ComprApi::decompress(entry.block.data, entry.block.size,
                             out.data(), entry.rawSize);
        shard.policy.touch(key);
        shard.lastKey.store(key, std::memory_order_relaxed);
        return true;
    }

    void
    removeLocked(Shard &shard,
                 typename std::unordered_map<std::uint64_t,
                                             Entry>::iterator it)
    {
        entries_.fetch_sub(1, std::memory_order_relaxed);
        storedBytes_.fetch_sub(it->second.block.size,
                               std::memory_order_relaxed);
        rawBytes_.fetch_sub(it->second.rawSize,
                            std::memory_order_relaxed);
        shard.policy.erase(it->first);
        shard.alloc.deallocate(it->second.block);
        shard.table.erase(it);
    }

    BackendConfig backend_;
    std::size_t perShardCapacity_;
    std::array<Shard, LockApi::kShards> shards_{};
    std::atomic<std::uint64_t> entries_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> storedBytes_{0};
    std::atomic<std::uint64_t> rawBytes_{0};
};

/** Build the store for @p config with a total capacity of
 *  @p capacity entries (split across the lock API's shards, at
 *  least one per shard). @p capacity must be > 0; stores do not
 *  model the "memoization off" case — callers skip the store
 *  entirely for that. */
std::unique_ptr<BlobStore> makeBlobStore(const BackendConfig &config,
                                         std::size_t capacity);

} // namespace fairco2::cache

#endif // FAIRCO2_CACHE_BLOBSTORE_HH
