/**
 * @file
 * Runtime description of a blob-store backend: which allocator,
 * eviction policy, lock strategy, and compressor a store should use,
 * plus the parse/format helpers behind `--cache-backend` and
 * `--cache-compress` and the compile-time default selected by the
 * CMake options FAIRCO2_CACHE_{ALLOC,POLICY,LOCK,COMPRESS}.
 *
 * Every combination is always compiled in (the differential matrix
 * suite exercises all 16 in one build); the CMake options only move
 * the default that the engines, CLI, and benches start from.
 */

#ifndef FAIRCO2_CACHE_BACKEND_HH
#define FAIRCO2_CACHE_BACKEND_HH

#include <string>
#include <vector>

namespace fairco2::cache
{

enum class EvictPolicy
{
    Lru,
    Clock,
};

enum class AllocKind
{
    Malloc,
    Arena,
};

enum class LockKind
{
    Mutex,
    Sharded,
};

enum class Codec
{
    Identity,
    Lz,
};

/** One point in the allocator x policy x lock x codec matrix. */
struct BackendConfig
{
    EvictPolicy policy = EvictPolicy::Lru;
    AllocKind alloc = AllocKind::Malloc;
    LockKind lock = LockKind::Mutex;
    Codec codec = Codec::Identity;

    bool
    operator==(const BackendConfig &other) const
    {
        return policy == other.policy && alloc == other.alloc &&
            lock == other.lock && codec == other.codec;
    }
};

const char *policyName(EvictPolicy policy);
const char *allocName(AllocKind alloc);
const char *lockName(LockKind lock);
const char *codecName(Codec codec);

/** Parse one component name; throws std::invalid_argument with the
 *  valid spellings on anything else. */
EvictPolicy parsePolicy(const std::string &name);
AllocKind parseAlloc(const std::string &name);
LockKind parseLock(const std::string &name);
Codec parseCodec(const std::string &name);

/**
 * Parse a `--cache-backend` spec: `policy[,alloc[,lock]]` with
 * components `lru|clock`, `malloc|arena`, `mutex|sharded`. Omitted
 * components keep the build default. The codec is not part of the
 * spec (it has its own `--cache-compress` flag) and is copied from
 * the build default. Throws std::invalid_argument on a malformed
 * spec.
 */
BackendConfig parseBackendSpec(const std::string &spec);

/** Format @p config as the canonical `policy,alloc,lock` spec. */
std::string backendSpec(const BackendConfig &config);

/** The build-default backend, from the FAIRCO2_CACHE_* options. */
const BackendConfig &defaultBackend();

/** All 16 allocator x policy x lock x codec combinations, reference
 *  (lru,malloc,mutex,identity) first — the matrix the differential
 *  suite iterates. */
std::vector<BackendConfig> allBackendCombinations();

} // namespace fairco2::cache

#endif // FAIRCO2_CACHE_BACKEND_HH
