#include "optimize/shifting.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fairco2::optimize
{

TemporalShifter::TemporalShifter(std::size_t max_passes)
    : maxPasses_(max_passes)
{
    assert(max_passes > 0);
}

namespace
{

/** Add (or subtract) a job's demand from the aggregate curve. */
void
applyJob(std::vector<double> &demand, const FlexibleJob &job,
         std::size_t start, double sign)
{
    for (std::size_t t = start; t < start + job.durationSlices; ++t)
        demand[t] += sign * job.cores;
}

double
peakOf(const std::vector<double> &demand)
{
    double peak = 0.0;
    for (double d : demand)
        peak = std::max(peak, d);
    return peak;
}

/**
 * Score of placing the job at @p start given the rest of the
 * demand: primary = resulting aggregate peak, secondary = demand
 * mass beneath the job (prefer troughs even when the peak ties).
 */
std::pair<double, double>
placementScore(const std::vector<double> &demand,
               const FlexibleJob &job, std::size_t start)
{
    double window_peak = 0.0;
    double window_mass = 0.0;
    for (std::size_t t = start; t < start + job.durationSlices;
         ++t) {
        window_peak = std::max(window_peak, demand[t] + job.cores);
        window_mass += demand[t];
    }
    double rest_peak = 0.0;
    for (std::size_t t = 0; t < demand.size(); ++t)
        rest_peak = std::max(rest_peak, demand[t]);
    return {std::max(window_peak, rest_peak), window_mass};
}

} // namespace

ShiftResult
TemporalShifter::shift(const trace::TimeSeries &base_demand,
                       const std::vector<FlexibleJob> &jobs) const
{
    const std::size_t horizon = base_demand.size();
    for (const auto &job : jobs) {
        if (job.latestStart < job.earliestStart ||
            job.latestStart + job.durationSlices > horizon) {
            throw std::invalid_argument(
                "flexible job window does not fit the horizon");
        }
    }

    std::vector<double> demand(base_demand.values());
    ShiftResult result;
    result.starts.resize(jobs.size());

    // Initial placement: everything at its earliest start (what an
    // unshifted deployment would do).
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        result.starts[j] = jobs[j].earliestStart;
        applyJob(demand, jobs[j], jobs[j].earliestStart, +1.0);
    }
    result.peakBefore = peakOf(demand);

    // Coordinate descent over job start times.
    for (std::size_t pass = 0; pass < maxPasses_; ++pass) {
        bool changed = false;
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            const auto &job = jobs[j];
            applyJob(demand, job, result.starts[j], -1.0);

            std::size_t best_start = result.starts[j];
            auto best_score =
                placementScore(demand, job, best_start);
            for (std::size_t start = job.earliestStart;
                 start <= job.latestStart; ++start) {
                const auto score =
                    placementScore(demand, job, start);
                if (score < best_score) {
                    best_score = score;
                    best_start = start;
                }
            }
            if (best_start != result.starts[j]) {
                result.starts[j] = best_start;
                changed = true;
            }
            applyJob(demand, job, result.starts[j], +1.0);
        }
        ++result.iterations;
        if (!changed)
            break;
    }

    result.peakAfter = peakOf(demand);
    result.demand =
        trace::TimeSeries(std::move(demand),
                          base_demand.stepSeconds());
    if (result.peakBefore > 0.0) {
        result.peakReductionPercent = 100.0 *
            (result.peakBefore - result.peakAfter) /
            result.peakBefore;
    }
    return result;
}

} // namespace fairco2::optimize
