/**
 * @file
 * Dynamic workload reconfiguration (Figure 13): every interval,
 * re-pick the FAISS configuration that minimizes carbon per query
 * under a tail-latency target, responding to the live grid carbon
 * intensity and the live Fair-CO2 embodied intensity signal.
 */

#ifndef FAIRCO2_OPTIMIZE_DYNAMIC_HH
#define FAIRCO2_OPTIMIZE_DYNAMIC_HH

#include <vector>

#include "carbon/server.hh"
#include "optimize/sweep.hh"
#include "trace/timeseries.hh"
#include "workload/perfmodel.hh"

namespace fairco2::optimize
{

/** Chosen configuration and cost at one decision interval. */
struct DynamicStep
{
    double timeSeconds = 0.0;
    workload::FaissConfig config;
    double carbonPerQueryGrams = 0.0;
    double baselinePerQueryGrams = 0.0;
    double gridCi = 0.0;              //!< gCO2e/kWh at this step
    double coreIntensity = 0.0;       //!< g per core-second
};

/** Outcome of a simulated deployment window. */
struct DynamicResult
{
    std::vector<DynamicStep> steps;
    double optimizedGrams = 0.0;  //!< total with dynamic adaptation
    double baselineGrams = 0.0;   //!< perf-optimal fixed config
    double savingsPercent = 0.0;
    std::size_t configChanges = 0;//!< reconfiguration count
};

/**
 * Simulates the week-long FAISS deployment: a fixed query rate must
 * be served within a tail-latency target; the optimizer re-selects
 * core count, batch size, and index algorithm each step.
 */
class DynamicOptimizer
{
  public:
    DynamicOptimizer(const carbon::ServerCarbonModel &server,
                     const workload::FaissModel &model);

    /**
     * @param grid_ci grid carbon intensity over the window.
     * @param core_intensity live embodied intensity signal for CPU
     *        cores (g per core-second), e.g. from Temporal Shapley
     *        over a demand trace. The DRAM intensity is scaled from
     *        it by the server's mem/core embodied rate ratio.
     * @param latency_target_s tail-latency SLO (the paper uses 2 s).
     * @param queries_per_second offered load; only configurations
     *        whose throughput covers it are feasible, and dynamic
     *        energy scales with the resulting utilization.
     */
    DynamicResult
    optimize(const trace::TimeSeries &grid_ci,
             const trace::TimeSeries &core_intensity,
             double latency_target_s,
             double queries_per_second) const;

  private:
    const carbon::ServerCarbonModel &server_;
    const workload::FaissModel &model_;
};

} // namespace fairco2::optimize

#endif // FAIRCO2_OPTIMIZE_DYNAMIC_HH
