#include "optimize/carboncost.hh"

#include <cassert>

namespace fairco2::optimize
{

CarbonObjective::CarbonObjective(
    const carbon::ServerCarbonModel &server, double grid_g_per_kwh)
    : server_(server), gridGPerKwh_(grid_g_per_kwh),
      coreRate_(server.coreRateGramsPerSecond()),
      memRate_(server.memRateGramsPerSecond())
{
    assert(grid_g_per_kwh >= 0.0);
}

void
CarbonObjective::setEmbodiedRates(double core_g_per_s,
                                  double mem_g_per_s)
{
    assert(core_g_per_s >= 0.0 && mem_g_per_s >= 0.0);
    coreRate_ = core_g_per_s;
    memRate_ = mem_g_per_s;
}

Footprint
CarbonObjective::batchRun(const workload::WorkloadSpec &w,
                          const workload::RunConfig &config,
                          const workload::PerfModel &perf) const
{
    const double runtime = perf.runtimeSeconds(w, config);
    const double dyn_joules = perf.dynamicEnergyJoules(w, config);
    // The run owns the node: the full static draw bills for the
    // whole runtime, so faster configurations save static energy.
    const double static_joules =
        server_.power().staticWatts * runtime;

    Footprint f;
    f.embodiedGrams =
        (config.cores * coreRate_ + config.memoryGb * memRate_) *
        runtime;
    f.staticGrams =
        static_joules / carbon::kJoulesPerKwh * gridGPerKwh_;
    f.dynamicGrams =
        dyn_joules / carbon::kJoulesPerKwh * gridGPerKwh_;
    return f;
}

Footprint
CarbonObjective::faissPerQuery(
    const workload::FaissModel &model,
    const workload::FaissConfig &config) const
{
    const double qps = model.throughputQps(config);
    assert(qps > 0.0);
    const double seconds_per_query = 1.0 / qps;
    const double mem_gb = model.indexMemoryGb(config.index);

    Footprint f;
    f.embodiedGrams =
        (config.cores * coreRate_ + mem_gb * memRate_) *
        seconds_per_query;
    // The service owns its node; the full static draw is part of
    // its footprint regardless of how many cores it enables.
    f.staticGrams = server_.power().staticWatts *
        seconds_per_query / carbon::kJoulesPerKwh * gridGPerKwh_;
    f.dynamicGrams = model.dynamicPowerWatts(config) *
        seconds_per_query / carbon::kJoulesPerKwh * gridGPerKwh_;
    return f;
}

Footprint
CarbonObjective::faissServiceRate(
    const workload::FaissModel &model,
    const workload::FaissConfig &config, double offered_qps) const
{
    const double capacity = model.throughputQps(config);
    assert(offered_qps >= 0.0 && offered_qps <= capacity);
    const double utilization = capacity > 0.0
        ? offered_qps / capacity
        : 0.0;
    const double mem_gb = model.indexMemoryGb(config.index);

    Footprint f;
    f.embodiedGrams =
        config.cores * coreRate_ + mem_gb * memRate_;
    f.staticGrams = server_.power().staticWatts /
        carbon::kJoulesPerKwh * gridGPerKwh_;
    f.dynamicGrams = model.dynamicPowerWatts(config) * utilization /
        carbon::kJoulesPerKwh * gridGPerKwh_;
    return f;
}

} // namespace fairco2::optimize
