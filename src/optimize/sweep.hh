/**
 * @file
 * Configuration sweeps (Section 8): enumerate core/memory
 * configurations for batch workloads and core/batch/index
 * configurations for FAISS, evaluating runtime, latency, and carbon
 * at each point.
 */

#ifndef FAIRCO2_OPTIMIZE_SWEEP_HH
#define FAIRCO2_OPTIMIZE_SWEEP_HH

#include <cstddef>
#include <vector>

#include "optimize/carboncost.hh"
#include "workload/perfmodel.hh"
#include "workload/spec.hh"

namespace fairco2::optimize
{

/** One evaluated batch-workload configuration. */
struct SweepPoint
{
    workload::RunConfig config;
    double runtimeSeconds = 0.0;
    Footprint footprint;
};

/** Batch-workload configuration sweep. */
class ConfigSweep
{
  public:
    /** The paper's core allocations: 8 to 96. */
    static std::vector<double> defaultCoreGrid();

    /** The paper's memory allocations: 8 GB to 192 GB. */
    static std::vector<double> defaultMemoryGrid();

    /**
     * Evaluate every (cores, memory) combination. Memory points
     * below 4 GB of slack under the allocation are kept — the paper
     * notes low-memory configurations crawl, and they are exactly
     * the interesting embodied/runtime trade-off. Grid points
     * evaluate in parallel on the common layer; the returned order
     * (cores-major) and values are independent of the thread count.
     */
    std::vector<SweepPoint>
    sweep(const workload::WorkloadSpec &w,
          const CarbonObjective &objective,
          const workload::PerfModel &perf,
          const std::vector<double> &core_grid = defaultCoreGrid(),
          const std::vector<double> &memory_grid =
              defaultMemoryGrid()) const;

    /** Index of the fastest configuration. */
    static std::size_t
    performanceOptimal(const std::vector<SweepPoint> &points);

    /** Index of the minimum total-carbon configuration. */
    static std::size_t
    carbonOptimal(const std::vector<SweepPoint> &points);

    /** Index of the minimum operational-carbon configuration. */
    static std::size_t
    energyOptimal(const std::vector<SweepPoint> &points);

    /** Index of the minimum embodied-carbon configuration. */
    static std::size_t
    embodiedOptimal(const std::vector<SweepPoint> &points);
};

/** One evaluated FAISS service configuration. */
struct FaissSweepPoint
{
    workload::FaissConfig config;
    double tailLatencySeconds = 0.0;
    Footprint perQuery;
};

/** The paper's FAISS batch sizes: 8 to 1024, powers of two. */
std::vector<double> defaultBatchGrid();

/**
 * Evaluate both indices over the core and batch grids. Points
 * evaluate in parallel; order (index, cores, batch major-to-minor)
 * and values are independent of the thread count.
 */
std::vector<FaissSweepPoint>
faissSweep(const workload::FaissModel &model,
           const CarbonObjective &objective,
           const std::vector<double> &core_grid =
               ConfigSweep::defaultCoreGrid(),
           const std::vector<double> &batch_grid = defaultBatchGrid());

/**
 * Indices of the points on the lower-left Pareto front of
 * (latency, carbon): no other point is better on both axes.
 * Returned in increasing-latency order.
 */
std::vector<std::size_t>
paretoFront(const std::vector<double> &latency,
            const std::vector<double> &carbon);

} // namespace fairco2::optimize

#endif // FAIRCO2_OPTIMIZE_SWEEP_HH
