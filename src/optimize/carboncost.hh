/**
 * @file
 * Carbon objective for the workload-optimization case study
 * (Section 8): evaluates the embodied + operational footprint of a
 * batch run or of a query-serving FAISS configuration under a given
 * grid carbon intensity.
 */

#ifndef FAIRCO2_OPTIMIZE_CARBONCOST_HH
#define FAIRCO2_OPTIMIZE_CARBONCOST_HH

#include "carbon/grid.hh"
#include "carbon/server.hh"
#include "workload/perfmodel.hh"
#include "workload/spec.hh"

namespace fairco2::optimize
{

/** Itemized carbon footprint in grams. */
struct Footprint
{
    double embodiedGrams = 0.0;
    double staticGrams = 0.0;
    double dynamicGrams = 0.0;

    double totalGrams() const
    {
        return embodiedGrams + staticGrams + dynamicGrams;
    }

    /** Operational = static + dynamic. */
    double operationalGrams() const
    {
        return staticGrams + dynamicGrams;
    }
};

/**
 * Evaluates footprints against a server model and grid intensity.
 *
 * Embodied carbon is charged at the amortized per-resource rates
 * (gCO2e per core-second / GB-second). Static energy is charged for
 * the whole node for the duration of the run — the Section 8 setup,
 * where the workload owns the server, so a faster configuration
 * directly cuts static energy (this is why the carbon-optimal core
 * count rises with grid intensity). Dynamic energy comes from the
 * workload's power model.
 */
class CarbonObjective
{
  public:
    CarbonObjective(const carbon::ServerCarbonModel &server,
                    double grid_g_per_kwh);

    /** Footprint of one complete batch run at a configuration. */
    Footprint batchRun(const workload::WorkloadSpec &w,
                       const workload::RunConfig &config,
                       const workload::PerfModel &perf) const;

    /** Footprint per query of a FAISS service configuration
     *  running at capacity. */
    Footprint faissPerQuery(const workload::FaissModel &model,
                            const workload::FaissConfig &config) const;

    /**
     * Footprint per second of a FAISS service holding a node while
     * serving @p offered_qps queries per second: embodied and static
     * carbon accrue with wall-clock time; dynamic power scales with
     * the utilization offered/capacity (the node idles between
     * batches). Requires offered_qps <= the config's throughput.
     */
    Footprint
    faissServiceRate(const workload::FaissModel &model,
                     const workload::FaissConfig &config,
                     double offered_qps) const;

    double gridGPerKwh() const { return gridGPerKwh_; }

    /** Amortized embodied rate per core, g/s. */
    double coreRate() const { return coreRate_; }
    /** Amortized embodied rate per GB, g/s. */
    double memRate() const { return memRate_; }

    /**
     * Override the embodied rates with live Temporal Shapley
     * intensities (used by the dynamic optimizer, Figure 13).
     */
    void setEmbodiedRates(double core_g_per_s, double mem_g_per_s);

  private:
    const carbon::ServerCarbonModel &server_;
    double gridGPerKwh_;
    double coreRate_;
    double memRate_;
};

} // namespace fairco2::optimize

#endif // FAIRCO2_OPTIMIZE_CARBONCOST_HH
