#include "optimize/spatial.hh"

#include <cassert>
#include <limits>
#include <stdexcept>

#include "carbon/grid.hh"

namespace fairco2::optimize
{

double
SpatioTemporalPlacer::jobGrams(const SpatialJob &job,
                               const Region &region,
                               std::size_t start)
{
    assert(start + job.durationSlices <= region.gridCi.size());
    const double step = region.gridCi.stepSeconds();
    double grams = 0.0;
    for (std::size_t t = start; t < start + job.durationSlices;
         ++t) {
        grams += job.cores * region.coreIntensity[t] * step;
        grams += job.cores * job.wattsPerCore * step /
            carbon::kJoulesPerKwh * region.gridCi[t];
    }
    return grams;
}

SpatialResult
SpatioTemporalPlacer::place(const std::vector<SpatialJob> &jobs,
                            const std::vector<Region> &regions) const
{
    if (regions.empty())
        throw std::invalid_argument("no regions to place into");
    const std::size_t horizon = regions.front().gridCi.size();
    for (const auto &region : regions) {
        if (region.gridCi.size() != horizon ||
            region.coreIntensity.size() != horizon) {
            throw std::invalid_argument(
                "regions must share the horizon shape");
        }
    }

    SpatialResult result;
    result.placements.reserve(jobs.size());
    for (const auto &job : jobs) {
        if (job.homeRegion >= regions.size() ||
            job.latestStart < job.earliestStart ||
            job.latestStart + job.durationSlices > horizon) {
            throw std::invalid_argument(
                "job window or home region invalid");
        }

        Placement placement;
        placement.baselineGrams = jobGrams(
            job, regions[job.homeRegion], job.earliestStart);

        double best = std::numeric_limits<double>::infinity();
        for (std::size_t r = 0; r < regions.size(); ++r) {
            for (std::size_t s = job.earliestStart;
                 s <= job.latestStart; ++s) {
                const double grams =
                    jobGrams(job, regions[r], s);
                if (grams < best) {
                    best = grams;
                    placement.region = r;
                    placement.start = s;
                }
            }
        }
        placement.grams = best;
        result.optimizedGrams += best;
        result.baselineGrams += placement.baselineGrams;
        if (placement.region != job.homeRegion)
            ++result.jobsMoved;
        if (placement.start != job.earliestStart)
            ++result.jobsShifted;
        result.placements.push_back(placement);
    }
    if (result.baselineGrams > 0.0) {
        result.savingsPercent = 100.0 *
            (result.baselineGrams - result.optimizedGrams) /
            result.baselineGrams;
    }
    return result;
}

} // namespace fairco2::optimize
