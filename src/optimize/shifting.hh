/**
 * @file
 * Carbon-aware temporal workload shifting: the optimization the
 * paper's introduction motivates ("batch workloads that allow
 * temporal flexibility to smooth peak resource demand should be
 * attributed less embodied carbon"). Given flexible batch jobs and
 * a base demand curve, the shifter picks start slices that minimize
 * the fleet's peak demand — and therefore the minimum capacity and
 * embodied carbon it must be attributed.
 */

#ifndef FAIRCO2_OPTIMIZE_SHIFTING_HH
#define FAIRCO2_OPTIMIZE_SHIFTING_HH

#include <cstddef>
#include <vector>

#include "trace/timeseries.hh"

namespace fairco2::optimize
{

/** A batch job free to start anywhere in a window. */
struct FlexibleJob
{
    double cores = 8.0;
    std::size_t durationSlices = 1;
    std::size_t earliestStart = 0;
    std::size_t latestStart = 0; //!< inclusive
};

/** Outcome of a shifting pass. */
struct ShiftResult
{
    /** Chosen start slice per job. */
    std::vector<std::size_t> starts;
    /** Aggregate demand including the placed jobs. */
    trace::TimeSeries demand;
    double peakBefore = 0.0; //!< jobs at their earliest starts
    double peakAfter = 0.0;
    /** Relative capacity (= embodied carbon) reduction, percent. */
    double peakReductionPercent = 0.0;
    std::size_t iterations = 0;
};

/**
 * Peak-minimizing shifter.
 *
 * Coordinate descent: jobs start at their earliest slot, then each
 * job in turn is moved to the start that minimizes the aggregate
 * peak (ties broken by lower total demand under the job), repeating
 * until a full pass changes nothing. Deterministic; terminates
 * because the (peak, overlap) objective strictly decreases.
 */
class TemporalShifter
{
  public:
    /** @param max_passes safety bound on coordinate-descent passes. */
    explicit TemporalShifter(std::size_t max_passes = 32);

    /**
     * Place @p jobs on top of @p base_demand (inflexible load).
     * Every job window must fit within the horizon.
     */
    ShiftResult shift(const trace::TimeSeries &base_demand,
                      const std::vector<FlexibleJob> &jobs) const;

  private:
    std::size_t maxPasses_;
};

} // namespace fairco2::optimize

#endif // FAIRCO2_OPTIMIZE_SHIFTING_HH
