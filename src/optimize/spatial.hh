/**
 * @file
 * Spatio-temporal job placement: the generalization of temporal
 * shifting that the carbon-aware-computing literature the paper
 * builds on (Carbon Explorer, GreenCourier, "Let's wait awhile")
 * studies — given several regions with their own grid carbon
 * intensity and live embodied intensity signals, choose a region
 * *and* a start time for each flexible batch job.
 *
 * With signals fixed, jobs are independent, so each job's optimal
 * (region, start) is found exactly by enumeration.
 */

#ifndef FAIRCO2_OPTIMIZE_SPATIAL_HH
#define FAIRCO2_OPTIMIZE_SPATIAL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "trace/timeseries.hh"

namespace fairco2::optimize
{

/** One placement region's live carbon signals. */
struct Region
{
    std::string name;
    /** Grid carbon intensity over the horizon, gCO2e/kWh. */
    trace::TimeSeries gridCi;
    /** Embodied intensity for cores, g per core-second. */
    trace::TimeSeries coreIntensity;
};

/** A batch job that may run in any region, within a time window. */
struct SpatialJob
{
    double cores = 8.0;
    /** Average dynamic power per core while running, watts. */
    double wattsPerCore = 3.0;
    std::size_t durationSlices = 1;
    std::size_t earliestStart = 0;
    std::size_t latestStart = 0; //!< inclusive
    /** Region the job would run in without carbon awareness. */
    std::size_t homeRegion = 0;
};

/** Chosen placement and its footprint for one job. */
struct Placement
{
    std::size_t region = 0;
    std::size_t start = 0;
    double grams = 0.0;
    /** Footprint at (homeRegion, earliestStart). */
    double baselineGrams = 0.0;
};

/** Outcome of a placement pass. */
struct SpatialResult
{
    std::vector<Placement> placements;
    double optimizedGrams = 0.0;
    double baselineGrams = 0.0;
    double savingsPercent = 0.0;
    std::size_t jobsMoved = 0;   //!< region changed
    std::size_t jobsShifted = 0; //!< start changed
};

/**
 * Exact per-job spatio-temporal placement.
 *
 * A job's footprint at (region r, start s) is the sum over its
 * slices of cores * coreIntensity_r + cores * wattsPerCore *
 * gridCi_r converted to grams. All regions must share the
 * horizon's shape.
 */
class SpatioTemporalPlacer
{
  public:
    /** Footprint of one job at a specific placement, grams. */
    static double jobGrams(const SpatialJob &job,
                           const Region &region,
                           std::size_t start);

    /** Place every job at its carbon-optimal (region, start). */
    SpatialResult place(const std::vector<SpatialJob> &jobs,
                        const std::vector<Region> &regions) const;
};

} // namespace fairco2::optimize

#endif // FAIRCO2_OPTIMIZE_SPATIAL_HH
