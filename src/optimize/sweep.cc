#include "optimize/sweep.hh"

#include <algorithm>
#include <cassert>
#include <limits>

namespace fairco2::optimize
{

std::vector<double>
ConfigSweep::defaultCoreGrid()
{
    return {8, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96};
}

std::vector<double>
ConfigSweep::defaultMemoryGrid()
{
    return {8, 16, 32, 48, 64, 96, 128, 160, 192};
}

std::vector<SweepPoint>
ConfigSweep::sweep(const workload::WorkloadSpec &w,
                   const CarbonObjective &objective,
                   const workload::PerfModel &perf,
                   const std::vector<double> &core_grid,
                   const std::vector<double> &memory_grid) const
{
    std::vector<SweepPoint> points;
    points.reserve(core_grid.size() * memory_grid.size());
    for (double cores : core_grid) {
        for (double memory : memory_grid) {
            SweepPoint p;
            p.config = {cores, memory};
            p.runtimeSeconds = perf.runtimeSeconds(w, p.config);
            p.footprint = objective.batchRun(w, p.config, perf);
            points.push_back(p);
        }
    }
    return points;
}

namespace
{

template <typename Key>
std::size_t
argmin(const std::vector<SweepPoint> &points, Key &&key)
{
    assert(!points.empty());
    std::size_t best = 0;
    double best_val = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double v = key(points[i]);
        if (v < best_val) {
            best_val = v;
            best = i;
        }
    }
    return best;
}

} // namespace

std::size_t
ConfigSweep::performanceOptimal(const std::vector<SweepPoint> &points)
{
    // A performance-focused user overprovisions: among equally fast
    // configurations, take the largest allocation. This is the
    // baseline the carbon-optimal configuration is normalized to.
    assert(!points.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < points.size(); ++i) {
        const auto &p = points[i];
        const auto &b = points[best];
        if (p.runtimeSeconds < b.runtimeSeconds ||
            (p.runtimeSeconds == b.runtimeSeconds &&
             (p.config.cores > b.config.cores ||
              (p.config.cores == b.config.cores &&
               p.config.memoryGb > b.config.memoryGb)))) {
            best = i;
        }
    }
    return best;
}

std::size_t
ConfigSweep::carbonOptimal(const std::vector<SweepPoint> &points)
{
    return argmin(points, [](const SweepPoint &p) {
        return p.footprint.totalGrams();
    });
}

std::size_t
ConfigSweep::energyOptimal(const std::vector<SweepPoint> &points)
{
    return argmin(points, [](const SweepPoint &p) {
        return p.footprint.operationalGrams();
    });
}

std::size_t
ConfigSweep::embodiedOptimal(const std::vector<SweepPoint> &points)
{
    return argmin(points, [](const SweepPoint &p) {
        return p.footprint.embodiedGrams;
    });
}

std::vector<double>
defaultBatchGrid()
{
    return {8, 16, 32, 64, 128, 256, 512, 1024};
}

std::vector<FaissSweepPoint>
faissSweep(const workload::FaissModel &model,
           const CarbonObjective &objective,
           const std::vector<double> &core_grid,
           const std::vector<double> &batch_grid)
{
    std::vector<FaissSweepPoint> points;
    points.reserve(2 * core_grid.size() * batch_grid.size());
    for (auto index :
         {workload::FaissIndex::IVF, workload::FaissIndex::HNSW}) {
        for (double cores : core_grid) {
            for (double batch : batch_grid) {
                FaissSweepPoint p;
                p.config = {index, cores, batch};
                p.tailLatencySeconds =
                    model.tailLatencySeconds(p.config);
                p.perQuery = objective.faissPerQuery(model, p.config);
                points.push_back(p);
            }
        }
    }
    return points;
}

std::vector<std::size_t>
paretoFront(const std::vector<double> &latency,
            const std::vector<double> &carbon)
{
    assert(latency.size() == carbon.size());
    std::vector<std::size_t> order(latency.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (latency[a] != latency[b])
                      return latency[a] < latency[b];
                  return carbon[a] < carbon[b];
              });

    std::vector<std::size_t> front;
    double best_carbon = std::numeric_limits<double>::infinity();
    for (std::size_t idx : order) {
        if (carbon[idx] < best_carbon) {
            front.push_back(idx);
            best_carbon = carbon[idx];
        }
    }
    return front;
}

} // namespace fairco2::optimize
