#include "optimize/sweep.hh"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/parallel.hh"

namespace fairco2::optimize
{

std::vector<double>
ConfigSweep::defaultCoreGrid()
{
    return {8, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96};
}

std::vector<double>
ConfigSweep::defaultMemoryGrid()
{
    return {8, 16, 32, 48, 64, 96, 128, 160, 192};
}

std::vector<SweepPoint>
ConfigSweep::sweep(const workload::WorkloadSpec &w,
                   const CarbonObjective &objective,
                   const workload::PerfModel &perf,
                   const std::vector<double> &core_grid,
                   const std::vector<double> &memory_grid) const
{
    // Flatten the grid so each point evaluates independently in
    // parallel; points land at their grid index, preserving the
    // serial (cores-major) ordering exactly.
    const std::size_t num_memory = memory_grid.size();
    std::vector<SweepPoint> points(core_grid.size() * num_memory);
    parallel::parallelFor(
        0, points.size(), num_memory,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                SweepPoint &p = points[i];
                p.config = {core_grid[i / num_memory],
                            memory_grid[i % num_memory]};
                p.runtimeSeconds = perf.runtimeSeconds(w, p.config);
                p.footprint = objective.batchRun(w, p.config, perf);
            }
        });
    return points;
}

namespace
{

template <typename Key>
std::size_t
argmin(const std::vector<SweepPoint> &points, Key &&key)
{
    assert(!points.empty());
    std::size_t best = 0;
    double best_val = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double v = key(points[i]);
        if (v < best_val) {
            best_val = v;
            best = i;
        }
    }
    return best;
}

} // namespace

std::size_t
ConfigSweep::performanceOptimal(const std::vector<SweepPoint> &points)
{
    // A performance-focused user overprovisions: among equally fast
    // configurations, take the largest allocation. This is the
    // baseline the carbon-optimal configuration is normalized to.
    assert(!points.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < points.size(); ++i) {
        const auto &p = points[i];
        const auto &b = points[best];
        if (p.runtimeSeconds < b.runtimeSeconds ||
            (p.runtimeSeconds == b.runtimeSeconds &&
             (p.config.cores > b.config.cores ||
              (p.config.cores == b.config.cores &&
               p.config.memoryGb > b.config.memoryGb)))) {
            best = i;
        }
    }
    return best;
}

std::size_t
ConfigSweep::carbonOptimal(const std::vector<SweepPoint> &points)
{
    return argmin(points, [](const SweepPoint &p) {
        return p.footprint.totalGrams();
    });
}

std::size_t
ConfigSweep::energyOptimal(const std::vector<SweepPoint> &points)
{
    return argmin(points, [](const SweepPoint &p) {
        return p.footprint.operationalGrams();
    });
}

std::size_t
ConfigSweep::embodiedOptimal(const std::vector<SweepPoint> &points)
{
    return argmin(points, [](const SweepPoint &p) {
        return p.footprint.embodiedGrams;
    });
}

std::vector<double>
defaultBatchGrid()
{
    return {8, 16, 32, 64, 128, 256, 512, 1024};
}

std::vector<FaissSweepPoint>
faissSweep(const workload::FaissModel &model,
           const CarbonObjective &objective,
           const std::vector<double> &core_grid,
           const std::vector<double> &batch_grid)
{
    // Same flattening as ConfigSweep::sweep: (index, cores, batch)
    // major-to-minor, each point independent and written in place.
    const std::size_t num_batch = batch_grid.size();
    const std::size_t per_index = core_grid.size() * num_batch;
    std::vector<FaissSweepPoint> points(2 * per_index);
    parallel::parallelFor(
        0, points.size(), num_batch,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto index = i < per_index
                    ? workload::FaissIndex::IVF
                    : workload::FaissIndex::HNSW;
                const std::size_t within = i % per_index;
                FaissSweepPoint &p = points[i];
                p.config = {index, core_grid[within / num_batch],
                            batch_grid[within % num_batch]};
                p.tailLatencySeconds =
                    model.tailLatencySeconds(p.config);
                p.perQuery = objective.faissPerQuery(model, p.config);
            }
        });
    return points;
}

std::vector<std::size_t>
paretoFront(const std::vector<double> &latency,
            const std::vector<double> &carbon)
{
    assert(latency.size() == carbon.size());
    std::vector<std::size_t> order(latency.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (latency[a] != latency[b])
                      return latency[a] < latency[b];
                  return carbon[a] < carbon[b];
              });

    std::vector<std::size_t> front;
    double best_carbon = std::numeric_limits<double>::infinity();
    for (std::size_t idx : order) {
        if (carbon[idx] < best_carbon) {
            front.push_back(idx);
            best_carbon = carbon[idx];
        }
    }
    return front;
}

} // namespace fairco2::optimize
