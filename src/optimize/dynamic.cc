#include "optimize/dynamic.hh"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace fairco2::optimize
{

DynamicOptimizer::DynamicOptimizer(
    const carbon::ServerCarbonModel &server,
    const workload::FaissModel &model)
    : server_(server), model_(model)
{
}

DynamicResult
DynamicOptimizer::optimize(const trace::TimeSeries &grid_ci,
                           const trace::TimeSeries &core_intensity,
                           double latency_target_s,
                           double queries_per_second) const
{
    assert(latency_target_s > 0.0);
    assert(queries_per_second > 0.0);
    if (core_intensity.empty())
        throw std::invalid_argument("empty intensity signal");

    // Candidate configurations, with latencies (latency does not
    // depend on the carbon signals, so compute once).
    CarbonObjective probe(server_, 0.0);
    const auto candidates = faissSweep(model_, probe);

    // Feasible set: meets the SLO and can absorb the offered load.
    std::vector<std::size_t> feasible;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].tailLatencySeconds <= latency_target_s &&
            model_.throughputQps(candidates[i].config) >=
                queries_per_second) {
            feasible.push_back(i);
        }
    }
    if (feasible.empty())
        throw std::invalid_argument(
            "no configuration meets the latency target at the "
            "offered load");

    // Performance-optimal baseline: the lowest-latency feasible
    // candidate, held fixed for the whole window.
    std::size_t perf_best = feasible.front();
    for (std::size_t i : feasible) {
        if (candidates[i].tailLatencySeconds <
            candidates[perf_best].tailLatencySeconds) {
            perf_best = i;
        }
    }

    const double mem_per_core_ratio =
        server_.memRateGramsPerSecond() /
        server_.coreRateGramsPerSecond();
    const double step = core_intensity.stepSeconds();

    DynamicResult result;
    result.steps.reserve(core_intensity.size());

    workload::FaissConfig previous{};
    bool have_previous = false;

    for (std::size_t t = 0; t < core_intensity.size(); ++t) {
        const double now = (static_cast<double>(t) + 0.5) * step;
        const double ci = grid_ci.at(now);
        const double core_rate = core_intensity[t];
        const double mem_rate = core_rate * mem_per_core_ratio;

        CarbonObjective objective(server_, ci);
        objective.setEmbodiedRates(core_rate, mem_rate);

        double best_rate = std::numeric_limits<double>::infinity();
        workload::FaissConfig best_config{};
        for (std::size_t idx : feasible) {
            const auto &cand = candidates[idx];
            const double rate =
                objective
                    .faissServiceRate(model_, cand.config,
                                      queries_per_second)
                    .totalGrams();
            if (rate < best_rate) {
                best_rate = rate;
                best_config = cand.config;
            }
        }

        const double baseline_rate =
            objective
                .faissServiceRate(model_,
                                  candidates[perf_best].config,
                                  queries_per_second)
                .totalGrams();

        DynamicStep s;
        s.timeSeconds = now;
        s.config = best_config;
        s.carbonPerQueryGrams = best_rate / queries_per_second;
        s.baselinePerQueryGrams =
            baseline_rate / queries_per_second;
        s.gridCi = ci;
        s.coreIntensity = core_rate;
        result.steps.push_back(s);

        result.optimizedGrams += best_rate * step;
        result.baselineGrams += baseline_rate * step;

        if (have_previous &&
            (previous.index != best_config.index ||
             previous.cores != best_config.cores ||
             previous.batch != best_config.batch)) {
            ++result.configChanges;
        }
        previous = best_config;
        have_previous = true;
    }

    if (result.baselineGrams > 0.0) {
        result.savingsPercent = 100.0 *
            (result.baselineGrams - result.optimizedGrams) /
            result.baselineGrams;
    }
    return result;
}

} // namespace fairco2::optimize
