#include "workload/suite.hh"

#include <cassert>
#include <stdexcept>

namespace fairco2::workload
{

namespace
{

/**
 * Build one spec. Parameter order mirrors the columns of the
 * calibration table in DESIGN.md: behaviour at the reference
 * allocation, then the two interference channels (pressure,
 * sensitivity), then the configuration-scaling model.
 */
WorkloadSpec
make(const std::string &name, double iso_runtime_s, double util,
     double dyn_watts, double bw_press, double bw_sens,
     double llc_press, double llc_sens, double par_frac,
     double smt_eff, double max_cores, double working_set_gb)
{
    WorkloadSpec w;
    w.name = name;
    w.isoRuntimeSeconds = iso_runtime_s;
    w.cpuUtilization = util;
    w.dynamicPowerWatts = dyn_watts;
    w.bwPressure = bw_press;
    w.bwSensitivity = bw_sens;
    w.llcPressure = llc_press;
    w.llcSensitivity = llc_sens;
    w.parallelFraction = par_frac;
    w.smtEfficiency = smt_eff;
    w.maxUsefulCores = max_cores;
    w.workingSetGb = working_set_gb;
    return w;
}

} // namespace

Suite::Suite()
{
    specs_.reserve(kSuiteSize);

    // The NBODY/CH pair is calibrated to the paper's headline numbers
    // (Figure 2): colocated with CH, NBODY runs 87% longer; CH runs
    // 39% longer next to NBODY. Other entries follow the qualitative
    // characterization: graph/string kernels and LLAMA are memory-
    // bandwidth heavy; H.265 is compute-bound and SMT-friendly;
    // pgbench load grows with client count; HNSW stops scaling past
    // 88 cores and has the larger index (180.8 GB vs 77.7 GB).
    specs_.push_back(make("DDUP", 620, 0.95, 150,
                          0.55, 0.50, 0.30, 0.40,
                          0.96, 0.30, 96, 60));
    specs_.push_back(make("BFS", 910, 0.85, 120,
                          0.65, 0.70, 0.40, 0.50,
                          0.94, 0.25, 96, 80));
    specs_.push_back(make("MSF", 1120, 0.85, 125,
                          0.60, 0.65, 0.40, 0.45,
                          0.93, 0.25, 96, 85));
    specs_.push_back(make("WC", 705, 0.90, 135,
                          0.70, 0.60, 0.35, 0.40,
                          0.97, 0.35, 96, 70));
    specs_.push_back(make("SA", 1310, 0.90, 140,
                          0.75, 0.75, 0.45, 0.50,
                          0.95, 0.30, 96, 90));
    specs_.push_back(make("CH", 790, 0.95, 160,
                          0.60, 0.45, 0.35, 0.35,
                          0.96, 0.30, 96, 50));
    specs_.push_back(make("NN", 655, 0.90, 145,
                          0.50, 0.55, 0.30, 0.45,
                          0.95, 0.30, 96, 55));
    specs_.push_back(make("NBODY", 1005, 1.00, 175,
                          0.55, 1.10, 0.35, 0.60,
                          0.98, 0.40, 96, 20));
    specs_.push_back(make("PG-10", 890, 0.25, 60,
                          0.15, 0.30, 0.10, 0.25,
                          0.60, 0.15, 32, 30));
    specs_.push_back(make("PG-50", 905, 0.55, 95,
                          0.30, 0.40, 0.20, 0.35,
                          0.75, 0.20, 64, 40));
    specs_.push_back(make("PG-100", 915, 0.75, 120,
                          0.45, 0.50, 0.30, 0.40,
                          0.82, 0.20, 96, 50));
    specs_.push_back(make("H265", 1210, 0.95, 165,
                          0.35, 0.35, 0.25, 0.30,
                          0.92, 0.45, 96, 16));
    specs_.push_back(make("LLAMA", 810, 0.90, 155,
                          0.85, 0.80, 0.50, 0.45,
                          0.90, 0.10, 64, 18));
    specs_.push_back(make("FAISS-IVF", 745, 0.95, 170,
                          0.60, 0.55, 0.45, 0.40,
                          0.97, 0.35, 96, 78));
    specs_.push_back(make("FAISS-HNSW", 855, 0.85, 130,
                          0.70, 0.65, 0.50, 0.45,
                          0.95, 0.15, 88, 92));
    specs_.push_back(make("SPARK", 1010, 0.80, 140,
                          0.55, 0.60, 0.40, 0.45,
                          0.90, 0.25, 96, 88));

    assert(specs_.size() == kSuiteSize);
}

const WorkloadSpec &
Suite::get(WorkloadId id) const
{
    return at(static_cast<std::size_t>(id));
}

const WorkloadSpec &
Suite::at(std::size_t index) const
{
    assert(index < specs_.size());
    return specs_[index];
}

const WorkloadSpec &
Suite::byName(const std::string &name) const
{
    for (const auto &spec : specs_) {
        if (spec.name == name)
            return spec;
    }
    throw std::out_of_range("unknown workload: " + name);
}

} // namespace fairco2::workload
