#include "workload/perfmodel.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fairco2::workload
{

PerfModel::PerfModel(double physical_cores)
    : physicalCores_(physical_cores), smtPowerShare_(0.30)
{
    assert(physical_cores > 0.0);
}

double
PerfModel::effectiveCores(const WorkloadSpec &w, double cores) const
{
    assert(cores >= 1.0);
    const double useful = std::min(cores, w.maxUsefulCores);
    const double physical = std::min(useful, physicalCores_);
    const double logical = std::max(0.0, useful - physicalCores_);
    return physical + logical * w.smtEfficiency;
}

double
PerfModel::speedup(const WorkloadSpec &w, double cores) const
{
    const double u = effectiveCores(w, cores);
    const double f = w.parallelFraction;
    return 1.0 / ((1.0 - f) + f / u);
}

double
PerfModel::memoryPenalty(const WorkloadSpec &w, double memory_gb) const
{
    assert(memory_gb > 0.0);
    if (memory_gb >= w.workingSetGb)
        return 1.0;
    return std::pow(w.workingSetGb / memory_gb, w.memPenaltyExponent);
}

double
PerfModel::runtimeSeconds(const WorkloadSpec &w,
                          const RunConfig &config) const
{
    // isoRuntimeSeconds is defined at the reference allocation
    // (48 cores, ample memory); rescale by relative speedup.
    const double ref_speedup = speedup(w, kHalfNodeCores);
    return w.isoRuntimeSeconds * ref_speedup / speedup(w, config.cores) *
        memoryPenalty(w, config.memoryGb);
}

double
PerfModel::powerUnits(double cores) const
{
    const double physical = std::min(cores, physicalCores_);
    const double logical = std::max(0.0, cores - physicalCores_);
    return physical + logical * smtPowerShare_;
}

double
PerfModel::dynamicPowerWatts(const WorkloadSpec &w,
                             const RunConfig &config) const
{
    // dynamicPowerWatts is calibrated at the reference 48 cores.
    const double scale =
        powerUnits(std::min(config.cores, w.maxUsefulCores)) /
        powerUnits(kHalfNodeCores);
    // A memory-starved run stalls on paging and draws a bit less
    // power while it crawls.
    const double penalty = memoryPenalty(w, config.memoryGb);
    const double stall_dip = 1.0 - 0.15 * (1.0 - 1.0 / penalty);
    return w.dynamicPowerWatts * scale * stall_dip;
}

double
PerfModel::dynamicEnergyJoules(const WorkloadSpec &w,
                               const RunConfig &config) const
{
    return dynamicPowerWatts(w, config) * runtimeSeconds(w, config);
}

const char *
faissIndexName(FaissIndex index)
{
    return index == FaissIndex::IVF ? "IVF" : "HNSW";
}

FaissModel::FaissModel()
    : perf_(48.0)
{
    // Only the scaling-related fields of these specs are used; they
    // describe how each index parallelizes, not a batch job.
    ivfScaling_.name = "FAISS-IVF";
    ivfScaling_.parallelFraction = 0.988;
    ivfScaling_.smtEfficiency = 0.35;
    ivfScaling_.maxUsefulCores = 96.0;

    hnswScaling_.name = "FAISS-HNSW";
    hnswScaling_.parallelFraction = 0.975;
    hnswScaling_.smtEfficiency = 0.15;
    hnswScaling_.maxUsefulCores = 88.0;
}

const WorkloadSpec &
FaissModel::scalingSpec(FaissIndex index) const
{
    return index == FaissIndex::IVF ? ivfScaling_ : hnswScaling_;
}

double
FaissModel::indexMemoryGb(FaissIndex index) const
{
    // The paper's measured index sizes for 100M vectors.
    return index == FaissIndex::IVF ? 77.7 : 180.8;
}

double
FaissModel::peakThroughputQps(FaissIndex index, double cores) const
{
    // Single-core saturated throughput; IVF is a bit faster per
    // core and keeps scaling to all 96 cores.
    const double base_qps = index == FaissIndex::IVF ? 36.0 : 34.0;
    return base_qps * perf_.speedup(scalingSpec(index), cores);
}

double
FaissModel::throughputQps(const FaissConfig &config) const
{
    // Batching amortizes per-query overhead; half-saturation around
    // batch 48.
    const double batch_eff = config.batch / (config.batch + 48.0);
    return peakThroughputQps(config.index, config.cores) * batch_eff;
}

double
FaissModel::tailLatencySeconds(const FaissConfig &config) const
{
    // A batch completes in batch/throughput; tail latency adds queue
    // and straggler headroom.
    const double service = config.batch / throughputQps(config);
    return 1.30 * service + 0.05;
}

double
FaissModel::dynamicPowerWatts(const FaissConfig &config) const
{
    // Per-power-unit draw: IVF's scans burn more than HNSW's pointer
    // chasing.
    const double watts_per_unit =
        config.index == FaissIndex::IVF ? 3.6 : 1.6;
    const double useful =
        std::min(config.cores, scalingSpec(config.index).maxUsefulCores);
    return watts_per_unit * perf_.powerUnits(useful);
}

} // namespace fairco2::workload
