/**
 * @file
 * Workload descriptions: everything the attribution and optimization
 * machinery needs to know about one benchmark workload.
 *
 * The paper profiles real binaries (PBBS, pgbench, x265, llama.cpp,
 * FAISS, Spark) on a 2x Xeon 6240R server. Here each workload is a
 * calibrated analytic model; the attribution methods only ever consume
 * the runtimes, utilizations, powers, and allocations these models
 * produce, so the substitution exercises identical code paths (see
 * DESIGN.md).
 */

#ifndef FAIRCO2_WORKLOAD_SPEC_HH
#define FAIRCO2_WORKLOAD_SPEC_HH

#include <string>

namespace fairco2::workload
{

/** Reference allocation used in the colocation study: half a node. */
constexpr double kHalfNodeCores = 48.0;
constexpr double kHalfNodeMemGb = 96.0;

/** Static description of one workload. */
struct WorkloadSpec
{
    std::string name;

    // --- Behaviour at the reference allocation, running alone. ---
    /** Isolated runtime at 48 cores / 96 GB, seconds. */
    double isoRuntimeSeconds = 600.0;
    /** Busy fraction of allocated cores when isolated, [0, 1]. */
    double cpuUtilization = 0.9;
    /** Average dynamic power draw when isolated, watts. */
    double dynamicPowerWatts = 140.0;

    // --- Allocation. ---
    double cores = kHalfNodeCores;
    double memoryGb = kHalfNodeMemGb;

    // --- Interference characteristics (Bubble-Up-style). ---
    /** Pressure exerted on memory bandwidth, [0, 1]. */
    double bwPressure = 0.5;
    /** Slowdown per unit of partner memory-bandwidth pressure. */
    double bwSensitivity = 0.5;
    /** Pressure exerted on the last-level cache, [0, 1]. */
    double llcPressure = 0.3;
    /** Slowdown per unit of partner cache pressure. */
    double llcSensitivity = 0.4;

    // --- Configuration-scaling model (Section 8 case study). ---
    /** Amdahl parallel fraction of the work. */
    double parallelFraction = 0.95;
    /** Marginal throughput of a logical core beyond the physical 48. */
    double smtEfficiency = 0.3;
    /** Core count past which added cores contribute nothing. */
    double maxUsefulCores = 96.0;
    /** Working-set size; allocations below this pay a penalty, GB. */
    double workingSetGb = 64.0;
    /** Sharpness of the low-memory penalty. */
    double memPenaltyExponent = 1.5;
};

} // namespace fairco2::workload

#endif // FAIRCO2_WORKLOAD_SPEC_HH
