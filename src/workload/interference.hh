/**
 * @file
 * Pairwise interference model (Bubble-Up-style pressure/sensitivity)
 * and the colocation "measurement" it implies. This is the substrate
 * behind Figure 2 and every colocation experiment.
 */

#ifndef FAIRCO2_WORKLOAD_INTERFERENCE_HH
#define FAIRCO2_WORKLOAD_INTERFERENCE_HH

#include <utility>
#include <vector>

#include "workload/spec.hh"

namespace fairco2::workload
{

/** What one profiled run of a workload looks like. */
struct RunMetrics
{
    double runtimeSeconds = 0.0;
    /** Average dynamic power drawn by this workload, watts. */
    double avgDynamicPowerWatts = 0.0;
    /** Integral of dynamic power over the run, joules. */
    double dynamicEnergyJoules = 0.0;
    /** Busy fraction of the workload's allocated cores. */
    double cpuUtilization = 0.0;
};

/**
 * Deterministic interference model.
 *
 * A victim's slowdown under a given aggressor is
 *   1 + bwSens_v * bwPress_a + llcSens_v * llcPress_a,
 * i.e., contention on memory bandwidth and last-level cache compose
 * additively — the first-order behaviour Bubble-Up characterizes.
 * Under contention cores stall more, so average power dips slightly
 * even as total energy rises with the longer runtime.
 */
class InterferenceModel
{
  public:
    InterferenceModel();

    /**
     * Runtime multiplier (>= 1) experienced by @p victim when
     * sharing a node with @p aggressor.
     */
    double slowdown(const WorkloadSpec &victim,
                    const WorkloadSpec &aggressor) const;

    /** Metrics for @p w running alone on a node. */
    RunMetrics isolated(const WorkloadSpec &w) const;

    /**
     * Metrics for @p w when colocated with @p partner (each keeps
     * its own half-node allocation).
     */
    RunMetrics colocated(const WorkloadSpec &w,
                         const WorkloadSpec &partner) const;

    /** Both sides of a colocation at once: {for a, for b}. */
    std::pair<RunMetrics, RunMetrics>
    colocatedPair(const WorkloadSpec &a, const WorkloadSpec &b) const;

    /**
     * Slowdown of @p victim sharing a node with several
     * @p aggressors (each on its own slot). Per-channel pressure
     * adds across aggressors and saturates at 1.0 — a fully
     * contended bus cannot get more contended — so for a single
     * partner with in-range pressures this reduces exactly to
     * slowdown().
     */
    double multiSlowdown(const WorkloadSpec &victim,
                         const std::vector<const WorkloadSpec *>
                             &aggressors) const;

    /** Metrics for @p w sharing a node with @p partners. */
    RunMetrics colocatedMulti(const WorkloadSpec &w,
                              const std::vector<const WorkloadSpec *>
                                  &partners) const;

    /**
     * Fractional drop in average power per unit of stall-induced
     * slowdown (default 0.25: an 87% slowdown drops power ~12%).
     */
    double powerDipFactor() const { return powerDipFactor_; }

  private:
    double powerDipFactor_;
};

} // namespace fairco2::workload

#endif // FAIRCO2_WORKLOAD_INTERFERENCE_HH
