/**
 * @file
 * Configuration-dependent performance/power models: how runtime,
 * power, and utilization change as a workload's core count, memory
 * allocation, or (for FAISS) batch size and index choice vary. These
 * drive the Section 8 carbon-optimization case study (Figures 10, 12,
 * and 13).
 */

#ifndef FAIRCO2_WORKLOAD_PERFMODEL_HH
#define FAIRCO2_WORKLOAD_PERFMODEL_HH

#include "workload/spec.hh"

namespace fairco2::workload
{

/** A point in the sweep space of Figure 10. */
struct RunConfig
{
    double cores = kHalfNodeCores;
    double memoryGb = kHalfNodeMemGb;
};

/**
 * Analytic scaling model for the batch workloads (PBBS, Spark,
 * pgbench, H.265, LLAMA).
 *
 * Core scaling is Amdahl's law over "effective" cores: all physical
 * cores count fully; logical (SMT) cores beyond the physical count
 * contribute spec.smtEfficiency each; cores beyond spec.maxUsefulCores
 * contribute nothing. Memory allocations below the working set pay a
 * (workingSet / memory)^exponent runtime penalty. Dynamic power grows
 * with active cores, but a second hardware thread on a busy core is
 * much cheaper than a fresh core — which is why the energy per
 * utilization-second falls at high core counts, as the paper observes.
 */
class PerfModel
{
  public:
    /** @param physical_cores cores before SMT sharing kicks in. */
    explicit PerfModel(double physical_cores = 48.0);

    /** Amdahl effective parallelism for @p w at @p cores. */
    double effectiveCores(const WorkloadSpec &w, double cores) const;

    /** Speedup versus a single core. */
    double speedup(const WorkloadSpec &w, double cores) const;

    /** Runtime multiplier (>= 1) for a memory allocation. */
    double memoryPenalty(const WorkloadSpec &w, double memory_gb) const;

    /** Isolated runtime at an arbitrary configuration, seconds. */
    double runtimeSeconds(const WorkloadSpec &w,
                          const RunConfig &config) const;

    /** Average dynamic power at a configuration, watts. */
    double dynamicPowerWatts(const WorkloadSpec &w,
                             const RunConfig &config) const;

    /** Dynamic energy for one complete run, joules. */
    double dynamicEnergyJoules(const WorkloadSpec &w,
                               const RunConfig &config) const;

    /**
     * Power-equivalent core count: physical cores count 1.0, SMT
     * cores smtPowerShare_ each.
     */
    double powerUnits(double cores) const;

  private:
    double physicalCores_;
    double smtPowerShare_;
};

/** FAISS retrieval algorithm choice. */
enum class FaissIndex { IVF, HNSW };

/** Human-readable name of an index. */
const char *faissIndexName(FaissIndex index);

/** A point in the FAISS sweep space (Figures 12 and 13). */
struct FaissConfig
{
    FaissIndex index = FaissIndex::IVF;
    double cores = 48.0;
    double batch = 64.0;
};

/**
 * Throughput/latency/power model for the FAISS retrieval service.
 *
 * Calibrated to the paper's characterization: IVF scales to all 96
 * cores and runs faster at small batches; HNSW stops scaling past 88
 * cores, draws less power, and needs the larger index (180.8 GB vs
 * 77.7 GB) — hence HNSW's higher embodied-to-operational ratio and
 * the IVF->HNSW carbon crossover as grid intensity rises.
 */
class FaissModel
{
  public:
    FaissModel();

    /** Resident index size in GB. */
    double indexMemoryGb(FaissIndex index) const;

    /** Saturated queries/second at @p cores (large batches). */
    double peakThroughputQps(FaissIndex index, double cores) const;

    /** Achieved queries/second at a configuration. */
    double throughputQps(const FaissConfig &config) const;

    /** Tail (p99-style) latency of a batch, seconds. */
    double tailLatencySeconds(const FaissConfig &config) const;

    /** Average dynamic power at a configuration, watts. */
    double dynamicPowerWatts(const FaissConfig &config) const;

  private:
    PerfModel perf_;
    WorkloadSpec ivfScaling_;
    WorkloadSpec hnswScaling_;

    const WorkloadSpec &scalingSpec(FaissIndex index) const;
};

} // namespace fairco2::workload

#endif // FAIRCO2_WORKLOAD_PERFMODEL_HH
