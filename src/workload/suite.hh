/**
 * @file
 * The 16-workload evaluation suite from the Fair-CO2 paper: eight PBBS
 * kernels, PostgreSQL at three client loads, H.265 encoding, Llama
 * inference, two FAISS indices, and Apache Spark.
 */

#ifndef FAIRCO2_WORKLOAD_SUITE_HH
#define FAIRCO2_WORKLOAD_SUITE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "workload/spec.hh"

namespace fairco2::workload
{

/** Stable identifiers for the suite members. */
enum class WorkloadId : int
{
    DDUP = 0,   //!< PBBS: deduplicate 2B random integers
    BFS,        //!< PBBS: breadth-first search, 640M-node graph
    MSF,        //!< PBBS: minimum spanning forest
    WC,         //!< PBBS: word count over 500B characters
    SA,         //!< PBBS: suffix array over 500B characters
    CH,         //!< PBBS: convex hull of 1B 2-D points
    NN,         //!< PBBS: 10-nearest-neighbours of 50M 3-D points
    NBODY,      //!< PBBS: n-body forces for 10M 3-D points
    PG10,       //!< pgbench, 10 clients
    PG50,       //!< pgbench, 50 clients
    PG100,      //!< pgbench, 100 clients
    H265,       //!< x265 4K video encoding
    LLAMA,      //!< llama.cpp Llama-3-8B CPU inference
    FAISS_IVF,  //!< FAISS retrieval, inverted-file index
    FAISS_HNSW, //!< FAISS retrieval, HNSW graph index
    SPARK,      //!< PySpark TPC-DS store_sales queries
};

/** Number of workloads in the suite. */
constexpr std::size_t kSuiteSize = 16;

/** Immutable registry of the calibrated workload models. */
class Suite
{
  public:
    Suite();

    /** All workloads in WorkloadId order. */
    const std::vector<WorkloadSpec> &all() const { return specs_; }

    std::size_t size() const { return specs_.size(); }

    /** Lookup by id. */
    const WorkloadSpec &get(WorkloadId id) const;

    /** Lookup by position (same order as WorkloadId). */
    const WorkloadSpec &at(std::size_t index) const;

    /**
     * Lookup by name (e.g., "NBODY").
     * @throws std::out_of_range for unknown names.
     */
    const WorkloadSpec &byName(const std::string &name) const;

  private:
    std::vector<WorkloadSpec> specs_;
};

} // namespace fairco2::workload

#endif // FAIRCO2_WORKLOAD_SUITE_HH
