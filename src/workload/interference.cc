#include "workload/interference.hh"

#include <algorithm>
#include <cassert>

namespace fairco2::workload
{

InterferenceModel::InterferenceModel()
    : powerDipFactor_(0.25)
{
}

double
InterferenceModel::slowdown(const WorkloadSpec &victim,
                            const WorkloadSpec &aggressor) const
{
    const double s = 1.0 +
        victim.bwSensitivity * aggressor.bwPressure +
        victim.llcSensitivity * aggressor.llcPressure;
    assert(s >= 1.0);
    return s;
}

RunMetrics
InterferenceModel::isolated(const WorkloadSpec &w) const
{
    RunMetrics m;
    m.runtimeSeconds = w.isoRuntimeSeconds;
    m.avgDynamicPowerWatts = w.dynamicPowerWatts;
    m.dynamicEnergyJoules = w.dynamicPowerWatts * w.isoRuntimeSeconds;
    m.cpuUtilization = w.cpuUtilization;
    return m;
}

namespace
{

/** Run metrics implied by a given slowdown factor. */
RunMetrics
metricsAtSlowdown(const WorkloadSpec &w, double s,
                  double power_dip_factor)
{
    RunMetrics m;
    m.runtimeSeconds = w.isoRuntimeSeconds * s;
    m.avgDynamicPowerWatts = w.dynamicPowerWatts *
        (1.0 - power_dip_factor * (1.0 - 1.0 / s));
    m.dynamicEnergyJoules = m.avgDynamicPowerWatts * m.runtimeSeconds;
    m.cpuUtilization =
        std::min(1.0, w.cpuUtilization * (1.0 + 0.05 * (s - 1.0)));
    return m;
}

} // namespace

RunMetrics
InterferenceModel::colocated(const WorkloadSpec &w,
                             const WorkloadSpec &partner) const
{
    // Stalled cycles burn less power than retiring ones, so average
    // power dips with slowdown, but the longer runtime dominates and
    // total dynamic energy rises. Allocated cores look busier under
    // contention (spinning on stalls), which is precisely why
    // utilization-proportional attribution misfires.
    return metricsAtSlowdown(w, slowdown(w, partner),
                             powerDipFactor_);
}

std::pair<RunMetrics, RunMetrics>
InterferenceModel::colocatedPair(const WorkloadSpec &a,
                                 const WorkloadSpec &b) const
{
    return {colocated(a, b), colocated(b, a)};
}

double
InterferenceModel::multiSlowdown(
    const WorkloadSpec &victim,
    const std::vector<const WorkloadSpec *> &aggressors) const
{
    double bw_pressure = 0.0;
    double llc_pressure = 0.0;
    for (const WorkloadSpec *aggressor : aggressors) {
        bw_pressure += aggressor->bwPressure;
        llc_pressure += aggressor->llcPressure;
    }
    bw_pressure = std::min(1.0, bw_pressure);
    llc_pressure = std::min(1.0, llc_pressure);
    return 1.0 + victim.bwSensitivity * bw_pressure +
        victim.llcSensitivity * llc_pressure;
}

RunMetrics
InterferenceModel::colocatedMulti(
    const WorkloadSpec &w,
    const std::vector<const WorkloadSpec *> &partners) const
{
    return metricsAtSlowdown(w, multiSlowdown(w, partners),
                             powerDipFactor_);
}

} // namespace fairco2::workload
