#include "common/obs.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>

#include "common/flags.hh"

namespace fairco2::obs
{

namespace
{

std::atomic<bool> g_enabled{false};

/** One completed trace span. Names are string literals (not owned). */
struct SpanEvent
{
    const char *name;
    std::uint32_t tid;
    std::int64_t startNs;
    std::int64_t durationNs;
};

/**
 * Registry of all named metrics plus the span buffer. Allocated once
 * and deliberately leaked so the atexit dump handler can never race
 * static destruction.
 */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;

    std::mutex spanMutex;
    std::vector<SpanEvent> spans;
    std::uint64_t droppedSpans = 0;
};

/** Spans kept in memory before further ones are counted as dropped. */
constexpr std::size_t kMaxSpans = 1 << 20;

Registry &
registry()
{
    static Registry *instance = new Registry;
    return *instance;
}

std::uint32_t
threadId()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

/** Format a double like the CSV writer does (shortest round-trip-ish). */
std::string
formatNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

std::int64_t
nowNanos()
{
    static const std::chrono::steady_clock::time_point origin =
        std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - origin)
        .count();
}

// ---- Histogram -----------------------------------------------------

Histogram::Histogram(std::string name)
    : name_(std::move(name)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      buckets_(kNumBuckets)
{
}

std::size_t
Histogram::bucketIndex(double value)
{
    if (!(value > 0.0))
        return 0;
    const int sub = static_cast<int>(
        std::floor(std::log2(value) * kSubBuckets));
    const int lo = kMinOctave * kSubBuckets;
    const int hi = kMaxOctave * kSubBuckets - 1;
    const int clamped = std::clamp(sub, lo, hi);
    return static_cast<std::size_t>(clamped - lo) + 1;
}

double
Histogram::bucketMidpoint(std::size_t index)
{
    if (index == 0)
        return 0.0;
    const int sub = static_cast<int>(index - 1) +
        kMinOctave * kSubBuckets;
    // Geometric midpoint of [2^(sub/8), 2^((sub+1)/8)).
    return std::exp2((static_cast<double>(sub) + 0.5) /
                     kSubBuckets);
}

void
Histogram::record(double value)
{
    if (!enabled())
        return;
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);

    double seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }

    buckets_[bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);

    std::lock_guard<std::mutex> lock(samplesMutex_);
    if (samples_.size() < kExactCap)
        samples_.push_back(value);
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::min() const
{
    return min_.load(std::memory_order_relaxed);
}

double
Histogram::max() const
{
    return max_.load(std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
}

double
Histogram::quantile(double q) const
{
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;

    {
        std::lock_guard<std::mutex> lock(samplesMutex_);
        if (samples_.size() == n) {
            // Exact nearest-rank quantile over the retained samples.
            std::vector<double> sorted(samples_);
            std::sort(sorted.begin(), sorted.end());
            const std::size_t rank = q <= 0.0
                ? 0
                : static_cast<std::size_t>(std::ceil(
                      q * static_cast<double>(sorted.size()))) -
                    1;
            return sorted[std::min(rank, sorted.size() - 1)];
        }
    }

    // Bucket fallback: walk the cumulative distribution and return
    // the target bucket's geometric midpoint, clamped to the exact
    // [min, max] envelope.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(n))));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
        seen += buckets_[b].load(std::memory_order_relaxed);
        if (seen >= rank)
            return std::clamp(bucketMidpoint(b), min(), max());
    }
    return max();
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(samplesMutex_);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    samples_.clear();
}

// ---- Registry ------------------------------------------------------

Counter &
counter(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>(name);
    return *slot;
}

Gauge &
gauge(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>(name);
    return *slot;
}

Histogram &
histogram(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(name);
    return *slot;
}

void
recordSpan(const char *name, std::int64_t start_ns,
           std::int64_t duration_ns)
{
    if (!enabled())
        return;
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.spanMutex);
    if (reg.spans.size() >= kMaxSpans) {
        ++reg.droppedSpans;
        return;
    }
    reg.spans.push_back(
        SpanEvent{name, threadId(), start_ns, duration_ns});
}

void
resetForTest()
{
    setEnabled(false);
    Registry &reg = registry();
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        for (auto &[name, c] : reg.counters)
            c->reset();
        for (auto &[name, g] : reg.gauges)
            g->reset();
        for (auto &[name, h] : reg.histograms)
            h->reset();
    }
    std::lock_guard<std::mutex> lock(reg.spanMutex);
    reg.spans.clear();
    reg.droppedSpans = 0;
}

// ---- Exports -------------------------------------------------------

std::string
metricsJson()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : reg.counters) {
        out << (first ? "\n" : ",\n") << "    \""
            << escapeJson(name) << "\": " << c->value();
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : reg.gauges) {
        out << (first ? "\n" : ",\n") << "    \""
            << escapeJson(name)
            << "\": " << formatNumber(g->value());
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : reg.histograms) {
        out << (first ? "\n" : ",\n") << "    \""
            << escapeJson(name) << "\": {\"count\": " << h->count()
            << ", \"sum\": " << formatNumber(h->sum())
            << ", \"min\": "
            << formatNumber(h->count() ? h->min() : 0.0)
            << ", \"max\": "
            << formatNumber(h->count() ? h->max() : 0.0)
            << ", \"mean\": " << formatNumber(h->mean())
            << ", \"p50\": " << formatNumber(h->quantile(0.50))
            << ", \"p95\": " << formatNumber(h->quantile(0.95))
            << ", \"p99\": " << formatNumber(h->quantile(0.99))
            << "}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n}\n";
    return out.str();
}

std::string
metricsCsv()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::ostringstream out;
    out << "kind,name,stat,value\n";
    for (const auto &[name, c] : reg.counters)
        out << "counter," << name << ",value," << c->value()
            << "\n";
    for (const auto &[name, g] : reg.gauges)
        out << "gauge," << name << ",value,"
            << formatNumber(g->value()) << "\n";
    for (const auto &[name, h] : reg.histograms) {
        const auto row = [&](const char *stat, double v) {
            out << "histogram," << name << ',' << stat << ','
                << formatNumber(v) << "\n";
        };
        out << "histogram," << name << ",count," << h->count()
            << "\n";
        row("sum", h->sum());
        row("min", h->count() ? h->min() : 0.0);
        row("max", h->count() ? h->max() : 0.0);
        row("mean", h->mean());
        row("p50", h->quantile(0.50));
        row("p95", h->quantile(0.95));
        row("p99", h->quantile(0.99));
    }
    return out.str();
}

std::string
traceJson()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.spanMutex);
    std::ostringstream out;
    out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
    for (std::size_t i = 0; i < reg.spans.size(); ++i) {
        const SpanEvent &s = reg.spans[i];
        char line[256];
        // chrome://tracing wants microsecond floats for ts/dur.
        std::snprintf(line, sizeof(line),
                      "%s\n{\"name\": \"%s\", \"cat\": \"fairco2\", "
                      "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                      "\"pid\": 1, \"tid\": %u}",
                      i ? "," : "", s.name,
                      static_cast<double>(s.startNs) / 1e3,
                      static_cast<double>(s.durationNs) / 1e3,
                      s.tid);
        out << line;
    }
    if (reg.droppedSpans) {
        // Surface truncation in the trace itself rather than
        // silently under-reporting.
        out << (reg.spans.empty() ? "" : ",")
            << "\n{\"name\": \"obs.dropped_spans:"
            << reg.droppedSpans
            << "\", \"cat\": \"fairco2\", \"ph\": \"X\", "
               "\"ts\": 0, \"dur\": 0, \"pid\": 1, \"tid\": 0}";
    }
    out << "\n]}\n";
    return out.str();
}

void
writeMetrics(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr,
                     "obs: cannot write metrics to '%s'\n",
                     path.c_str());
        return;
    }
    const bool csv = path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".csv") == 0;
    out << (csv ? metricsCsv() : metricsJson());
}

void
writeTrace(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "obs: cannot write trace to '%s'\n",
                     path.c_str());
        return;
    }
    out << traceJson();
}

// ---- Flags ---------------------------------------------------------

namespace
{

std::string g_metrics_path;
std::string g_trace_path;

void
dumpAtExit()
{
    if (!g_metrics_path.empty())
        writeMetrics(g_metrics_path);
    if (!g_trace_path.empty())
        writeTrace(g_trace_path);
}

} // namespace

void
addObsFlags(FlagSet &flags, ObsFlags *values)
{
    flags.addString("metrics-out", &values->metricsOut,
                    "write a metrics dump here at exit "
                    "(.csv for CSV, anything else JSON)");
    flags.addString("trace-out", &values->traceOut,
                    "write chrome://tracing span JSON here at exit");
}

void
applyObsFlags(const ObsFlags &values)
{
    if (values.metricsOut.empty() && values.traceOut.empty())
        return;
    requireWritableFlagPath("metrics-out", values.metricsOut);
    requireWritableFlagPath("trace-out", values.traceOut);
    g_metrics_path = values.metricsOut;
    g_trace_path = values.traceOut;
    setEnabled(true);
    static bool registered = false;
    if (!registered) {
        registered = true;
        // Warm the clock origin so span timestamps are measured from
        // here rather than from the first instrumented event.
        nowNanos();
        std::atexit(dumpAtExit);
    }
}

} // namespace fairco2::obs
