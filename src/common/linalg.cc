#include "common/linalg.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace fairco2
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

double &
Matrix::operator()(std::size_t r, std::size_t c)
{
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

double
Matrix::operator()(std::size_t r, std::size_t c) const
{
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

Matrix
Matrix::gram() const
{
    Matrix g(cols_, cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double *row = &data_[r * cols_];
        for (std::size_t i = 0; i < cols_; ++i) {
            const double ri = row[i];
            if (ri == 0.0)
                continue;
            for (std::size_t j = i; j < cols_; ++j)
                g(i, j) += ri * row[j];
        }
    }
    // Mirror the upper triangle.
    for (std::size_t i = 0; i < cols_; ++i)
        for (std::size_t j = 0; j < i; ++j)
            g(i, j) = g(j, i);
    return g;
}

std::vector<double>
Matrix::transposeTimes(const std::vector<double> &v) const
{
    assert(v.size() == rows_);
    std::vector<double> out(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double *row = &data_[r * cols_];
        const double vr = v[r];
        for (std::size_t c = 0; c < cols_; ++c)
            out[c] += row[c] * vr;
    }
    return out;
}

std::vector<double>
Matrix::times(const std::vector<double> &v) const
{
    assert(v.size() == cols_);
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double *row = &data_[r * cols_];
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            acc += row[c] * v[c];
        out[r] = acc;
    }
    return out;
}

std::vector<double>
choleskySolve(Matrix a, std::vector<double> b)
{
    const std::size_t n = a.rows();
    assert(a.cols() == n && b.size() == n);

    // In-place Cholesky: a becomes lower-triangular factor L.
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k)
            diag -= a(j, k) * a(j, k);
        if (diag <= 0.0)
            throw std::runtime_error("matrix not positive definite");
        const double ljj = std::sqrt(diag);
        a(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double v = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                v -= a(i, k) * a(j, k);
            a(i, j) = v / ljj;
        }
    }

    // Forward substitution: L y = b.
    for (std::size_t i = 0; i < n; ++i) {
        double v = b[i];
        for (std::size_t k = 0; k < i; ++k)
            v -= a(i, k) * b[k];
        b[i] = v / a(i, i);
    }

    // Back substitution: L^T x = y.
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double v = b[i];
        for (std::size_t k = i + 1; k < n; ++k)
            v -= a(k, i) * b[k];
        b[i] = v / a(i, i);
    }
    return b;
}

std::vector<double>
ridgeRegression(const Matrix &x, const std::vector<double> &y,
                double lambda)
{
    assert(lambda >= 0.0);
    Matrix gram = x.gram();
    for (std::size_t i = 0; i < gram.rows(); ++i)
        gram(i, i) += lambda;
    return choleskySolve(std::move(gram), x.transposeTimes(y));
}

} // namespace fairco2
