#include "common/parallel.hh"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/flags.hh"

namespace fairco2::parallel
{

namespace
{

/** Set while the current thread executes chunks of a region. */
thread_local bool tls_in_region = false;

/**
 * Fixed-size pool with static chunk assignment. Workers park on a
 * condition variable between regions; the caller participates as
 * participant 0, so a T-thread configuration spawns T-1 workers.
 */
class Pool
{
  public:
    Pool() : threads_(hardwareConcurrency()) {}

    ~Pool()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stop_ = true;
        }
        workCv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    std::size_t
    threads() const
    {
        return threads_.load(std::memory_order_relaxed);
    }

    void
    setThreads(std::size_t count)
    {
        if (inParallelRegion())
            throw std::logic_error(
                "parallel::setThreadCount inside a parallel region");
        if (count == 0)
            count = hardwareConcurrency();
        // Workers are lazy: they spawn on the next region that needs
        // them and excess workers are simply never assigned chunks,
        // so resizing needs no teardown.
        threads_.store(count, std::memory_order_relaxed);
    }

    void
    run(std::size_t num_chunks,
        const std::function<void(std::size_t)> &chunk_body)
    {
        const std::size_t participants = std::min(
            threads_.load(std::memory_order_relaxed), num_chunks);
        if (tls_in_region || participants <= 1) {
            // Nested call (rejected by the pool) or nothing to share:
            // execute serially inline. Chunk order is ascending, and
            // results are identical by construction.
            const bool was_in_region = tls_in_region;
            tls_in_region = true;
            try {
                for (std::size_t c = 0; c < num_chunks; ++c)
                    chunk_body(c);
            } catch (...) {
                tls_in_region = was_in_region;
                throw;
            }
            tls_in_region = was_in_region;
            return;
        }

        // One top-level region at a time; concurrent callers (not a
        // pattern the harnesses use, but legal) serialize here.
        std::unique_lock<std::mutex> gate(regionGate_);
        ensureWorkers(participants - 1);

        Region region;
        region.chunkBody = &chunk_body;
        region.numChunks = num_chunks;
        region.participants = participants;
        region.pendingWorkers = participants - 1;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            assert(region_ == nullptr);
            region_ = &region;
            ++epoch_;
        }
        workCv_.notify_all();

        // The caller is participant 0.
        runShare(region, 0);

        {
            std::unique_lock<std::mutex> lock(mutex_);
            doneCv_.wait(lock, [&] {
                return region.pendingWorkers == 0;
            });
            region_ = nullptr;
        }
        if (region.error)
            std::rethrow_exception(region.error);
    }

  private:
    struct Region
    {
        const std::function<void(std::size_t)> *chunkBody = nullptr;
        std::size_t numChunks = 0;
        std::size_t participants = 0;
        std::size_t pendingWorkers = 0;
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex errorMutex;
    };

    void
    ensureWorkers(std::size_t needed)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (workers_.size() < needed) {
            const std::size_t id = workers_.size() + 1;
            workers_.emplace_back([this, id] { workerLoop(id); });
        }
    }

    /**
     * Execute this participant's statically assigned chunks:
     * participant p runs chunks p, p + P, p + 2P, ... for P
     * participants. No queue, no stealing — the assignment is a pure
     * function of (num_chunks, participants).
     */
    void
    runShare(Region &region, std::size_t participant)
    {
        tls_in_region = true;
        try {
            for (std::size_t c = participant; c < region.numChunks;
                 c += region.participants) {
                if (region.failed.load(std::memory_order_relaxed))
                    break;
                (*region.chunkBody)(c);
            }
        } catch (...) {
            region.failed.store(true, std::memory_order_relaxed);
            std::unique_lock<std::mutex> lock(region.errorMutex);
            if (!region.error)
                region.error = std::current_exception();
        }
        tls_in_region = false;
    }

    void
    workerLoop(std::size_t id)
    {
        std::uint64_t seen_epoch = 0;
        while (true) {
            Region *region = nullptr;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                workCv_.wait(lock, [&] {
                    return stop_ ||
                        (epoch_ != seen_epoch && region_ != nullptr);
                });
                if (stop_)
                    return;
                seen_epoch = epoch_;
                region = region_;
                if (id >= region->participants) {
                    // Spawned for an earlier, wider region; not part
                    // of this one.
                    continue;
                }
            }
            runShare(*region, id);
            {
                std::unique_lock<std::mutex> lock(mutex_);
                if (--region->pendingWorkers == 0)
                    doneCv_.notify_all();
            }
        }
    }

    std::mutex regionGate_;
    std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::vector<std::thread> workers_;
    std::atomic<std::size_t> threads_;
    Region *region_ = nullptr;
    std::uint64_t epoch_ = 0;
    bool stop_ = false;
};

Pool &
pool()
{
    static Pool instance;
    return instance;
}

} // namespace

std::size_t
hardwareConcurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t
threadCount()
{
    return pool().threads();
}

void
setThreadCount(std::size_t count)
{
    pool().setThreads(count);
}

bool
inParallelRegion()
{
    return tls_in_region;
}

void
addThreadsFlag(FlagSet &flags, std::int64_t *value)
{
    flags.addInt("threads", value,
                 "worker threads (0 = hardware concurrency); "
                 "results are identical for any value");
}

void
applyThreadsFlag(std::int64_t value)
{
    if (value < 0) {
        // Match FlagSet's contract for malformed values: report and
        // exit 2 rather than unwinding through the harness's main.
        std::fprintf(stderr, "error: --threads must be >= 0\n");
        std::exit(2);
    }
    setThreadCount(static_cast<std::size_t>(value));
}

namespace detail
{

void
runChunks(std::size_t num_chunks,
          const std::function<void(std::size_t)> &chunk_body)
{
    if (num_chunks == 0)
        return;
    pool().run(num_chunks, chunk_body);
}

} // namespace detail

} // namespace fairco2::parallel
