#include "common/surrogate.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "common/errors.hh"

namespace fairco2::surrogate
{

namespace
{

/** File magic for a serialized model ("FC2S"). */
constexpr std::uint32_t kModelMagic = 0x53324346u;
/** Model format version. */
constexpr std::uint32_t kModelVersion = 1;

/** FNV-1a over 64-bit words (the repo's blob-checksum idiom). */
struct Fnv1a
{
    std::uint64_t state = 14695981039346656037ULL;

    void
    feed(std::uint64_t word)
    {
        state ^= word;
        state *= 1099511628211ULL;
    }

    void feed(double value)
    {
        feed(std::bit_cast<std::uint64_t>(value));
    }
};

void
putWord(std::vector<std::uint8_t> &out, std::uint64_t word)
{
    const std::size_t at = out.size();
    out.resize(at + 8);
    std::memcpy(out.data() + at, &word, 8);
}

void
putDouble(std::vector<std::uint8_t> &out, double value)
{
    putWord(out, std::bit_cast<std::uint64_t>(value));
}

bool
readWord(const std::vector<std::uint8_t> &in, std::size_t &pos,
         std::uint64_t &out)
{
    if (pos + 8 > in.size())
        return false;
    std::memcpy(&out, in.data() + pos, 8);
    pos += 8;
    return true;
}

bool
readDouble(const std::vector<std::uint8_t> &in, std::size_t &pos,
           double &out)
{
    std::uint64_t word;
    if (!readWord(in, pos, word))
        return false;
    out = std::bit_cast<double>(word);
    return true;
}

/** Payload of a model (everything after the leading checksum). */
std::vector<std::uint8_t>
encodePayload(const SurrogateModel &model)
{
    std::vector<std::uint8_t> out;
    putWord(out,
            (static_cast<std::uint64_t>(kModelVersion) << 32) |
                kModelMagic);
    putWord(out, static_cast<std::uint64_t>(kFeatureCount));
    for (const double w : model.weights)
        putDouble(out, w);
    for (const double v : model.featureMin)
        putDouble(out, v);
    for (const double v : model.featureMax)
        putDouble(out, v);
    putDouble(out, model.lambda);
    putDouble(out, model.trainRmse);
    putDouble(out, model.heldOutP50);
    putDouble(out, model.heldOutP95);
    putWord(out, model.trainedOnWindows);
    putWord(out, model.seed);
    return out;
}

std::uint64_t
payloadChecksum(const std::vector<std::uint8_t> &payload)
{
    Fnv1a hash;
    for (std::size_t i = 0; i + 8 <= payload.size(); i += 8) {
        std::uint64_t word;
        std::memcpy(&word, payload.data() + i, 8);
        hash.feed(word);
    }
    hash.feed(static_cast<std::uint64_t>(payload.size()));
    return hash.state;
}

} // namespace

std::vector<double>
thresholdPhi(const std::vector<double> &peaks)
{
    const std::size_t n = peaks.size();
    std::vector<double> phi(n, 0.0);
    if (n == 0)
        return phi;

    // Sort player indices by ascending peak (ties by index, so the
    // order — and therefore the floating-point accumulation — is
    // deterministic). Each increment over the previous threshold is
    // shared equally by every player whose peak reaches it.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (peaks[a] != peaks[b])
                      return peaks[a] < peaks[b];
                  return a < b;
              });

    double previous = 0.0;
    double carried = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
        const double level = peaks[order[m]];
        const double increment = level - previous;
        carried += increment / static_cast<double>(n - m);
        phi[order[m]] = carried;
        previous = level;
    }
    return phi;
}

std::vector<FeatureRow>
featurize(const std::vector<PeriodSketch> &window,
          double step_seconds)
{
    const std::size_t n = window.size();
    std::vector<FeatureRow> rows(n);
    if (n == 0)
        return rows;

    std::vector<double> peaks(n), usages(n);
    double max_peak = 0.0;
    double second_peak = 0.0;
    std::size_t argmax = 0;
    double total_usage = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        peaks[i] = window[i].peak;
        usages[i] = window[i].usage(step_seconds);
        total_usage += usages[i];
        if (peaks[i] > max_peak) {
            second_peak = max_peak;
            max_peak = peaks[i];
            argmax = i;
        } else if (peaks[i] > second_peak) {
            second_peak = peaks[i];
        }
    }

    // Ascending-peak rank per period (ties by index), matching the
    // threshold decomposition's ordering.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (peaks[a] != peaks[b])
                      return peaks[a] < peaks[b];
                  return a < b;
              });
    std::vector<std::size_t> rank(n);
    for (std::size_t m = 0; m < n; ++m)
        rank[order[m]] = m;

    // The physics-informed anchor: the peak game's own
    // threshold-decomposition share t_i = phi_i q_i / sum_k phi_k q_k
    // (Eq. 5 normalization over the sketch peaks/usages).
    const auto phi = thresholdPhi(peaks);
    double denom = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        denom += phi[i] * usages[i];

    double peak_usage_denom = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        peak_usage_denom += peaks[i] * usages[i];

    for (std::size_t i = 0; i < n; ++i) {
        FeatureRow &row = rows[i];
        const double peak = peaks[i];
        const double usage = usages[i];
        const double samples =
            static_cast<double>(std::max<std::size_t>(
                1, window[i].samples));
        const double mean = window[i].sum / samples;
        row[0] = 1.0; // bias
        row[1] = max_peak > 0.0 ? peak / max_peak : 0.0;
        row[2] = total_usage > 0.0 ? usage / total_usage : 0.0;
        row[3] = peak_usage_denom > 0.0
            ? peak * usage / peak_usage_denom
            : 0.0; // peak-proportional share baseline
        row[4] = n > 1 ? static_cast<double>(rank[i]) /
                static_cast<double>(n - 1)
                       : 0.0;
        row[5] = denom > 0.0 ? phi[i] * usage / denom : 0.0;
        row[6] = peak > 0.0 ? mean / peak : 0.0; // flatness
        row[7] = (i == argmax && max_peak > 0.0)
            ? (max_peak - second_peak) / max_peak
            : 0.0; // peak margin (nonzero for the argmax only)
    }
    return rows;
}

std::uint64_t
SurrogateModel::checksum() const
{
    return payloadChecksum(encodePayload(*this));
}

double
predictShare(const SurrogateModel &model, const FeatureRow &row)
{
    double share = 0.0;
    for (std::size_t f = 0; f < kFeatureCount; ++f)
        share += model.weights[f] * row[f];
    return share;
}

bool
inTrainingBox(const SurrogateModel &model, const FeatureRow &row)
{
    for (std::size_t f = 0; f < kFeatureCount; ++f) {
        const double lo = model.featureMin[f];
        const double hi = model.featureMax[f];
        const double span = hi - lo;
        const double margin =
            kOutOfDistributionMargin * (span > 0.0 ? span : 1.0);
        if (row[f] < lo - margin || row[f] > hi + margin)
            return false;
    }
    return true;
}

std::vector<std::uint8_t>
encodeModel(const SurrogateModel &model)
{
    const auto payload = encodePayload(model);
    std::vector<std::uint8_t> out;
    out.reserve(payload.size() + 8);
    putWord(out, payloadChecksum(payload));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

SurrogateModel
decodeModel(const std::vector<std::uint8_t> &bytes)
{
    std::size_t pos = 0;
    std::uint64_t stored_checksum;
    if (!readWord(bytes, pos, stored_checksum))
        throw FatalDataError(
            "surrogate model: file shorter than its checksum");
    const std::vector<std::uint8_t> payload(bytes.begin() + 8,
                                            bytes.end());
    const std::uint64_t computed = payloadChecksum(payload);
    if (computed != stored_checksum) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "stored 0x%016llx computed 0x%016llx",
                      static_cast<unsigned long long>(
                          stored_checksum),
                      static_cast<unsigned long long>(computed));
        throw FatalDataError(
            std::string("surrogate model: checksum mismatch (") +
            buf + ")");
    }

    SurrogateModel model;
    std::uint64_t header, features;
    if (!readWord(bytes, pos, header) ||
        !readWord(bytes, pos, features))
        throw FatalDataError("surrogate model: truncated header");
    if (static_cast<std::uint32_t>(header) != kModelMagic)
        throw FatalDataError(
            "surrogate model: bad magic (not a model file)");
    if (static_cast<std::uint32_t>(header >> 32) != kModelVersion)
        throw FatalDataError(
            "surrogate model: unsupported format version " +
            std::to_string(header >> 32));
    if (features != kFeatureCount)
        throw FatalDataError(
            "surrogate model: feature-count mismatch (file has " +
            std::to_string(features) + ", this build expects " +
            std::to_string(kFeatureCount) + ")");

    bool ok = true;
    for (double &w : model.weights)
        ok = ok && readDouble(bytes, pos, w);
    for (double &v : model.featureMin)
        ok = ok && readDouble(bytes, pos, v);
    for (double &v : model.featureMax)
        ok = ok && readDouble(bytes, pos, v);
    ok = ok && readDouble(bytes, pos, model.lambda);
    ok = ok && readDouble(bytes, pos, model.trainRmse);
    ok = ok && readDouble(bytes, pos, model.heldOutP50);
    ok = ok && readDouble(bytes, pos, model.heldOutP95);
    ok = ok && readWord(bytes, pos, model.trainedOnWindows);
    ok = ok && readWord(bytes, pos, model.seed);
    if (!ok || pos != bytes.size())
        throw FatalDataError(
            "surrogate model: truncated or oversized payload");
    return model;
}

void
saveModel(const SurrogateModel &model, const std::string &path)
{
    const auto bytes = encodeModel(model);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw FatalDataError(
                "surrogate model: cannot write '" + tmp + "'");
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            throw FatalDataError(
                "surrogate model: short write to '" + tmp + "'");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        throw FatalDataError("surrogate model: cannot rename '" +
                             tmp + "' to '" + path + "': " +
                             ec.message());
}

SurrogateModel
loadModel(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw FatalDataError("surrogate model: cannot open '" +
                             path + "'");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    try {
        return decodeModel(bytes);
    } catch (const FatalDataError &error) {
        throw FatalDataError(std::string(error.what()) + " ('" +
                             path + "')");
    }
}

void
requireSurrogateTol(double tol)
{
    if (!std::isfinite(tol) || tol <= 0.0) {
        std::fprintf(stderr,
                     "error: --surrogate-tol must be a positive "
                     "finite share tolerance (got %g)\n",
                     tol);
        std::exit(2);
    }
}

} // namespace fairco2::surrogate
