#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fairco2
{

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::setHeader(const std::vector<std::string> &header)
{
    header_ = header;
}

void
TextTable::addRow(const std::vector<std::string> &cells)
{
    rows_.push_back(cells);
}

std::string
TextTable::fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

void
TextTable::addRow(const std::string &label,
                  const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(fmt(v, precision));
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::size_t ncols = header_.size();
    for (const auto &row : rows_)
        ncols = std::max(ncols, row.size());

    std::vector<std::size_t> widths(ncols, 0);
    auto grow = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream out;
    out << title_ << '\n';
    out << std::string(title_.size(), '=') << '\n';

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << "  ";
            out << row[i]
                << std::string(widths[i] - row[i].size(), ' ');
        }
        out << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t rule = 0;
        for (std::size_t i = 0; i < ncols; ++i)
            rule += widths[i] + (i ? 2 : 0);
        out << std::string(rule, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(str().c_str(), stdout);
}

} // namespace fairco2
