/**
 * @file
 * Shared error taxonomy for data-quality failures.
 *
 * A FatalDataError means the *input data* (not the command line and
 * not a programming bug) is unusable under the active policy: a
 * poisoned telemetry row in strict mode, a corrupt checkpoint, a
 * non-finite value reaching an attribution kernel. Front ends catch
 * it at the top level and exit with status 2 — the same convention
 * FlagSet uses for malformed flag values — so "bad input" is
 * distinguishable from "crash" (nonzero other than 2) in scripts.
 */

#ifndef FAIRCO2_COMMON_ERRORS_HH
#define FAIRCO2_COMMON_ERRORS_HH

#include <stdexcept>
#include <string>

namespace fairco2
{

/** Unusable input data under the active policy; front ends exit 2. */
class FatalDataError : public std::runtime_error
{
  public:
    explicit FatalDataError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

} // namespace fairco2

#endif // FAIRCO2_COMMON_ERRORS_HH
