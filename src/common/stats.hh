/**
 * @file
 * Summary statistics used throughout the evaluation harnesses.
 */

#ifndef FAIRCO2_COMMON_STATS_HH
#define FAIRCO2_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace fairco2
{

/**
 * Streaming accumulator for mean/variance/min/max (Welford's method).
 */
class OnlineStats
{
  public:
    OnlineStats();

    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return count_; }
    /** Arithmetic mean; 0 when empty. */
    double mean() const;
    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;
    /** Sample standard deviation. */
    double stddev() const;
    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }
    /** Largest observation; -inf when empty. */
    double max() const { return max_; }
    /** Sum of all observations. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats &other);

  private:
    std::size_t count_;
    double mean_;
    double m2_;
    double min_;
    double max_;
    double sum_;
};

/**
 * Batch summary of a sample: mean, spread, and quantiles.
 *
 * Quantiles use linear interpolation between order statistics, matching
 * numpy's default, so bench output is comparable with the paper's
 * Python-produced figures.
 */
struct Summary
{
    std::size_t count = 0;    //!< finite samples summarized
    std::size_t nanCount = 0; //!< non-finite samples excluded
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
    double p95 = 0.0;
    double max = 0.0;

    /**
     * Compute the summary of a sample (copied; input not modified).
     * Non-finite samples are excluded from every statistic and
     * surfaced through nanCount — a poisoned sample can never shift
     * a quantile silently.
     */
    static Summary of(std::vector<double> values);
};

/**
 * Interpolated quantile of a sample. @p q must be in [0, 1]. The input
 * is copied and sorted internally. Non-finite samples are excluded
 * (NaN has no order, so sorting it would yield an arbitrary wrong
 * quantile); returns NaN when no finite sample remains.
 */
double quantile(std::vector<double> values, double q);

/**
 * Mean absolute percentage error between @p actual and @p predicted,
 * in percent. Entries where actual is zero, or where either value is
 * non-finite, are skipped; the optional counter reports how many
 * non-finite pairs were excluded.
 */
double meanAbsolutePercentageError(
    const std::vector<double> &actual,
    const std::vector<double> &predicted,
    std::size_t *non_finite_skipped = nullptr);

/**
 * Largest absolute percentage error between @p actual and
 * @p predicted, in percent. Same skip rules and non-finite counter
 * as meanAbsolutePercentageError.
 */
double worstAbsolutePercentageError(
    const std::vector<double> &actual,
    const std::vector<double> &predicted,
    std::size_t *non_finite_skipped = nullptr);

} // namespace fairco2

#endif // FAIRCO2_COMMON_STATS_HH
