#include "common/flags.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>

namespace fairco2
{

FlagSet::FlagSet(std::string description)
    : description_(std::move(description))
{
}

void
FlagSet::registerFlag(const std::string &name, Kind kind, void *target,
                      const std::string &help,
                      const std::string &default_repr)
{
    Flag flag{kind, target, help, default_repr};
    if (!flags_.emplace(name, flag).second)
        throw std::logic_error("duplicate flag: --" + name);
    order_.push_back(name);
}

void
FlagSet::addInt(const std::string &name, std::int64_t *value,
                const std::string &help)
{
    registerFlag(name, Kind::Int, value, help, std::to_string(*value));
}

void
FlagSet::addDouble(const std::string &name, double *value,
                   const std::string &help)
{
    registerFlag(name, Kind::Double, value, help, std::to_string(*value));
}

void
FlagSet::addString(const std::string &name, std::string *value,
                   const std::string &help)
{
    registerFlag(name, Kind::String, value, help, *value);
}

void
FlagSet::addBool(const std::string &name, bool *value,
                 const std::string &help)
{
    registerFlag(name, Kind::Bool, value, help, *value ? "true" : "false");
}

void
FlagSet::printUsage(const std::string &prog) const
{
    std::printf("%s\n\nUsage: %s [flags]\n", description_.c_str(),
                prog.c_str());
    for (const auto &name : order_) {
        const Flag &flag = flags_.at(name);
        std::printf("  --%-24s %s (default: %s)\n", name.c_str(),
                    flag.help.c_str(), flag.defaultRepr.c_str());
    }
    std::printf("  --%-24s %s\n", "help", "show this message");
}

void
FlagSet::fail(const std::string &prog, const std::string &message) const
{
    std::fprintf(stderr, "error: %s\n\n", message.c_str());
    printUsage(prog);
    std::exit(2);
}

bool
FlagSet::assign(const Flag &flag, const std::string &text) const
{
    // Strict numerics: the whole token must parse ("10x" is not 10)
    // and doubles must be finite — a sweep script's typo must not
    // silently truncate into a valid-looking run.
    std::size_t pos = 0;
    try {
        switch (flag.kind) {
          case Kind::Int: {
            const std::int64_t v = std::stoll(text, &pos);
            if (pos != text.size())
                return false;
            *static_cast<std::int64_t *>(flag.target) = v;
            return true;
          }
          case Kind::Double: {
            const double v = std::stod(text, &pos);
            if (pos != text.size() || !std::isfinite(v))
                return false;
            *static_cast<double *>(flag.target) = v;
            return true;
          }
          case Kind::String:
            *static_cast<std::string *>(flag.target) = text;
            return true;
          case Kind::Bool:
            if (text == "true" || text == "1") {
                *static_cast<bool *>(flag.target) = true;
            } else if (text == "false" || text == "0") {
                *static_cast<bool *>(flag.target) = false;
            } else {
                return false;
            }
            return true;
        }
    } catch (const std::exception &) {
        return false;
    }
    return false;
}

bool
FlagSet::parse(int argc, char **argv)
{
    // Basename only: the usage text must not depend on how the
    // binary was invoked (the help-golden test diffs it bytewise).
    std::string prog = argc > 0 ? argv[0] : "prog";
    const auto slash = prog.find_last_of('/');
    if (slash != std::string::npos)
        prog = prog.substr(slash + 1);
    std::set<std::string> seen;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(prog);
            return false;
        }
        if (arg.rfind("--", 0) != 0)
            fail(prog, "unexpected positional argument: " + arg);
        arg = arg.substr(2);

        std::string name = arg;
        std::string value;
        bool has_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            has_value = true;
        }

        const auto it = flags_.find(name);
        if (it == flags_.end())
            fail(prog, "unknown flag: --" + name);
        // Last-write-wins would hide which of two occurrences a
        // sweep actually ran with; repeats are fatal instead.
        if (!seen.insert(name).second)
            fail(prog, "duplicate flag: --" + name);

        const Flag &flag = it->second;
        if (!has_value) {
            if (flag.kind == Kind::Bool) {
                *static_cast<bool *>(flag.target) = true;
                continue;
            }
            if (i + 1 >= argc)
                fail(prog, "flag --" + name + " needs a value");
            value = argv[++i];
        }
        if (!assign(flag, value))
            fail(prog, "bad value for --" + name + ": " + value);
    }
    return true;
}

void
requireWritableFlagPath(const std::string &flag_name,
                        const std::string &path)
{
    if (path.empty())
        return;
    std::error_code ec;
    const bool existed = std::filesystem::exists(path, ec);
    bool writable = false;
    {
        // Append probe: creates the file when absent, never
        // truncates an existing one.
        std::ofstream probe(path, std::ios::app);
        writable = probe.good();
    }
    if (!existed && writable)
        std::filesystem::remove(path, ec);
    if (!writable) {
        std::fprintf(stderr,
                     "error: --%s: cannot write to '%s'\n",
                     flag_name.c_str(), path.c_str());
        std::exit(2);
    }
}

std::vector<std::size_t>
parsePositiveIntList(const std::string &text)
{
    std::vector<std::size_t> values;
    std::string token;
    const auto flush = [&]() {
        if (token.empty())
            throw std::invalid_argument(
                "empty entry in list '" + text + "'");
        std::size_t pos = 0;
        long long v = 0;
        try {
            v = std::stoll(token, &pos);
        } catch (const std::exception &) {
            throw std::invalid_argument("bad list entry '" + token +
                                        "'");
        }
        if (pos != token.size())
            throw std::invalid_argument("bad list entry '" + token +
                                        "'");
        if (v <= 0)
            throw std::invalid_argument(
                "list entry must be positive, got '" + token + "'");
        values.push_back(static_cast<std::size_t>(v));
        token.clear();
    };
    for (char c : text) {
        if (c == ',')
            flush();
        else
            token += c;
    }
    flush();
    return values;
}

} // namespace fairco2
