/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * All Monte Carlo components in Fair-CO2 draw randomness through Rng so
 * that every experiment is reproducible from a single 64-bit seed. The
 * generator is xoshiro256** seeded via splitmix64, which is fast, has a
 * 256-bit state, and passes BigCrush.
 */

#ifndef FAIRCO2_COMMON_RNG_HH
#define FAIRCO2_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace fairco2
{

/**
 * Seedable pseudo-random number generator (xoshiro256**).
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also be
 * plugged into <random> distributions, although the member helpers below
 * cover everything this project needs.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Smallest value next() can return. */
    static constexpr result_type min() { return 0; }
    /** Largest value next() can return. */
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller with caching). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with probability p of returning true. */
    bool bernoulli(double p);

    /** Uniformly random index in [0, n). Requires n > 0. */
    std::size_t index(std::size_t n);

    /** Fisher-Yates shuffle of an index permutation [0, n). */
    std::vector<std::size_t> permutation(std::size_t n);

    /**
     * Sample k distinct indices from [0, n) without replacement.
     * Requires k <= n.
     */
    std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                      std::size_t k);

    /** Fork an independent stream (for per-trial generators). */
    Rng split();

    /**
     * Derive the independent stream @p stream from this generator's
     * root seed, counter-style: fork(s) is a pure function of
     * (construction seed, s), does not advance this generator, and is
     * therefore safe to call concurrently and identical no matter how
     * many threads a loop runs on. Every parallel trial loop draws
     * its per-trial randomness as base.fork(trial_index).
     */
    Rng fork(std::uint64_t stream) const;

  private:
    std::uint64_t seed_; //!< construction seed, for fork()
    std::uint64_t state_[4];
    double cachedNormal_;
    bool hasCachedNormal_;
};

} // namespace fairco2

#endif // FAIRCO2_COMMON_RNG_HH
