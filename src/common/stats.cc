#include "common/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace fairco2
{

OnlineStats::OnlineStats()
    : count_(0), mean_(0.0), m2_(0.0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      sum_(0.0)
{
}

void
OnlineStats::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
OnlineStats::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
quantile(std::vector<double> values, double q)
{
    assert(!values.empty());
    assert(q >= 0.0 && q <= 1.0);
    // NaN has no order: sorting it in would put it at an arbitrary
    // position and silently shift the quantile. Exclude non-finite
    // samples; with nothing finite left, the quantile is NaN.
    values.erase(std::remove_if(values.begin(), values.end(),
                                [](double v) {
                                    return !std::isfinite(v);
                                }),
                 values.end());
    if (values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary
Summary::of(std::vector<double> values)
{
    Summary s;
    const auto first_bad = std::remove_if(
        values.begin(), values.end(),
        [](double v) { return !std::isfinite(v); });
    s.nanCount =
        static_cast<std::size_t>(values.end() - first_bad);
    values.erase(first_bad, values.end());
    if (values.empty())
        return s;

    OnlineStats acc;
    for (double v : values)
        acc.add(v);

    s.count = acc.count();
    s.mean = acc.mean();
    s.stddev = acc.stddev();
    s.min = acc.min();
    s.max = acc.max();
    s.p25 = quantile(values, 0.25);
    s.median = quantile(values, 0.50);
    s.p75 = quantile(values, 0.75);
    s.p95 = quantile(values, 0.95);
    return s;
}

namespace
{

/**
 * Walk paired actual/predicted values and feed absolute percentage
 * errors to the visitor, skipping zero-actual entries. Non-finite
 * pairs are skipped too and counted — an error metric built on a
 * poisoned sample would itself be poison.
 */
template <typename Visit>
void
forEachApe(const std::vector<double> &actual,
           const std::vector<double> &predicted,
           std::size_t *non_finite_skipped, Visit &&visit)
{
    assert(actual.size() == predicted.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
        if (!std::isfinite(actual[i]) ||
            !std::isfinite(predicted[i])) {
            if (non_finite_skipped)
                ++*non_finite_skipped;
            continue;
        }
        if (actual[i] == 0.0)
            continue;
        visit(std::abs((predicted[i] - actual[i]) / actual[i]) * 100.0);
    }
}

} // namespace

double
meanAbsolutePercentageError(const std::vector<double> &actual,
                            const std::vector<double> &predicted,
                            std::size_t *non_finite_skipped)
{
    OnlineStats acc;
    forEachApe(actual, predicted, non_finite_skipped,
               [&](double ape) { acc.add(ape); });
    return acc.mean();
}

double
worstAbsolutePercentageError(const std::vector<double> &actual,
                             const std::vector<double> &predicted,
                             std::size_t *non_finite_skipped)
{
    double worst = 0.0;
    forEachApe(actual, predicted, non_finite_skipped,
               [&](double ape) { worst = std::max(worst, ape); });
    return worst;
}

} // namespace fairco2
