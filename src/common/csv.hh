/**
 * @file
 * Minimal CSV reading/writing used by the bench harnesses to persist
 * the series behind each reproduced table and figure.
 */

#ifndef FAIRCO2_COMMON_CSV_HH
#define FAIRCO2_COMMON_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace fairco2
{

/**
 * Streams rows of mixed string/numeric cells into a CSV file.
 *
 * Values containing commas, quotes, or newlines are quoted per RFC
 * 4180. The file is created (and parent directory made, one level) on
 * construction.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; throws std::runtime_error on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write a header or data row of string cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Write a row of numeric cells with full double precision. */
    void writeNumericRow(const std::vector<double> &cells);

    /**
     * Write a row whose first cell is a label and the rest numeric —
     * the common shape of figure series.
     */
    void writeRow(const std::string &label,
                  const std::vector<double> &cells);

    /** Write several label cells followed by numeric cells. */
    void writeRow(const std::vector<std::string> &labels,
                  const std::vector<double> &cells);

    /** Path the writer is bound to. */
    const std::string &path() const { return path_; }

  private:
    std::string escape(const std::string &cell) const;

    std::string path_;
    std::ofstream out_;
};

/**
 * Parsed CSV contents: a header row plus data rows of strings.
 */
struct CsvTable
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    /** Column index for @p name, or npos when absent. */
    std::size_t columnIndex(const std::string &name) const;

    /** Numeric view of one column (by header name). */
    std::vector<double> numericColumn(const std::string &name) const;
};

/**
 * Read an entire CSV file (simple quoting rules, no embedded
 * newlines). Throws std::runtime_error when the file cannot be read.
 */
CsvTable readCsv(const std::string &path);

} // namespace fairco2

#endif // FAIRCO2_COMMON_CSV_HH
