/**
 * @file
 * Lightweight, thread-safe observability layer: monotonic counters,
 * log-bucketed value/latency histograms with p50/p95/p99 export, RAII
 * scoped timers, and trace spans emitted as chrome://tracing JSON.
 *
 * Design constraints, in priority order:
 *
 *  1. **Never perturb results.** Instrumentation only ever *reads*
 *     the computation; the bit-identity guarantee of the parallel
 *     layer (results independent of `--threads N`) is untouched.
 *  2. **Deterministic exports.** Metric dumps list keys in sorted
 *     order, and every *value* metric (counters, value histograms)
 *     is a pure function of what the program computed — wall-clock
 *     readings appear only in latency histograms (whose names end in
 *     `_ns` by convention) and in span timestamps.
 *  3. **Near-zero cost when off.** The layer is disabled by default;
 *     every event site then costs one relaxed atomic load and a
 *     branch. Defining `FAIRCO2_OBS_OFF` at compile time turns the
 *     instrumentation macros into no-ops entirely.
 *
 * Event sites use the macros at the bottom of this header:
 *
 *     FAIRCO2_COUNT("shapley.exact.coalitions", num_masks);
 *     FAIRCO2_OBSERVE("mc.demand.workloads", n);    // value histogram
 *     FAIRCO2_TIME_NS("forecast.fit_ns");           // scoped latency
 *     FAIRCO2_SPAN("shapley.exact.tabulate");       // scoped trace span
 *
 * Front ends opt in with `--metrics-out out.json` (or `.csv`) and
 * `--trace-out trace.json`; see addObsFlags / applyObsFlags. The
 * trace file loads directly in chrome://tracing or Perfetto.
 */

#ifndef FAIRCO2_COMMON_OBS_HH
#define FAIRCO2_COMMON_OBS_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fairco2
{

class FlagSet;

namespace obs
{

/** True when events are being recorded (off by default). */
bool enabled();

/** Turn recording on or off at runtime (the one-branch no-op mode). */
void setEnabled(bool on);

/** Monotonic nanoseconds since the first obs use in this process. */
std::int64_t nowNanos();

/** Monotonically increasing event counter. */
class Counter
{
  public:
    explicit Counter(std::string name) : name_(std::move(name)) {}

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void
    add(std::uint64_t n = 1)
    {
        if (enabled())
            value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }

    /** Zero the counter (test support). */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::string name_;
    std::atomic<std::uint64_t> value_{0};
};

/**
 * Last-write-wins level metric (e.g. the live-signal server's
 * current overload rung or newest published period). Unlike a
 * Counter, a Gauge can move in both directions; like every other
 * value metric, it must only ever be set from values the program
 * computed, never from wall-clock readings, so exports stay
 * deterministic.
 */
class Gauge
{
  public:
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void
    set(double value)
    {
        if (enabled())
            value_.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }

    /** Zero the gauge (test support). */
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::string name_;
    std::atomic<double> value_{0.0};
};

/**
 * Log-bucketed histogram over non-negative values.
 *
 * Values are binned into 8 logarithmic sub-buckets per octave (power
 * of two), plus a dedicated bucket for values <= 0. The first
 * kExactCap samples are additionally retained verbatim, so quantile()
 * is *exact* (nearest-rank over the sorted samples) until the
 * histogram overflows the retention cap; past that, quantiles fall
 * back to the bucket midpoint, whose relative error is bounded by the
 * bucket width (2^(1/8) ~ 9%).
 *
 * All mutation is thread-safe; aggregate statistics (count, min, max,
 * quantiles) do not depend on the order in which threads recorded.
 */
class Histogram
{
  public:
    /** Samples retained verbatim for exact quantiles. */
    static constexpr std::size_t kExactCap = 4096;

    explicit Histogram(std::string name);

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Record one observation (no-op while the layer is disabled). */
    void record(double value);

    std::uint64_t count() const;
    double sum() const;
    double min() const; //!< +inf when empty
    double max() const; //!< -inf when empty
    double mean() const; //!< 0 when empty

    /**
     * Quantile for q in [0, 1]; exact while count() <= kExactCap,
     * bucket-resolution beyond. Returns 0 when empty.
     */
    double quantile(double q) const;

    const std::string &name() const { return name_; }

    /** Forget all recorded samples (test support). */
    void reset();

  private:
    // 8 sub-buckets per octave spanning 2^-30 .. 2^40 (~1e-9..1e12),
    // plus the <=0 bucket at index 0 and clamping at the ends.
    static constexpr int kSubBuckets = 8;
    static constexpr int kMinOctave = -30;
    static constexpr int kMaxOctave = 40;
    static constexpr std::size_t kNumBuckets =
        static_cast<std::size_t>(kMaxOctave - kMinOctave) *
            kSubBuckets +
        2;

    static std::size_t bucketIndex(double value);
    static double bucketMidpoint(std::size_t index);

    std::string name_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_;
    std::atomic<double> max_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    mutable std::mutex samplesMutex_;
    std::vector<double> samples_; //!< first kExactCap raw values
};

/**
 * Look up (creating on first use) the registry counter / histogram
 * with @p name. References stay valid for the process lifetime;
 * event sites cache them in a function-local static.
 */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name);

/**
 * Record one completed span directly (begin/end form). @p start_ns
 * comes from nowNanos() at the beginning of the phase.
 */
void recordSpan(const char *name, std::int64_t start_ns,
                std::int64_t duration_ns);

/** RAII trace span: records [construction, destruction) when enabled. */
class SpanGuard
{
  public:
    explicit SpanGuard(const char *name)
        : name_(name), startNs_(enabled() ? nowNanos() : -1)
    {
    }

    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

    ~SpanGuard()
    {
        if (startNs_ >= 0)
            recordSpan(name_, startNs_, nowNanos() - startNs_);
    }

  private:
    const char *name_;
    std::int64_t startNs_;
};

/** RAII latency timer: records elapsed nanoseconds into a histogram. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &hist)
        : hist_(hist), startNs_(enabled() ? nowNanos() : -1)
    {
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (startNs_ >= 0)
            hist_.record(
                static_cast<double>(nowNanos() - startNs_));
    }

  private:
    Histogram &hist_;
    std::int64_t startNs_;
};

/**
 * Flat metrics dump with keys in sorted order:
 *
 *     {"counters": {name: value, ...},
 *      "gauges": {name: value, ...},
 *      "histograms": {name: {"count": ..., "sum": ..., "min": ...,
 *                            "max": ..., "mean": ..., "p50": ...,
 *                            "p95": ..., "p99": ...}, ...}}
 */
std::string metricsJson();

/** Same content as metricsJson() as `kind,name,stat,value` rows. */
std::string metricsCsv();

/**
 * All recorded spans as a chrome://tracing / Perfetto JSON object
 * (`{"displayTimeUnit": "ns", "traceEvents": [...]}`, "X" phase
 * events, microsecond timestamps).
 */
std::string traceJson();

/** Write metricsCsv() when @p path ends in ".csv", else metricsJson(). */
void writeMetrics(const std::string &path);

/** Write traceJson() to @p path. */
void writeTrace(const std::string &path);

/**
 * Zero every registered counter and histogram, drop all spans, and
 * disable recording again. Test support. Registry entries are never
 * removed, so references cached by event sites stay valid.
 */
void resetForTest();

/** Parsed `--metrics-out` / `--trace-out` values. */
struct ObsFlags
{
    std::string metricsOut;
    std::string traceOut;
};

/** Register the shared --metrics-out/--trace-out flags. */
void addObsFlags(FlagSet &flags, ObsFlags *values);

/**
 * Apply parsed obs flags: validates that each named path is writable
 * (exiting 2 otherwise, consistent with FlagSet's handling of bad
 * flag values), enables recording when any output was requested, and
 * schedules the dump for process exit.
 */
void applyObsFlags(const ObsFlags &values);

} // namespace obs
} // namespace fairco2

// ---- Instrumentation-site macros -----------------------------------
//
// These compile to nothing when FAIRCO2_OBS_OFF is defined; otherwise
// they cache the registry reference in a function-local static so the
// per-event cost is one enabled() branch.

#define FAIRCO2_OBS_CAT2(a, b) a##b
#define FAIRCO2_OBS_CAT(a, b) FAIRCO2_OBS_CAT2(a, b)

#if defined(FAIRCO2_OBS_OFF)

#define FAIRCO2_COUNT(name, n) ((void)0)
#define FAIRCO2_GAUGE_SET(name, value) ((void)0)
#define FAIRCO2_OBSERVE(name, value) ((void)0)
#define FAIRCO2_TIME_NS(name) ((void)0)
#define FAIRCO2_SPAN(name) ((void)0)

#else

/** Bump the counter @p name (a string literal) by @p n. */
#define FAIRCO2_COUNT(name, n)                                       \
    do {                                                             \
        static ::fairco2::obs::Counter &fairco2_obs_counter =        \
            ::fairco2::obs::counter(name);                           \
        fairco2_obs_counter.add(                                     \
            static_cast<std::uint64_t>(n));                          \
    } while (0)

/** Set the gauge @p name (a string literal) to @p value. */
#define FAIRCO2_GAUGE_SET(name, value)                               \
    do {                                                             \
        static ::fairco2::obs::Gauge &fairco2_obs_gauge =            \
            ::fairco2::obs::gauge(name);                             \
        fairco2_obs_gauge.set(static_cast<double>(value));           \
    } while (0)

/** Record @p value into the histogram @p name. */
#define FAIRCO2_OBSERVE(name, value)                                 \
    do {                                                             \
        static ::fairco2::obs::Histogram &fairco2_obs_hist =         \
            ::fairco2::obs::histogram(name);                         \
        fairco2_obs_hist.record(static_cast<double>(value));         \
    } while (0)

/** Time the rest of the enclosing scope into histogram @p name. */
#define FAIRCO2_TIME_NS(name)                                        \
    static ::fairco2::obs::Histogram &FAIRCO2_OBS_CAT(               \
        fairco2_obs_timer_hist_, __LINE__) =                         \
        ::fairco2::obs::histogram(name);                             \
    ::fairco2::obs::ScopedTimer FAIRCO2_OBS_CAT(fairco2_obs_timer_,  \
                                                __LINE__)(           \
        FAIRCO2_OBS_CAT(fairco2_obs_timer_hist_, __LINE__))

/** Trace span covering the rest of the enclosing scope. */
#define FAIRCO2_SPAN(name)                                           \
    ::fairco2::obs::SpanGuard FAIRCO2_OBS_CAT(fairco2_obs_span_,     \
                                              __LINE__)(name)

#endif // FAIRCO2_OBS_OFF

#endif // FAIRCO2_COMMON_OBS_HH
