#include "common/csv.hh"

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

namespace fairco2
{

CsvWriter::CsvWriter(const std::string &path)
    : path_(path)
{
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    out_.open(path);
    if (!out_)
        throw std::runtime_error("cannot open CSV for writing: " + path);
}

std::string
CsvWriter::escape(const std::string &cell) const
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

void
CsvWriter::writeNumericRow(const std::vector<double> &cells)
{
    char buf[64];
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        std::snprintf(buf, sizeof(buf), "%.10g", cells[i]);
        out_ << buf;
    }
    out_ << '\n';
}

void
CsvWriter::writeRow(const std::string &label,
                    const std::vector<double> &cells)
{
    writeRow(std::vector<std::string>{label}, cells);
}

void
CsvWriter::writeRow(const std::vector<std::string> &labels,
                    const std::vector<double> &cells)
{
    bool first = true;
    for (const auto &label : labels) {
        if (!first)
            out_ << ',';
        out_ << escape(label);
        first = false;
    }
    char buf[64];
    for (double v : cells) {
        std::snprintf(buf, sizeof(buf), "%.10g", v);
        if (!first)
            out_ << ',';
        out_ << buf;
        first = false;
    }
    out_ << '\n';
}

namespace
{

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                cell += c;
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            cells.push_back(cell);
            cell.clear();
        } else if (c != '\r') {
            cell += c;
        }
    }
    cells.push_back(cell);
    return cells;
}

} // namespace

std::size_t
CsvTable::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name)
            return i;
    }
    return std::string::npos;
}

std::vector<double>
CsvTable::numericColumn(const std::string &name) const
{
    const std::size_t col = columnIndex(name);
    if (col == std::string::npos)
        throw std::runtime_error("no such CSV column: " + name);
    std::vector<double> values;
    values.reserve(rows.size());
    for (const auto &row : rows)
        values.push_back(col < row.size() ? std::stod(row[col]) : 0.0);
    return values;
}

CsvTable
readCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open CSV for reading: " + path);

    CsvTable table;
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        // CRLF input: getline leaves the '\r', which would make a
        // blank line look non-empty and yield a spurious [""] row.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        auto cells = splitCsvLine(line);
        if (first) {
            table.header = std::move(cells);
            first = false;
        } else {
            table.rows.push_back(std::move(cells));
        }
    }
    return table;
}

} // namespace fairco2
