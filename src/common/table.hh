/**
 * @file
 * Aligned plain-text table printing for bench output, so each bench
 * binary prints the same rows/series the paper's figures report.
 */

#ifndef FAIRCO2_COMMON_TABLE_HH
#define FAIRCO2_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace fairco2
{

/** Column-aligned text table with a title and header row. */
class TextTable
{
  public:
    /** @param title printed above the table, underlined. */
    explicit TextTable(std::string title);

    /** Set the column headers (fixes the column count). */
    void setHeader(const std::vector<std::string> &header);

    /** Append a row of preformatted cells. */
    void addRow(const std::vector<std::string> &cells);

    /**
     * Append a row whose first cell is a label and the rest doubles
     * formatted with @p precision digits after the point.
     */
    void addRow(const std::string &label,
                const std::vector<double> &values, int precision = 3);

    /** Render the full table to a string. */
    std::string str() const;

    /** Print the table to stdout. */
    void print() const;

    /** Format a double with fixed precision (helper for callers). */
    static std::string fmt(double value, int precision = 3);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fairco2

#endif // FAIRCO2_COMMON_TABLE_HH
