/**
 * @file
 * Deterministic parallel execution for trial/coalition loops.
 *
 * All the heavy loops in Fair-CO2 — Monte Carlo trials, exact-Shapley
 * coalition enumeration, configuration-sweep grids — are
 * embarrassingly parallel. This layer runs them across a fixed-size
 * thread pool with *static* chunk assignment (no work stealing): the
 * iteration range is cut into chunks purely as a function of the
 * range and the chunk size, chunk c is executed by participant
 * c % threads, and reductions fold per-chunk partials in ascending
 * chunk order. Because neither the chunk grid nor the fold order
 * depends on the thread count, results are bit-identical for any
 * `--threads N`, including 1 — provided the loop body derives its
 * randomness per index (see Rng::fork) instead of sharing a stream.
 *
 * Nested calls do not re-enter the pool: a parallelFor issued from
 * inside a worker (e.g. exactShapley invoked by a Monte Carlo trial
 * that is itself parallelized) is rejected by the pool and executed
 * serially inline, which keeps the determinism guarantee and can
 * never deadlock.
 *
 * Exceptions thrown by a chunk body are captured, the remaining
 * chunks are abandoned as soon as possible, and the first exception
 * is rethrown on the calling thread once every participant has
 * stopped.
 */

#ifndef FAIRCO2_COMMON_PARALLEL_HH
#define FAIRCO2_COMMON_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace fairco2
{

class FlagSet;

namespace parallel
{

/** Threads the hardware offers (>= 1 even when undetectable). */
std::size_t hardwareConcurrency();

/** Currently configured worker count (>= 1). */
std::size_t threadCount();

/**
 * Set the worker count; 0 selects hardwareConcurrency(). Must not be
 * called from inside a parallel region. Changing the count never
 * changes results, only wall time.
 */
void setThreadCount(std::size_t count);

/** True while the calling thread is executing a parallel region. */
bool inParallelRegion();

/**
 * Register the shared `--threads` flag on a bench/tool FlagSet.
 * *value should default to 0 (= hardware concurrency).
 */
void addThreadsFlag(FlagSet &flags, std::int64_t *value);

/**
 * Apply a parsed `--threads` value (0 = hardware concurrency). A
 * negative value reports an error and exits 2, mirroring FlagSet's
 * handling of malformed flag values.
 */
void applyThreadsFlag(std::int64_t value);

namespace detail
{

/**
 * Execute chunk_body(c) for every c in [0, num_chunks), distributing
 * chunks round-robin over the pool. Serial when num_chunks <= 1, the
 * pool has one thread, or the caller is already inside a region.
 */
void runChunks(std::size_t num_chunks,
               const std::function<void(std::size_t)> &chunk_body);

} // namespace detail

/**
 * Parallel loop over [begin, end): body(lo, hi) is invoked once per
 * chunk with begin <= lo < hi <= end. The chunk grid depends only on
 * the range and @p chunk (clamped to >= 1), never on the thread
 * count. The body must be safe to run concurrently with itself on
 * disjoint chunks and must not depend on chunk execution order.
 */
template <typename Body>
void
parallelFor(std::size_t begin, std::size_t end, std::size_t chunk,
            Body &&body)
{
    if (begin >= end)
        return;
    if (chunk == 0)
        chunk = 1;
    const std::size_t num_chunks = (end - begin + chunk - 1) / chunk;
    detail::runChunks(num_chunks, [&](std::size_t c) {
        const std::size_t lo = begin + c * chunk;
        const std::size_t hi = std::min(end, lo + chunk);
        body(lo, hi);
    });
}

/**
 * Parallel map-reduce over [begin, end): map(lo, hi) produces one
 * partial per chunk, and the partials are folded left-to-right in
 * ascending chunk order with reduce(accumulator, partial). The fixed
 * fold order makes floating-point results bit-identical for any
 * thread count (they may differ from a single unchunked serial
 * accumulation, which is why callers pick a fixed @p chunk).
 */
template <typename T, typename Map, typename Reduce>
T
parallelMapReduce(std::size_t begin, std::size_t end,
                  std::size_t chunk, T identity, Map &&map,
                  Reduce &&reduce)
{
    T result = std::move(identity);
    if (begin >= end)
        return result;
    if (chunk == 0)
        chunk = 1;
    const std::size_t num_chunks = (end - begin + chunk - 1) / chunk;
    std::vector<T> partials(num_chunks, result);
    detail::runChunks(num_chunks, [&](std::size_t c) {
        const std::size_t lo = begin + c * chunk;
        const std::size_t hi = std::min(end, lo + chunk);
        partials[c] = map(lo, hi);
    });
    for (T &partial : partials)
        reduce(result, partial);
    return result;
}

/**
 * Wait-free snapshot publication for a single writer and any number
 * of concurrent readers (seqlock-style, double-buffered).
 *
 * The writer alternates between two buffers: each publish writes the
 * buffer readers are *not* being directed to, then flips the `latest`
 * index. Readers copy the buffer `latest` points at and validate the
 * buffer's sequence counter around the copy; when a validation fails
 * (the writer lapped into that buffer mid-copy), the *other* buffer
 * is guaranteed stable for the remainder of that publish, so a read
 * completes in at most two attempts per overlapping publish — there
 * are no reader-side locks, and readers never make the writer wait.
 *
 * The payload is stored as 64-bit atomic words (relative to a
 * trivially copyable T), so concurrent reads during a write are
 * well-defined and ThreadSanitizer-clean: a torn snapshot can be
 * *observed* at the word level but is always *rejected* by the
 * sequence validation. All atomic operations use the default
 * sequentially consistent ordering — publishes are rare (one per
 * window advance) and seq_cst loads are plain loads on x86, so
 * nothing here is worth a weaker-ordering proof obligation.
 */
template <typename T>
class SnapshotCell
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SnapshotCell payloads are copied wordwise");

  public:
    SnapshotCell() { publish(T{}); }

    explicit SnapshotCell(const T &initial) { publish(initial); }

    SnapshotCell(const SnapshotCell &) = delete;
    SnapshotCell &operator=(const SnapshotCell &) = delete;

    /** Publish @p value. Single writer only. */
    void
    publish(const T &value)
    {
        const std::size_t next = 1 - latest_.load();
        Buffer &buffer = buffers_[next];
        const std::uint64_t seq = buffer.seq.load();
        buffer.seq.store(seq + 1); // odd: write in progress
        std::uint64_t raw[kWords] = {};
        std::memcpy(raw, &value, sizeof(T));
        for (std::size_t w = 0; w < kWords; ++w)
            buffer.words[w].store(raw[w]);
        buffer.seq.store(seq + 2); // even: write complete
        latest_.store(next);
        publishes_.fetch_add(1);
    }

    /**
     * Copy out the latest published snapshot. Safe from any thread,
     * no locks; completes in at most two buffer attempts per publish
     * that overlaps the read.
     */
    T
    read() const
    {
        for (;;) {
            const std::size_t preferred = latest_.load();
            for (std::size_t attempt = 0; attempt < 2; ++attempt) {
                T out;
                if (tryRead(buffers_[preferred ^ attempt], out))
                    return out;
            }
            // Both buffers changed under us: more than one publish
            // landed during this read. Start over.
        }
    }

    /** Publishes so far (0 before the first explicit publish — the
     *  constructor's T{} publish is not counted). */
    std::uint64_t
    publishes() const
    {
        return publishes_.load() - 1;
    }

  private:
    static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

    struct Buffer
    {
        std::atomic<std::uint64_t> seq{0};
        std::atomic<std::uint64_t> words[kWords] = {};
    };

    static bool
    tryRead(const Buffer &buffer, T &out)
    {
        const std::uint64_t s1 = buffer.seq.load();
        if (s1 & 1)
            return false; // write in progress
        std::uint64_t raw[kWords];
        for (std::size_t w = 0; w < kWords; ++w)
            raw[w] = buffer.words[w].load();
        if (buffer.seq.load() != s1)
            return false; // writer lapped into this buffer
        std::memcpy(&out, raw, sizeof(T));
        return true;
    }

    Buffer buffers_[2];
    std::atomic<std::size_t> latest_{0};
    std::atomic<std::uint64_t> publishes_{0};
};

} // namespace parallel
} // namespace fairco2

#endif // FAIRCO2_COMMON_PARALLEL_HH
