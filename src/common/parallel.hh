/**
 * @file
 * Deterministic parallel execution for trial/coalition loops.
 *
 * All the heavy loops in Fair-CO2 — Monte Carlo trials, exact-Shapley
 * coalition enumeration, configuration-sweep grids — are
 * embarrassingly parallel. This layer runs them across a fixed-size
 * thread pool with *static* chunk assignment (no work stealing): the
 * iteration range is cut into chunks purely as a function of the
 * range and the chunk size, chunk c is executed by participant
 * c % threads, and reductions fold per-chunk partials in ascending
 * chunk order. Because neither the chunk grid nor the fold order
 * depends on the thread count, results are bit-identical for any
 * `--threads N`, including 1 — provided the loop body derives its
 * randomness per index (see Rng::fork) instead of sharing a stream.
 *
 * Nested calls do not re-enter the pool: a parallelFor issued from
 * inside a worker (e.g. exactShapley invoked by a Monte Carlo trial
 * that is itself parallelized) is rejected by the pool and executed
 * serially inline, which keeps the determinism guarantee and can
 * never deadlock.
 *
 * Exceptions thrown by a chunk body are captured, the remaining
 * chunks are abandoned as soon as possible, and the first exception
 * is rethrown on the calling thread once every participant has
 * stopped.
 */

#ifndef FAIRCO2_COMMON_PARALLEL_HH
#define FAIRCO2_COMMON_PARALLEL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace fairco2
{

class FlagSet;

namespace parallel
{

/** Threads the hardware offers (>= 1 even when undetectable). */
std::size_t hardwareConcurrency();

/** Currently configured worker count (>= 1). */
std::size_t threadCount();

/**
 * Set the worker count; 0 selects hardwareConcurrency(). Must not be
 * called from inside a parallel region. Changing the count never
 * changes results, only wall time.
 */
void setThreadCount(std::size_t count);

/** True while the calling thread is executing a parallel region. */
bool inParallelRegion();

/**
 * Register the shared `--threads` flag on a bench/tool FlagSet.
 * *value should default to 0 (= hardware concurrency).
 */
void addThreadsFlag(FlagSet &flags, std::int64_t *value);

/**
 * Apply a parsed `--threads` value (0 = hardware concurrency). A
 * negative value reports an error and exits 2, mirroring FlagSet's
 * handling of malformed flag values.
 */
void applyThreadsFlag(std::int64_t value);

namespace detail
{

/**
 * Execute chunk_body(c) for every c in [0, num_chunks), distributing
 * chunks round-robin over the pool. Serial when num_chunks <= 1, the
 * pool has one thread, or the caller is already inside a region.
 */
void runChunks(std::size_t num_chunks,
               const std::function<void(std::size_t)> &chunk_body);

} // namespace detail

/**
 * Parallel loop over [begin, end): body(lo, hi) is invoked once per
 * chunk with begin <= lo < hi <= end. The chunk grid depends only on
 * the range and @p chunk (clamped to >= 1), never on the thread
 * count. The body must be safe to run concurrently with itself on
 * disjoint chunks and must not depend on chunk execution order.
 */
template <typename Body>
void
parallelFor(std::size_t begin, std::size_t end, std::size_t chunk,
            Body &&body)
{
    if (begin >= end)
        return;
    if (chunk == 0)
        chunk = 1;
    const std::size_t num_chunks = (end - begin + chunk - 1) / chunk;
    detail::runChunks(num_chunks, [&](std::size_t c) {
        const std::size_t lo = begin + c * chunk;
        const std::size_t hi = std::min(end, lo + chunk);
        body(lo, hi);
    });
}

/**
 * Parallel map-reduce over [begin, end): map(lo, hi) produces one
 * partial per chunk, and the partials are folded left-to-right in
 * ascending chunk order with reduce(accumulator, partial). The fixed
 * fold order makes floating-point results bit-identical for any
 * thread count (they may differ from a single unchunked serial
 * accumulation, which is why callers pick a fixed @p chunk).
 */
template <typename T, typename Map, typename Reduce>
T
parallelMapReduce(std::size_t begin, std::size_t end,
                  std::size_t chunk, T identity, Map &&map,
                  Reduce &&reduce)
{
    T result = std::move(identity);
    if (begin >= end)
        return result;
    if (chunk == 0)
        chunk = 1;
    const std::size_t num_chunks = (end - begin + chunk - 1) / chunk;
    std::vector<T> partials(num_chunks, result);
    detail::runChunks(num_chunks, [&](std::size_t c) {
        const std::size_t lo = begin + c * chunk;
        const std::size_t hi = std::min(end, lo + chunk);
        partials[c] = map(lo, hi);
    });
    for (T &partial : partials)
        reduce(result, partial);
    return result;
}

} // namespace parallel
} // namespace fairco2

#endif // FAIRCO2_COMMON_PARALLEL_HH
