/**
 * @file
 * Learned Shapley-share surrogate: featurization, the ridge model,
 * and its checksummed on-disk format.
 *
 * Following "Deep Learning-Accelerated Shapley Value for Fair
 * Allocation in Power Systems" (PAPERS.md), the surrogate predicts
 * each window period's *share* of the attribution pool from cheap
 * streaming sketches of the demand curve — peak, usage, spread, and
 * peak position — instead of running the sub-game solves the exact
 * engine needs. This layer holds everything below the engines:
 *
 *  - PeriodSketch: the O(1)-per-sample statistics a streaming
 *    ingest can maintain for each window period;
 *  - featurize(): the fixed kFeatureCount-wide feature map over one
 *    window of sketches. The basis deliberately includes the peak
 *    game's threshold-decomposition share (phi_i derived from the
 *    sorted peak profile) — the physics-informed anchor feature.
 *    For the *pure* peak game that basis is complete, so training
 *    recovers it and the model interpolates near-exactly
 *    in-distribution; for game families without a streamable closed
 *    form the same pipeline degrades gracefully and the guardrails
 *    (src/shapley/surrogate.hh) carry the correctness burden;
 *  - SurrogateModel: ridge weights (fit via
 *    fairco2::ridgeRegression) plus the training-feature bounding
 *    box and held-out calibration stats the guardrails consult;
 *  - save/load with a leading FNV-1a checksum, so a corrupt model
 *    file surfaces as FatalDataError (front ends exit 2), never as
 *    silently wrong predictions.
 *
 * Training itself lives one layer up (src/shapley/surrogate.hh): it
 * needs exact peak-game solves for targets, and `common` links
 * against nothing.
 */

#ifndef FAIRCO2_COMMON_SURROGATE_HH
#define FAIRCO2_COMMON_SURROGATE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fairco2::surrogate
{

/** Streaming per-period statistics, updated in O(1) per sample.
 *  `peak` and `sum` accumulate in sample order with the same
 *  expressions as IncrementalTemporalEngine::solvePeriod, so a
 *  sketch-derived peak/usage pair is bitwise equal to the engine's. */
struct PeriodSketch
{
    double peak = 0.0;  //!< running max over the period's samples
    double sum = 0.0;   //!< running sum (usage = sum * stepSeconds)
    double sumSq = 0.0; //!< running sum of squares (spread feature)
    std::size_t samples = 0;
    std::size_t peakIndex = 0; //!< sample offset of the running max

    void
    add(double value)
    {
        if (value > peak) {
            peak = value;
            peakIndex = samples;
        }
        sum += value;
        sumSq += value * value;
        ++samples;
    }

    /** Integral over the period, matching TimeSeries::integral. */
    double usage(double step_seconds) const
    {
        return sum * step_seconds;
    }
};

/** Width of the fixed feature map (one row per window period). */
constexpr std::size_t kFeatureCount = 8;

/** One period's feature row. */
using FeatureRow = std::array<double, kFeatureCount>;

/**
 * Shapley values of the peak game over @p peaks via the threshold
 * decomposition: share each increment c_(m) - c_(m-1) of the sorted
 * peaks among the n - m + 1 players reaching it. The same closed
 * form as shapley::peakGameShapley, duplicated here because the
 * feature map needs it and `common` cannot link the engines layer;
 * tests/test_surrogate.cc pins the two bitwise-equal.
 */
std::vector<double> thresholdPhi(const std::vector<double> &peaks);

/**
 * Feature rows for every period of one window of sketches.
 * Deterministic, pure in (sketches, step_seconds). Rows are
 * normalized within the window (shares, ranks, ratios), so the map
 * is scale-invariant in the demand units.
 */
std::vector<FeatureRow>
featurize(const std::vector<PeriodSketch> &window,
          double step_seconds);

/** The trained surrogate: ridge weights plus the guardrail
 *  metadata. */
struct SurrogateModel
{
    /** Ridge weights over the feature map, length kFeatureCount. */
    std::array<double, kFeatureCount> weights{};
    /** Per-feature training bounding box; predictions outside it
     *  (plus kOutOfDistributionMargin) are rejected as
     *  out-of-distribution. */
    std::array<double, kFeatureCount> featureMin{};
    std::array<double, kFeatureCount> featureMax{};
    double lambda = 0.0;    //!< ridge penalty the fit used
    double trainRmse = 0.0; //!< share RMSE on the training split
    /** Held-out newest-share relative error: median and p95. */
    double heldOutP50 = 0.0;
    double heldOutP95 = 0.0;
    std::uint64_t trainedOnWindows = 0;
    std::uint64_t seed = 0; //!< training seed (provenance)

    /** FNV-1a over the serialized payload — the identity the WAL
     *  config hash mixes in and the file format verifies. */
    std::uint64_t checksum() const;
};

/** Box margin (relative to each feature's training span) the
 *  out-of-distribution guardrail tolerates. */
constexpr double kOutOfDistributionMargin = 0.05;

/** Raw (unrescaled) share prediction for one feature row. */
double predictShare(const SurrogateModel &model,
                    const FeatureRow &row);

/** True when every feature of @p row lies inside the model's
 *  training box widened by kOutOfDistributionMargin. */
bool inTrainingBox(const SurrogateModel &model,
                   const FeatureRow &row);

/** Serialize @p model (exact doubles; checksum first). */
std::vector<std::uint8_t> encodeModel(const SurrogateModel &model);

/** Parse a serialized model; throws FatalDataError on malformed
 *  bytes or a checksum mismatch. */
SurrogateModel decodeModel(const std::vector<std::uint8_t> &bytes);

/** Write @p model to @p path (tmp + rename); throws FatalDataError
 *  when the path is unwritable. */
void saveModel(const SurrogateModel &model, const std::string &path);

/** Load a model file; throws FatalDataError on a missing file,
 *  short read, bad magic/version, or checksum mismatch. The
 *  round-trip load(save(m)) == m is bitwise. */
SurrogateModel loadModel(const std::string &path);

/**
 * Validate a parsed `--surrogate-tol` value: exits 2 with a named
 * diagnostic when it is <= 0 or not finite (non-finite literals are
 * already rejected by FlagSet::parse; this guards values that
 * arrive programmatically). The share tolerance is relative, so 0
 * would reject every prediction and a negative bound is
 * meaningless.
 */
void requireSurrogateTol(double tol);

} // namespace fairco2::surrogate

#endif // FAIRCO2_COMMON_SURROGATE_HH
