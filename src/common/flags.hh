/**
 * @file
 * Tiny command-line flag parser for the bench and example binaries.
 *
 * Supports "--name value" and "--name=value" forms plus boolean
 * switches ("--fast"). Unknown flags are fatal so that typos in sweep
 * scripts fail loudly.
 */

#ifndef FAIRCO2_COMMON_FLAGS_HH
#define FAIRCO2_COMMON_FLAGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fairco2
{

/** Declarative flag registry bound to variables by pointer. */
class FlagSet
{
  public:
    /** @param description one-line program description for --help. */
    explicit FlagSet(std::string description);

    /** Register an int64 flag with a default already stored in *value. */
    void addInt(const std::string &name, std::int64_t *value,
                const std::string &help);

    /** Register a double flag. */
    void addDouble(const std::string &name, double *value,
                   const std::string &help);

    /** Register a string flag. */
    void addString(const std::string &name, std::string *value,
                   const std::string &help);

    /** Register a boolean switch (presence sets true; =false resets). */
    void addBool(const std::string &name, bool *value,
                 const std::string &help);

    /**
     * Parse argv. On --help prints usage and returns false (caller
     * should exit 0). On a malformed, unknown, or repeated flag
     * prints an error and usage, then exits with status 2. Numeric
     * values are parsed strictly: trailing garbage ("10x") and
     * non-finite doubles are malformed, not truncated.
     */
    bool parse(int argc, char **argv);

  private:
    enum class Kind { Int, Double, String, Bool };

    struct Flag
    {
        Kind kind;
        void *target;
        std::string help;
        std::string defaultRepr;
    };

    void registerFlag(const std::string &name, Kind kind, void *target,
                      const std::string &help,
                      const std::string &default_repr);
    void printUsage(const std::string &prog) const;
    [[noreturn]] void fail(const std::string &prog,
                           const std::string &message) const;
    bool assign(const Flag &flag, const std::string &text) const;

    std::string description_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
};

/**
 * Validate that @p path (the value of flag --@p flag_name) can be
 * created or appended to. Empty paths pass. On an unwritable path,
 * prints an error and exits with status 2 — the same convention
 * FlagSet uses for malformed values (and `--threads` for negative
 * counts). A file probed into existence by the check is removed
 * again.
 */
void requireWritableFlagPath(const std::string &flag_name,
                             const std::string &path);

/**
 * Parse a comma-separated list of strictly positive integers, e.g. a
 * `--splits 4,6` value. Empty tokens ("10,,8"), non-numeric or
 * partially numeric tokens ("4x"), zero, and negatives all throw
 * std::invalid_argument naming the offending token — list flags must
 * fail loudly, not silently skip entries.
 */
std::vector<std::size_t> parsePositiveIntList(const std::string &text);

} // namespace fairco2

#endif // FAIRCO2_COMMON_FLAGS_HH
