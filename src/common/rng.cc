#include "common/rng.hh"

#include <cassert>
#include <cmath>
#include <numbers>

namespace fairco2
{

namespace
{

/** splitmix64 step, used only to expand the seed into full state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : seed_(seed), cachedNormal_(0.0), hasCachedNormal_(false)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit && span != 0);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = 0.0;
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::index(std::size_t n)
{
    assert(n > 0);
    return static_cast<std::size_t>(
        uniformInt(0, static_cast<std::int64_t>(n) - 1));
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = index(i);
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

std::vector<std::size_t>
Rng::sampleWithoutReplacement(std::size_t n, std::size_t k)
{
    assert(k <= n);
    // Partial Fisher-Yates: shuffle only the first k slots.
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i)
        pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j =
            i + index(n - i);
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

Rng
Rng::fork(std::uint64_t stream) const
{
    // Counter-based derivation: scramble (seed, stream) through two
    // splitmix64 steps. The XOR constant keeps fork(0) off the words
    // the constructor already expanded from the bare seed, so a
    // child never replays its parent's state.
    std::uint64_t s = (seed_ ^ 0x5851f42d4c957f2dULL) +
        (stream + 1) * 0x9e3779b97f4a7c15ULL;
    const std::uint64_t first = splitmix64(s);
    return Rng(first ^ splitmix64(s));
}

} // namespace fairco2
