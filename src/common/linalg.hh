/**
 * @file
 * Small dense linear algebra: just enough to fit the ridge-regularized
 * least-squares models used by the demand forecaster. Not a general
 * BLAS; sizes here are tens of columns by thousands of rows.
 */

#ifndef FAIRCO2_COMMON_LINALG_HH
#define FAIRCO2_COMMON_LINALG_HH

#include <cstddef>
#include <vector>

namespace fairco2
{

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Zero-filled rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Mutable element access (no bounds check in release builds). */
    double &operator()(std::size_t r, std::size_t c);
    /** Const element access. */
    double operator()(std::size_t r, std::size_t c) const;

    /** this^T * this (Gram matrix), cols x cols. */
    Matrix gram() const;

    /** this^T * v for a vector of length rows(). */
    std::vector<double> transposeTimes(const std::vector<double> &v) const;

    /** this * v for a vector of length cols(). */
    std::vector<double> times(const std::vector<double> &v) const;

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> data_;
};

/**
 * Solve the symmetric positive-definite system A x = b in place via
 * Cholesky decomposition. @p a is overwritten with its factor.
 *
 * @return the solution vector.
 * @throws std::runtime_error if A is not positive definite.
 */
std::vector<double> choleskySolve(Matrix a, std::vector<double> b);

/**
 * Ridge-regularized least squares: minimizes
 * |X w - y|^2 + lambda |w|^2 (the intercept column, if any, is
 * regularized too; callers rescale features so this is harmless).
 *
 * @param x design matrix (rows = samples, cols = features).
 * @param y targets, length x.rows().
 * @param lambda non-negative ridge penalty.
 * @return fitted weights, length x.cols().
 */
std::vector<double> ridgeRegression(const Matrix &x,
                                    const std::vector<double> &y,
                                    double lambda);

} // namespace fairco2

#endif // FAIRCO2_COMMON_LINALG_HH
