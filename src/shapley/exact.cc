#include "shapley/exact.hh"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace fairco2::shapley
{

std::vector<double>
exactShapley(const CoalitionGame &game)
{
    const int n = game.numPlayers();
    if (n < 0 || n > kMaxExactPlayers)
        throw std::invalid_argument(
            "exactShapley: too many players for enumeration");
    if (n == 0)
        return {};

    const std::uint64_t num_masks = 1ULL << n;

    // Tabulate v once; games are often expensive to evaluate.
    std::vector<double> v(num_masks);
    for (std::uint64_t mask = 0; mask < num_masks; ++mask)
        v[mask] = game.value(mask);

    // weight[s] = s! (n-1-s)! / n! for |S| = s, computed iteratively
    // to stay in floating point range: weight[0] = 1/n and
    // weight[s] = weight[s-1] * s / (n - s).
    std::vector<double> weight(n);
    weight[0] = 1.0 / n;
    for (int s = 1; s < n; ++s)
        weight[s] = weight[s - 1] * s / (n - s);

    std::vector<double> phi(n, 0.0);
    for (std::uint64_t mask = 0; mask < num_masks; ++mask) {
        const int size = std::popcount(mask);
        const double w = weight[size];
        const double v_s = v[mask];
        // Add each absent player i and accumulate the marginal.
        std::uint64_t absent = ~mask & (num_masks - 1);
        while (absent) {
            const int i = std::countr_zero(absent);
            absent &= absent - 1;
            phi[i] += w * (v[mask | (1ULL << i)] - v_s);
        }
    }
    return phi;
}

std::vector<double>
sampledShapley(const CoalitionGame &game, Rng &rng,
               std::size_t num_permutations)
{
    const int n = game.numPlayers();
    if (n == 0 || num_permutations == 0)
        return std::vector<double>(n, 0.0);

    std::vector<double> phi(n, 0.0);
    for (std::size_t p = 0; p < num_permutations; ++p) {
        const auto order = rng.permutation(static_cast<std::size_t>(n));
        std::uint64_t mask = 0;
        double prev = game.value(0);
        for (int k = 0; k < n; ++k) {
            const auto player = order[k];
            mask |= 1ULL << player;
            const double cur = game.value(mask);
            phi[player] += cur - prev;
            prev = cur;
        }
    }
    for (double &x : phi)
        x /= static_cast<double>(num_permutations);
    return phi;
}

double
exactEvaluationCount(double num_players)
{
    return std::pow(2.0, num_players);
}

} // namespace fairco2::shapley
