#include "shapley/exact.hh"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "common/obs.hh"
#include "common/parallel.hh"

namespace fairco2::shapley
{

namespace
{

/**
 * Masks per parallel chunk. Fixed (never derived from the thread
 * count) so the chunk grid — and with it the floating-point
 * reduction order — is identical for any `--threads N`.
 */
constexpr std::uint64_t kMaskChunk = 1ULL << 14;

} // namespace

std::vector<double>
exactShapley(const CoalitionGame &game)
{
    const int n = game.numPlayers();
    if (n < 0 || n > kMaxExactPlayers)
        throw std::invalid_argument(
            "exactShapley: too many players for enumeration");
    if (n == 0)
        return {};

    const std::uint64_t num_masks = 1ULL << n;

    // Explicit size guard before reserving the 2^n-double table; the
    // player cap above bounds it at exactTableBytes(24) = 128 MiB,
    // and this check keeps the bound honest if the cap ever moves.
    constexpr std::size_t max_bytes = exactTableBytes(kMaxExactPlayers);
    if (num_masks * sizeof(double) > max_bytes)
        throw std::invalid_argument(
            "exactShapley: coalition table would exceed the "
            "documented memory bound");

    FAIRCO2_SPAN("shapley.exact");
    FAIRCO2_COUNT("shapley.exact.solves", 1);
    FAIRCO2_COUNT("shapley.exact.coalitions", num_masks);
    FAIRCO2_OBSERVE("shapley.exact.players", n);
    FAIRCO2_TIME_NS("shapley.exact.solve_ns");

    // Tabulate v once; games are often expensive to evaluate. Each
    // entry is independent, so masks tabulate in parallel chunks.
    std::vector<double> v(num_masks);
    {
        FAIRCO2_SPAN("shapley.exact.tabulate");
        parallel::parallelFor(
            0, num_masks, kMaskChunk,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t mask = lo; mask < hi; ++mask)
                    v[mask] = game.value(mask);
            });
    }

    // weight[s] = s! (n-1-s)! / n! for |S| = s, computed iteratively
    // to stay in floating point range: weight[0] = 1/n and
    // weight[s] = weight[s-1] * s / (n - s).
    std::vector<double> weight(n);
    weight[0] = 1.0 / n;
    for (int s = 1; s < n; ++s)
        weight[s] = weight[s - 1] * s / (n - s);

    // Accumulate marginals with one phi partial per mask chunk,
    // folded in ascending chunk order — bit-identical regardless of
    // how many threads executed the chunks.
    FAIRCO2_SPAN("shapley.exact.accumulate");
    auto phi = parallel::parallelMapReduce(
        0, num_masks, kMaskChunk, std::vector<double>(n, 0.0),
        [&](std::size_t lo, std::size_t hi) {
            std::vector<double> partial(n, 0.0);
            for (std::size_t mask = lo; mask < hi; ++mask) {
                // The full coalition has no absent players, and its
                // popcount would index one past the end of weight.
                std::uint64_t absent = ~mask & (num_masks - 1);
                if (absent == 0)
                    continue;
                const int size =
                    std::popcount(static_cast<std::uint64_t>(mask));
                const double w = weight[size];
                const double v_s = v[mask];
                // Add each absent player i and accumulate the
                // marginal.
                while (absent) {
                    const int i = std::countr_zero(absent);
                    absent &= absent - 1;
                    partial[i] += w * (v[mask | (1ULL << i)] - v_s);
                }
            }
            return partial;
        },
        [n](std::vector<double> &acc,
            const std::vector<double> &partial) {
            for (int i = 0; i < n; ++i)
                acc[i] += partial[i];
        });
    return phi;
}

std::vector<double>
sampledShapley(const CoalitionGame &game, Rng &rng,
               std::size_t num_permutations)
{
    const int n = game.numPlayers();
    if (n == 0 || num_permutations == 0)
        return std::vector<double>(n, 0.0);

    FAIRCO2_SPAN("shapley.sampled");
    FAIRCO2_COUNT("shapley.sampled.solves", 1);
    FAIRCO2_COUNT("shapley.sampled.permutations", num_permutations);
    FAIRCO2_TIME_NS("shapley.sampled.solve_ns");

    // One state advance of the caller's generator yields the base all
    // per-permutation streams fork from; permutation p then depends
    // only on (base seed, p), not on which thread or in which order
    // it is evaluated.
    const Rng base = rng.split();
    constexpr std::size_t kPermChunk = 16;

    auto phi = parallel::parallelMapReduce(
        0, num_permutations, kPermChunk, std::vector<double>(n, 0.0),
        [&](std::size_t lo, std::size_t hi) {
            std::vector<double> partial(n, 0.0);
            for (std::size_t p = lo; p < hi; ++p) {
                Rng perm_rng = base.fork(p);
                const auto order =
                    perm_rng.permutation(static_cast<std::size_t>(n));
                std::uint64_t mask = 0;
                double prev = game.value(0);
                for (int k = 0; k < n; ++k) {
                    const auto player = order[k];
                    mask |= 1ULL << player;
                    const double cur = game.value(mask);
                    partial[player] += cur - prev;
                    prev = cur;
                }
            }
            return partial;
        },
        [n](std::vector<double> &acc,
            const std::vector<double> &partial) {
            for (int i = 0; i < n; ++i)
                acc[i] += partial[i];
        });
    for (double &x : phi)
        x /= static_cast<double>(num_permutations);
    return phi;
}

double
exactEvaluationCount(double num_players)
{
    return std::pow(2.0, num_players);
}

} // namespace fairco2::shapley
