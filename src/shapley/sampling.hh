/**
 * @file
 * Variance-reduced Monte Carlo Shapley estimators, complementing the
 * plain permutation sampler in exact.hh. These are the practical
 * middle ground the paper alludes to when exact enumeration is
 * intractable but a per-workload estimate is still wanted: the
 * ablation bench compares their convergence against Fair-CO2's
 * closed forms.
 */

#ifndef FAIRCO2_SHAPLEY_SAMPLING_HH
#define FAIRCO2_SHAPLEY_SAMPLING_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "shapley/game.hh"

namespace fairco2::shapley
{

/**
 * Antithetic permutation sampling: each drawn permutation is also
 * evaluated in reverse. Marginals in a permutation and its reverse
 * are negatively correlated for monotone games, cutting variance at
 * the same evaluation budget as 2 x num_pairs plain permutations.
 */
std::vector<double> antitheticSampledShapley(
    const CoalitionGame &game, Rng &rng, std::size_t num_pairs);

/**
 * Stratified sampling (Castro-style): phi_i = (1/n) * sum over
 * coalition sizes k of the mean marginal of i into a uniformly
 * random size-k coalition. Each (player, size) stratum receives
 * @p samples_per_stratum draws, removing the variance between
 * strata that plain permutation sampling pays for.
 */
std::vector<double>
stratifiedSampledShapley(const CoalitionGame &game, Rng &rng,
                         std::size_t samples_per_stratum);

/** Result of an adaptive sampling run. */
struct AdaptiveShapleyResult
{
    std::vector<double> values;
    /** Half-width of the final per-player confidence interval. */
    std::vector<double> halfWidths;
    std::size_t permutationsUsed = 0;
    bool converged = false;
};

/**
 * Permutation sampling with early stopping: keeps drawing
 * permutations until every player's CLT confidence-interval
 * half-width (z = 2.58, ~99%) falls below @p epsilon relative to
 * the grand-coalition value, or @p max_permutations is exhausted.
 * A practical at-scale estimator when no closed form applies.
 */
AdaptiveShapleyResult
adaptiveSampledShapley(const CoalitionGame &game, Rng &rng,
                       double epsilon,
                       std::size_t max_permutations,
                       std::size_t min_permutations = 30);

} // namespace fairco2::shapley

#endif // FAIRCO2_SHAPLEY_SAMPLING_HH
