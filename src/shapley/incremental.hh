/**
 * @file
 * Incremental sliding-window Temporal Shapley with sub-game
 * memoization.
 *
 * The live deployment shape of the paper's signal recomputes a
 * hierarchical Temporal Shapley attribution every time the demand
 * window slides forward by one period — yet consecutive windows share
 * W-1 of their W period sub-games. IncrementalTemporalEngine memoizes
 * the carbon-independent part of each sub-game (peaks, usages,
 * per-node Shapley weights of the inner hierarchy), serialized to a
 * checksummed byte blob and held in a pluggable `cache::BlobStore`
 * keyed by a canonical coalition hash over *absolute* period indices,
 * so advancing the window by one period costs one fresh period solve
 * plus a W-player top-level peak game instead of W full solves.
 *
 * The store backend — allocator (malloc/arena), eviction policy
 * (LRU/CLOCK), lock strategy (mutex/sharded rwlock), and transparent
 * compression (identity/lz) — is selected per engine through
 * Config::backend (see src/cache/). The cache is an optimization,
 * never an input, so every backend combination publishes
 * byte-identical signals (enforced by tests/test_cache_backends.cc).
 *
 * Correctness contract (the strongest oracle in the repo):
 *
 *  - With memoization on (any capacity, any backend) or off
 *    (capacity 0), the engine's output is **byte-identical**: cached
 *    values are pure functions of the immutable period samples, and
 *    the carbon application pass mirrors
 *    core::TemporalShapley::attributeRange expression for
 *    expression.
 *  - A single full window equals TemporalShapley::attribute over the
 *    same samples with split counts {windowPeriods, innerSplits...},
 *    bit for bit.
 *  - In sampled mode the permutation table is derived once from
 *    Rng::fork streams and reused across windows, and the marginal
 *    sweep folds fixed-size chunks in ascending order, so results are
 *    bit-identical at any `--threads N`.
 *
 * Every cache blob leads with an FNV-1a checksum over its serialized
 * payload; a mismatch on hit — or a stored block that no longer
 * decompresses — throws CacheIntegrityError naming the offending
 * window period and the stored-vs-computed checksums, which the
 * pipeline supervisor treats as a stage crash and answers by
 * descending to the full-recompute rung. Cache behavior is observable
 * through the `shapley.cache.{hit,miss,evict,invalidate}` counters,
 * the per-policy `shapley.cache.evict.{lru,clock}` counters, the
 * `shapley.cache.{compressed_bytes,raw_bytes}` gauges, and the
 * per-engine CacheStats.
 */

#ifndef FAIRCO2_SHAPLEY_INCREMENTAL_HH
#define FAIRCO2_SHAPLEY_INCREMENTAL_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/backend.hh"
#include "cache/blobstore.hh"
#include "common/rng.hh"
#include "trace/timeseries.hh"

namespace fairco2::shapley
{

/**
 * A memoized sub-game entry failed its payload checksum or no longer
 * decompresses — the cache no longer reflects the period samples it
 * was solved from. The message names the offending window period (or
 * period range) and, for checksum failures, the stored-vs-computed
 * checksum pair. Callers should drop the engine and recompute from
 * scratch; the pipeline supervisor maps this onto the degradation
 * ladder.
 */
class CacheIntegrityError : public std::runtime_error
{
  public:
    explicit CacheIntegrityError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Counters describing one engine's cache behavior. The first four
 *  are monotonic; the byte fields are snapshots of the store's
 *  current resident footprint (equal when the codec is identity). */
struct CacheStats
{
    std::uint64_t hits = 0;          //!< entry found and verified
    std::uint64_t misses = 0;        //!< entry absent, solved fresh
    std::uint64_t evictions = 0;     //!< removed by capacity policy
    std::uint64_t invalidations = 0; //!< removed by window advance
    std::uint64_t storedBytes = 0;   //!< resident compressed bytes
    std::uint64_t rawBytes = 0;      //!< resident uncompressed bytes
};

/**
 * Sliding-window Temporal Shapley evaluator with memoized sub-games.
 *
 * Telemetry samples stream in through pushSample(); every
 * Config::periodSamples samples close one *period*, and the engine's
 * window is the last Config::windowPeriods closed periods. Once
 * windowReady(), computeWindow() attributes a carbon pool over the
 * whole window and computeNewestPeriod() attributes just the newest
 * period's share — the O(1)-ish streaming publication step.
 */
class IncrementalTemporalEngine
{
  public:
    struct Config
    {
        /** Players W in the top-level peak game (>= 1). */
        std::size_t windowPeriods = 24;
        /** Samples M per period (>= 1). */
        std::size_t periodSamples = 12;
        /** Telemetry sample width, seconds. */
        double stepSeconds = 300.0;
        /** Hierarchical split counts *below* each period; a window
         *  compute equals TemporalShapley::attribute with splits
         *  {windowPeriods, innerSplits...}. Empty = periods are
         *  leaves. */
        std::vector<std::size_t> innerSplits{};
        /** Sub-game cache capacity in entries; 0 disables
         *  memoization (the from-scratch reference engine). */
        std::size_t cacheCapacity = 64;
        /** Which blob-store backend holds the memoized sub-games;
         *  defaults to the build's FAIRCO2_CACHE_* selection. Every
         *  combination publishes byte-identical results. */
        cache::BackendConfig backend = cache::defaultBackend();
        /** Permutations for the sampled top-level game; 0 uses the
         *  exact O(W log W) closed form. */
        std::size_t sampledPermutations = 0;
        /** Seed for the sampled-mode permutation streams. */
        std::uint64_t seed = 42;
    };

    /** Full-window attribution result (windowPeriods*periodSamples
     *  samples). */
    struct WindowResult
    {
        /** Intensity per window sample, g per resource-second. */
        trace::TimeSeries intensity;
        double attributedGrams = 0.0;
        double unattributedGrams = 0.0;
        std::size_t leafPeriods = 0;
        std::uint64_t operations = 0;
        /** Absolute index of the window's first period. */
        std::uint64_t firstPeriod = 0;
    };

    /** Newest-period attribution result (periodSamples samples). */
    struct PeriodResult
    {
        /** Intensity per sample of the newest period. */
        std::vector<double> intensity;
        /** Carbon the top-level game assigned to this period. */
        double periodGrams = 0.0;
        double attributedGrams = 0.0;
        double unattributedGrams = 0.0;
        /** Leaf ranges visited while solving this period. */
        std::size_t leafPeriods = 0;
        /** Shapley sub-game evaluations this advance cost. */
        std::uint64_t operations = 0;
        /** Absolute index of the period. */
        std::uint64_t period = 0;
    };

    explicit IncrementalTemporalEngine(const Config &config);

    /** Feed one demand sample; throws FatalDataError when it is not
     *  finite or negative-infinite garbage. */
    void pushSample(double demand);

    /** True once windowPeriods periods have closed. */
    bool windowReady() const;

    /** Samples pushed so far. */
    std::uint64_t samplesSeen() const { return samplesSeen_; }

    /** Periods closed so far (absolute period index of the next
     *  period to close). */
    std::uint64_t periodsClosed() const { return periodsClosed_; }

    /** Absolute index of the window's first (oldest) period. */
    std::uint64_t firstWindowPeriod() const { return firstPeriod_; }

    /**
     * Attribute @p pool_grams over the whole current window.
     * Requires windowReady(); throws FatalDataError on a non-finite
     * pool and CacheIntegrityError on a corrupted cache entry.
     */
    WindowResult computeWindow(double pool_grams);

    /**
     * Attribute the newest period's share of @p pool_grams — the
     * streaming publication step, which touches one fresh sub-game
     * plus the top-level peak game when the cache is warm.
     */
    PeriodResult computeNewestPeriod(double pool_grams);

    /** This engine's cache counters (also mirrored into the
     *  `shapley.cache.*` obs counters and gauges). */
    const CacheStats &cacheStats() const { return stats_; }

    /** Live entries in the sub-game cache. */
    std::size_t
    cacheSize() const
    {
        return store_ ? static_cast<std::size_t>(
                            store_->counters().entries)
                      : 0;
    }

    /**
     * Flip one stored bit of a resident cache entry (at
     * @p byte_offset into its stored — possibly compressed — bytes)
     * so it no longer verifies — the hook the fault plan's
     * `cache-corrupt` key and the integrity tests use. Returns false
     * (and does nothing) when the cache is empty.
     */
    bool corruptCacheEntryForTest(std::size_t byte_offset = 0);

    const Config &config() const { return config_; }

  private:
    /** Carbon-independent solve of one node of a period's inner
     *  hierarchy; mirrors TemporalShapley::attributeRange. */
    struct SolveNode
    {
        std::size_t begin = 0; //!< sample offset within the period
        std::size_t end = 0;
        double usage = 0.0;    //!< leaf only: integral over [begin,end)
        std::vector<double> childUsages;
        std::vector<double> childPhi;
        double childDenom = 0.0;
        std::vector<SolveNode> children; //!< empty == leaf
    };

    /** Everything carbon-independent about one period. */
    struct PeriodSolve
    {
        double peak = 0.0;  //!< player value in the top-level game
        double usage = 0.0; //!< q_i in the Eq. 5 normalization
        SolveNode root;
        std::size_t leafCount = 0;
        std::uint64_t operations = 0;
    };

    enum class EntryKind : std::uint8_t
    {
        PeriodSolve = 1, //!< singleton coalition {p}
        WindowPhi = 2,   //!< coalition {first..first+W-1}
    };

    /** In-memory (decoded) form of one memoized entry; the store
     *  holds its serialized, checksummed, possibly compressed
     *  bytes. */
    struct CacheEntry
    {
        std::uint64_t key = 0;
        EntryKind kind = EntryKind::PeriodSolve;
        std::vector<std::uint64_t> members;
        PeriodSolve solve;       //!< kind == PeriodSolve
        std::vector<double> phi; //!< kind == WindowPhi
    };

    void closePeriod();
    void invalidatePeriod(std::uint64_t period);
    PeriodSolve solvePeriod(const std::vector<double> &samples) const;
    SolveNode solveRange(const std::vector<double> &samples,
                         std::size_t begin, std::size_t end,
                         std::size_t level, PeriodSolve &out) const;
    const PeriodSolve &periodSolveFor(std::uint64_t period);
    std::vector<double>
    windowPhiFor(const std::vector<double> &peaks);
    std::vector<double>
    solveTopPhi(const std::vector<double> &peaks) const;
    void applyCarbon(const SolveNode &node, double carbon,
                     std::vector<double> &values, std::size_t offset,
                     double &attributed, double &unattributed) const;

    /** Fetch + verify + decode the entry for @p key into @p out.
     *  Returns false on a miss (also counting it); throws
     *  CacheIntegrityError on decode or checksum failure. */
    bool fetchEntry(std::uint64_t key, EntryKind kind,
                    const std::vector<std::uint64_t> &members,
                    CacheEntry &out);
    /** Serialize @p entry (checksum first) into the store, then
     *  refresh eviction/byte counters and obs. */
    void storeEntry(const CacheEntry &entry);
    void syncCacheObs();
    static std::uint64_t
    coalitionHash(EntryKind kind,
                  const std::vector<std::uint64_t> &members);
    static void serializeEntry(const CacheEntry &entry,
                               std::vector<std::uint8_t> &out);
    static bool deserializeEntry(const std::vector<std::uint8_t> &in,
                                 CacheEntry &out);
    static std::string
    describeEntry(EntryKind kind,
                  const std::vector<std::uint64_t> &members);

    Config config_;
    Rng rngBase_;
    std::uint64_t samplesSeen_ = 0;
    std::uint64_t periodsClosed_ = 0;
    std::uint64_t firstPeriod_ = 0;
    std::vector<double> partialPeriod_;
    /** Raw samples of the in-window periods; front() is
     *  firstPeriod_. Kept so evicted cache entries can always be
     *  re-solved. */
    std::deque<std::vector<double>> windowSamples_;
    /** Sampled mode: permutation p of [0, W), forked once from the
     *  seed and reused across every window. */
    std::vector<std::vector<std::size_t>> permutations_;
    /** The pluggable memo store; null when cacheCapacity is 0. */
    std::unique_ptr<cache::BlobStore> store_;
    /** Reused buffer for serialized blobs (both directions). */
    std::vector<std::uint8_t> blobBuffer_;
    /** Decode target for cache hits, so periodSolveFor can hand back
     *  a reference that stays valid until the next fetch. */
    CacheEntry hitEntry_;
    /** Holds the latest fresh solve, so periodSolveFor can hand back
     *  a reference whether or not a store exists. */
    CacheEntry scratch_;
    CacheStats stats_;
};

} // namespace fairco2::shapley

#endif // FAIRCO2_SHAPLEY_INCREMENTAL_HH
