#include "shapley/surrogate.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/errors.hh"
#include "common/linalg.hh"
#include "common/obs.hh"
#include "common/rng.hh"
#include "shapley/peak.hh"

namespace fairco2::shapley
{

namespace
{

/** Shares below this floor are attribution noise: relative errors
 *  are measured against max(share, floor), and a window whose
 *  newest share sits under the floor is rejected as degenerate
 *  (the exact engine publishes its near-zero intensity instead). */
constexpr double kShareFloor = 1e-6;

/** Exact per-period pool shares of one sketch window under the
 *  peak game (Eq. 5 normalization); empty when degenerate. */
std::vector<double>
exactShares(const std::vector<double> &peaks,
            const std::vector<double> &usages)
{
    const auto phi = peakGameShapley(peaks);
    double denom = 0.0;
    for (std::size_t i = 0; i < peaks.size(); ++i)
        denom += phi[i] * usages[i];
    if (denom <= 0.0)
        return {};
    std::vector<double> shares(peaks.size());
    for (std::size_t i = 0; i < peaks.size(); ++i)
        shares[i] = phi[i] * usages[i] / denom;
    return shares;
}

/** Clamp negatives and rescale to sum exactly one; empty when the
 *  clamped mass vanishes. */
std::vector<double>
rescaleShares(std::vector<double> raw)
{
    double sum = 0.0;
    for (double &p : raw) {
        p = std::max(0.0, p);
        sum += p;
    }
    if (sum <= 0.0)
        return {};
    for (double &p : raw)
        p /= sum;
    return raw;
}

} // namespace

SurrogateTemporalEngine::SurrogateTemporalEngine(
    const Config &config)
    : config_(config),
      engine_(std::make_unique<IncrementalTemporalEngine>(
          config.engine))
{
    if (config_.model &&
        (!std::isfinite(config_.tolerance) ||
         config_.tolerance <= 0.0))
        throw std::invalid_argument(
            "SurrogateTemporalEngine: tolerance must be a "
            "positive finite share tolerance");
}

void
SurrogateTemporalEngine::pushSample(double demand)
{
    engine_->pushSample(demand); // validates finiteness first
    if (!config_.model)
        return; // pure delegation: no sketch upkeep
    partial_.add(demand);
    if (partial_.samples == config_.engine.periodSamples) {
        window_.push_back(partial_);
        partial_ = surrogate::PeriodSketch{};
        if (window_.size() > config_.engine.windowPeriods)
            window_.pop_front();
    }
}

SurrogateTemporalEngine::Decision
SurrogateTemporalEngine::evaluate() const
{
    Decision decision;
    const auto &engine_config = engine_->config();
    const std::size_t W = engine_config.windowPeriods;
    if (window_.size() != W)
        return decision; // Degenerate: sketches out of step

    // Structure guardrail: a flat per-period share can only
    // reproduce the exact engine's output shape when periods are
    // leaves and the top-level game is the exact closed form.
    if (!engine_config.innerSplits.empty() ||
        engine_config.sampledPermutations != 0) {
        decision.reject = SurrogateReject::Structure;
        return decision;
    }

    const std::vector<surrogate::PeriodSketch> sketches(
        window_.begin(), window_.end());
    std::vector<double> peaks(W), usages(W);
    double max_peak = 0.0;
    double total_usage = 0.0;
    for (std::size_t i = 0; i < W; ++i) {
        peaks[i] = sketches[i].peak;
        usages[i] = sketches[i].usage(engine_config.stepSeconds);
        max_peak = std::max(max_peak, peaks[i]);
        total_usage += usages[i];
    }
    if (max_peak <= 0.0 || total_usage <= 0.0)
        return decision; // Degenerate
    decision.usages = usages;

    // In-distribution guardrail.
    const auto rows =
        surrogate::featurize(sketches, engine_config.stepSeconds);
    const auto &model = *config_.model;
    for (const auto &row : rows) {
        if (!surrogate::inTrainingBox(model, row)) {
            decision.reject = SurrogateReject::OutOfDistribution;
            return decision;
        }
    }

    std::vector<double> predicted(W);
    for (std::size_t i = 0; i < W; ++i)
        predicted[i] = surrogate::predictShare(model, rows[i]);
    predicted = rescaleShares(std::move(predicted));
    if (predicted.empty())
        return decision; // Degenerate: no positive mass

    // Residual guardrail against the streamed closed form. The
    // sketch peaks/usages are bitwise the engine's (same
    // accumulation order), so this oracle *is* the exact top-level
    // solve — computed without touching a single sample again.
    const auto exact = exactShares(peaks, usages);
    if (exact.empty() || exact[W - 1] <= kShareFloor)
        return decision; // Degenerate
    double worst = 0.0;
    for (std::size_t i = 0; i < W; ++i) {
        const double rel = std::fabs(predicted[i] - exact[i]) /
            std::max(exact[i], kShareFloor);
        worst = std::max(worst, rel);
    }
    decision.newestError =
        std::fabs(predicted[W - 1] - exact[W - 1]) / exact[W - 1];
    if (worst > config_.tolerance) {
        decision.reject = SurrogateReject::Residual;
        return decision;
    }

    decision.reject = SurrogateReject::None;
    decision.shares = std::move(predicted);
    return decision;
}

void
SurrogateTemporalEngine::recordAccept(const Decision &decision)
{
    ++counters_.accepts;
    lastAccepted_ = true;
    lastReject_ = SurrogateReject::None;
    lastError_ = decision.newestError;
    FAIRCO2_COUNT("surrogate.accept", 1);
    FAIRCO2_OBSERVE("surrogate.mape_pct",
                    100.0 * decision.newestError);
}

void
SurrogateTemporalEngine::recordReject(SurrogateReject reason)
{
    ++counters_.rejects;
    lastAccepted_ = false;
    lastReject_ = reason;
    FAIRCO2_COUNT("surrogate.reject", 1);
    switch (reason) {
    case SurrogateReject::Structure:
        ++counters_.rejectStructure;
        FAIRCO2_COUNT("surrogate.reject.structure", 1);
        break;
    case SurrogateReject::OutOfDistribution:
        ++counters_.rejectOutOfDistribution;
        FAIRCO2_COUNT("surrogate.reject.out_of_distribution", 1);
        break;
    case SurrogateReject::Residual:
        ++counters_.rejectResidual;
        FAIRCO2_COUNT("surrogate.reject.residual", 1);
        break;
    case SurrogateReject::Degenerate:
    case SurrogateReject::None:
        ++counters_.rejectDegenerate;
        FAIRCO2_COUNT("surrogate.reject.degenerate", 1);
        break;
    }
}

IncrementalTemporalEngine::WindowResult
SurrogateTemporalEngine::computeWindow(double pool_grams)
{
    if (!config_.model || !engine_->windowReady())
        return engine_->computeWindow(pool_grams);
    FAIRCO2_SPAN("shapley.surrogate.window");

    const Decision decision = evaluate();
    if (decision.reject != SurrogateReject::None) {
        // Exact fallback first (it may throw CacheIntegrityError;
        // an aborted attempt must not move the decision counters).
        auto result = engine_->computeWindow(pool_grams);
        recordReject(decision.reject);
        lastError_ = decision.newestError;
        return result;
    }
    if (!std::isfinite(pool_grams))
        throw FatalDataError(
            "surrogate attribution: total grams is not finite");

    const std::size_t W = config_.engine.windowPeriods;
    const std::size_t M = config_.engine.periodSamples;
    IncrementalTemporalEngine::WindowResult result;
    result.firstPeriod = engine_->firstWindowPeriod();
    result.leafPeriods = W;
    result.operations = W; // one top-game-equivalent, no solves
    std::vector<double> values(W * M, 0.0);
    double assigned = 0.0;
    for (std::size_t c = 0; c < W; ++c) {
        const double period_grams =
            decision.shares[c] * pool_grams;
        assigned += period_grams;
        if (decision.usages[c] > 0.0) {
            const double intensity =
                period_grams / decision.usages[c];
            std::fill_n(values.begin() +
                            static_cast<std::ptrdiff_t>(c * M),
                        M, intensity);
            result.attributedGrams += period_grams;
        } else {
            result.unattributedGrams += period_grams;
        }
    }
    // Same conservation discipline as the exact engine: whatever
    // the shares did not assign stays unattributed, so
    // attributed + unattributed lands within rounding of the pool.
    result.unattributedGrams += pool_grams - assigned;
    result.intensity = trace::TimeSeries(
        std::move(values), config_.engine.stepSeconds);
    recordAccept(decision);
    return result;
}

IncrementalTemporalEngine::PeriodResult
SurrogateTemporalEngine::computeNewestPeriod(double pool_grams)
{
    if (!config_.model || !engine_->windowReady())
        return engine_->computeNewestPeriod(pool_grams);
    FAIRCO2_SPAN("shapley.surrogate.advance");

    const Decision decision = evaluate();
    if (decision.reject != SurrogateReject::None) {
        auto result = engine_->computeNewestPeriod(pool_grams);
        recordReject(decision.reject);
        lastError_ = decision.newestError;
        return result;
    }
    if (!std::isfinite(pool_grams))
        throw FatalDataError(
            "surrogate attribution: total grams is not finite");

    const std::size_t W = config_.engine.windowPeriods;
    const std::size_t M = config_.engine.periodSamples;
    IncrementalTemporalEngine::PeriodResult result;
    result.period = engine_->firstWindowPeriod() + W - 1;
    result.periodGrams = decision.shares[W - 1] * pool_grams;
    result.leafPeriods = 1;
    result.operations = W; // one top-game-equivalent, no solves
    result.intensity.assign(M, 0.0);
    const double usage = decision.usages[W - 1];
    if (usage > 0.0) {
        const double intensity = result.periodGrams / usage;
        std::fill(result.intensity.begin(),
                  result.intensity.end(), intensity);
        result.attributedGrams = result.periodGrams;
    } else {
        result.unattributedGrams = result.periodGrams;
    }
    recordAccept(decision);
    return result;
}

namespace
{

/** One training example: the sketch window plus its exact shares. */
struct TrainingWindow
{
    std::vector<surrogate::PeriodSketch> sketches;
    std::vector<double> shares;
};

/** Build the sketch window + exact-share targets for one span of
 *  samples; returns false when the window is degenerate. */
bool
makeWindow(const std::vector<double> &samples, std::size_t W,
           std::size_t M, double step_seconds,
           TrainingWindow &out)
{
    out.sketches.assign(W, surrogate::PeriodSketch{});
    for (std::size_t c = 0; c < W; ++c)
        for (std::size_t i = 0; i < M; ++i)
            out.sketches[c].add(samples[c * M + i]);
    std::vector<double> peaks(W), usages(W);
    double max_peak = 0.0;
    for (std::size_t c = 0; c < W; ++c) {
        peaks[c] = out.sketches[c].peak;
        usages[c] = out.sketches[c].usage(step_seconds);
        max_peak = std::max(max_peak, peaks[c]);
    }
    if (max_peak <= 0.0)
        return false;
    out.shares = exactShares(peaks, usages);
    return !out.shares.empty();
}

/** Ridge fit + held-out calibration over a window corpus. */
surrogate::SurrogateModel
fitFromWindows(const std::vector<TrainingWindow> &windows,
               const SurrogateTrainConfig &config)
{
    if (windows.empty())
        throw FatalDataError(
            "surrogate training: no usable training windows "
            "(every generated window was degenerate)");

    // Temporal split: the tail fraction is held out, so the
    // calibration never sees windows the fit touched.
    std::size_t held = static_cast<std::size_t>(
        std::ceil(config.heldOutFraction *
                  static_cast<double>(windows.size())));
    if (held >= windows.size())
        held = windows.size() > 1 ? windows.size() - 1 : 0;
    const std::size_t train_windows = windows.size() - held;

    const std::size_t W = config.windowPeriods;
    Matrix x(train_windows * W, surrogate::kFeatureCount);
    std::vector<double> y(train_windows * W, 0.0);
    surrogate::SurrogateModel model;
    model.featureMin.fill(0.0);
    model.featureMax.fill(0.0);
    bool first_row = true;
    for (std::size_t w = 0; w < train_windows; ++w) {
        const auto rows = surrogate::featurize(
            windows[w].sketches, config.stepSeconds);
        for (std::size_t i = 0; i < W; ++i) {
            const std::size_t r = w * W + i;
            for (std::size_t f = 0;
                 f < surrogate::kFeatureCount; ++f) {
                x(r, f) = rows[i][f];
                if (first_row) {
                    model.featureMin[f] = rows[i][f];
                    model.featureMax[f] = rows[i][f];
                } else {
                    model.featureMin[f] = std::min(
                        model.featureMin[f], rows[i][f]);
                    model.featureMax[f] = std::max(
                        model.featureMax[f], rows[i][f]);
                }
            }
            first_row = false;
            y[r] = windows[w].shares[i];
        }
    }

    // A near-zero penalty can leave the Gram matrix numerically
    // semidefinite when features are collinear; back off to a
    // stiffer ridge instead of failing the fit.
    double lambda = std::max(config.lambda, 0.0);
    std::vector<double> weights;
    for (int attempt = 0; attempt < 3; ++attempt) {
        try {
            weights = ridgeRegression(x, y, lambda);
            break;
        } catch (const std::runtime_error &) {
            lambda = lambda > 0.0 ? lambda * 1e4 : 1e-6;
        }
    }
    if (weights.empty())
        throw FatalDataError(
            "surrogate training: ridge fit failed (singular "
            "feature Gram matrix)");
    for (std::size_t f = 0; f < surrogate::kFeatureCount; ++f)
        model.weights[f] = weights[f];
    model.lambda = lambda;
    model.trainedOnWindows = train_windows;
    model.seed = config.seed;

    const auto fitted = x.times(weights);
    double sq = 0.0;
    for (std::size_t r = 0; r < y.size(); ++r) {
        const double d = fitted[r] - y[r];
        sq += d * d;
    }
    model.trainRmse =
        std::sqrt(sq / static_cast<double>(y.size()));

    // Calibration: newest-share relative error on the held-out
    // tail, end to end through the same clamp + rescale the live
    // guardrail applies.
    std::vector<double> errors;
    const std::size_t calib_begin =
        held > 0 ? train_windows : 0;
    for (std::size_t w = calib_begin; w < windows.size(); ++w) {
        const auto rows = surrogate::featurize(
            windows[w].sketches, config.stepSeconds);
        std::vector<double> predicted(W);
        for (std::size_t i = 0; i < W; ++i)
            predicted[i] =
                surrogate::predictShare(model, rows[i]);
        predicted = rescaleShares(std::move(predicted));
        if (predicted.empty())
            continue;
        const double exact = windows[w].shares[W - 1];
        if (exact <= kShareFloor)
            continue;
        errors.push_back(std::fabs(predicted[W - 1] - exact) /
                         exact);
    }
    if (!errors.empty()) {
        std::sort(errors.begin(), errors.end());
        model.heldOutP50 = errors[errors.size() / 2];
        model.heldOutP95 =
            errors[std::min(errors.size() - 1,
                            errors.size() * 95 / 100)];
    }
    return model;
}

} // namespace

surrogate::SurrogateModel
trainSurrogateModel(const SurrogateTrainConfig &config)
{
    if (config.windows == 0 || config.windowPeriods == 0 ||
        config.periodSamples == 0)
        throw FatalDataError(
            "surrogate training: windows, window periods, and "
            "period samples must all be positive");

    const std::size_t W = config.windowPeriods;
    const std::size_t M = config.periodSamples;
    const Rng base(config.seed);
    std::vector<TrainingWindow> windows;
    windows.reserve(config.windows);
    std::vector<double> samples(W * M);
    for (std::size_t w = 0; w < config.windows; ++w) {
        // Counter-RNG: window w's stream is pure in (seed, w).
        Rng rng = base.fork(w);
        const double level = rng.uniform(0.5, 2.0);
        const double amplitude = rng.uniform(0.1, 0.9) * level;
        const double phase =
            rng.uniform(0.0, 6.283185307179586);
        const double trend = rng.uniform(-0.2, 0.2) * level;
        const double noise = rng.uniform(0.01, 0.15) * level;
        const double spike_p = rng.uniform(0.0, 0.02);
        const double span = static_cast<double>(W * M);
        for (std::size_t t = 0; t < samples.size(); ++t) {
            const double u = static_cast<double>(t) / span;
            double v = level +
                amplitude *
                    std::sin(6.283185307179586 * u + phase) +
                trend * u + rng.normal(0.0, noise);
            if (rng.bernoulli(spike_p))
                v += rng.uniform(0.5, 2.0) * level;
            samples[t] = std::max(0.0, v);
        }
        TrainingWindow window;
        if (makeWindow(samples, W, M, config.stepSeconds, window))
            windows.push_back(std::move(window));
    }
    return fitFromWindows(windows, config);
}

surrogate::SurrogateModel
trainSurrogateModelOnSeries(const trace::TimeSeries &demand,
                            const SurrogateTrainConfig &config)
{
    if (config.windowPeriods == 0 || config.periodSamples == 0)
        throw FatalDataError(
            "surrogate training: window periods and period "
            "samples must be positive");
    const std::size_t W = config.windowPeriods;
    const std::size_t M = config.periodSamples;
    const auto &samples = demand.values();
    if (samples.size() < W * M)
        throw FatalDataError(
            "surrogate training: series shorter than one window");

    // One training window per period advance over the series.
    std::vector<TrainingWindow> windows;
    std::vector<double> span(W * M);
    const std::size_t total_periods = samples.size() / M;
    for (std::size_t p = 0; p + W <= total_periods; ++p) {
        std::copy_n(samples.begin() +
                        static_cast<std::ptrdiff_t>(p * M),
                    W * M, span.begin());
        TrainingWindow window;
        if (makeWindow(span, W, M, config.stepSeconds, window))
            windows.push_back(std::move(window));
    }
    return fitFromWindows(windows, config);
}

} // namespace fairco2::shapley
