/**
 * @file
 * Coalitional game abstraction shared by all Shapley engines.
 */

#ifndef FAIRCO2_SHAPLEY_GAME_HH
#define FAIRCO2_SHAPLEY_GAME_HH

#include <cstdint>
#include <vector>

namespace fairco2::shapley
{

/**
 * A transferable-utility coalitional game over at most 63 players.
 *
 * Coalitions are bitmasks: bit i set means player i is present. The
 * characteristic function must satisfy value(0) == 0 for the Shapley
 * efficiency property to read as "the grand-coalition cost is fully
 * attributed".
 */
class CoalitionGame
{
  public:
    virtual ~CoalitionGame() = default;

    /** Number of players n; masks range over [0, 2^n). */
    virtual int numPlayers() const = 0;

    /** Characteristic function v(S) for the coalition @p mask. */
    virtual double value(std::uint64_t mask) const = 0;
};

/** Game backed by an explicit table of 2^n coalition values. */
class TabulatedGame : public CoalitionGame
{
  public:
    /** @param values exactly 2^n entries, indexed by mask. */
    TabulatedGame(int num_players, std::vector<double> values);

    int numPlayers() const override { return numPlayers_; }
    double value(std::uint64_t mask) const override;

  private:
    int numPlayers_;
    std::vector<double> values_;
};

} // namespace fairco2::shapley

#endif // FAIRCO2_SHAPLEY_GAME_HH
