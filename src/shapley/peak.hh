/**
 * @file
 * Closed-form Shapley values for *peak games* — the coalitional game
 * behind Temporal Shapley, where the value of a set of time periods is
 * the maximum peak demand among them (Eq. 3 in the paper).
 *
 * Because a peak game decomposes into threshold ("at least one member
 * reaches level c") unanimity-style games, its Shapley value has an
 * O(n log n) closed form: sort peaks ascending and share each
 * increment c_(m) - c_(m-1) equally among the n - m + 1 players whose
 * peak reaches it. peakGameShapley() implements that form and is
 * validated against exact enumeration in the tests.
 *
 * The paper's Eq. 7 states a different combinatorial expression; it is
 * implemented verbatim in peakGameShapleyPaperEq7() for comparison.
 * As printed it does not match exact enumeration (see
 * EXPERIMENTS.md), so production code uses peakGameShapley().
 */

#ifndef FAIRCO2_SHAPLEY_PEAK_HH
#define FAIRCO2_SHAPLEY_PEAK_HH

#include <vector>

#include "shapley/game.hh"

namespace fairco2::shapley
{

/**
 * Exact Shapley values of the peak game with the given non-negative
 * per-player peaks, in O(n log n).
 */
std::vector<double> peakGameShapley(const std::vector<double> &peaks);

/**
 * The paper's Eq. 7, implemented exactly as printed (players sorted
 * by decreasing peak; binomial-ratio weights). Kept for
 * documentation/cross-checking only.
 */
std::vector<double>
peakGameShapleyPaperEq7(const std::vector<double> &peaks);

/** CoalitionGame adapter: v(S) = max peak in S (0 for empty S). */
class PeakGame : public CoalitionGame
{
  public:
    explicit PeakGame(std::vector<double> peaks);

    int numPlayers() const override;
    double value(std::uint64_t mask) const override;

    const std::vector<double> &peaks() const { return peaks_; }

  private:
    std::vector<double> peaks_;
};

} // namespace fairco2::shapley

#endif // FAIRCO2_SHAPLEY_PEAK_HH
