/**
 * @file
 * Guardrailed learned-surrogate front end for the incremental
 * sliding-window Temporal Shapley engine.
 *
 * SurrogateTemporalEngine wraps an IncrementalTemporalEngine and, on
 * every window compute, decides between two paths:
 *
 *  - **surrogate**: predict each window period's pool share from the
 *    streaming PeriodSketches (common/surrogate.hh), rescale the
 *    predictions to sum exactly to one (so efficiency/conservation
 *    holds by construction — the predicted shares are normalized to
 *    the exact total), and publish a flat within-period intensity
 *    without touching a single sub-game solve;
 *  - **exact**: delegate to the wrapped engine — the O(n log n)
 *    peak-game closed form plus memoized sub-game solves.
 *
 * Guardrails are the point: a prediction ships only when *all* of
 * these hold, otherwise the call falls back to the exact engine and
 * the rejection is counted by reason:
 *
 *  - structure: the engine runs the exact top-level game with
 *    period-leaf windows (no innerSplits, no sampled permutations) —
 *    the only shape whose published output a flat per-period share
 *    can reproduce;
 *  - in-distribution: every feature row lies inside the model's
 *    training bounding box (plus margin);
 *  - residual bound: the predicted shares are checked against the
 *    closed-form shares derived from the same sketches (the peak
 *    game's threshold decomposition makes that oracle streamable at
 *    O(W log W), with no sample re-walks); the worst relative share
 *    deviation must stay within the configured tolerance. Because
 *    every accepted prediction passed this bound, the published
 *    signal's per-advance error is <= tolerance *by construction* —
 *    the property the perf bench and the differential suite assert.
 *
 * Every decision is observable: `surrogate.accept` /
 * `surrogate.reject` (and per-reason `surrogate.reject.*`) counters,
 * plus a `surrogate.mape_pct` histogram of the newest-share relative
 * error of accepted predictions. With a null model the wrapper is
 * pure delegation — bitwise identical to the bare engine, which is
 * what keeps every existing surface unchanged when `--surrogate` is
 * off.
 *
 * Training lives here too (the targets are exact peak-game solves):
 * trainSurrogateModel() fits the ridge model on deterministic
 * counter-RNG synthetic windows, trainSurrogateModelOnSeries() on a
 * caller-provided demand trace, both with a held-out calibration
 * split.
 */

#ifndef FAIRCO2_SHAPLEY_SURROGATE_HH
#define FAIRCO2_SHAPLEY_SURROGATE_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/surrogate.hh"
#include "shapley/incremental.hh"
#include "trace/timeseries.hh"

namespace fairco2::shapley
{

/** Why one compute fell back to the exact engine. */
enum class SurrogateReject : std::uint8_t
{
    None = 0,            //!< accepted
    Structure,           //!< innerSplits / sampled top game
    OutOfDistribution,   //!< a feature left the training box
    Residual,            //!< closed-form residual exceeded the tol
    Degenerate,          //!< zero peaks/usage/shares in the window
};

/** Guardrailed surrogate wrapper (see file comment). */
class SurrogateTemporalEngine
{
  public:
    struct Config
    {
        /** The wrapped exact engine's configuration. */
        IncrementalTemporalEngine::Config engine;
        /** Trained model; null disables the surrogate entirely
         *  (pure delegation, bitwise identical to the bare
         *  engine). */
        std::shared_ptr<const surrogate::SurrogateModel> model;
        /** Relative share tolerance of the residual guardrail;
         *  must be positive and finite when a model is set. */
        double tolerance = 0.01;
    };

    /** Monotonic decision counters (also mirrored into the
     *  `surrogate.*` obs counters). */
    struct Counters
    {
        std::uint64_t accepts = 0;
        std::uint64_t rejects = 0;
        std::uint64_t rejectStructure = 0;
        std::uint64_t rejectOutOfDistribution = 0;
        std::uint64_t rejectResidual = 0;
        std::uint64_t rejectDegenerate = 0;
    };

    explicit SurrogateTemporalEngine(const Config &config);

    /** Feed one demand sample (delegates, then updates the
     *  streaming sketches). */
    void pushSample(double demand);

    bool windowReady() const { return engine_->windowReady(); }
    std::uint64_t samplesSeen() const
    {
        return engine_->samplesSeen();
    }
    std::uint64_t periodsClosed() const
    {
        return engine_->periodsClosed();
    }
    std::uint64_t firstWindowPeriod() const
    {
        return engine_->firstWindowPeriod();
    }

    /** Full-window attribution: surrogate when every guardrail
     *  holds, exact otherwise. */
    IncrementalTemporalEngine::WindowResult
    computeWindow(double pool_grams);

    /** Newest-period attribution — the hot streaming step the
     *  surrogate exists to accelerate. */
    IncrementalTemporalEngine::PeriodResult
    computeNewestPeriod(double pool_grams);

    const Counters &counters() const { return counters_; }

    /** Decision of the most recent compute (false before any). */
    bool lastAccepted() const { return lastAccepted_; }
    /** Rejection reason of the most recent compute. */
    SurrogateReject lastReject() const { return lastReject_; }
    /** Newest-share relative error |pred - exact| / exact of the
     *  most recent accepted or residual-rejected compute. */
    double lastRelativeError() const { return lastError_; }

    /** The wrapped exact engine (tests and fault hooks). */
    IncrementalTemporalEngine &inner() { return *engine_; }
    const IncrementalTemporalEngine &inner() const
    {
        return *engine_;
    }

    const CacheStats &cacheStats() const
    {
        return engine_->cacheStats();
    }
    std::size_t cacheSize() const { return engine_->cacheSize(); }
    bool
    corruptCacheEntryForTest(std::size_t byte_offset = 0)
    {
        return engine_->corruptCacheEntryForTest(byte_offset);
    }

    const Config &config() const { return config_; }

  private:
    /** One guardrail evaluation over the current window. */
    struct Decision
    {
        SurrogateReject reject = SurrogateReject::Degenerate;
        std::vector<double> shares; //!< rescaled predictions (W)
        std::vector<double> usages; //!< sketch usages (W)
        double newestError = 0.0;   //!< newest-share relative error
    };

    Decision evaluate() const;
    void recordAccept(const Decision &decision);
    void recordReject(SurrogateReject reason);

    Config config_;
    std::unique_ptr<IncrementalTemporalEngine> engine_;
    /** Sketch of the period currently filling. */
    surrogate::PeriodSketch partial_;
    /** Sketches of the in-window closed periods, parallel to the
     *  wrapped engine's window (front() is the oldest). */
    std::deque<surrogate::PeriodSketch> window_;
    Counters counters_;
    bool lastAccepted_ = false;
    SurrogateReject lastReject_ = SurrogateReject::None;
    double lastError_ = 0.0;
};

/** Training configuration for the ridge surrogate. */
struct SurrogateTrainConfig
{
    /** Synthetic windows to generate (trainSurrogateModel only). */
    std::size_t windows = 512;
    std::size_t windowPeriods = 24; //!< players W per window
    std::size_t periodSamples = 12; //!< samples M per period
    double stepSeconds = 300.0;
    double lambda = 1e-8; //!< ridge penalty
    std::uint64_t seed = 42;
    /** Fraction of windows held out for calibration. */
    double heldOutFraction = 0.25;
};

/**
 * Fit the ridge surrogate on deterministic synthetic demand windows
 * (counter-RNG: window w draws every sample from Rng(seed).fork(w),
 * so the corpus is pure in the seed): diurnal base load plus noise
 * and occasional spikes, targets from exact peak-game solves. The
 * held-out split calibrates the model's error quantiles. Throws
 * FatalDataError when the corpus degenerates (e.g. zero windows).
 */
surrogate::SurrogateModel
trainSurrogateModel(const SurrogateTrainConfig &config);

/**
 * Fit the same model on sliding windows of @p demand (one window
 * per period advance) — the in-distribution path the perf bench
 * uses. Ignores config.windows; every complete window of the series
 * becomes one training example.
 */
surrogate::SurrogateModel
trainSurrogateModelOnSeries(const trace::TimeSeries &demand,
                            const SurrogateTrainConfig &config);

} // namespace fairco2::shapley

#endif // FAIRCO2_SHAPLEY_SURROGATE_HH
