/**
 * @file
 * Exact and sampling-based Shapley value solvers.
 *
 * The exact solver is the paper's "ground truth": it enumerates every
 * coalition and therefore costs O(n 2^n) — the intractability that
 * motivates Fair-CO2. It is practical here up to roughly 22 players,
 * matching the evaluation's schedule sizes.
 */

#ifndef FAIRCO2_SHAPLEY_EXACT_HH
#define FAIRCO2_SHAPLEY_EXACT_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "shapley/game.hh"

namespace fairco2::shapley
{

/** Hard cap on exact enumeration; beyond this memory/time explode. */
constexpr int kMaxExactPlayers = 26;

/**
 * Exact Shapley values via full coalition enumeration.
 *
 * phi_i = sum over S not containing i of
 *         |S|! (n-|S|-1)! / n! * (v(S + i) - v(S)).
 *
 * @throws std::invalid_argument when the game exceeds
 *         kMaxExactPlayers players.
 */
std::vector<double> exactShapley(const CoalitionGame &game);

/**
 * Monte Carlo Shapley estimate by sampling uniformly random player
 * permutations and averaging marginal contributions.
 *
 * Unbiased for any number of permutations >= 1; the standard
 * work-horse when exact enumeration is intractable.
 */
std::vector<double> sampledShapley(const CoalitionGame &game, Rng &rng,
                                   std::size_t num_permutations);

/**
 * Number of characteristic-function evaluations exact enumeration
 * needs for @p num_players players (2^n), as a double to avoid
 * overflow in at-scale what-if arithmetic.
 */
double exactEvaluationCount(double num_players);

} // namespace fairco2::shapley

#endif // FAIRCO2_SHAPLEY_EXACT_HH
