/**
 * @file
 * Exact and sampling-based Shapley value solvers.
 *
 * The exact solver is the paper's "ground truth": it enumerates every
 * coalition and therefore costs O(n 2^n) — the intractability that
 * motivates Fair-CO2. It is practical here up to roughly 22 players,
 * matching the evaluation's schedule sizes.
 */

#ifndef FAIRCO2_SHAPLEY_EXACT_HH
#define FAIRCO2_SHAPLEY_EXACT_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "shapley/game.hh"

namespace fairco2::shapley
{

/**
 * Hard cap on exact enumeration; beyond this memory/time explode.
 *
 * The solver tabulates the characteristic function into a table of
 * 2^n doubles, so memory is 8 * 2^n bytes: 128 MiB at n = 24. Every
 * player past that doubles it (25 -> 256 MiB, 26 -> 512 MiB), which
 * is why the cap sits at 24; exactShapley() additionally checks the
 * concrete allocation size before reserving the table.
 */
constexpr int kMaxExactPlayers = 24;

/** Bytes the coalition-value table needs for @p num_players. */
constexpr std::size_t
exactTableBytes(int num_players)
{
    return (std::size_t{1} << num_players) * sizeof(double);
}

/**
 * Exact Shapley values via full coalition enumeration.
 *
 * phi_i = sum over S not containing i of
 *         |S|! (n-|S|-1)! / n! * (v(S + i) - v(S)).
 *
 * Both the coalition-value tabulation and the marginal accumulation
 * run on the common parallel layer in fixed mask chunks, with
 * per-chunk phi partials reduced in chunk order — results are
 * bit-identical for any thread count. game.value() must therefore be
 * safe for concurrent const calls (every game in this repository is
 * a pure function of the mask).
 *
 * @throws std::invalid_argument when the game exceeds
 *         kMaxExactPlayers players or the 8 * 2^n-byte value table
 *         would exceed the documented bound.
 */
std::vector<double> exactShapley(const CoalitionGame &game);

/**
 * Monte Carlo Shapley estimate by sampling uniformly random player
 * permutations and averaging marginal contributions.
 *
 * Unbiased for any number of permutations >= 1; the standard
 * work-horse when exact enumeration is intractable. Permutation p
 * draws from a forked stream base.fork(p) (base = rng.split(), one
 * state advance of @p rng), so the estimate is independent of
 * evaluation order and of the thread count.
 */
std::vector<double> sampledShapley(const CoalitionGame &game, Rng &rng,
                                   std::size_t num_permutations);

/**
 * Number of characteristic-function evaluations exact enumeration
 * needs for @p num_players players (2^n), as a double to avoid
 * overflow in at-scale what-if arithmetic.
 */
double exactEvaluationCount(double num_players);

} // namespace fairco2::shapley

#endif // FAIRCO2_SHAPLEY_EXACT_HH
