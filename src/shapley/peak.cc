#include "shapley/peak.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>

namespace fairco2::shapley
{

std::vector<double>
peakGameShapley(const std::vector<double> &peaks)
{
    const std::size_t n = peaks.size();
    std::vector<double> phi(n, 0.0);
    if (n == 0)
        return phi;
    for (double p : peaks)
        assert(p >= 0.0);

    // Ascending order of peaks.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return peaks[a] < peaks[b];
              });

    // Share each increment above the previous order statistic among
    // the players whose peak reaches it, accumulating prefix sums.
    double prev_level = 0.0;
    double running_share = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
        const double level = peaks[order[m]];
        const double holders = static_cast<double>(n - m);
        running_share += (level - prev_level) / holders;
        phi[order[m]] = running_share;
        prev_level = level;
    }
    return phi;
}

namespace
{

/** Binomial coefficient as a double (small n only). */
double
binom(int n, int k)
{
    if (k < 0 || k > n)
        return 0.0;
    double result = 1.0;
    for (int i = 1; i <= k; ++i)
        result = result * (n - k + i) / i;
    return result;
}

} // namespace

std::vector<double>
peakGameShapleyPaperEq7(const std::vector<double> &peaks)
{
    const int n = static_cast<int>(peaks.size());
    std::vector<double> phi(peaks.size(), 0.0);
    if (n == 0)
        return phi;

    // Descending order, as the paper's T_1 >= T_2 >= ... >= T_n.
    std::vector<std::size_t> order(peaks.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return peaks[a] > peaks[b];
              });

    for (int i = 1; i <= n; ++i) {
        const double p_i = peaks[order[i - 1]];
        double acc = p_i;
        for (int j = i + 1; j <= n; ++j) {
            const double p_j = peaks[order[j - 1]];
            for (int k = 0; k <= n - j + 1; ++k) {
                acc += binom(n - j + 1, k) / binom(n - 1, k) *
                    (p_i - p_j);
            }
        }
        phi[order[i - 1]] = acc / n;
    }
    return phi;
}

PeakGame::PeakGame(std::vector<double> peaks)
    : peaks_(std::move(peaks))
{
}

int
PeakGame::numPlayers() const
{
    return static_cast<int>(peaks_.size());
}

double
PeakGame::value(std::uint64_t mask) const
{
    double best = 0.0;
    while (mask) {
        const int i = std::countr_zero(mask);
        mask &= mask - 1;
        best = std::max(best, peaks_[static_cast<std::size_t>(i)]);
    }
    return best;
}

} // namespace fairco2::shapley
