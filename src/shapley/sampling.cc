#include "shapley/sampling.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/obs.hh"

namespace fairco2::shapley
{

namespace
{

/** Accumulate one permutation's marginals into phi. */
template <typename Order>
void
accumulateMarginals(const CoalitionGame &game, const Order &order,
                    int n, std::vector<double> &phi)
{
    std::uint64_t mask = 0;
    double prev = game.value(0);
    for (int k = 0; k < n; ++k) {
        const auto player = order(k);
        mask |= 1ULL << player;
        const double cur = game.value(mask);
        phi[player] += cur - prev;
        prev = cur;
    }
}

} // namespace

std::vector<double>
antitheticSampledShapley(const CoalitionGame &game, Rng &rng,
                         std::size_t num_pairs)
{
    const int n = game.numPlayers();
    std::vector<double> phi(n, 0.0);
    if (n == 0 || num_pairs == 0)
        return phi;

    FAIRCO2_SPAN("shapley.antithetic");
    FAIRCO2_COUNT("shapley.antithetic.permutations", 2 * num_pairs);

    for (std::size_t p = 0; p < num_pairs; ++p) {
        const auto perm =
            rng.permutation(static_cast<std::size_t>(n));
        accumulateMarginals(
            game, [&](int k) { return perm[k]; }, n, phi);
        accumulateMarginals(
            game, [&](int k) { return perm[n - 1 - k]; }, n, phi);
    }
    for (double &x : phi)
        x /= static_cast<double>(2 * num_pairs);
    return phi;
}

std::vector<double>
stratifiedSampledShapley(const CoalitionGame &game, Rng &rng,
                         std::size_t samples_per_stratum)
{
    const int n = game.numPlayers();
    std::vector<double> phi(n, 0.0);
    if (n == 0 || samples_per_stratum == 0)
        return phi;

    FAIRCO2_SPAN("shapley.stratified");
    FAIRCO2_COUNT("shapley.stratified.samples",
                  static_cast<std::uint64_t>(n) * n *
                      samples_per_stratum);

    // Reusable pool of the other players for coalition draws.
    std::vector<std::size_t> others(n - 1);

    for (int i = 0; i < n; ++i) {
        std::size_t idx = 0;
        for (int j = 0; j < n; ++j) {
            if (j != i)
                others[idx++] = static_cast<std::size_t>(j);
        }

        double sum_over_sizes = 0.0;
        for (int k = 0; k < n; ++k) {
            double stratum_sum = 0.0;
            for (std::size_t s = 0; s < samples_per_stratum; ++s) {
                // Uniform size-k coalition from the other players
                // via partial Fisher-Yates on the pool.
                for (int draw = 0; draw < k; ++draw) {
                    const std::size_t j = draw +
                        rng.index(others.size() - draw);
                    std::swap(others[draw], others[j]);
                }
                std::uint64_t mask = 0;
                for (int draw = 0; draw < k; ++draw)
                    mask |= 1ULL << others[draw];
                stratum_sum += game.value(mask | (1ULL << i)) -
                    game.value(mask);
            }
            sum_over_sizes += stratum_sum /
                static_cast<double>(samples_per_stratum);
        }
        phi[i] = sum_over_sizes / static_cast<double>(n);
    }
    return phi;
}

AdaptiveShapleyResult
adaptiveSampledShapley(const CoalitionGame &game, Rng &rng,
                      double epsilon,
                      std::size_t max_permutations,
                      std::size_t min_permutations)
{
    assert(epsilon > 0.0);
    const int n = game.numPlayers();
    AdaptiveShapleyResult result;
    result.values.assign(n, 0.0);
    result.halfWidths.assign(
        n, std::numeric_limits<double>::infinity());
    if (n == 0) {
        result.converged = true;
        return result;
    }

    FAIRCO2_SPAN("shapley.adaptive");
    FAIRCO2_TIME_NS("shapley.adaptive.solve_ns");

    const double grand =
        std::abs(game.value((1ULL << n) - 1));
    const double target = epsilon * std::max(grand, 1e-12);
    constexpr double kZ = 2.58; // ~99% normal quantile

    // Welford accumulators per player over permutation marginals.
    std::vector<double> mean(n, 0.0), m2(n, 0.0);
    std::vector<double> marginal(n, 0.0);

    std::size_t p = 0;
    for (; p < max_permutations; ++p) {
        const auto order =
            rng.permutation(static_cast<std::size_t>(n));
        std::uint64_t mask = 0;
        double prev = game.value(0);
        for (int k = 0; k < n; ++k) {
            const auto player = order[k];
            mask |= 1ULL << player;
            const double cur = game.value(mask);
            marginal[player] = cur - prev;
            prev = cur;
        }
        const double count = static_cast<double>(p + 1);
        for (int i = 0; i < n; ++i) {
            const double delta = marginal[i] - mean[i];
            mean[i] += delta / count;
            m2[i] += delta * (marginal[i] - mean[i]);
        }

        if (p + 1 < min_permutations)
            continue;
        bool all_tight = true;
        double widest = 0.0;
        for (int i = 0; i < n; ++i) {
            const double variance = m2[i] / (count - 1.0);
            const double half =
                kZ * std::sqrt(variance / count);
            result.halfWidths[i] = half;
            widest = std::max(widest, half);
            if (half > target)
                all_tight = false;
        }
        // Convergence residual after this permutation batch: the
        // widest confidence half-width, normalized by the target.
        FAIRCO2_OBSERVE("shapley.adaptive.residual",
                        widest / target);
        if (all_tight) {
            result.converged = true;
            ++p;
            break;
        }
    }

    result.values = mean;
    result.permutationsUsed = std::max<std::size_t>(p, 1);
    FAIRCO2_COUNT("shapley.adaptive.permutations",
                  std::max<std::size_t>(p, 1));
    return result;
}

} // namespace fairco2::shapley
