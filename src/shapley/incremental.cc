#include "shapley/incremental.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "common/errors.hh"
#include "common/obs.hh"
#include "common/parallel.hh"
#include "shapley/peak.hh"

namespace fairco2::shapley
{

namespace
{

/** Permutations per parallel chunk in the sampled sweep; fixed so
 *  the chunk grid and fold order never depend on `--threads N`. */
constexpr std::size_t kPermChunk = 16;

/** FNV-1a-style accumulator (64-bit words per step, so verifying a
 *  cached payload stays much cheaper than re-solving it) used for
 *  both the canonical coalition hash and the payload checksums. */
struct Fnv1a
{
    std::uint64_t state = 14695981039346656037ULL;

    void
    feed(std::uint64_t word)
    {
        state ^= word;
        state *= 1099511628211ULL;
    }

    void feed(double value) { feed(std::bit_cast<std::uint64_t>(value)); }
};

} // namespace

IncrementalTemporalEngine::IncrementalTemporalEngine(
    const Config &config)
    : config_(config), rngBase_(config.seed)
{
    if (config_.windowPeriods == 0)
        throw std::invalid_argument(
            "incremental engine: windowPeriods must be >= 1");
    if (config_.periodSamples == 0)
        throw std::invalid_argument(
            "incremental engine: periodSamples must be >= 1");
    if (!(config_.stepSeconds > 0.0))
        throw std::invalid_argument(
            "incremental engine: stepSeconds must be positive");
    for (const std::size_t split : config_.innerSplits) {
        if (split == 0)
            throw std::invalid_argument(
                "incremental engine: inner split counts must be "
                ">= 1");
    }
    partialPeriod_.reserve(config_.periodSamples);
}

void
IncrementalTemporalEngine::pushSample(double demand)
{
    // Mirrors TemporalShapley::attribute's sample guard: a poisoned
    // sample would spread through every cached Shapley weight below
    // it, so refuse it at the door with a sample-level diagnostic.
    if (!std::isfinite(demand))
        throw FatalDataError(
            "incremental attribution: demand sample " +
            std::to_string(samplesSeen_) + " is not finite");
    partialPeriod_.push_back(demand);
    ++samplesSeen_;
    if (partialPeriod_.size() == config_.periodSamples)
        closePeriod();
}

void
IncrementalTemporalEngine::closePeriod()
{
    windowSamples_.push_back(std::move(partialPeriod_));
    partialPeriod_ = std::vector<double>();
    partialPeriod_.reserve(config_.periodSamples);
    ++periodsClosed_;
    if (windowSamples_.size() > config_.windowPeriods) {
        const std::uint64_t evicted = firstPeriod_;
        windowSamples_.pop_front();
        ++firstPeriod_;
        invalidatePeriod(evicted);
    }
}

bool
IncrementalTemporalEngine::windowReady() const
{
    return windowSamples_.size() == config_.windowPeriods;
}

void
IncrementalTemporalEngine::invalidatePeriod(std::uint64_t period)
{
    // Exact invalidation: only entries whose coalition involves the
    // period that just slid out of the window. The newly added
    // period has no entry yet, so it simply misses on next use.
    for (auto it = lru_.begin(); it != lru_.end();) {
        const bool involved =
            std::find(it->members.begin(), it->members.end(),
                      period) != it->members.end();
        if (!involved) {
            ++it;
            continue;
        }
        index_.erase(it->key);
        it = lru_.erase(it);
        ++stats_.invalidations;
        FAIRCO2_COUNT("shapley.cache.invalidate", 1);
    }
}

std::uint64_t
IncrementalTemporalEngine::coalitionHash(
    EntryKind kind, const std::vector<std::uint64_t> &members)
{
    Fnv1a hash;
    hash.feed(static_cast<std::uint64_t>(kind));
    hash.feed(static_cast<std::uint64_t>(members.size()));
    for (const std::uint64_t member : members)
        hash.feed(member);
    return hash.state;
}

std::uint64_t
IncrementalTemporalEngine::payloadChecksum(const CacheEntry &entry)
{
    Fnv1a hash;
    hash.feed(static_cast<std::uint64_t>(entry.kind));
    hash.feed(static_cast<std::uint64_t>(entry.members.size()));
    for (const std::uint64_t member : entry.members)
        hash.feed(member);
    if (entry.kind == EntryKind::WindowPhi) {
        hash.feed(static_cast<std::uint64_t>(entry.phi.size()));
        for (const double v : entry.phi)
            hash.feed(v);
        return hash.state;
    }
    hash.feed(entry.solve.peak);
    hash.feed(entry.solve.usage);
    hash.feed(static_cast<std::uint64_t>(entry.solve.leafCount));
    hash.feed(entry.solve.operations);
    // Allocation-free preorder walk over the solve tree — this runs
    // on every cache hit, so it must stay much cheaper than the
    // solve it verifies.
    const auto walk = [&hash](const SolveNode &node,
                              const auto &self) -> void {
        hash.feed(static_cast<std::uint64_t>(node.begin));
        hash.feed(static_cast<std::uint64_t>(node.end));
        hash.feed(node.usage);
        hash.feed(node.childDenom);
        hash.feed(static_cast<std::uint64_t>(node.childPhi.size()));
        for (const double v : node.childPhi)
            hash.feed(v);
        for (const double v : node.childUsages)
            hash.feed(v);
        for (const SolveNode &child : node.children)
            self(child, self);
    };
    walk(entry.solve.root, walk);
    return hash.state;
}

IncrementalTemporalEngine::CacheEntry *
IncrementalTemporalEngine::lookup(
    std::uint64_t key, EntryKind kind,
    const std::vector<std::uint64_t> &members)
{
    if (config_.cacheCapacity == 0) {
        ++stats_.misses;
        FAIRCO2_COUNT("shapley.cache.miss", 1);
        return nullptr;
    }
    const auto it = index_.find(key);
    if (it == index_.end() || it->second->kind != kind ||
        it->second->members != members) {
        ++stats_.misses;
        FAIRCO2_COUNT("shapley.cache.miss", 1);
        return nullptr;
    }
    CacheEntry &entry = *it->second;
    if (payloadChecksum(entry) != entry.checksum)
        throw CacheIntegrityError(
            "incremental attribution: sub-game cache entry for "
            "coalition hash " + std::to_string(key) +
            " failed its checksum");
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
    ++stats_.hits;
    FAIRCO2_COUNT("shapley.cache.hit", 1);
    return &entry;
}

IncrementalTemporalEngine::CacheEntry &
IncrementalTemporalEngine::insert(CacheEntry entry)
{
    while (lru_.size() >= config_.cacheCapacity) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
        FAIRCO2_COUNT("shapley.cache.evict", 1);
    }
    entry.checksum = payloadChecksum(entry);
    lru_.push_front(std::move(entry));
    index_[lru_.front().key] = lru_.begin();
    return lru_.front();
}

IncrementalTemporalEngine::SolveNode
IncrementalTemporalEngine::solveRange(
    const std::vector<double> &samples, std::size_t begin,
    std::size_t end, std::size_t level, PeriodSolve &out) const
{
    SolveNode node;
    node.begin = begin;
    node.end = end;

    if (level == config_.innerSplits.size()) {
        // Leaf period: mirrors TimeSeries::integral — sum first,
        // scale by the step once.
        double sum = 0.0;
        for (std::size_t i = begin; i < end; ++i)
            sum += samples[i];
        node.usage = sum * config_.stepSeconds;
        ++out.leafCount;
        return node;
    }

    const std::size_t span = end - begin;
    const std::size_t chunks =
        std::min(config_.innerSplits[level], span);

    // Near-equal contiguous chunks covering [begin, end), with the
    // same bounds arithmetic as TemporalShapley::attributeRange.
    std::vector<std::size_t> bounds(chunks + 1);
    for (std::size_t c = 0; c <= chunks; ++c)
        bounds[c] = begin + span * c / chunks;

    std::vector<double> peaks(chunks);
    node.childUsages.assign(chunks, 0.0);
    for (std::size_t c = 0; c < chunks; ++c) {
        double best = 0.0;
        double sum = 0.0;
        for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
            best = std::max(best, samples[i]);
            sum += samples[i];
        }
        peaks[c] = best;
        node.childUsages[c] = sum * config_.stepSeconds;
    }

    out.operations += static_cast<std::uint64_t>(chunks) * chunks;

    node.childPhi = peakGameShapley(peaks);
    node.childDenom = 0.0;
    for (std::size_t c = 0; c < chunks; ++c)
        node.childDenom += node.childPhi[c] * node.childUsages[c];

    node.children.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c)
        node.children.push_back(solveRange(
            samples, bounds[c], bounds[c + 1], level + 1, out));
    return node;
}

IncrementalTemporalEngine::PeriodSolve
IncrementalTemporalEngine::solvePeriod(
    const std::vector<double> &samples) const
{
    PeriodSolve solve;
    double best = 0.0;
    double sum = 0.0;
    for (const double v : samples) {
        best = std::max(best, v);
        sum += v;
    }
    solve.peak = best;
    solve.usage = sum * config_.stepSeconds;
    solve.root = solveRange(samples, 0, samples.size(), 0, solve);
    return solve;
}

const IncrementalTemporalEngine::PeriodSolve &
IncrementalTemporalEngine::periodSolveFor(std::uint64_t period)
{
    const std::vector<std::uint64_t> members{period};
    const std::uint64_t key =
        coalitionHash(EntryKind::PeriodSolve, members);
    if (CacheEntry *entry =
            lookup(key, EntryKind::PeriodSolve, members))
        return entry->solve;

    CacheEntry fresh;
    fresh.key = key;
    fresh.kind = EntryKind::PeriodSolve;
    fresh.members = members;
    fresh.solve = solvePeriod(
        windowSamples_[static_cast<std::size_t>(period -
                                                firstPeriod_)]);
    if (config_.cacheCapacity == 0) {
        scratch_ = std::move(fresh);
        return scratch_.solve;
    }
    return insert(std::move(fresh)).solve;
}

std::vector<double>
IncrementalTemporalEngine::solveTopPhi(
    const std::vector<double> &peaks) const
{
    if (config_.sampledPermutations == 0)
        return peakGameShapley(peaks);

    const std::size_t n = peaks.size();
    const std::size_t perms = config_.sampledPermutations;
    // Marginal sweep over the reused permutation table. The running
    // maximum is the peak game's v(S) along the permutation prefix,
    // so each pass costs O(W) with no coalition re-enumeration.
    auto phi = parallel::parallelMapReduce(
        0, perms, kPermChunk, std::vector<double>(n, 0.0),
        [&](std::size_t lo, std::size_t hi) {
            std::vector<double> partial(n, 0.0);
            for (std::size_t p = lo; p < hi; ++p) {
                const auto &order = permutations_[p];
                double prev = 0.0;
                double best = 0.0;
                for (std::size_t k = 0; k < n; ++k) {
                    const std::size_t player = order[k];
                    best = std::max(best, peaks[player]);
                    partial[player] += best - prev;
                    prev = best;
                }
            }
            return partial;
        },
        [n](std::vector<double> &acc,
            const std::vector<double> &partial) {
            for (std::size_t i = 0; i < n; ++i)
                acc[i] += partial[i];
        });
    for (double &x : phi)
        x /= static_cast<double>(perms);
    return phi;
}

std::vector<double>
IncrementalTemporalEngine::windowPhiFor(
    const std::vector<double> &peaks)
{
    if (config_.sampledPermutations > 0 &&
        permutations_.size() < config_.sampledPermutations) {
        // Permutation p is forked from the seed counter-style, so
        // the table is pure in (seed, p) and shared by every window
        // — the "permutation prefix reuse" of sampled mode.
        permutations_.reserve(config_.sampledPermutations);
        for (std::size_t p = permutations_.size();
             p < config_.sampledPermutations; ++p)
            permutations_.push_back(
                rngBase_.fork(p).permutation(
                    config_.windowPeriods));
    }

    std::vector<std::uint64_t> members(config_.windowPeriods);
    for (std::size_t i = 0; i < members.size(); ++i)
        members[i] = firstPeriod_ + i;
    const std::uint64_t key =
        coalitionHash(EntryKind::WindowPhi, members);
    if (CacheEntry *entry = lookup(key, EntryKind::WindowPhi, members))
        return entry->phi;

    CacheEntry fresh;
    fresh.key = key;
    fresh.kind = EntryKind::WindowPhi;
    fresh.members = std::move(members);
    fresh.phi = solveTopPhi(peaks);
    if (config_.cacheCapacity == 0)
        return fresh.phi;
    return insert(std::move(fresh)).phi;
}

void
IncrementalTemporalEngine::applyCarbon(
    const SolveNode &node, double carbon, std::vector<double> &values,
    std::size_t offset, double &attributed,
    double &unattributed) const
{
    if (node.children.empty()) {
        // Leaf period: constant intensity carbon / resource-time,
        // mirroring attributeRange's leaf branch.
        if (node.usage <= 0.0) {
            unattributed += carbon;
            return;
        }
        const double intensity = carbon / node.usage;
        for (std::size_t i = node.begin; i < node.end; ++i)
            values[offset + i] = intensity;
        attributed += carbon;
        return;
    }

    // Mirrors periodIntensities: y_c = phi_c * C / sum_k phi_k q_k,
    // all zero when the usage-weighted Shapley mass vanishes.
    const std::size_t chunks = node.children.size();
    std::vector<double> intensities(chunks, 0.0);
    if (node.childDenom > 0.0) {
        for (std::size_t c = 0; c < chunks; ++c)
            intensities[c] =
                node.childPhi[c] * carbon / node.childDenom;
    }

    double assigned = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) {
        const double chunk_carbon =
            intensities[c] * node.childUsages[c];
        assigned += chunk_carbon;
        applyCarbon(node.children[c], chunk_carbon, values, offset,
                    attributed, unattributed);
    }
    unattributed += carbon - assigned;
}

IncrementalTemporalEngine::WindowResult
IncrementalTemporalEngine::computeWindow(double pool_grams)
{
    if (!windowReady())
        throw std::logic_error(
            "incremental attribution: window queried before "
            "windowPeriods periods closed");
    if (!std::isfinite(pool_grams))
        throw FatalDataError(
            "incremental attribution: total grams is not finite");
    FAIRCO2_SPAN("shapley.incremental.window");
    FAIRCO2_COUNT("shapley.incremental.windows", 1);

    const std::size_t W = config_.windowPeriods;
    const std::size_t M = config_.periodSamples;

    // Gather the W carbon-independent sub-game solves (cache hits
    // for every period the window shares with its predecessor) and
    // copy them out: later inserts may evict earlier entries when
    // the capacity is tight, so references into the LRU list are
    // not stable across this loop.
    std::vector<PeriodSolve> solves;
    solves.reserve(W);
    std::vector<double> peaks(W), usages(W);
    for (std::size_t c = 0; c < W; ++c) {
        solves.push_back(periodSolveFor(firstPeriod_ + c));
        peaks[c] = solves[c].peak;
        usages[c] = solves[c].usage;
    }

    const auto phi = windowPhiFor(peaks);
    double denom = 0.0;
    for (std::size_t c = 0; c < W; ++c)
        denom += phi[c] * usages[c];

    std::vector<double> intensities(W, 0.0);
    if (denom > 0.0) {
        for (std::size_t c = 0; c < W; ++c)
            intensities[c] = phi[c] * pool_grams / denom;
    }

    WindowResult result;
    result.firstPeriod = firstPeriod_;
    result.operations =
        static_cast<std::uint64_t>(W) * W;
    std::vector<double> values(W * M, 0.0);
    double assigned = 0.0;
    for (std::size_t c = 0; c < W; ++c) {
        const double chunk_carbon = intensities[c] * usages[c];
        assigned += chunk_carbon;
        applyCarbon(solves[c].root, chunk_carbon, values, c * M,
                    result.attributedGrams,
                    result.unattributedGrams);
        result.leafPeriods += solves[c].leafCount;
        result.operations += solves[c].operations;
    }
    result.unattributedGrams += pool_grams - assigned;
    result.intensity =
        trace::TimeSeries(std::move(values), config_.stepSeconds);
    return result;
}

IncrementalTemporalEngine::PeriodResult
IncrementalTemporalEngine::computeNewestPeriod(double pool_grams)
{
    if (!windowReady())
        throw std::logic_error(
            "incremental attribution: window queried before "
            "windowPeriods periods closed");
    if (!std::isfinite(pool_grams))
        throw FatalDataError(
            "incremental attribution: total grams is not finite");
    FAIRCO2_SPAN("shapley.incremental.advance");
    FAIRCO2_COUNT("shapley.incremental.advances", 1);

    const std::size_t W = config_.windowPeriods;
    const std::size_t M = config_.periodSamples;

    // The top-level game still needs every period's peak and usage,
    // but with a warm cache only the newest period solves fresh.
    PeriodSolve newest;
    std::vector<double> peaks(W), usages(W);
    for (std::size_t c = 0; c < W; ++c) {
        const PeriodSolve &solve =
            periodSolveFor(firstPeriod_ + c);
        peaks[c] = solve.peak;
        usages[c] = solve.usage;
        if (c + 1 == W)
            newest = solve;
    }

    const auto phi = windowPhiFor(peaks);
    double denom = 0.0;
    for (std::size_t c = 0; c < W; ++c)
        denom += phi[c] * usages[c];

    double intensity = 0.0;
    if (denom > 0.0)
        intensity = phi[W - 1] * pool_grams / denom;

    PeriodResult result;
    result.period = firstPeriod_ + W - 1;
    result.periodGrams = intensity * usages[W - 1];
    result.leafPeriods = newest.leafCount;
    result.operations =
        static_cast<std::uint64_t>(W) * W + newest.operations;
    result.intensity.assign(M, 0.0);
    applyCarbon(newest.root, result.periodGrams, result.intensity, 0,
                result.attributedGrams, result.unattributedGrams);
    return result;
}

bool
IncrementalTemporalEngine::corruptCacheEntryForTest()
{
    if (lru_.empty())
        return false;
    CacheEntry &entry = lru_.front();
    // Flip one payload bit without refreshing the stored checksum;
    // the next hit on this entry fails verification.
    if (entry.kind == EntryKind::WindowPhi && !entry.phi.empty()) {
        entry.phi[0] = std::bit_cast<double>(
            std::bit_cast<std::uint64_t>(entry.phi[0]) ^ 1ULL);
    } else {
        entry.solve.peak = std::bit_cast<double>(
            std::bit_cast<std::uint64_t>(entry.solve.peak) ^ 1ULL);
    }
    return true;
}

} // namespace fairco2::shapley
