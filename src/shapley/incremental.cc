#include "shapley/incremental.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/errors.hh"
#include "common/obs.hh"
#include "common/parallel.hh"
#include "shapley/peak.hh"

namespace fairco2::shapley
{

namespace
{

/** Permutations per parallel chunk in the sampled sweep; fixed so
 *  the chunk grid and fold order never depend on `--threads N`. */
constexpr std::size_t kPermChunk = 16;

/** Bytes of the leading checksum word in a serialized blob. */
constexpr std::size_t kBlobChecksumBytes = 8;

/** FNV-1a-style accumulator (64-bit words per step, so verifying a
 *  cached payload stays much cheaper than re-solving it) used for
 *  both the canonical coalition hash and the blob checksums. */
struct Fnv1a
{
    std::uint64_t state = 14695981039346656037ULL;

    void
    feed(std::uint64_t word)
    {
        state ^= word;
        state *= 1099511628211ULL;
    }

    void feed(double value) { feed(std::bit_cast<std::uint64_t>(value)); }
};

/** Checksum of a serialized payload: word-granular FNV-1a with a
 *  zero-padded tail word plus the length, so blobs of different
 *  sizes never collide on padding alone. */
std::uint64_t
blobChecksum(const std::uint8_t *data, std::size_t size)
{
    Fnv1a hash;
    std::size_t i = 0;
    for (; i + 8 <= size; i += 8) {
        std::uint64_t word;
        std::memcpy(&word, data + i, 8);
        hash.feed(word);
    }
    if (i < size) {
        std::uint64_t word = 0;
        std::memcpy(&word, data + i, size - i);
        hash.feed(word);
    }
    hash.feed(static_cast<std::uint64_t>(size));
    return hash.state;
}

void
putWord(std::vector<std::uint8_t> &out, std::uint64_t word)
{
    const std::size_t at = out.size();
    out.resize(at + 8);
    std::memcpy(out.data() + at, &word, 8);
}

void
putDouble(std::vector<std::uint8_t> &out, double value)
{
    putWord(out, std::bit_cast<std::uint64_t>(value));
}

/** Bounds-checked word cursor over one section of a serialized
 *  blob ([pos, end) within the byte vector). */
struct WordReader
{
    const std::vector<std::uint8_t> &bytes;
    std::size_t pos = 0;
    std::size_t end = 0;

    std::size_t remaining() const { return end - pos; }

    bool
    u64(std::uint64_t &out)
    {
        if (pos + 8 > end)
            return false;
        std::memcpy(&out, bytes.data() + pos, 8);
        pos += 8;
        return true;
    }

    bool
    f64(double &out)
    {
        std::uint64_t word;
        if (!u64(word))
            return false;
        out = std::bit_cast<double>(word);
        return true;
    }
};

std::string
hex16(std::uint64_t value)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(value));
    return std::string(buf);
}

} // namespace

IncrementalTemporalEngine::IncrementalTemporalEngine(
    const Config &config)
    : config_(config), rngBase_(config.seed)
{
    if (config_.windowPeriods == 0)
        throw std::invalid_argument(
            "incremental engine: windowPeriods must be >= 1");
    if (config_.periodSamples == 0)
        throw std::invalid_argument(
            "incremental engine: periodSamples must be >= 1");
    if (!(config_.stepSeconds > 0.0))
        throw std::invalid_argument(
            "incremental engine: stepSeconds must be positive");
    for (const std::size_t split : config_.innerSplits) {
        if (split == 0)
            throw std::invalid_argument(
                "incremental engine: inner split counts must be "
                ">= 1");
    }
    if (config_.cacheCapacity > 0)
        store_ = cache::makeBlobStore(config_.backend,
                                      config_.cacheCapacity);
    partialPeriod_.reserve(config_.periodSamples);
}

void
IncrementalTemporalEngine::pushSample(double demand)
{
    // Mirrors TemporalShapley::attribute's sample guard: a poisoned
    // sample would spread through every cached Shapley weight below
    // it, so refuse it at the door with a sample-level diagnostic.
    if (!std::isfinite(demand))
        throw FatalDataError(
            "incremental attribution: demand sample " +
            std::to_string(samplesSeen_) + " is not finite");
    partialPeriod_.push_back(demand);
    ++samplesSeen_;
    if (partialPeriod_.size() == config_.periodSamples)
        closePeriod();
}

void
IncrementalTemporalEngine::closePeriod()
{
    windowSamples_.push_back(std::move(partialPeriod_));
    partialPeriod_ = std::vector<double>();
    partialPeriod_.reserve(config_.periodSamples);
    ++periodsClosed_;
    if (windowSamples_.size() > config_.windowPeriods) {
        const std::uint64_t evicted = firstPeriod_;
        windowSamples_.pop_front();
        ++firstPeriod_;
        invalidatePeriod(evicted);
    }
}

bool
IncrementalTemporalEngine::windowReady() const
{
    return windowSamples_.size() == config_.windowPeriods;
}

void
IncrementalTemporalEngine::invalidatePeriod(std::uint64_t period)
{
    // Exact invalidation: the only live entries whose coalition can
    // involve the period that just slid out are its singleton solve
    // and the window-phi of the window that *started* at it (older
    // window-phi entries were invalidated on earlier advances), so
    // two keyed erases replace a full scan. The newly added period
    // has no entry yet and simply misses on next use.
    if (!store_)
        return;
    const std::vector<std::uint64_t> single{period};
    if (store_->erase(
            coalitionHash(EntryKind::PeriodSolve, single))) {
        ++stats_.invalidations;
        FAIRCO2_COUNT("shapley.cache.invalidate", 1);
    }
    std::vector<std::uint64_t> span(config_.windowPeriods);
    for (std::size_t i = 0; i < span.size(); ++i)
        span[i] = period + i;
    if (store_->erase(coalitionHash(EntryKind::WindowPhi, span))) {
        ++stats_.invalidations;
        FAIRCO2_COUNT("shapley.cache.invalidate", 1);
    }
    syncCacheObs();
}

std::uint64_t
IncrementalTemporalEngine::coalitionHash(
    EntryKind kind, const std::vector<std::uint64_t> &members)
{
    Fnv1a hash;
    hash.feed(static_cast<std::uint64_t>(kind));
    hash.feed(static_cast<std::uint64_t>(members.size()));
    for (const std::uint64_t member : members)
        hash.feed(member);
    return hash.state;
}

std::string
IncrementalTemporalEngine::describeEntry(
    EntryKind kind, const std::vector<std::uint64_t> &members)
{
    if (kind == EntryKind::WindowPhi && !members.empty())
        return "window-phi cache entry for periods [" +
            std::to_string(members.front()) + ".." +
            std::to_string(members.back()) + "]";
    if (!members.empty())
        return "sub-game cache entry for window period " +
            std::to_string(members.front());
    return "sub-game cache entry with no coalition";
}

void
IncrementalTemporalEngine::serializeEntry(
    const CacheEntry &entry, std::vector<std::uint8_t> &out)
{
    // The blob is two typed sections behind a word-count header:
    // every u64 structure word in traversal order, then every IEEE
    // double in the same order. Homogeneous sections are what makes
    // the lz codec's delta transform effective — small integers
    // delta to zero runs and neighboring doubles share exponent and
    // top-mantissa bytes, which interleaved words would destroy.
    out.clear();
    std::vector<std::uint8_t> words;
    std::vector<std::uint8_t> doubles;
    putWord(words, static_cast<std::uint64_t>(entry.kind));
    putWord(words,
            static_cast<std::uint64_t>(entry.members.size()));
    for (const std::uint64_t member : entry.members)
        putWord(words, member);
    if (entry.kind == EntryKind::WindowPhi) {
        putWord(words,
                static_cast<std::uint64_t>(entry.phi.size()));
        for (const double v : entry.phi)
            putDouble(doubles, v);
    } else {
        putWord(words,
                static_cast<std::uint64_t>(entry.solve.leafCount));
        putWord(words, entry.solve.operations);
        putDouble(doubles, entry.solve.peak);
        putDouble(doubles, entry.solve.usage);
        const auto walk = [&words, &doubles](const SolveNode &node,
                                             const auto &self)
            -> void {
            putWord(words, static_cast<std::uint64_t>(node.begin));
            putWord(words, static_cast<std::uint64_t>(node.end));
            putWord(words, static_cast<std::uint64_t>(
                               node.children.size()));
            putDouble(doubles, node.usage);
            putDouble(doubles, node.childDenom);
            for (const double v : node.childPhi)
                putDouble(doubles, v);
            for (const double v : node.childUsages)
                putDouble(doubles, v);
            for (const SolveNode &child : node.children)
                self(child, self);
        };
        walk(entry.solve.root, walk);
    }
    putWord(out, 0); // checksum placeholder, filled below
    putWord(out, static_cast<std::uint64_t>(words.size() / 8));
    out.insert(out.end(), words.begin(), words.end());
    out.insert(out.end(), doubles.begin(), doubles.end());
    const std::uint64_t checksum =
        blobChecksum(out.data() + kBlobChecksumBytes,
                     out.size() - kBlobChecksumBytes);
    std::memcpy(out.data(), &checksum, kBlobChecksumBytes);
}

bool
IncrementalTemporalEngine::deserializeEntry(
    const std::vector<std::uint8_t> &in, CacheEntry &out)
{
    if (in.size() < kBlobChecksumBytes + 8 ||
        (in.size() % 8) != 0)
        return false;
    std::uint64_t word_count = 0;
    {
        std::memcpy(&word_count, in.data() + kBlobChecksumBytes, 8);
    }
    const std::size_t words_begin = kBlobChecksumBytes + 8;
    if (word_count > (in.size() - words_begin) / 8)
        return false;
    const std::size_t doubles_begin =
        words_begin + static_cast<std::size_t>(word_count) * 8;
    WordReader words{in, words_begin, doubles_begin};
    WordReader doubles{in, doubles_begin, in.size()};
    std::uint64_t kind_word = 0;
    std::uint64_t count = 0;
    if (!words.u64(kind_word) || !words.u64(count))
        return false;
    if (kind_word !=
            static_cast<std::uint64_t>(EntryKind::PeriodSolve) &&
        kind_word != static_cast<std::uint64_t>(EntryKind::WindowPhi))
        return false;
    out.kind = static_cast<EntryKind>(kind_word);
    if (count > words.remaining() / 8)
        return false;
    out.members.resize(static_cast<std::size_t>(count));
    for (std::uint64_t &member : out.members)
        if (!words.u64(member))
            return false;
    out.phi.clear();
    out.solve = PeriodSolve{};
    if (out.kind == EntryKind::WindowPhi) {
        if (!words.u64(count))
            return false;
        if (count > doubles.remaining() / 8)
            return false;
        out.phi.resize(static_cast<std::size_t>(count));
        for (double &v : out.phi)
            if (!doubles.f64(v))
                return false;
        return words.remaining() == 0 && doubles.remaining() == 0;
    }
    std::uint64_t leaves = 0;
    if (!words.u64(leaves) || !words.u64(out.solve.operations) ||
        !doubles.f64(out.solve.peak) ||
        !doubles.f64(out.solve.usage))
        return false;
    out.solve.leafCount = static_cast<std::size_t>(leaves);
    const auto walk = [&words, &doubles](SolveNode &node,
                                         const auto &self) -> bool {
        std::uint64_t begin = 0;
        std::uint64_t end = 0;
        std::uint64_t chunks = 0;
        if (!words.u64(begin) || !words.u64(end) ||
            !words.u64(chunks) || !doubles.f64(node.usage) ||
            !doubles.f64(node.childDenom))
            return false;
        node.begin = static_cast<std::size_t>(begin);
        node.end = static_cast<std::size_t>(end);
        // A corrupt count would drive the recursion far past the
        // blob; the per-word bounds checks below stop it, but cap it
        // against the remaining bytes anyway.
        if (chunks > doubles.remaining() / 16)
            return false;
        node.childPhi.resize(static_cast<std::size_t>(chunks));
        for (double &v : node.childPhi)
            if (!doubles.f64(v))
                return false;
        node.childUsages.resize(static_cast<std::size_t>(chunks));
        for (double &v : node.childUsages)
            if (!doubles.f64(v))
                return false;
        node.children.resize(static_cast<std::size_t>(chunks));
        for (SolveNode &child : node.children)
            if (!self(child, self))
                return false;
        return true;
    };
    if (!walk(out.solve.root, walk))
        return false;
    return words.remaining() == 0 && doubles.remaining() == 0;
}

bool
IncrementalTemporalEngine::fetchEntry(
    std::uint64_t key, EntryKind kind,
    const std::vector<std::uint64_t> &members, CacheEntry &out)
{
    if (!store_) {
        ++stats_.misses;
        FAIRCO2_COUNT("shapley.cache.miss", 1);
        return false;
    }
    bool found = false;
    try {
        found = store_->get(key, blobBuffer_);
    } catch (const cache::CorruptBlockError &error) {
        throw CacheIntegrityError(
            "incremental attribution: " +
            describeEntry(kind, members) +
            " no longer decompresses (" + error.what() + ")");
    }
    if (!found) {
        ++stats_.misses;
        FAIRCO2_COUNT("shapley.cache.miss", 1);
        return false;
    }
    if (blobBuffer_.size() < kBlobChecksumBytes)
        throw CacheIntegrityError(
            "incremental attribution: " +
            describeEntry(kind, members) + " is truncated (" +
            std::to_string(blobBuffer_.size()) + " bytes)");
    std::uint64_t stored = 0;
    std::memcpy(&stored, blobBuffer_.data(), kBlobChecksumBytes);
    const std::uint64_t computed =
        blobChecksum(blobBuffer_.data() + kBlobChecksumBytes,
                     blobBuffer_.size() - kBlobChecksumBytes);
    if (stored != computed)
        throw CacheIntegrityError(
            "incremental attribution: " +
            describeEntry(kind, members) +
            " failed its checksum (stored " + hex16(stored) +
            ", computed " + hex16(computed) + ")");
    // A verified blob that decodes to a different coalition is a
    // key collision, not corruption: treat it as a miss and let the
    // fresh solve overwrite it.
    if (!deserializeEntry(blobBuffer_, out) || out.kind != kind ||
        out.members != members) {
        ++stats_.misses;
        FAIRCO2_COUNT("shapley.cache.miss", 1);
        return false;
    }
    out.key = key;
    ++stats_.hits;
    FAIRCO2_COUNT("shapley.cache.hit", 1);
    return true;
}

void
IncrementalTemporalEngine::storeEntry(const CacheEntry &entry)
{
    if (!store_)
        return;
    serializeEntry(entry, blobBuffer_);
    store_->put(entry.key, blobBuffer_.data(), blobBuffer_.size());
    syncCacheObs();
}

void
IncrementalTemporalEngine::syncCacheObs()
{
    const cache::StoreCounters counters = store_->counters();
    if (counters.evictions > stats_.evictions) {
        const std::uint64_t delta =
            counters.evictions - stats_.evictions;
        stats_.evictions = counters.evictions;
        FAIRCO2_COUNT("shapley.cache.evict", delta);
        switch (config_.backend.policy) {
        case cache::EvictPolicy::Lru:
            FAIRCO2_COUNT("shapley.cache.evict.lru", delta);
            break;
        case cache::EvictPolicy::Clock:
            FAIRCO2_COUNT("shapley.cache.evict.clock", delta);
            break;
        }
    }
    stats_.storedBytes = counters.storedBytes;
    stats_.rawBytes = counters.rawBytes;
    FAIRCO2_GAUGE_SET("shapley.cache.compressed_bytes",
                      static_cast<double>(counters.storedBytes));
    FAIRCO2_GAUGE_SET("shapley.cache.raw_bytes",
                      static_cast<double>(counters.rawBytes));
}

IncrementalTemporalEngine::SolveNode
IncrementalTemporalEngine::solveRange(
    const std::vector<double> &samples, std::size_t begin,
    std::size_t end, std::size_t level, PeriodSolve &out) const
{
    SolveNode node;
    node.begin = begin;
    node.end = end;

    if (level == config_.innerSplits.size()) {
        // Leaf period: mirrors TimeSeries::integral — sum first,
        // scale by the step once.
        double sum = 0.0;
        for (std::size_t i = begin; i < end; ++i)
            sum += samples[i];
        node.usage = sum * config_.stepSeconds;
        ++out.leafCount;
        return node;
    }

    const std::size_t span = end - begin;
    const std::size_t chunks =
        std::min(config_.innerSplits[level], span);

    // Near-equal contiguous chunks covering [begin, end), with the
    // same bounds arithmetic as TemporalShapley::attributeRange.
    std::vector<std::size_t> bounds(chunks + 1);
    for (std::size_t c = 0; c <= chunks; ++c)
        bounds[c] = begin + span * c / chunks;

    std::vector<double> peaks(chunks);
    node.childUsages.assign(chunks, 0.0);
    for (std::size_t c = 0; c < chunks; ++c) {
        double best = 0.0;
        double sum = 0.0;
        for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
            best = std::max(best, samples[i]);
            sum += samples[i];
        }
        peaks[c] = best;
        node.childUsages[c] = sum * config_.stepSeconds;
    }

    out.operations += static_cast<std::uint64_t>(chunks) * chunks;

    node.childPhi = peakGameShapley(peaks);
    node.childDenom = 0.0;
    for (std::size_t c = 0; c < chunks; ++c)
        node.childDenom += node.childPhi[c] * node.childUsages[c];

    node.children.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c)
        node.children.push_back(solveRange(
            samples, bounds[c], bounds[c + 1], level + 1, out));
    return node;
}

IncrementalTemporalEngine::PeriodSolve
IncrementalTemporalEngine::solvePeriod(
    const std::vector<double> &samples) const
{
    PeriodSolve solve;
    double best = 0.0;
    double sum = 0.0;
    for (const double v : samples) {
        best = std::max(best, v);
        sum += v;
    }
    solve.peak = best;
    solve.usage = sum * config_.stepSeconds;
    solve.root = solveRange(samples, 0, samples.size(), 0, solve);
    return solve;
}

const IncrementalTemporalEngine::PeriodSolve &
IncrementalTemporalEngine::periodSolveFor(std::uint64_t period)
{
    const std::vector<std::uint64_t> members{period};
    const std::uint64_t key =
        coalitionHash(EntryKind::PeriodSolve, members);
    if (fetchEntry(key, EntryKind::PeriodSolve, members, hitEntry_))
        return hitEntry_.solve;

    scratch_ = CacheEntry{};
    scratch_.key = key;
    scratch_.kind = EntryKind::PeriodSolve;
    scratch_.members = members;
    scratch_.solve = solvePeriod(
        windowSamples_[static_cast<std::size_t>(period -
                                                firstPeriod_)]);
    storeEntry(scratch_);
    return scratch_.solve;
}

std::vector<double>
IncrementalTemporalEngine::solveTopPhi(
    const std::vector<double> &peaks) const
{
    if (config_.sampledPermutations == 0)
        return peakGameShapley(peaks);

    const std::size_t n = peaks.size();
    const std::size_t perms = config_.sampledPermutations;
    // Marginal sweep over the reused permutation table. The running
    // maximum is the peak game's v(S) along the permutation prefix,
    // so each pass costs O(W) with no coalition re-enumeration.
    auto phi = parallel::parallelMapReduce(
        0, perms, kPermChunk, std::vector<double>(n, 0.0),
        [&](std::size_t lo, std::size_t hi) {
            std::vector<double> partial(n, 0.0);
            for (std::size_t p = lo; p < hi; ++p) {
                const auto &order = permutations_[p];
                double prev = 0.0;
                double best = 0.0;
                for (std::size_t k = 0; k < n; ++k) {
                    const std::size_t player = order[k];
                    best = std::max(best, peaks[player]);
                    partial[player] += best - prev;
                    prev = best;
                }
            }
            return partial;
        },
        [n](std::vector<double> &acc,
            const std::vector<double> &partial) {
            for (std::size_t i = 0; i < n; ++i)
                acc[i] += partial[i];
        });
    for (double &x : phi)
        x /= static_cast<double>(perms);
    return phi;
}

std::vector<double>
IncrementalTemporalEngine::windowPhiFor(
    const std::vector<double> &peaks)
{
    if (config_.sampledPermutations > 0 &&
        permutations_.size() < config_.sampledPermutations) {
        // Permutation p is forked from the seed counter-style, so
        // the table is pure in (seed, p) and shared by every window
        // — the "permutation prefix reuse" of sampled mode.
        permutations_.reserve(config_.sampledPermutations);
        for (std::size_t p = permutations_.size();
             p < config_.sampledPermutations; ++p)
            permutations_.push_back(
                rngBase_.fork(p).permutation(
                    config_.windowPeriods));
    }

    std::vector<std::uint64_t> members(config_.windowPeriods);
    for (std::size_t i = 0; i < members.size(); ++i)
        members[i] = firstPeriod_ + i;
    const std::uint64_t key =
        coalitionHash(EntryKind::WindowPhi, members);
    if (fetchEntry(key, EntryKind::WindowPhi, members, hitEntry_))
        return hitEntry_.phi;

    CacheEntry fresh;
    fresh.key = key;
    fresh.kind = EntryKind::WindowPhi;
    fresh.members = std::move(members);
    fresh.phi = solveTopPhi(peaks);
    storeEntry(fresh);
    return std::move(fresh.phi);
}

void
IncrementalTemporalEngine::applyCarbon(
    const SolveNode &node, double carbon, std::vector<double> &values,
    std::size_t offset, double &attributed,
    double &unattributed) const
{
    if (node.children.empty()) {
        // Leaf period: constant intensity carbon / resource-time,
        // mirroring attributeRange's leaf branch.
        if (node.usage <= 0.0) {
            unattributed += carbon;
            return;
        }
        const double intensity = carbon / node.usage;
        for (std::size_t i = node.begin; i < node.end; ++i)
            values[offset + i] = intensity;
        attributed += carbon;
        return;
    }

    // Mirrors periodIntensities: y_c = phi_c * C / sum_k phi_k q_k,
    // all zero when the usage-weighted Shapley mass vanishes.
    const std::size_t chunks = node.children.size();
    std::vector<double> intensities(chunks, 0.0);
    if (node.childDenom > 0.0) {
        for (std::size_t c = 0; c < chunks; ++c)
            intensities[c] =
                node.childPhi[c] * carbon / node.childDenom;
    }

    double assigned = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) {
        const double chunk_carbon =
            intensities[c] * node.childUsages[c];
        assigned += chunk_carbon;
        applyCarbon(node.children[c], chunk_carbon, values, offset,
                    attributed, unattributed);
    }
    unattributed += carbon - assigned;
}

IncrementalTemporalEngine::WindowResult
IncrementalTemporalEngine::computeWindow(double pool_grams)
{
    if (!windowReady())
        throw std::logic_error(
            "incremental attribution: window queried before "
            "windowPeriods periods closed");
    if (!std::isfinite(pool_grams))
        throw FatalDataError(
            "incremental attribution: total grams is not finite");
    FAIRCO2_SPAN("shapley.incremental.window");
    FAIRCO2_COUNT("shapley.incremental.windows", 1);

    const std::size_t W = config_.windowPeriods;
    const std::size_t M = config_.periodSamples;

    // Gather the W carbon-independent sub-game solves (cache hits
    // for every period the window shares with its predecessor) and
    // copy them out: later fetches decode into the same hit buffer
    // and later inserts may evict earlier entries when the capacity
    // is tight, so references are not stable across this loop.
    std::vector<PeriodSolve> solves;
    solves.reserve(W);
    std::vector<double> peaks(W), usages(W);
    for (std::size_t c = 0; c < W; ++c) {
        solves.push_back(periodSolveFor(firstPeriod_ + c));
        peaks[c] = solves[c].peak;
        usages[c] = solves[c].usage;
    }

    const auto phi = windowPhiFor(peaks);
    double denom = 0.0;
    for (std::size_t c = 0; c < W; ++c)
        denom += phi[c] * usages[c];

    std::vector<double> intensities(W, 0.0);
    if (denom > 0.0) {
        for (std::size_t c = 0; c < W; ++c)
            intensities[c] = phi[c] * pool_grams / denom;
    }

    WindowResult result;
    result.firstPeriod = firstPeriod_;
    result.operations =
        static_cast<std::uint64_t>(W) * W;
    std::vector<double> values(W * M, 0.0);
    double assigned = 0.0;
    for (std::size_t c = 0; c < W; ++c) {
        const double chunk_carbon = intensities[c] * usages[c];
        assigned += chunk_carbon;
        applyCarbon(solves[c].root, chunk_carbon, values, c * M,
                    result.attributedGrams,
                    result.unattributedGrams);
        result.leafPeriods += solves[c].leafCount;
        result.operations += solves[c].operations;
    }
    result.unattributedGrams += pool_grams - assigned;
    result.intensity =
        trace::TimeSeries(std::move(values), config_.stepSeconds);
    return result;
}

IncrementalTemporalEngine::PeriodResult
IncrementalTemporalEngine::computeNewestPeriod(double pool_grams)
{
    if (!windowReady())
        throw std::logic_error(
            "incremental attribution: window queried before "
            "windowPeriods periods closed");
    if (!std::isfinite(pool_grams))
        throw FatalDataError(
            "incremental attribution: total grams is not finite");
    FAIRCO2_SPAN("shapley.incremental.advance");
    FAIRCO2_COUNT("shapley.incremental.advances", 1);

    const std::size_t W = config_.windowPeriods;
    const std::size_t M = config_.periodSamples;

    // The top-level game still needs every period's peak and usage,
    // but with a warm cache only the newest period solves fresh.
    PeriodSolve newest;
    std::vector<double> peaks(W), usages(W);
    for (std::size_t c = 0; c < W; ++c) {
        const PeriodSolve &solve =
            periodSolveFor(firstPeriod_ + c);
        peaks[c] = solve.peak;
        usages[c] = solve.usage;
        if (c + 1 == W)
            newest = solve;
    }

    const auto phi = windowPhiFor(peaks);
    double denom = 0.0;
    for (std::size_t c = 0; c < W; ++c)
        denom += phi[c] * usages[c];

    double intensity = 0.0;
    if (denom > 0.0)
        intensity = phi[W - 1] * pool_grams / denom;

    PeriodResult result;
    result.period = firstPeriod_ + W - 1;
    result.periodGrams = intensity * usages[W - 1];
    result.leafPeriods = newest.leafCount;
    result.operations =
        static_cast<std::uint64_t>(W) * W + newest.operations;
    result.intensity.assign(M, 0.0);
    applyCarbon(newest.root, result.periodGrams, result.intensity, 0,
                result.attributedGrams, result.unattributedGrams);
    return result;
}

bool
IncrementalTemporalEngine::corruptCacheEntryForTest(
    std::size_t byte_offset)
{
    // Flip one stored bit without refreshing the blob checksum; the
    // next hit on that entry fails verification (or, under a
    // compressing codec, may fail to decode at all).
    return store_ && store_->corruptOneForTest(byte_offset);
}

} // namespace fairco2::shapley
