#include "shapley/game.hh"

#include <cassert>

namespace fairco2::shapley
{

TabulatedGame::TabulatedGame(int num_players,
                             std::vector<double> values)
    : numPlayers_(num_players), values_(std::move(values))
{
    assert(num_players >= 0 && num_players < 63);
    assert(values_.size() == (1ULL << num_players));
}

double
TabulatedGame::value(std::uint64_t mask) const
{
    assert(mask < values_.size());
    return values_[mask];
}

} // namespace fairco2::shapley
