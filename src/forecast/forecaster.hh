/**
 * @file
 * Demand forecasting (Section 5.3). The paper uses Meta's Prophet;
 * offline, the equivalent additive model — linear trend plus daily
 * and weekly Fourier seasonality, fit by ridge-regularized least
 * squares — captures the same structure on data-center demand traces
 * and follows the same protocol (fit 21 days, forecast 9).
 */

#ifndef FAIRCO2_FORECAST_FORECASTER_HH
#define FAIRCO2_FORECAST_FORECASTER_HH

#include <cstddef>
#include <vector>

#include "trace/timeseries.hh"

namespace fairco2::forecast
{

/** Additive trend + Fourier-seasonality forecaster. */
class SeasonalForecaster
{
  public:
    struct Config
    {
        int dailyHarmonics = 6;   //!< Fourier order of the daily cycle
        int weeklyHarmonics = 4;  //!< Fourier order of the weekly cycle
        double ridgeLambda = 1e-3;//!< regularization strength
    };

    SeasonalForecaster();
    explicit SeasonalForecaster(const Config &config);

    /**
     * Fit the model to a history starting at time zero. Requires at
     * least as many samples as model features.
     *
     * When the ridge fit diverges — the history contains non-finite
     * samples, the Cholesky solve fails, or the solved weights are
     * not finite — the forecaster downgrades itself to a
     * seasonal-naive model (the last daily period of the history,
     * interpolation-repaired, tiled forward), logs the downgrade,
     * and bumps the `forecast.fallback` obs counter instead of
     * emitting poisoned predictions.
     */
    void fit(const trace::TimeSeries &history);

    /**
     * Fit the seasonal-naive fallback model directly — the last
     * daily period of @p history, interpolation-repaired, tiled
     * forward — without attempting the ridge fit at all. This is the
     * degraded forecast mode the pipeline supervisor drops to when
     * the full fit keeps failing or the stage runs out of deadline
     * budget; the forecaster reports degraded() afterwards. Requires
     * a non-empty history (throws std::invalid_argument otherwise).
     */
    void fitNaive(const trace::TimeSeries &history);

    /** True after a successful fit(). */
    bool fitted() const { return fitted_; }

    /** True when fit() fell back to the seasonal-naive model. */
    bool degraded() const { return degraded_; }

    /** Model prediction at an absolute time in seconds. */
    double predictAt(double seconds) const;

    /**
     * Forecast @p horizon_steps past the end of the fitted history,
     * at the history's step width. Predictions are clamped at zero
     * (demand cannot be negative).
     */
    trace::TimeSeries forecast(std::size_t horizon_steps) const;

    /**
     * The fitted history followed by a forecast horizon — the
     * "21 days of truth + 9 days of forecast" series Figures 5 and
     * 11 are built from.
     */
    trace::TimeSeries
    extendWithForecast(const trace::TimeSeries &history,
                       std::size_t horizon_steps);

  private:
    std::vector<double> featuresAt(double seconds) const;
    void applyNaive(const trace::TimeSeries &history);
    void fallbackTo(const trace::TimeSeries &history,
                    const char *reason);

    Config config_;
    bool fitted_;
    bool degraded_ = false;
    std::vector<double> fallbackPeriod_; //!< last daily period
    double fallbackStartSeconds_ = 0.0;
    std::vector<double> weights_;
    double yMean_;
    double yScale_;
    double historyEndSeconds_;
    double stepSeconds_;
    double timeScaleSeconds_; //!< trend normalization
};

} // namespace fairco2::forecast

#endif // FAIRCO2_FORECAST_FORECASTER_HH
