#include "forecast/forecaster.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>

#include "common/linalg.hh"
#include "common/obs.hh"
#include "resilience/ingest.hh"

namespace fairco2::forecast
{

namespace
{

constexpr double kSecondsPerDay = 86400.0;
constexpr double kSecondsPerWeek = 7.0 * kSecondsPerDay;
constexpr double kTwoPi = 2.0 * std::numbers::pi;

bool
allFinite(const std::vector<double> &values)
{
    for (double v : values) {
        if (!std::isfinite(v))
            return false;
    }
    return true;
}

} // namespace

SeasonalForecaster::SeasonalForecaster()
    : SeasonalForecaster(Config{})
{
}

SeasonalForecaster::SeasonalForecaster(const Config &config)
    : config_(config), fitted_(false), yMean_(0.0), yScale_(1.0),
      historyEndSeconds_(0.0), stepSeconds_(1.0),
      timeScaleSeconds_(kSecondsPerWeek)
{
    assert(config.dailyHarmonics >= 0);
    assert(config.weeklyHarmonics >= 0);
    assert(config.ridgeLambda >= 0.0);
}

std::vector<double>
SeasonalForecaster::featuresAt(double seconds) const
{
    std::vector<double> f;
    f.reserve(2 + 2 * (config_.dailyHarmonics +
                       config_.weeklyHarmonics));
    f.push_back(1.0);
    f.push_back(seconds / timeScaleSeconds_);
    for (int k = 1; k <= config_.dailyHarmonics; ++k) {
        const double phase = kTwoPi * k * seconds / kSecondsPerDay;
        f.push_back(std::cos(phase));
        f.push_back(std::sin(phase));
    }
    for (int k = 1; k <= config_.weeklyHarmonics; ++k) {
        const double phase = kTwoPi * k * seconds / kSecondsPerWeek;
        f.push_back(std::cos(phase));
        f.push_back(std::sin(phase));
    }
    return f;
}

void
SeasonalForecaster::fit(const trace::TimeSeries &history)
{
    const std::size_t n = history.size();
    const std::size_t p = featuresAt(0.0).size();
    if (n < p)
        throw std::invalid_argument(
            "history too short for the seasonal model");

    FAIRCO2_SPAN("forecast.fit");
    FAIRCO2_COUNT("forecast.fits", 1);
    FAIRCO2_OBSERVE("forecast.fit_samples", n);
    FAIRCO2_TIME_NS("forecast.fit_ns");

    stepSeconds_ = history.stepSeconds();
    historyEndSeconds_ = history.durationSeconds();
    degraded_ = false;

    if (!allFinite(history.values())) {
        fallbackTo(history, "history contains non-finite samples");
        return;
    }

    // Standardize the target so the ridge penalty is scale-free.
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        mean += history[i];
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = history[i] - mean;
        var += d * d;
    }
    yMean_ = mean;
    yScale_ = std::sqrt(var / static_cast<double>(n));
    if (yScale_ <= 0.0)
        yScale_ = 1.0;

    Matrix design(n, p);
    std::vector<double> target(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t =
            (static_cast<double>(i) + 0.5) * stepSeconds_;
        const auto f = featuresAt(t);
        for (std::size_t j = 0; j < p; ++j)
            design(i, j) = f[j];
        target[i] = (history[i] - yMean_) / yScale_;
    }

    {
        // The ridge solve (normal equations + Cholesky) dominates
        // fit cost once the design matrix is built.
        FAIRCO2_SPAN("forecast.solve");
        FAIRCO2_TIME_NS("forecast.solve_ns");
        try {
            weights_ =
                ridgeRegression(design, target, config_.ridgeLambda);
        } catch (const std::runtime_error &) {
            fallbackTo(history, "ridge solve failed");
            return;
        }
    }
    // A NaN on the Cholesky diagonal passes its `diag <= 0` check,
    // so divergence can also surface as non-finite weights.
    if (!allFinite(weights_)) {
        fallbackTo(history, "ridge fit diverged");
        return;
    }
    fitted_ = true;
}

void
SeasonalForecaster::fitNaive(const trace::TimeSeries &history)
{
    if (history.empty())
        throw std::invalid_argument(
            "fitNaive requires a non-empty history");
    stepSeconds_ = history.stepSeconds();
    historyEndSeconds_ = history.durationSeconds();
    applyNaive(history);
    FAIRCO2_COUNT("forecast.naive_fits", 1);
}

void
SeasonalForecaster::applyNaive(const trace::TimeSeries &history)
{
    const std::size_t n = history.size();
    const auto day_steps = static_cast<std::size_t>(
        std::max(1.0, std::round(kSecondsPerDay / stepSeconds_)));
    const std::size_t period = std::min(n, day_steps);

    const auto &values = history.values();
    fallbackPeriod_.assign(values.end() -
                               static_cast<std::ptrdiff_t>(period),
                           values.end());
    fallbackStartSeconds_ =
        static_cast<double>(n - period) * stepSeconds_;
    // Throws (and aborts the fit) only when *no* finite sample
    // exists to rebuild from.
    resilience::repairNonFinite(fallbackPeriod_,
                                resilience::BadRowPolicy::Interpolate,
                                "forecast fallback history");

    weights_.clear();
    degraded_ = true;
    fitted_ = true;
}

void
SeasonalForecaster::fallbackTo(const trace::TimeSeries &history,
                               const char *reason)
{
    applyNaive(history);
    FAIRCO2_COUNT("forecast.fallback", 1);
    std::fprintf(stderr,
                 "warning: forecast: %s; falling back to "
                 "seasonal-naive over the last %zu samples\n",
                 reason, fallbackPeriod_.size());
}

double
SeasonalForecaster::predictAt(double seconds) const
{
    assert(fitted_);
    if (degraded_) {
        // Seasonal-naive: tile the stored period in both directions,
        // phase-aligned with where it sat in the history.
        const auto period =
            static_cast<std::int64_t>(fallbackPeriod_.size());
        const auto k = static_cast<std::int64_t>(std::floor(
            (seconds - fallbackStartSeconds_) / stepSeconds_));
        const std::int64_t idx = ((k % period) + period) % period;
        return fallbackPeriod_[static_cast<std::size_t>(idx)];
    }
    const auto f = featuresAt(seconds);
    double z = 0.0;
    for (std::size_t j = 0; j < f.size(); ++j)
        z += weights_[j] * f[j];
    return yMean_ + yScale_ * z;
}

trace::TimeSeries
SeasonalForecaster::forecast(std::size_t horizon_steps) const
{
    assert(fitted_);
    FAIRCO2_SPAN("forecast.predict");
    FAIRCO2_COUNT("forecast.predicted_steps", horizon_steps);
    std::vector<double> values(horizon_steps);
    for (std::size_t i = 0; i < horizon_steps; ++i) {
        const double t = historyEndSeconds_ +
            (static_cast<double>(i) + 0.5) * stepSeconds_;
        values[i] = std::max(0.0, predictAt(t));
    }
    return trace::TimeSeries(std::move(values), stepSeconds_);
}

trace::TimeSeries
SeasonalForecaster::extendWithForecast(
    const trace::TimeSeries &history, std::size_t horizon_steps)
{
    fit(history);
    const auto horizon = forecast(horizon_steps);
    std::vector<double> combined(history.values());
    combined.insert(combined.end(), horizon.values().begin(),
                    horizon.values().end());
    return trace::TimeSeries(std::move(combined),
                             history.stepSeconds());
}

} // namespace fairco2::forecast
