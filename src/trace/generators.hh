/**
 * @file
 * Synthetic trace generators substituting the datasets the paper uses:
 * the Azure 2017 VM CPU-demand trace and Electricity Maps' CAISO grid
 * carbon intensity. Both are unavailable offline; the generators
 * reproduce the statistical structure the Fair-CO2 pipeline depends on
 * (periodicity, dynamic range, noise) — see DESIGN.md.
 */

#ifndef FAIRCO2_TRACE_GENERATORS_HH
#define FAIRCO2_TRACE_GENERATORS_HH

#include "common/rng.hh"
#include "trace/timeseries.hh"

namespace fairco2::trace
{

/**
 * Azure-2017-like aggregate CPU core demand: diurnal and weekly
 * seasonality on a slow trend, with AR(1) noise and occasional load
 * spikes, sampled every five minutes.
 */
class AzureLikeGenerator
{
  public:
    struct Config
    {
        double days = 30.0;
        double stepSeconds = 300.0;      //!< 5-minute samples
        double baseCores = 200000.0;     //!< fleet-scale mean demand
        double diurnalAmplitude = 0.25;  //!< fraction of base
        double weeklyAmplitude = 0.08;   //!< weekday/weekend swing
        double trendPerDay = 0.004;      //!< relative growth per day
        double noiseSigma = 0.010;       //!< AR(1) innovation scale
        double noisePhi = 0.80;          //!< AR(1) persistence
        double spikeProbability = 0.001; //!< per-sample burst chance
        double spikeAmplitude = 0.05;    //!< burst height vs base
    };

    /** Generator with the default fleet-scale configuration. */
    AzureLikeGenerator();

    explicit AzureLikeGenerator(const Config &config);

    /** Generate a demand series; deterministic in the Rng stream. */
    TimeSeries generate(Rng &rng) const;

    const Config &config() const { return config_; }

  private:
    Config config_;
};

/**
 * CAISO-like hourly grid carbon intensity: carbon-heavy evenings and
 * nights with a deep midday solar dip, mild weekly variation, and
 * day-to-day weather noise.
 */
class GridCiGenerator
{
  public:
    struct Config
    {
        double days = 7.0;
        double stepSeconds = 3600.0;  //!< hourly samples
        double nightGPerKwh = 320.0;  //!< evening/night plateau
        double middayGPerKwh = 90.0;  //!< solar-dip floor
        double noiseSigma = 12.0;     //!< per-sample jitter
        double weatherSigma = 25.0;   //!< per-day offset (cloudy days)
    };

    /** Generator with the default CAISO-like configuration. */
    GridCiGenerator();

    explicit GridCiGenerator(const Config &config);

    /** Generate an intensity series in gCO2e/kWh. */
    TimeSeries generate(Rng &rng) const;

    const Config &config() const { return config_; }

  private:
    Config config_;
};

} // namespace fairco2::trace

#endif // FAIRCO2_TRACE_GENERATORS_HH
