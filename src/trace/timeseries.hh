/**
 * @file
 * Uniformly sampled time series used for demand curves and carbon
 * intensity signals.
 */

#ifndef FAIRCO2_TRACE_TIMESERIES_HH
#define FAIRCO2_TRACE_TIMESERIES_HH

#include <cstddef>
#include <string>
#include <vector>

namespace fairco2::trace
{

/**
 * A value per fixed-width time step starting at time zero.
 *
 * Demand series hold resource demand (e.g., allocated CPU cores);
 * intensity series hold gCO2e per resource-second.
 */
class TimeSeries
{
  public:
    TimeSeries() = default;

    /** @param step_seconds width of each sample; must be positive. */
    TimeSeries(std::vector<double> values, double step_seconds);

    std::size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }
    double stepSeconds() const { return stepSeconds_; }
    double durationSeconds() const;

    double operator[](std::size_t i) const { return values_[i]; }
    double &operator[](std::size_t i) { return values_[i]; }
    const std::vector<double> &values() const { return values_; }

    /** Value at an absolute time (step-wise constant; clamped). */
    double at(double seconds) const;

    /** Maximum over the half-open index range [begin, end). */
    double peak(std::size_t begin, std::size_t end) const;

    /** Maximum over the whole series; 0 when empty. */
    double peak() const;

    /** Sum of value * step over [begin, end): resource-seconds. */
    double integral(std::size_t begin, std::size_t end) const;

    /** Integral over the whole series. */
    double integral() const;

    /** Arithmetic mean of the samples; 0 when empty. */
    double mean() const;

    /** Copy of the index range [begin, end) as a new series. */
    TimeSeries slice(std::size_t begin, std::size_t end) const;

    /**
     * Downsample by averaging consecutive groups of @p factor
     * samples; a final partial group is averaged over its actual
     * length.
     */
    TimeSeries resampleMean(std::size_t factor) const;

    /** Element-wise sum; both series must match in shape. */
    TimeSeries operator+(const TimeSeries &other) const;

  private:
    std::vector<double> values_;
    double stepSeconds_ = 1.0;
};

} // namespace fairco2::trace

#endif // FAIRCO2_TRACE_TIMESERIES_HH
