#include "trace/generators.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace fairco2::trace
{

namespace
{

constexpr double kSecondsPerDay = 86400.0;
constexpr double kTwoPi = 2.0 * std::numbers::pi;

} // namespace

AzureLikeGenerator::AzureLikeGenerator()
    : AzureLikeGenerator(Config{})
{
}

AzureLikeGenerator::AzureLikeGenerator(const Config &config)
    : config_(config)
{
    assert(config.days > 0.0);
    assert(config.stepSeconds > 0.0);
    assert(config.baseCores > 0.0);
}

TimeSeries
AzureLikeGenerator::generate(Rng &rng) const
{
    const auto steps = static_cast<std::size_t>(
        config_.days * kSecondsPerDay / config_.stepSeconds);
    std::vector<double> demand(steps);

    double ar_state = 0.0;
    for (std::size_t i = 0; i < steps; ++i) {
        const double t_seconds =
            static_cast<double>(i) * config_.stepSeconds;
        const double day = t_seconds / kSecondsPerDay;

        // Diurnal cycle peaking in the afternoon (hour ~15) with a
        // secondary harmonic sharpening the business-hours plateau.
        const double day_phase = kTwoPi * (day - 15.0 / 24.0);
        const double diurnal = config_.diurnalAmplitude *
            (std::cos(day_phase) + 0.25 * std::cos(2.0 * day_phase));

        // Weekly cycle: weekdays high, weekend trough.
        const double week_phase = kTwoPi * (day - 2.5) / 7.0;
        const double weekly =
            config_.weeklyAmplitude * std::cos(week_phase);

        const double trend = config_.trendPerDay * day;

        ar_state = config_.noisePhi * ar_state +
            rng.normal(0.0, config_.noiseSigma);

        double level = 1.0 + diurnal + weekly + trend + ar_state;
        if (rng.bernoulli(config_.spikeProbability))
            level += rng.uniform(0.3, 1.0) * config_.spikeAmplitude;

        demand[i] = std::max(0.0, config_.baseCores * level);
    }
    return TimeSeries(std::move(demand), config_.stepSeconds);
}

GridCiGenerator::GridCiGenerator()
    : GridCiGenerator(Config{})
{
}

GridCiGenerator::GridCiGenerator(const Config &config)
    : config_(config)
{
    assert(config.days > 0.0);
    assert(config.stepSeconds > 0.0);
    assert(config.nightGPerKwh >= config.middayGPerKwh);
}

TimeSeries
GridCiGenerator::generate(Rng &rng) const
{
    const auto steps = static_cast<std::size_t>(
        config_.days * kSecondsPerDay / config_.stepSeconds);
    std::vector<double> intensity(steps);

    double weather_offset = rng.normal(0.0, config_.weatherSigma);
    int last_day = -1;
    for (std::size_t i = 0; i < steps; ++i) {
        const double t_seconds =
            static_cast<double>(i) * config_.stepSeconds;
        const double day_frac =
            std::fmod(t_seconds, kSecondsPerDay) / kSecondsPerDay;
        const int day = static_cast<int>(t_seconds / kSecondsPerDay);
        if (day != last_day) {
            weather_offset = rng.normal(0.0, config_.weatherSigma);
            last_day = day;
        }

        // Solar dip: a smooth bell between ~8:00 and ~18:00 centred
        // on 13:00, carved out of the night plateau.
        const double hours = day_frac * 24.0;
        const double dip_shape =
            std::exp(-0.5 * std::pow((hours - 13.0) / 3.0, 2.0));
        const double depth =
            config_.nightGPerKwh - config_.middayGPerKwh;

        double value = config_.nightGPerKwh - depth * dip_shape +
            weather_offset + rng.normal(0.0, config_.noiseSigma);
        intensity[i] = std::max(0.0, value);
    }
    return TimeSeries(std::move(intensity), config_.stepSeconds);
}

} // namespace fairco2::trace
