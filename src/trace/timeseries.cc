#include "trace/timeseries.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fairco2::trace
{

TimeSeries::TimeSeries(std::vector<double> values, double step_seconds)
    : values_(std::move(values)), stepSeconds_(step_seconds)
{
    assert(step_seconds > 0.0);
}

double
TimeSeries::durationSeconds() const
{
    return stepSeconds_ * static_cast<double>(values_.size());
}

double
TimeSeries::at(double seconds) const
{
    assert(!values_.empty());
    if (seconds <= 0.0)
        return values_.front();
    auto idx = static_cast<std::size_t>(seconds / stepSeconds_);
    if (idx >= values_.size())
        idx = values_.size() - 1;
    return values_[idx];
}

double
TimeSeries::peak(std::size_t begin, std::size_t end) const
{
    assert(begin <= end && end <= values_.size());
    double best = 0.0;
    for (std::size_t i = begin; i < end; ++i)
        best = std::max(best, values_[i]);
    return best;
}

double
TimeSeries::peak() const
{
    return peak(0, values_.size());
}

double
TimeSeries::integral(std::size_t begin, std::size_t end) const
{
    assert(begin <= end && end <= values_.size());
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i)
        sum += values_[i];
    return sum * stepSeconds_;
}

double
TimeSeries::integral() const
{
    return integral(0, values_.size());
}

double
TimeSeries::mean() const
{
    if (values_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values_)
        sum += v;
    return sum / static_cast<double>(values_.size());
}

TimeSeries
TimeSeries::slice(std::size_t begin, std::size_t end) const
{
    assert(begin <= end && end <= values_.size());
    return TimeSeries(
        std::vector<double>(values_.begin() + begin,
                            values_.begin() + end),
        stepSeconds_);
}

TimeSeries
TimeSeries::resampleMean(std::size_t factor) const
{
    assert(factor > 0);
    if (factor == 1)
        return *this;
    std::vector<double> coarse;
    coarse.reserve((values_.size() + factor - 1) / factor);
    for (std::size_t i = 0; i < values_.size(); i += factor) {
        const std::size_t end = std::min(i + factor, values_.size());
        double sum = 0.0;
        for (std::size_t j = i; j < end; ++j)
            sum += values_[j];
        coarse.push_back(sum / static_cast<double>(end - i));
    }
    return TimeSeries(std::move(coarse),
                      stepSeconds_ * static_cast<double>(factor));
}

TimeSeries
TimeSeries::operator+(const TimeSeries &other) const
{
    if (size() != other.size() || stepSeconds_ != other.stepSeconds_)
        throw std::invalid_argument("time series shape mismatch");
    std::vector<double> sum(values_);
    for (std::size_t i = 0; i < sum.size(); ++i)
        sum[i] += other.values_[i];
    return TimeSeries(std::move(sum), stepSeconds_);
}

} // namespace fairco2::trace
