/**
 * @file
 * Monte Carlo evaluation of interference-aware attribution fairness
 * (Figures 8 and 9): random sets of colocated workloads, the
 * random-order Shapley ground truth, and deviations of RUP and
 * Fair-CO2 attributions, including sparse-history sampling.
 */

#ifndef FAIRCO2_MONTECARLO_COLOCMC_HH
#define FAIRCO2_MONTECARLO_COLOCMC_HH

#include <cstddef>
#include <vector>

#include "carbon/server.hh"
#include "common/rng.hh"
#include "core/colocgame.hh"
#include "resilience/checkpoint.hh"
#include "workload/interference.hh"
#include "workload/suite.hh"

namespace fairco2::montecarlo
{

/** Knobs matching the paper's colocation simulation (Section 6.3). */
struct ColocMcConfig
{
    std::size_t trials = 1000;
    std::size_t minWorkloads = 4;
    std::size_t maxWorkloads = 100;
    double minGridCi = 0.0;     //!< gCO2e/kWh
    double maxGridCi = 1000.0;
    std::size_t minSamples = 1; //!< historical partners observed
    std::size_t maxSamples = 15;
    bool collectRecords = false;//!< keep per-workload records (Fig 9)
};

/** Scenario-level outcome of one trial. */
struct ColocTrialResult
{
    std::size_t numWorkloads = 0;
    double gridCi = 0.0;
    double samplingRate = 0.0; //!< observed fraction of the 15 partners
    double avgRup = 0.0;
    double worstRup = 0.0;
    double avgFairCo2 = 0.0;
    double worstFairCo2 = 0.0;
};

/** Per-workload record for the equity analysis (Figure 9). */
struct ColocWorkloadRecord
{
    std::size_t suiteId = 0;
    /** Suite id of the realized partner; npos when isolated. */
    std::size_t partnerSuiteId = static_cast<std::size_t>(-1);
    double devRup = 0.0;
    double devFairCo2 = 0.0;
};

/** FNV-1a hash over every config field; checkpoint identity. */
std::uint64_t colocConfigHash(const ColocMcConfig &config);

/** Output of a Monte Carlo run. */
struct ColocMcOutput
{
    std::vector<ColocTrialResult> trials;
    std::vector<ColocWorkloadRecord> records; //!< if requested
};

/**
 * Runs the colocation Monte Carlo. Uses a per-trial cache of the
 * 16x16 pairwise node costs so the O(N^2) ground truth stays cheap
 * at N = 100.
 */
class ColocationMonteCarlo
{
  public:
    ColocationMonteCarlo();

    /**
     * Run @p config.trials random scenarios on the common parallel
     * layer. Advances @p rng once to derive a base stream; trial t
     * forks base.fork(t), so the output — including the record
     * stream, which is concatenated in trial order — is bit-identical
     * for any thread count.
     */
    ColocMcOutput run(const ColocMcConfig &config, Rng &rng) const;

    /**
     * Checkpointed variant: chunk snapshots to/from the given paths,
     * byte-identical to the plain overload after resume. Requires
     * config.collectRecords == false (per-workload records are
     * variable-size and not checkpointable); throws
     * resilience::CheckpointError otherwise, or on an unusable
     * resume file.
     */
    ColocMcOutput run(const ColocMcConfig &config, Rng &rng,
                      const resilience::CheckpointOptions &checkpoint,
                      resilience::CheckpointRunResult *run_result =
                          nullptr) const;

    /** Run a single scenario at the given knob values. */
    ColocTrialResult
    runTrial(std::size_t num_workloads, double grid_ci,
             std::size_t history_samples, Rng &rng,
             std::vector<ColocWorkloadRecord> *records) const;

    const workload::Suite &suite() const { return suite_; }

  private:
    workload::Suite suite_;
    workload::InterferenceModel interference_;
    carbon::ServerCarbonModel server_;
};

} // namespace fairco2::montecarlo

#endif // FAIRCO2_MONTECARLO_COLOCMC_HH
