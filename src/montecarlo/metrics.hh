/**
 * @file
 * Fairness metrics: the paper measures a method's fairness as its
 * percentage deviation from the ground-truth Shapley attribution,
 * reporting the scenario average and the single worst workload.
 */

#ifndef FAIRCO2_MONTECARLO_METRICS_HH
#define FAIRCO2_MONTECARLO_METRICS_HH

#include <vector>

namespace fairco2::montecarlo
{

/**
 * Per-workload |a_i - phi_i| / phi_i * 100. Entries whose ground
 * truth is zero are reported as zero deviation when the attribution
 * is also zero, and skipped (dropped) otherwise.
 */
std::vector<double>
percentDeviations(const std::vector<double> &attribution,
                  const std::vector<double> &ground_truth);

/** Mean of the deviations (0 for an empty vector). */
double averageDeviation(const std::vector<double> &deviations);

/** Maximum of the deviations (0 for an empty vector). */
double worstDeviation(const std::vector<double> &deviations);

} // namespace fairco2::montecarlo

#endif // FAIRCO2_MONTECARLO_METRICS_HH
