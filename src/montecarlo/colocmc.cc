#include "montecarlo/colocmc.hh"

#include <cassert>

#include "common/obs.hh"
#include "common/parallel.hh"
#include "montecarlo/metrics.hh"
#include "resilience/signals.hh"

namespace fairco2::montecarlo
{

ColocationMonteCarlo::ColocationMonteCarlo()
    : server_(carbon::ServerConfig::paperServer())
{
}

ColocTrialResult
ColocationMonteCarlo::runTrial(
    std::size_t num_workloads, double grid_ci,
    std::size_t history_samples, Rng &rng,
    std::vector<ColocWorkloadRecord> *records) const
{
    assert(num_workloads >= 2);
    assert(history_samples >= 1 &&
           history_samples <= suite_.size() - 1);

    const core::ColocationCostModel cost(server_, interference_,
                                         grid_ci);

    // Random multiset of suite members.
    std::vector<std::size_t> members(num_workloads);
    for (auto &m : members)
        m = rng.index(suite_.size());

    const auto scenario =
        core::ColocationScenario::random(members, rng);

    const auto ground_truth =
        core::groundTruthColocation(members, suite_, cost);
    const auto rup =
        core::rupColocationAttribution(scenario, suite_, cost);

    // Sparse history: each member's alpha/beta profile conditions on
    // history_samples of its 15 possible partner types.
    std::vector<core::InterferenceProfile> profiles(num_workloads);
    for (std::size_t i = 0; i < num_workloads; ++i) {
        std::vector<std::size_t> pool;
        pool.reserve(suite_.size() - 1);
        for (std::size_t s = 0; s < suite_.size(); ++s) {
            if (s != members[i])
                pool.push_back(s);
        }
        const auto chosen =
            rng.sampleWithoutReplacement(pool.size(), history_samples);
        std::vector<std::size_t> partners;
        partners.reserve(history_samples);
        for (std::size_t idx : chosen)
            partners.push_back(pool[idx]);
        profiles[i] = core::estimateProfile(members[i], partners,
                                            suite_, interference_);
    }
    const auto fair = core::fairCo2ColocationAttribution(
        scenario, suite_, cost, profiles);

    const auto dev_rup = percentDeviations(rup, ground_truth);
    const auto dev_fair = percentDeviations(fair, ground_truth);
    // Ground truth is strictly positive here (every workload burns
    // some carbon), so no entries were skipped and indices align.
    assert(dev_rup.size() == num_workloads);
    assert(dev_fair.size() == num_workloads);

    ColocTrialResult r;
    r.numWorkloads = num_workloads;
    r.gridCi = grid_ci;
    r.samplingRate = static_cast<double>(history_samples) /
        static_cast<double>(suite_.size() - 1);
    r.avgRup = averageDeviation(dev_rup);
    r.worstRup = worstDeviation(dev_rup);
    r.avgFairCo2 = averageDeviation(dev_fair);
    r.worstFairCo2 = worstDeviation(dev_fair);

    if (records) {
        // Realized partner of each member (npos when isolated).
        std::vector<std::size_t> partner_of(
            num_workloads, static_cast<std::size_t>(-1));
        for (const auto &[a, b] : scenario.pairs) {
            partner_of[a] = members[b];
            partner_of[b] = members[a];
        }
        for (std::size_t i = 0; i < num_workloads; ++i) {
            ColocWorkloadRecord rec;
            rec.suiteId = members[i];
            rec.partnerSuiteId = partner_of[i];
            rec.devRup = dev_rup[i];
            rec.devFairCo2 = dev_fair[i];
            records->push_back(rec);
        }
    }
    return r;
}

ColocMcOutput
ColocationMonteCarlo::run(const ColocMcConfig &config, Rng &rng) const
{
    assert(config.minWorkloads >= 2);
    assert(config.maxWorkloads >= config.minWorkloads);
    assert(config.minSamples >= 1);
    assert(config.maxSamples <= suite_.size() - 1);

    // Trial t draws its knobs and all scenario randomness from
    // base.fork(t); per-trial record buffers are concatenated in
    // trial order afterwards, so both the trial series and the
    // record stream are bit-identical for any thread count.
    const Rng base = rng.split();
    FAIRCO2_SPAN("mc.coloc.run");
    ColocMcOutput out;
    out.trials.resize(config.trials);
    std::vector<std::vector<ColocWorkloadRecord>> trial_records(
        config.collectRecords ? config.trials : 0);
    parallel::parallelFor(
        0, config.trials, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t t = lo; t < hi; ++t) {
                // Uncheckpointed trials have nothing to flush on
                // shutdown, so just stop drawing new work.
                if (resilience::shutdownRequested())
                    return;
                FAIRCO2_TIME_NS("mc.coloc.trial_ns");
                Rng trial_rng = base.fork(t);
                const auto n =
                    static_cast<std::size_t>(trial_rng.uniformInt(
                        static_cast<std::int64_t>(
                            config.minWorkloads),
                        static_cast<std::int64_t>(
                            config.maxWorkloads)));
                const double ci = trial_rng.uniform(
                    config.minGridCi, config.maxGridCi);
                const auto samples =
                    static_cast<std::size_t>(trial_rng.uniformInt(
                        static_cast<std::int64_t>(config.minSamples),
                        static_cast<std::int64_t>(
                            config.maxSamples)));
                out.trials[t] = runTrial(
                    n, ci, samples, trial_rng,
                    config.collectRecords ? &trial_records[t]
                                          : nullptr);
                FAIRCO2_COUNT("mc.coloc.trials", 1);
                FAIRCO2_OBSERVE("mc.coloc.workloads", n);
                FAIRCO2_OBSERVE("mc.coloc.avg_fair_dev_pct",
                                out.trials[t].avgFairCo2);
            }
        });
    for (auto &records : trial_records) {
        out.records.insert(out.records.end(), records.begin(),
                           records.end());
    }
    return out;
}

std::uint64_t
colocConfigHash(const ColocMcConfig &config)
{
    using resilience::hashField;
    std::uint64_t h = resilience::kFnvOffset;
    h = hashField(h, static_cast<std::uint64_t>(config.trials));
    h = hashField(h, static_cast<std::uint64_t>(config.minWorkloads));
    h = hashField(h, static_cast<std::uint64_t>(config.maxWorkloads));
    h = hashField(h, config.minGridCi);
    h = hashField(h, config.maxGridCi);
    h = hashField(h, static_cast<std::uint64_t>(config.minSamples));
    h = hashField(h, static_cast<std::uint64_t>(config.maxSamples));
    h = hashField(h,
                  static_cast<std::uint64_t>(config.collectRecords));
    return h;
}

ColocMcOutput
ColocationMonteCarlo::run(
    const ColocMcConfig &config, Rng &rng,
    const resilience::CheckpointOptions &checkpoint,
    resilience::CheckpointRunResult *run_result) const
{
    assert(config.minWorkloads >= 2);
    assert(config.maxWorkloads >= config.minWorkloads);
    assert(config.minSamples >= 1);
    assert(config.maxSamples <= suite_.size() - 1);
    if (config.collectRecords)
        throw resilience::CheckpointError(
            "checkpointing is not supported with per-workload "
            "record collection");

    // Same per-trial purity contract as the plain overload, with
    // chunk commits through the checkpoint machinery.
    const Rng base = rng.split();
    FAIRCO2_SPAN("mc.coloc.run");
    ColocMcOutput out;
    const auto outcome =
        resilience::runCheckpointedTrials<ColocTrialResult>(
            checkpoint, base, colocConfigHash(config), config.trials,
            out.trials, [&](std::uint64_t t) {
                FAIRCO2_TIME_NS("mc.coloc.trial_ns");
                Rng trial_rng = base.fork(t);
                const auto n =
                    static_cast<std::size_t>(trial_rng.uniformInt(
                        static_cast<std::int64_t>(
                            config.minWorkloads),
                        static_cast<std::int64_t>(
                            config.maxWorkloads)));
                const double ci = trial_rng.uniform(
                    config.minGridCi, config.maxGridCi);
                const auto samples =
                    static_cast<std::size_t>(trial_rng.uniformInt(
                        static_cast<std::int64_t>(config.minSamples),
                        static_cast<std::int64_t>(
                            config.maxSamples)));
                const auto r =
                    runTrial(n, ci, samples, trial_rng, nullptr);
                FAIRCO2_COUNT("mc.coloc.trials", 1);
                FAIRCO2_OBSERVE("mc.coloc.workloads", n);
                FAIRCO2_OBSERVE("mc.coloc.avg_fair_dev_pct",
                                r.avgFairCo2);
                return r;
            });
    if (run_result)
        *run_result = outcome;
    return out;
}

} // namespace fairco2::montecarlo
