#include "montecarlo/demandmc.hh"

#include <algorithm>
#include <cassert>

#include "common/obs.hh"
#include "common/parallel.hh"
#include "montecarlo/metrics.hh"
#include "resilience/signals.hh"

namespace fairco2::montecarlo
{

namespace
{

/** The paper's allocation set: 8, 16, 32, 48, 64, 80, or 96 cores. */
constexpr double kCoreChoices[] = {8, 16, 32, 48, 64, 80, 96};

double
randomCores(Rng &rng)
{
    return kCoreChoices[rng.index(std::size(kCoreChoices))];
}

} // namespace

core::Schedule
randomSchedule(const DemandMcConfig &config, Rng &rng)
{
    assert(config.minTimeSlices >= 1);
    assert(config.maxTimeSlices >= config.minTimeSlices);
    assert(config.maxConcurrent >= 1);
    assert(config.maxWorkloads >= config.maxTimeSlices);

    const std::size_t slices = static_cast<std::size_t>(
        rng.uniformInt(static_cast<std::int64_t>(config.minTimeSlices),
                       static_cast<std::int64_t>(
                           config.maxTimeSlices)));

    std::vector<core::ScheduledWorkload> workloads;
    std::vector<std::size_t> concurrency(slices, 0);

    auto fits = [&](std::size_t start, std::size_t duration) {
        for (std::size_t t = start; t < start + duration; ++t) {
            if (concurrency[t] >= config.maxConcurrent)
                return false;
        }
        return true;
    };

    auto place = [&](std::size_t start, std::size_t duration) {
        core::ScheduledWorkload w;
        w.cores = randomCores(rng);
        w.startSlice = start;
        w.durationSlices = duration;
        workloads.push_back(w);
        for (std::size_t t = start; t < start + duration; ++t)
            ++concurrency[t];
    };

    auto random_duration = [&](std::size_t start) {
        const std::size_t longest =
            std::min(config.maxDuration, slices - start);
        const std::size_t shortest =
            std::min(config.minDuration, longest);
        return static_cast<std::size_t>(rng.uniformInt(
            static_cast<std::int64_t>(shortest),
            static_cast<std::int64_t>(longest)));
    };

    // Phase 1: ensure every slice runs at least one workload, so the
    // demand curve has no idle gaps (the generator in the artifact
    // keeps all slices occupied as well).
    for (std::size_t t = 0; t < slices;) {
        if (concurrency[t] > 0) {
            ++t;
            continue;
        }
        const std::size_t duration = random_duration(t);
        place(t, duration);
        t += duration;
    }

    // Phase 2: fill up to a random target size with rejection on the
    // concurrency cap.
    const std::size_t target = static_cast<std::size_t>(rng.uniformInt(
        static_cast<std::int64_t>(workloads.size()),
        static_cast<std::int64_t>(config.maxWorkloads)));
    std::size_t attempts = 0;
    while (workloads.size() < target && attempts < 8 * target) {
        ++attempts;
        const std::size_t start = rng.index(slices);
        const std::size_t duration = random_duration(start);
        if (fits(start, duration))
            place(start, duration);
    }

    return core::Schedule(std::move(workloads), slices,
                          config.sliceSeconds);
}

DemandTrialResult
runDemandTrial(const core::Schedule &schedule, double total_grams)
{
    const auto attributions =
        core::attributeSchedule(schedule, total_grams);

    DemandTrialResult r;
    r.numWorkloads = schedule.numWorkloads();
    r.numSlices = schedule.numSlices();

    const auto dev_fair = percentDeviations(
        attributions.fairCo2, attributions.groundTruth);
    const auto dev_dp = percentDeviations(
        attributions.demandProportional, attributions.groundTruth);
    const auto dev_rup = percentDeviations(
        attributions.rup, attributions.groundTruth);

    r.avgFairCo2 = averageDeviation(dev_fair);
    r.avgDemandProportional = averageDeviation(dev_dp);
    r.avgRup = averageDeviation(dev_rup);
    r.worstFairCo2 = worstDeviation(dev_fair);
    r.worstDemandProportional = worstDeviation(dev_dp);
    r.worstRup = worstDeviation(dev_rup);
    return r;
}

std::vector<DemandTrialResult>
runDemandMonteCarlo(const DemandMcConfig &config, Rng &rng)
{
    // Trial t draws every random quantity from base.fork(t), a pure
    // function of the seed and the trial index, and writes only
    // results[t] — so the sweep is bit-identical for any thread
    // count. Trials run at chunk size 1: each one contains an exact
    // Shapley solve, which dwarfs the dispatch cost and varies a lot
    // with the drawn workload count.
    const Rng base = rng.split();
    FAIRCO2_SPAN("mc.demand.run");
    std::vector<DemandTrialResult> results(config.trials);
    parallel::parallelFor(
        0, config.trials, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t t = lo; t < hi; ++t) {
                // Uncheckpointed trials have nothing to flush on
                // shutdown, so just stop drawing new work.
                if (resilience::shutdownRequested())
                    return;
                FAIRCO2_TIME_NS("mc.demand.trial_ns");
                Rng trial_rng = base.fork(t);
                const auto schedule =
                    randomSchedule(config, trial_rng);
                results[t] =
                    runDemandTrial(schedule, config.totalGrams);
                FAIRCO2_COUNT("mc.demand.trials", 1);
                FAIRCO2_OBSERVE("mc.demand.workloads",
                                results[t].numWorkloads);
                FAIRCO2_OBSERVE("mc.demand.avg_fair_dev_pct",
                                results[t].avgFairCo2);
            }
        });
    return results;
}

std::uint64_t
demandConfigHash(const DemandMcConfig &config)
{
    using resilience::hashField;
    std::uint64_t h = resilience::kFnvOffset;
    h = hashField(h, static_cast<std::uint64_t>(config.trials));
    h = hashField(h, static_cast<std::uint64_t>(config.maxWorkloads));
    h = hashField(h,
                  static_cast<std::uint64_t>(config.minTimeSlices));
    h = hashField(h,
                  static_cast<std::uint64_t>(config.maxTimeSlices));
    h = hashField(h,
                  static_cast<std::uint64_t>(config.maxConcurrent));
    h = hashField(h, static_cast<std::uint64_t>(config.minDuration));
    h = hashField(h, static_cast<std::uint64_t>(config.maxDuration));
    h = hashField(h, config.sliceSeconds);
    h = hashField(h, config.totalGrams);
    return h;
}

std::vector<DemandTrialResult>
runDemandMonteCarlo(const DemandMcConfig &config, Rng &rng,
                    const resilience::CheckpointOptions &checkpoint,
                    resilience::CheckpointRunResult *run_result)
{
    // Same per-trial purity contract as the plain overload above, so
    // the two produce byte-identical results; this one additionally
    // commits completed chunks through the checkpoint machinery.
    const Rng base = rng.split();
    FAIRCO2_SPAN("mc.demand.run");
    std::vector<DemandTrialResult> results;
    const auto outcome =
        resilience::runCheckpointedTrials<DemandTrialResult>(
            checkpoint, base, demandConfigHash(config), config.trials,
            results, [&](std::uint64_t t) {
                FAIRCO2_TIME_NS("mc.demand.trial_ns");
                Rng trial_rng = base.fork(t);
                const auto schedule =
                    randomSchedule(config, trial_rng);
                const auto r =
                    runDemandTrial(schedule, config.totalGrams);
                FAIRCO2_COUNT("mc.demand.trials", 1);
                FAIRCO2_OBSERVE("mc.demand.workloads",
                                r.numWorkloads);
                FAIRCO2_OBSERVE("mc.demand.avg_fair_dev_pct",
                                r.avgFairCo2);
                return r;
            });
    if (run_result)
        *run_result = outcome;
    return results;
}

} // namespace fairco2::montecarlo
