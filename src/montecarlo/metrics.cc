#include "montecarlo/metrics.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fairco2::montecarlo
{

std::vector<double>
percentDeviations(const std::vector<double> &attribution,
                  const std::vector<double> &ground_truth)
{
    assert(attribution.size() == ground_truth.size());
    std::vector<double> deviations;
    deviations.reserve(attribution.size());
    for (std::size_t i = 0; i < attribution.size(); ++i) {
        if (ground_truth[i] == 0.0) {
            if (attribution[i] == 0.0)
                deviations.push_back(0.0);
            continue;
        }
        deviations.push_back(
            std::abs(attribution[i] - ground_truth[i]) /
            std::abs(ground_truth[i]) * 100.0);
    }
    return deviations;
}

double
averageDeviation(const std::vector<double> &deviations)
{
    if (deviations.empty())
        return 0.0;
    double sum = 0.0;
    for (double d : deviations)
        sum += d;
    return sum / static_cast<double>(deviations.size());
}

double
worstDeviation(const std::vector<double> &deviations)
{
    double worst = 0.0;
    for (double d : deviations)
        worst = std::max(worst, d);
    return worst;
}

} // namespace fairco2::montecarlo
