/**
 * @file
 * Monte Carlo evaluation of demand-aware attribution fairness
 * (Figure 7): random workload schedules, exact Shapley ground truth,
 * and per-method deviation statistics.
 */

#ifndef FAIRCO2_MONTECARLO_DEMANDMC_HH
#define FAIRCO2_MONTECARLO_DEMANDMC_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "core/demandgame.hh"
#include "resilience/checkpoint.hh"

namespace fairco2::montecarlo
{

/** Knobs matching the paper's generator (Section 6.3). */
struct DemandMcConfig
{
    std::size_t trials = 1000;
    std::size_t maxWorkloads = 22;   //!< exact-Shapley tractability cap
    std::size_t minTimeSlices = 4;
    std::size_t maxTimeSlices = 9;
    std::size_t maxConcurrent = 5;   //!< workloads running per slice
    std::size_t minDuration = 1;     //!< slices a workload runs for
    std::size_t maxDuration = 3;
    double sliceSeconds = 3600.0;
    double totalGrams = 1000.0;      //!< deviations are scale-free
};

/** Average/worst deviation of each method in one scenario. */
struct DemandTrialResult
{
    std::size_t numWorkloads = 0;
    std::size_t numSlices = 0;
    double avgFairCo2 = 0.0;
    double avgDemandProportional = 0.0;
    double avgRup = 0.0;
    double worstFairCo2 = 0.0;
    double worstDemandProportional = 0.0;
    double worstRup = 0.0;
};

/**
 * Draw a random schedule: 4-9 slices, every slice occupied by 1-5
 * workloads, workloads of 8-96 cores (multiples of 8 per the paper's
 * allocation set) running 1-3 consecutive slices, at most
 * maxWorkloads total.
 */
core::Schedule randomSchedule(const DemandMcConfig &config, Rng &rng);

/** Attribute one schedule with every method and score deviations. */
DemandTrialResult runDemandTrial(const core::Schedule &schedule,
                                 double total_grams);

/**
 * Run the full Monte Carlo sweep on the common parallel layer.
 * Advances @p rng once to derive a base stream; trial t then forks
 * base.fork(t), so results are bit-identical for any thread count.
 */
std::vector<DemandTrialResult>
runDemandMonteCarlo(const DemandMcConfig &config, Rng &rng);

/** FNV-1a hash over every config field; checkpoint identity. */
std::uint64_t demandConfigHash(const DemandMcConfig &config);

/**
 * Checkpointed variant: snapshots completed trial chunks to
 * @p checkpoint.checkpointPath and/or restores them from
 * @p checkpoint.resumePath. Because trial t is a pure function of the
 * forked base stream, a killed-and-resumed run returns byte-identical
 * results to an uninterrupted one, for any `--threads N`. Throws
 * resilience::CheckpointError on an unusable resume file.
 */
std::vector<DemandTrialResult>
runDemandMonteCarlo(const DemandMcConfig &config, Rng &rng,
                    const resilience::CheckpointOptions &checkpoint,
                    resilience::CheckpointRunResult *run_result =
                        nullptr);

} // namespace fairco2::montecarlo

#endif // FAIRCO2_MONTECARLO_DEMANDMC_HH
