/**
 * @file
 * Simulated clock for the pipeline supervisor.
 *
 * Deadlines, backoff delays, stalls, and breaker cooldowns are all
 * accounted in *virtual* milliseconds on a SimClock rather than wall
 * time: stage bodies charge a deterministic cost derived from their
 * input sizes, and waits advance the clock instantly. This keeps the
 * whole supervision schedule — which attempt timed out, how long each
 * backoff was, when a breaker re-closed — a pure function of the
 * configuration and seed, so the chaos-soak harness can replay
 * hundreds of failure scenarios bit-identically at any `--threads N`
 * and a health report never depends on machine load.
 */

#ifndef FAIRCO2_PIPELINE_CLOCK_HH
#define FAIRCO2_PIPELINE_CLOCK_HH

#include <cstdint>

namespace fairco2::pipeline
{

/** Virtual millisecond clock; starts at zero, only moves forward. */
class SimClock
{
  public:
    /** Current virtual time in milliseconds. */
    std::uint64_t nowMs() const { return nowMs_; }

    /** Advance the clock by @p ms virtual milliseconds. */
    void advance(std::uint64_t ms) { nowMs_ += ms; }

  private:
    std::uint64_t nowMs_ = 0;
};

} // namespace fairco2::pipeline

#endif // FAIRCO2_PIPELINE_CLOCK_HH
