/**
 * @file
 * Deterministic exponential backoff with seeded jitter.
 *
 * Retry delay for attempt a (1-based) of stage s:
 *
 *     exp(a)   = min(capMs, baseMs * multiplier^(a-1))
 *     delay(a) = round(exp(a) * (1 + jitterFraction * (u - 0.5)))
 *
 * where u in [0, 1) is drawn from `base.fork(stream(s, a))` — a pure
 * function of the run seed and the (stage, attempt) pair, exactly the
 * counter-RNG discipline the Monte Carlo harnesses use. The schedule
 * is therefore bit-identical for any `--threads N` and independent of
 * when the retry happens to be issued; the property tests assert
 * byte-identical schedules across thread counts.
 */

#ifndef FAIRCO2_PIPELINE_BACKOFF_HH
#define FAIRCO2_PIPELINE_BACKOFF_HH

#include <cstdint>

#include "common/rng.hh"

namespace fairco2::pipeline
{

/** Exponential backoff shape; defaults give 100, 200, 400, ... ms. */
struct BackoffPolicy
{
    std::uint64_t baseMs = 100;  //!< first retry delay before jitter
    double multiplier = 2.0;     //!< growth per retry
    std::uint64_t capMs = 5000;  //!< exponential ceiling
    double jitterFraction = 0.5; //!< +/- half this fraction of exp
};

/**
 * The Rng stream carrying the jitter draw for (stage, attempt). The
 * 0xB0 tag byte keeps backoff streams disjoint from trial streams
 * (low indices) and the checkpoint fingerprint (bit 63 only).
 */
std::uint64_t backoffStream(std::uint32_t stage, std::uint32_t attempt);

/**
 * Jittered delay in ms before retrying @p attempt (1-based count of
 * attempts already made) of stage @p stage. Pure in (policy, base
 * seed, stage, attempt); always at least 1 ms.
 */
std::uint64_t backoffDelayMs(const BackoffPolicy &policy,
                             const Rng &base, std::uint32_t stage,
                             std::uint32_t attempt);

} // namespace fairco2::pipeline

#endif // FAIRCO2_PIPELINE_BACKOFF_HH
