#include "pipeline/supervisor.hh"

#include "common/errors.hh"
#include "common/obs.hh"
#include "resilience/signals.hh"

namespace fairco2::pipeline
{

namespace
{

using resilience::FaultSite;

/** Fault-plan index for attempt @p attempt of stage @p stage. */
std::uint64_t
attemptKey(std::uint32_t stage, std::uint32_t attempt)
{
    return (static_cast<std::uint64_t>(stage) << 16) | attempt;
}

void
appendNote(StageHealth &stage, const std::string &note)
{
    if (note.empty())
        return;
    if (!stage.note.empty())
        stage.note += "; ";
    stage.note += note;
}

} // namespace

Supervisor::Supervisor(const SupervisorConfig &config)
    : config_(config), backoffBase_(config.seed)
{
    health_.seed = config.seed;
    health_.faultPlan = config.faultPlan.spec();
}

void
Supervisor::skipStage(const std::string &name, const std::string &note)
{
    StageHealth stage;
    stage.name = name;
    stage.status = StageStatus::Skipped;
    stage.note = note;
    stage.deadlineMs = config_.stageDeadlineMs;
    stage.startMs = clock_.nowMs();
    stage.endMs = clock_.nowMs();
    health_.stages.push_back(std::move(stage));
}

bool
Supervisor::runStage(const std::string &name, std::uint32_t max_level,
                     const StageBody &body)
{
    FAIRCO2_SPAN("pipeline.stage");
    const auto stage_index =
        static_cast<std::uint32_t>(health_.stages.size());
    health_.stages.emplace_back();
    StageHealth &stage = health_.stages.back();
    stage.name = name;
    stage.deadlineMs = config_.stageDeadlineMs;
    stage.startMs = clock_.nowMs();

    const resilience::FaultPlan &plan = config_.faultPlan;
    CircuitBreaker breaker(config_.breaker);

    std::uint32_t level = 0;
    std::uint32_t attempt = 0;
    std::uint32_t attempts_at_level = 0;
    const std::uint32_t attempts_per_level = 1 + config_.maxRetries;

    const auto elapsed = [&] { return clock_.nowMs() - stage.startMs; };
    const auto remaining = [&]() -> std::uint64_t {
        const std::uint64_t e = elapsed();
        return e >= stage.deadlineMs ? 0 : stage.deadlineMs - e;
    };
    const auto descend = [&](const char *why) {
        appendNote(stage, std::string(why) + " -> level " +
                              std::to_string(level + 1));
        ++level;
        attempts_at_level = 0;
        FAIRCO2_COUNT("pipeline.descend", 1);
    };
    const auto finish = [&](StageStatus status) {
        stage.status = status;
        stage.degradationLevel = level;
        stage.endMs = clock_.nowMs();
        stage.breakerTrips = breaker.trips();
    };

    while (true) {
        if (resilience::shutdownRequested()) {
            appendNote(stage, "interrupted");
            health_.interrupted = true;
            finish(StageStatus::Failed);
            return false;
        }

        const bool floor = level >= max_level;
        ++attempt;
        ++attempts_at_level;
        ++stage.attempts;
        FAIRCO2_COUNT("pipeline.attempts", 1);
        const std::uint64_t key = attemptKey(stage_index, attempt);

        // Injected stall: charge a deterministic slice of the
        // deadline before the attempt does anything.
        if (plan.fires(FaultSite::StageStall, key)) {
            const double frac =
                plan.draw(FaultSite::StageStallMs, key, 0.1, 0.6);
            const auto stall = static_cast<std::uint64_t>(
                frac * static_cast<double>(stage.deadlineMs));
            clock_.advance(stall);
            ++stage.injectedStalls;
            plan.noteInjected();
            FAIRCO2_COUNT("pipeline.fault.stall", 1);
        }

        bool crashed = false;
        bool timed_out = false;
        std::string crash_note;

        const bool inject_crash =
            plan.fires(FaultSite::StageCrash, key);
        const bool inject_timeout = !inject_crash &&
            plan.fires(FaultSite::StageTimeout, key);
        if (inject_crash) {
            ++stage.injectedCrashes;
            ++stage.crashes;
            plan.noteInjected();
            FAIRCO2_COUNT("pipeline.fault.crash", 1);
            crashed = true;
            crash_note = "injected crash";
        } else {
            if (inject_timeout) {
                // Burn whatever budget is left. On the floor rung
                // the deadline is not enforced, so the attempt still
                // runs — that is the "always publish" guarantee.
                clock_.advance(remaining());
                ++stage.injectedTimeouts;
                plan.noteInjected();
                FAIRCO2_COUNT("pipeline.fault.timeout", 1);
                if (!floor) {
                    ++stage.timeouts;
                    timed_out = true;
                }
            }
            if (!timed_out) {
                try {
                    StageAttempt info;
                    info.level = level;
                    info.maxLevel = max_level;
                    info.attempt = attempt;
                    info.attemptAtLevel = attempts_at_level;
                    info.deadlineMs = stage.deadlineMs;
                    info.remainingMs = remaining();
                    const StageBodyResult r = body(info);
                    clock_.advance(r.costMs);
                    if (!floor && elapsed() > stage.deadlineMs) {
                        ++stage.timeouts;
                        timed_out = true;
                    } else if (!r.ok) {
                        ++stage.crashes;
                        crashed = true;
                        crash_note = r.note;
                    } else {
                        appendNote(stage, r.note);
                        breaker.recordSuccess();
                        finish(level > 0 || r.degraded
                                   ? StageStatus::Degraded
                                   : StageStatus::Ok);
                        return true;
                    }
                } catch (const FatalDataError &error) {
                    // Bad input is not a transient fault: no retry,
                    // no ladder — surface it for the exit-2 path.
                    appendNote(stage, error.what());
                    finish(StageStatus::Failed);
                    throw;
                } catch (const std::exception &error) {
                    ++stage.crashes;
                    crashed = true;
                    crash_note = error.what();
                }
            }
        }

        if (timed_out) {
            // Retrying identical work would blow the same budget;
            // the cheaper rung below is the timeout response.
            descend("timeout");
            continue;
        }

        // Crash path.
        (void)crashed;
        breaker.recordFailure(clock_.nowMs());
        stage.breakerTrips = breaker.trips();
        if (attempts_at_level >= attempts_per_level) {
            if (!floor) {
                descend("retries exhausted");
                continue;
            }
            appendNote(stage, crash_note);
            appendNote(stage, "retries exhausted on floor rung");
            finish(StageStatus::Failed);
            FAIRCO2_COUNT("pipeline.stage_failed", 1);
            return false;
        }
        if (breaker.open()) {
            if (!floor) {
                descend("breaker open");
                continue;
            }
            // Floor rung: wait out the cooldown (deadline-exempt)
            // and probe half-open.
            const std::uint64_t now = clock_.nowMs();
            if (breaker.retryAtMs() > now)
                clock_.advance(breaker.retryAtMs() - now);
            continue;
        }
        const std::uint64_t delay = backoffDelayMs(
            config_.backoff, backoffBase_, stage_index, attempt);
        if (!floor && delay > remaining()) {
            descend("no budget for backoff");
            continue;
        }
        clock_.advance(delay);
        stage.backoffMs.push_back(delay);
        ++stage.retries;
        FAIRCO2_COUNT("pipeline.retries", 1);
    }
}

void
Supervisor::finalize(bool produced)
{
    health_.produced = produced;
    if (resilience::shutdownRequested())
        health_.interrupted = true;
    health_.degraded = false;
    bool any_failed = false;
    for (const auto &stage : health_.stages) {
        if (stage.status == StageStatus::Degraded)
            health_.degraded = true;
        if (stage.status == StageStatus::Failed)
            any_failed = true;
    }
    health_.ok = produced && !any_failed && !health_.degraded &&
        !health_.interrupted;
    if (health_.interrupted)
        health_.exitCode = resilience::kInterruptExitCode;
    else
        health_.exitCode = produced ? 0 : 1;
    FAIRCO2_COUNT("pipeline.runs", 1);
    if (health_.degraded)
        FAIRCO2_COUNT("pipeline.degraded_runs", 1);
}

} // namespace fairco2::pipeline
