/**
 * @file
 * Per-stage circuit breaker.
 *
 * A stage that keeps crashing should stop being hammered at full
 * fidelity: after `failureThreshold` *consecutive* failures the
 * breaker trips open and rejects attempts until `cooldownMs` of
 * simulated time has passed, at which point one half-open probe is
 * allowed — success re-closes the breaker, another failure trips it
 * again. The supervisor responds to an open breaker by descending the
 * degradation ladder when a cheaper rung exists, and by waiting out
 * the cooldown only on the final rung (which is exempt from the
 * stage deadline). All timing is SimClock virtual milliseconds, so
 * trip/close points are deterministic.
 */

#ifndef FAIRCO2_PIPELINE_BREAKER_HH
#define FAIRCO2_PIPELINE_BREAKER_HH

#include <cstdint>

namespace fairco2::pipeline
{

/** Consecutive-failure circuit breaker on the simulated clock. */
class CircuitBreaker
{
  public:
    struct Config
    {
        std::uint32_t failureThreshold = 3; //!< trips after K in a row
        std::uint64_t cooldownMs = 1000;    //!< open -> half-open delay
    };

    CircuitBreaker() = default;
    explicit CircuitBreaker(const Config &config) : config_(config) {}

    /** May an attempt run at @p now_ms? (closed, or cooldown over) */
    bool allows(std::uint64_t now_ms) const
    {
        return !open_ || now_ms >= retryAtMs_;
    }

    /** Currently open (even if the cooldown has expired)? */
    bool open() const { return open_; }

    /** Times the breaker has tripped so far. */
    std::uint32_t trips() const { return trips_; }

    /** Earliest time an attempt is allowed while open. */
    std::uint64_t retryAtMs() const { return retryAtMs_; }

    /** Record a successful attempt: close and reset the streak. */
    void recordSuccess()
    {
        consecutive_ = 0;
        open_ = false;
        retryAtMs_ = 0;
    }

    /** Record a failed attempt at @p now_ms; may trip the breaker. */
    void recordFailure(std::uint64_t now_ms)
    {
        ++consecutive_;
        if (consecutive_ >= config_.failureThreshold) {
            open_ = true;
            ++trips_;
            retryAtMs_ = now_ms + config_.cooldownMs;
            // A fresh streak starts after the next (half-open)
            // attempt; one more failure there trips again.
            consecutive_ = config_.failureThreshold - 1;
        }
    }

  private:
    Config config_;
    std::uint32_t consecutive_ = 0;
    std::uint32_t trips_ = 0;
    bool open_ = false;
    std::uint64_t retryAtMs_ = 0;
};

} // namespace fairco2::pipeline

#endif // FAIRCO2_PIPELINE_BREAKER_HH
