/**
 * @file
 * Admission-overload degradation ladder for the live-signal server.
 *
 * The pipeline supervisor degrades *within* one attribution attempt
 * (incremental -> exact -> sampled -> proportional) when a stage
 * crashes or its deadline drains. The OverloadGovernor is the
 * steady-state counterpart for the serving path: it watches the
 * admission controller's per-period pressure — the fraction of
 * offered batches that could not be admitted outright — and walks a
 * small hysteresis ladder:
 *
 *  - Normal: full service, exact incremental attribution.
 *  - ShedFree: Free-tier batches are rejected before they reach the
 *    token buckets, preserving paid-tier telemetry.
 *  - Proportional: the published signal degrades to the RUP
 *    baseline's constant intensity (pipeline::attributeProportional)
 *    while engines keep ingesting, so recovery is instant.
 *
 * Escalation needs `escalatePeriods` consecutive periods above the
 * high watermark; recovery needs `recoverPeriods` consecutive
 * periods below the low watermark — the gap between the watermarks
 * plus the dwell counts is what prevents level flapping. Pressure is
 * compared with integer cross-multiplication, so decisions are exact
 * and identical across platforms.
 */

#ifndef FAIRCO2_PIPELINE_OVERLOAD_HH
#define FAIRCO2_PIPELINE_OVERLOAD_HH

#include <cstdint>

namespace fairco2::pipeline
{

/** Service level the governor currently prescribes. */
enum class OverloadLevel : std::uint8_t
{
    Normal = 0,       //!< full service
    ShedFree = 1,     //!< reject Free-tier batches up front
    Proportional = 2, //!< publish RUP intensity, keep ingesting
};

/** Stable lower-case label, for counters and reports. */
const char *overloadLevelName(OverloadLevel level);

/** Hysteresis ladder over per-period admission pressure. */
class OverloadGovernor
{
  public:
    struct Config
    {
        /** Escalate when more than this percent of a period's offers
         *  are deferred or rejected. */
        std::uint32_t highWatermarkPercent = 50;
        /** Recover when at most this percent could not be admitted. */
        std::uint32_t lowWatermarkPercent = 10;
        /** Consecutive high-pressure periods before escalating. */
        std::uint32_t escalatePeriods = 2;
        /** Consecutive low-pressure periods before recovering. */
        std::uint32_t recoverPeriods = 4;
    };

    explicit OverloadGovernor(const Config &config);

    /**
     * Feed one period's admission outcome and return the level to
     * serve the *next* period at. @p offered of 0 counts as a
     * low-pressure period.
     */
    OverloadLevel observe(std::uint64_t offered,
                          std::uint64_t deferred,
                          std::uint64_t rejected);

    OverloadLevel level() const { return level_; }

    std::uint64_t escalations() const { return escalations_; }
    std::uint64_t recoveries() const { return recoveries_; }

  private:
    Config config_;
    OverloadLevel level_ = OverloadLevel::Normal;
    std::uint32_t highStreak_ = 0;
    std::uint32_t lowStreak_ = 0;
    std::uint64_t escalations_ = 0;
    std::uint64_t recoveries_ = 0;
};

} // namespace fairco2::pipeline

#endif // FAIRCO2_PIPELINE_OVERLOAD_HH
