#include "pipeline/attribution.hh"

#include <algorithm>

#include "common/obs.hh"
#include "core/baselines.hh"
#include "core/temporal.hh"
#include "shapley/exact.hh"
#include "shapley/peak.hh"

namespace fairco2::pipeline
{

AttributionOutput
attributeExact(const trace::TimeSeries &window, double pool_grams,
               const std::vector<std::size_t> &splits)
{
    FAIRCO2_SPAN("pipeline.attribute.exact");
    const auto result =
        core::TemporalShapley().attribute(window, pool_grams, splits);
    AttributionOutput out;
    out.intensity = result.intensity;
    out.attributedGrams = result.attributedGrams;
    out.unattributedGrams = result.unattributedGrams;
    out.leafPeriods = result.leafPeriods;
    out.operations = result.operations;
    return out;
}

AttributionOutput
attributeSampled(const trace::TimeSeries &window, double pool_grams,
                 std::size_t periods, std::size_t permutations,
                 const Rng &base)
{
    FAIRCO2_SPAN("pipeline.attribute.sampled");
    AttributionOutput out;
    const std::size_t n = window.size();
    if (n == 0) {
        out.intensity = window;
        out.unattributedGrams = pool_grams;
        return out;
    }
    periods = std::max<std::size_t>(1, std::min(periods, n));
    permutations = std::max<std::size_t>(1, permutations);

    std::vector<double> peaks(periods), usage(periods);
    std::vector<std::size_t> begins(periods + 1);
    for (std::size_t i = 0; i <= periods; ++i)
        begins[i] = i * n / periods;
    for (std::size_t i = 0; i < periods; ++i) {
        peaks[i] = window.peak(begins[i], begins[i + 1]);
        usage[i] = window.integral(begins[i], begins[i + 1]);
    }

    shapley::PeakGame game(peaks);
    Rng rng = base.fork(std::uint64_t{0x5A} << 56);
    const auto phi = shapley::sampledShapley(game, rng, permutations);

    // Eq. 5 normalization: y_i = phi_i * C / sum_k phi_k q_k. The
    // sampled phi is noisy, but normalization makes the
    // usage-weighted intensity mass exactly the pool regardless.
    double denom = 0.0;
    for (std::size_t i = 0; i < periods; ++i)
        denom += phi[i] * usage[i];

    std::vector<double> values(n, 0.0);
    if (denom > 0.0) {
        for (std::size_t i = 0; i < periods; ++i) {
            const double y = phi[i] * pool_grams / denom;
            for (std::size_t t = begins[i]; t < begins[i + 1]; ++t)
                values[t] = y;
            out.attributedGrams += y * usage[i];
        }
    }
    out.intensity = trace::TimeSeries(std::move(values),
                                      window.stepSeconds());
    out.unattributedGrams = pool_grams - out.attributedGrams;
    out.leafPeriods = periods;
    FAIRCO2_OBSERVE("pipeline.sampled_permutations", permutations);
    return out;
}

AttributionOutput
attributeProportional(const trace::TimeSeries &window,
                      double pool_grams)
{
    FAIRCO2_SPAN("pipeline.attribute.proportional");
    AttributionOutput out;
    out.intensity = core::rupIntensity(window, pool_grams);
    out.attributedGrams =
        core::attributeUsage(out.intensity, window);
    out.unattributedGrams = pool_grams - out.attributedGrams;
    out.leafPeriods = window.empty() ? 0 : 1;
    return out;
}

} // namespace fairco2::pipeline
