#include "pipeline/attribution.hh"

#include <algorithm>

#include "common/obs.hh"
#include "core/baselines.hh"
#include "core/temporal.hh"
#include "resilience/faultplan.hh"
#include "shapley/exact.hh"
#include "shapley/incremental.hh"
#include "shapley/peak.hh"
#include "shapley/surrogate.hh"

namespace fairco2::pipeline
{

namespace
{

/** Clamp the sliding-window shape to the trace: W periods of M
 *  samples (M == 0 derives a period size that makes the window span
 *  half the trace, so the replay always slides). */
void
deriveWindowShape(std::size_t n, std::size_t window_periods,
                  std::size_t period_samples, std::size_t &w_out,
                  std::size_t &m_out)
{
    const std::size_t W =
        std::max<std::size_t>(1, std::min(window_periods, n));
    const std::size_t max_m = n / W;
    w_out = W;
    m_out = period_samples == 0
        ? std::max<std::size_t>(1, n / (2 * W))
        : std::max<std::size_t>(1,
                                std::min(period_samples, max_m));
}

/** The sliding replay both streaming rungs share: push the trace
 *  through @p engine period by period, publish the first full window
 *  then every newest-period advance into @p values, and integrate
 *  the published mass so attributed + unattributed == pool by
 *  construction. Works for IncrementalTemporalEngine and its
 *  surrogate wrapper (identical compute surface). */
template <typename Engine>
void
slideAndPublish(Engine &engine, const trace::TimeSeries &window,
                double pool_grams, double pool_window,
                std::size_t W, std::size_t M,
                const resilience::FaultPlan *plan,
                AttributionOutput &out)
{
    const std::size_t n = window.size();
    std::vector<double> values(n, 0.0);
    const std::size_t total_periods = n / M;
    const auto &samples = window.values();
    std::uint64_t closed = 0;
    for (std::size_t p = 0; p < total_periods; ++p) {
        for (std::size_t i = 0; i < M; ++i)
            engine.pushSample(samples[p * M + i]);
        if (engine.periodsClosed() == closed)
            continue;
        closed = engine.periodsClosed();
        if (!engine.windowReady())
            continue;
        if (closed == W) {
            // First full window: publish all W periods at once.
            const auto full = engine.computeWindow(pool_window);
            const auto &intensity = full.intensity.values();
            std::copy(intensity.begin(), intensity.end(),
                      values.begin());
            out.leafPeriods += full.leafPeriods;
            out.operations += full.operations;
            continue;
        }
        // A window advance: optionally corrupt the warm cache first
        // (the `cache-corrupt` fault key), then publish only the
        // newest period's share.
        const std::uint64_t advance = closed - W;
        if (plan != nullptr &&
            plan->fires(resilience::FaultSite::CacheCorrupt,
                        advance) &&
            engine.corruptCacheEntryForTest()) {
            plan->noteInjected();
            FAIRCO2_COUNT("resilience.fault.cache_corrupt", 1);
        }
        const auto advance_result =
            engine.computeNewestPeriod(pool_window);
        std::copy(advance_result.intensity.begin(),
                  advance_result.intensity.end(),
                  values.begin() +
                      static_cast<std::ptrdiff_t>((closed - 1) * M));
        out.leafPeriods += advance_result.leafPeriods;
        out.operations += advance_result.operations;
    }

    // Conservation by construction: whatever intensity mass the
    // sliding publication left on the trace is attributed, the rest
    // of the pool (including any tail samples past the last full
    // period) stays unattributed.
    double attributed = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        attributed += values[i] * samples[i];
    out.attributedGrams = attributed * window.stepSeconds();
    out.unattributedGrams = pool_grams - out.attributedGrams;
    out.intensity = trace::TimeSeries(std::move(values),
                                      window.stepSeconds());
}

} // namespace

AttributionOutput
attributeExact(const trace::TimeSeries &window, double pool_grams,
               const std::vector<std::size_t> &splits)
{
    FAIRCO2_SPAN("pipeline.attribute.exact");
    const auto result =
        core::TemporalShapley().attribute(window, pool_grams, splits);
    AttributionOutput out;
    out.intensity = result.intensity;
    out.attributedGrams = result.attributedGrams;
    out.unattributedGrams = result.unattributedGrams;
    out.leafPeriods = result.leafPeriods;
    out.operations = result.operations;
    return out;
}

AttributionOutput
attributeSampled(const trace::TimeSeries &window, double pool_grams,
                 std::size_t periods, std::size_t permutations,
                 const Rng &base)
{
    FAIRCO2_SPAN("pipeline.attribute.sampled");
    AttributionOutput out;
    const std::size_t n = window.size();
    if (n == 0) {
        out.intensity = window;
        out.unattributedGrams = pool_grams;
        return out;
    }
    periods = std::max<std::size_t>(1, std::min(periods, n));
    permutations = std::max<std::size_t>(1, permutations);

    std::vector<double> peaks(periods), usage(periods);
    std::vector<std::size_t> begins(periods + 1);
    for (std::size_t i = 0; i <= periods; ++i)
        begins[i] = i * n / periods;
    for (std::size_t i = 0; i < periods; ++i) {
        peaks[i] = window.peak(begins[i], begins[i + 1]);
        usage[i] = window.integral(begins[i], begins[i + 1]);
    }

    shapley::PeakGame game(peaks);
    Rng rng = base.fork(std::uint64_t{0x5A} << 56);
    const auto phi = shapley::sampledShapley(game, rng, permutations);

    // Eq. 5 normalization: y_i = phi_i * C / sum_k phi_k q_k. The
    // sampled phi is noisy, but normalization makes the
    // usage-weighted intensity mass exactly the pool regardless.
    double denom = 0.0;
    for (std::size_t i = 0; i < periods; ++i)
        denom += phi[i] * usage[i];

    std::vector<double> values(n, 0.0);
    if (denom > 0.0) {
        for (std::size_t i = 0; i < periods; ++i) {
            const double y = phi[i] * pool_grams / denom;
            for (std::size_t t = begins[i]; t < begins[i + 1]; ++t)
                values[t] = y;
            out.attributedGrams += y * usage[i];
        }
    }
    out.intensity = trace::TimeSeries(std::move(values),
                                      window.stepSeconds());
    out.unattributedGrams = pool_grams - out.attributedGrams;
    out.leafPeriods = periods;
    FAIRCO2_OBSERVE("pipeline.sampled_permutations", permutations);
    return out;
}

AttributionOutput
attributeProportional(const trace::TimeSeries &window,
                      double pool_grams)
{
    FAIRCO2_SPAN("pipeline.attribute.proportional");
    AttributionOutput out;
    out.intensity = core::rupIntensity(window, pool_grams);
    out.attributedGrams =
        core::attributeUsage(out.intensity, window);
    out.unattributedGrams = pool_grams - out.attributedGrams;
    out.leafPeriods = window.empty() ? 0 : 1;
    return out;
}

AttributionOutput
attributeIncremental(const trace::TimeSeries &window,
                     double pool_grams, std::size_t window_periods,
                     std::size_t period_samples,
                     const std::vector<std::size_t> &inner_splits,
                     std::size_t cache_capacity,
                     const resilience::FaultPlan *plan,
                     const cache::BackendConfig &backend)
{
    FAIRCO2_SPAN("pipeline.attribute.incremental");
    AttributionOutput out;
    const std::size_t n = window.size();
    if (n == 0) {
        out.intensity = window;
        out.unattributedGrams = pool_grams;
        return out;
    }

    std::size_t W, M;
    deriveWindowShape(n, window_periods, period_samples, W, M);

    shapley::IncrementalTemporalEngine::Config config;
    config.windowPeriods = W;
    config.periodSamples = M;
    config.stepSeconds = window.stepSeconds();
    config.innerSplits = inner_splits;
    config.cacheCapacity = cache_capacity;
    config.backend = backend;
    shapley::IncrementalTemporalEngine engine(config);

    // Each sliding window spans W*M of the n samples; its pool share
    // is the same fraction, so a fully warm slide re-attributes the
    // whole-trace pool at the window's own scale.
    const double pool_window =
        pool_grams * static_cast<double>(W * M) /
        static_cast<double>(n);
    slideAndPublish(engine, window, pool_grams, pool_window, W, M,
                    plan, out);
    return out;
}

AttributionOutput
attributeSurrogate(
    const trace::TimeSeries &window, double pool_grams,
    std::size_t window_periods, std::size_t period_samples,
    const std::vector<std::size_t> &inner_splits,
    std::size_t cache_capacity,
    std::shared_ptr<const surrogate::SurrogateModel> model,
    double tolerance, const resilience::FaultPlan *plan,
    const cache::BackendConfig &backend)
{
    FAIRCO2_SPAN("pipeline.attribute.surrogate");
    AttributionOutput out;
    const std::size_t n = window.size();
    if (n == 0) {
        out.intensity = window;
        out.unattributedGrams = pool_grams;
        return out;
    }

    std::size_t W, M;
    deriveWindowShape(n, window_periods, period_samples, W, M);

    shapley::SurrogateTemporalEngine::Config config;
    config.engine.windowPeriods = W;
    config.engine.periodSamples = M;
    config.engine.stepSeconds = window.stepSeconds();
    config.engine.innerSplits = inner_splits;
    config.engine.cacheCapacity = cache_capacity;
    config.engine.backend = backend;
    config.model = std::move(model);
    config.tolerance = tolerance;
    shapley::SurrogateTemporalEngine engine(config);

    const double pool_window =
        pool_grams * static_cast<double>(W * M) /
        static_cast<double>(n);
    slideAndPublish(engine, window, pool_grams, pool_window, W, M,
                    plan, out);
    out.surrogateAccepts = engine.counters().accepts;
    out.surrogateRejects = engine.counters().rejects;
    return out;
}

} // namespace fairco2::pipeline
