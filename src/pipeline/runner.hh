/**
 * @file
 * The supervised end-to-end attribution pipeline.
 *
 * runAttributionPipeline() drives the full Fair-CO2 flow under the
 * Supervisor as five explicit stages:
 *
 *  1. ingest       — load and repair the demand series (and optional
 *                    per-consumer usage table); no ladder, bad input
 *                    is fatal (exit 2), transient crashes retry.
 *  2. forecast     — extend the window by the configured horizon.
 *                    Ladder: full seasonal fit -> seasonal-naive
 *                    (fitNaive) -> skip the horizon entirely. The
 *                    stage is optional: even a Failed forecast only
 *                    shrinks the window back to the history.
 *  3. shapley      — attribute the pool over the window. Ladder:
 *                    [guardrailed learned surrogate, only when
 *                    surrogateModel is set] -> [incremental
 *                    sliding-window, only when
 *                    incrementalWindowPeriods > 0] -> exact
 *                    hierarchical -> sampled with a permutation
 *                    budget that shrinks with the remaining deadline
 *                    and the attempt count -> proportional (RUP)
 *                    baseline. A cache-integrity failure on a
 *                    sliding rung (see the fault plan's
 *                    `cache-corrupt` key) crashes the attempt and
 *                    descends a rung. Required.
 *  4. interference — bill each usage column against the intensity
 *                    signal (and against the RUP baseline for
 *                    comparison). Required when usage is configured,
 *                    Skipped otherwise.
 *  5. report       — serialize the signal and bill CSVs. Required.
 *
 * Every stage cost is a deterministic function of the input sizes on
 * the SimClock, so a run's entire supervision history — and its
 * RunHealth JSON — is reproducible from (inputs, config, seed) alone.
 */

#ifndef FAIRCO2_PIPELINE_RUNNER_HH
#define FAIRCO2_PIPELINE_RUNNER_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/attribution.hh"
#include "pipeline/supervisor.hh"
#include "resilience/ingest.hh"
#include "trace/timeseries.hh"

namespace fairco2::pipeline
{

/** Everything a supervised run needs. */
struct PipelineConfig
{
    /** Demand input: either a CSV path + column, or an in-memory
     *  series (used by the chaos soak and tests; takes precedence
     *  when non-empty). */
    std::string demandPath;
    std::string demandColumn = "demand";
    trace::TimeSeries demandSeries;

    /** Optional per-consumer usage CSV (one numeric column each). */
    std::string usagePath;
    /** In-memory usage columns (take precedence when non-empty). */
    std::vector<std::pair<std::string, trace::TimeSeries>> usageSeries;

    double stepSeconds = 300.0;
    double poolGrams = 0.0;
    std::vector<std::size_t> splits{10, 9, 8, 12};
    std::size_t horizonSteps = 0; //!< 0 skips the forecast stage
    std::size_t sampledPermutations = 256; //!< sampled-rung budget

    /** Sliding-window size, in periods, for the incremental Shapley
     *  rung; 0 keeps the classic exact-first ladder. */
    std::size_t incrementalWindowPeriods = 0;
    /** Sub-game LRU capacity for the incremental rung (0 disables
     *  memoization — useful only for differential testing). */
    std::size_t incrementalCacheCapacity = 64;

    /** Trained surrogate model; non-null prepends the guardrailed
     *  surrogate rung above the (optional) incremental rung. Uses
     *  incrementalWindowPeriods for its sliding window (default 24
     *  when that is 0). */
    std::shared_ptr<const surrogate::SurrogateModel> surrogateModel;
    /** Residual-guardrail share tolerance for the surrogate rung. */
    double surrogateTol = 0.01;

    /** Output CSV paths; empty keeps results in memory only. */
    std::string signalOutPath;
    std::string billsOutPath;

    resilience::BadRowPolicy badRowPolicy =
        resilience::BadRowPolicy::Fail;
    SupervisorConfig supervisor;
};

/** Everything a supervised run produces. */
struct PipelineResult
{
    RunHealth health;          //!< includes the owed exit code
    trace::TimeSeries demand;  //!< ingested (repaired) history
    trace::TimeSeries window;  //!< history + accepted forecast
    AttributionOutput attribution;
    std::vector<std::string> consumers;
    std::vector<double> fairGrams; //!< per consumer, Fair-CO2 signal
    std::vector<double> rupGrams;  //!< per consumer, RUP baseline
    resilience::IngestReport ingest;
};

/**
 * Run the supervised pipeline. Throws FatalDataError on unusable
 * input (front ends exit 2); every other failure mode is absorbed
 * into the health report and the returned exit code.
 */
PipelineResult runAttributionPipeline(const PipelineConfig &config);

} // namespace fairco2::pipeline

#endif // FAIRCO2_PIPELINE_RUNNER_HH
