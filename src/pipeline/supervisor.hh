/**
 * @file
 * Deterministic stage supervisor: deadlines, retries, breakers, and
 * the degradation ladder.
 *
 * The supervisor runs each pipeline stage as a sequence of *attempts*
 * on a SimClock. Per attempt it:
 *
 *  1. applies the fault plan's stage-level injections — a stall
 *     charges part of the deadline budget up front, a crash fails the
 *     attempt outright, a timeout burns the whole remaining budget;
 *  2. otherwise executes the stage body at the current ladder level
 *     and charges the body's deterministic simulated cost;
 *  3. classifies the outcome: success ends the stage (Ok at level 0,
 *     Degraded below), a deadline overrun *descends* the ladder
 *     immediately (retrying identical work would blow the same
 *     budget — descending is what shrinks it), and a crash retries
 *     after a deterministic jittered backoff until the per-level
 *     retry budget is spent or the circuit breaker trips, then
 *     descends.
 *
 * The final ladder rung is exempt from the deadline — the service's
 * "always publish a number" guarantee — so a stage only Fails when
 * crashes exhaust the retry budget on the floor rung. Every decision
 * point (fault draws, backoff jitter, simulated costs) is a pure
 * function of the configuration and seed, so the full supervision
 * history in RunHealth is bit-identical for any `--threads N`.
 *
 * Fault-injection keying: attempt a (1-based, monotone across ladder
 * levels) of stage s queries the plan at index (s << 16) | a. The
 * chaos-soak harness recomputes the expected injection counts from
 * the reported attempt counts and the plan's purity and asserts they
 * match the health report.
 */

#ifndef FAIRCO2_PIPELINE_SUPERVISOR_HH
#define FAIRCO2_PIPELINE_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.hh"
#include "pipeline/backoff.hh"
#include "pipeline/breaker.hh"
#include "pipeline/clock.hh"
#include "pipeline/health.hh"
#include "resilience/faultplan.hh"

namespace fairco2::pipeline
{

/** What the supervisor tells a stage body about this attempt. */
struct StageAttempt
{
    std::uint32_t level = 0;      //!< current degradation rung
    std::uint32_t maxLevel = 0;   //!< floor rung for this stage
    std::uint32_t attempt = 0;    //!< 1-based, monotone across levels
    std::uint32_t attemptAtLevel = 0; //!< 1-based within this rung
    std::uint64_t deadlineMs = 0; //!< the stage's full budget
    std::uint64_t remainingMs = 0; //!< budget left at attempt start
};

/** What a stage body reports back. */
struct StageBodyResult
{
    bool ok = true;        //!< attempt produced output
    bool degraded = false; //!< output below full fidelity
    std::uint64_t costMs = 0; //!< deterministic simulated cost
    std::string note;      //!< appended to the stage's note trail
};

/** A stage body: run one attempt at the given rung. May throw —
 *  FatalDataError propagates (bad input, exit 2), anything else is
 *  treated as a crash of this attempt. */
using StageBody = std::function<StageBodyResult(const StageAttempt &)>;

/** Supervision knobs shared by every stage of a run. */
struct SupervisorConfig
{
    std::uint64_t stageDeadlineMs = 2000; //!< per-stage budget
    std::uint32_t maxRetries = 3; //!< extra attempts per ladder rung
    BackoffPolicy backoff;
    CircuitBreaker::Config breaker;
    std::uint64_t seed = 42; //!< backoff-jitter stream root
    resilience::FaultPlan faultPlan;
};

/**
 * Runs stages in order, accumulating a RunHealth report. One
 * Supervisor per run; stages share the SimClock but each gets a
 * fresh deadline budget and circuit breaker.
 */
class Supervisor
{
  public:
    explicit Supervisor(const SupervisorConfig &config);

    /**
     * Run one stage through the attempt/retry/descend machine.
     * @param name stage name in the health report.
     * @param max_level deepest ladder rung (0 = no ladder).
     * @param body the per-attempt work.
     * @return true when the stage produced output (Ok or Degraded).
     */
    bool runStage(const std::string &name, std::uint32_t max_level,
                  const StageBody &body);

    /**
     * Record @p name as Skipped (with an optional note) without
     * running anything — used for disabled stages and for stages
     * after a required-stage failure.
     */
    void skipStage(const std::string &name, const std::string &note);

    /**
     * Close out the report: set produced/ok/degraded/exitCode from
     * the stage records. @p produced is whether the run emitted an
     * attribution vector (all required stages succeeded).
     */
    void finalize(bool produced);

    const SupervisorConfig &config() const { return config_; }
    SimClock &clock() { return clock_; }
    RunHealth &health() { return health_; }
    const RunHealth &health() const { return health_; }

  private:
    SupervisorConfig config_;
    Rng backoffBase_;
    SimClock clock_;
    RunHealth health_;
};

} // namespace fairco2::pipeline

#endif // FAIRCO2_PIPELINE_SUPERVISOR_HH
