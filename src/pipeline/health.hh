/**
 * @file
 * Machine-readable run-health reporting.
 *
 * A degraded attribution number is only defensible if the degradation
 * is *declared*: RunHealth records, per stage, how many attempts and
 * retries it took, which faults were injected, whether the circuit
 * breaker tripped, and which degradation-ladder rung finally produced
 * output. The report is serialized as JSON (`--health-out`) and is a
 * pure function of the run configuration and seed — no wall-clock
 * timestamps, only SimClock virtual milliseconds — so the chaos-soak
 * harness can assert it byte-for-byte against the injected fault
 * schedule, and two runs at different `--threads N` emit identical
 * reports.
 */

#ifndef FAIRCO2_PIPELINE_HEALTH_HH
#define FAIRCO2_PIPELINE_HEALTH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fairco2::pipeline
{

/** How a stage ended. */
enum class StageStatus
{
    Skipped,  //!< never ran (disabled, or an earlier stage failed)
    Ok,       //!< produced full-fidelity output
    Degraded, //!< produced output on a lower ladder rung
    Failed,   //!< exhausted every rung and retry without output
};

/** Lower-case status name used in the JSON report. */
const char *stageStatusName(StageStatus status);

/** Supervision record for one pipeline stage. */
struct StageHealth
{
    std::string name;
    StageStatus status = StageStatus::Skipped;
    std::uint32_t attempts = 0; //!< bodies started (incl. injected)
    std::uint32_t retries = 0;  //!< backoff-delayed re-attempts
    std::uint32_t crashes = 0;  //!< failed attempts (real + injected)
    std::uint32_t timeouts = 0; //!< attempts that blew the deadline
    std::uint64_t injectedCrashes = 0;  //!< from the fault plan
    std::uint64_t injectedStalls = 0;   //!< from the fault plan
    std::uint64_t injectedTimeouts = 0; //!< from the fault plan
    std::uint32_t breakerTrips = 0;
    std::uint32_t degradationLevel = 0; //!< ladder rung that ended it
    std::uint64_t deadlineMs = 0;
    std::uint64_t startMs = 0; //!< SimClock at stage entry
    std::uint64_t endMs = 0;   //!< SimClock at stage exit
    std::vector<std::uint64_t> backoffMs; //!< each retry's delay
    std::string note; //!< human-readable cause trail (may be empty)
};

/** Whole-run supervision record. */
struct RunHealth
{
    bool ok = false;       //!< produced, full fidelity, no failures
    bool produced = false; //!< an attribution vector was emitted
    bool degraded = false; //!< any stage ran below full fidelity
    bool interrupted = false; //!< stopped on SIGINT/SIGTERM
    int exitCode = 1;      //!< the process exit the front end owes
    std::uint64_t seed = 0;
    std::string faultPlan; //!< spec string ("" when inactive)
    std::vector<StageHealth> stages;

    /** Stage record by name, or nullptr. */
    const StageHealth *find(const std::string &name) const;

    /** Serialize as pretty-printed JSON (stable field order). */
    std::string toJson() const;
};

/**
 * Write @p health as JSON to @p path (atomic tmp + rename, so a kill
 * mid-write never leaves a truncated report). Throws
 * std::runtime_error when the path is unwritable — front ends
 * preflight it at startup with requireWritableFlagPath.
 */
void writeRunHealth(const std::string &path, const RunHealth &health);

} // namespace fairco2::pipeline

#endif // FAIRCO2_PIPELINE_HEALTH_HH
