#include "pipeline/health.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fairco2::pipeline
{

namespace
{

/** Escape a string for a JSON literal (quotes, backslash, control). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char *
boolName(bool value)
{
    return value ? "true" : "false";
}

} // namespace

const char *
stageStatusName(StageStatus status)
{
    switch (status) {
      case StageStatus::Skipped:
        return "skipped";
      case StageStatus::Ok:
        return "ok";
      case StageStatus::Degraded:
        return "degraded";
      case StageStatus::Failed:
        return "failed";
    }
    return "unknown";
}

const StageHealth *
RunHealth::find(const std::string &name) const
{
    for (const auto &stage : stages) {
        if (stage.name == name)
            return &stage;
    }
    return nullptr;
}

std::string
RunHealth::toJson() const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"ok\": " << boolName(ok) << ",\n";
    out << "  \"produced\": " << boolName(produced) << ",\n";
    out << "  \"degraded\": " << boolName(degraded) << ",\n";
    out << "  \"interrupted\": " << boolName(interrupted) << ",\n";
    out << "  \"exit_code\": " << exitCode << ",\n";
    out << "  \"seed\": " << seed << ",\n";
    out << "  \"fault_plan\": \"" << jsonEscape(faultPlan) << "\",\n";
    out << "  \"stages\": [";
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const auto &s = stages[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\n";
        out << "      \"name\": \"" << jsonEscape(s.name) << "\",\n";
        out << "      \"status\": \"" << stageStatusName(s.status)
            << "\",\n";
        out << "      \"attempts\": " << s.attempts << ",\n";
        out << "      \"retries\": " << s.retries << ",\n";
        out << "      \"crashes\": " << s.crashes << ",\n";
        out << "      \"timeouts\": " << s.timeouts << ",\n";
        out << "      \"injected_crashes\": " << s.injectedCrashes
            << ",\n";
        out << "      \"injected_stalls\": " << s.injectedStalls
            << ",\n";
        out << "      \"injected_timeouts\": " << s.injectedTimeouts
            << ",\n";
        out << "      \"breaker_trips\": " << s.breakerTrips << ",\n";
        out << "      \"degradation_level\": " << s.degradationLevel
            << ",\n";
        out << "      \"deadline_ms\": " << s.deadlineMs << ",\n";
        out << "      \"start_ms\": " << s.startMs << ",\n";
        out << "      \"end_ms\": " << s.endMs << ",\n";
        out << "      \"backoff_ms\": [";
        for (std::size_t b = 0; b < s.backoffMs.size(); ++b)
            out << (b ? ", " : "") << s.backoffMs[b];
        out << "],\n";
        out << "      \"note\": \"" << jsonEscape(s.note) << "\"\n";
        out << "    }";
    }
    out << (stages.empty() ? "" : "\n  ") << "],\n";
    out << "  \"schema_version\": 1\n";
    out << "}\n";
    return out.str();
}

void
writeRunHealth(const std::string &path, const RunHealth &health)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw std::runtime_error("cannot open '" + tmp +
                                     "' for writing");
        out << health.toJson();
        if (!out)
            throw std::runtime_error("short write to '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw std::runtime_error("cannot rename '" + tmp + "' to '" +
                                 path + "'");
}

} // namespace fairco2::pipeline
