/**
 * @file
 * The Shapley stage's degradation ladder.
 *
 * Three rungs, all of which preserve the efficiency axiom (attributed
 * + unattributed == pool) by construction:
 *
 *  - level 0, exact: the full hierarchical Temporal Shapley
 *    attribution (TemporalShapley::attribute) — the paper's signal.
 *  - level 1, sampled: a single-level peak game over at most
 *    kSampledMaxPeriods coarse periods, solved by permutation
 *    sampling with a trial budget the supervisor shrinks as the
 *    deadline drains; intensities are normalized per Eq. 5
 *    (y_i = phi_i * C / sum_k phi_k q_k), so usage-weighted mass
 *    still sums to the pool.
 *  - level 2, proportional: the RUP baseline's constant intensity —
 *    no game at all, but still exactly efficient.
 *
 * The property tests assert the axiom at every rung within
 * kEfficiencyTolerance (relative); the chaos soak re-asserts it on
 * every degraded scenario.
 */

#ifndef FAIRCO2_PIPELINE_ATTRIBUTION_HH
#define FAIRCO2_PIPELINE_ATTRIBUTION_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "trace/timeseries.hh"

namespace fairco2::pipeline
{

/** Ladder depth of the Shapley stage (levels 0..2). */
constexpr std::uint32_t kShapleyMaxLevel = 2;

/** Players in the level-1 sampled peak game (must stay <= 64,
 *  the CoalitionGame mask width). */
constexpr std::size_t kSampledMaxPeriods = 60;

/** Relative efficiency tolerance every rung is tested against:
 *  |attributed + unattributed - pool| <= tol * pool. Level 0 and 2
 *  are exact up to rounding; level 1 normalizes sampled values, so
 *  all three sit far inside this bound. */
constexpr double kEfficiencyTolerance = 1e-6;

/** What every ladder rung produces. */
struct AttributionOutput
{
    trace::TimeSeries intensity; //!< g per resource-second, per step
    double attributedGrams = 0.0;
    double unattributedGrams = 0.0; //!< pool minus attributed
    std::size_t leafPeriods = 0;    //!< attribution granularity
    std::uint64_t operations = 0;   //!< solver work (level 0 only)
};

/** Level 0: exact hierarchical Temporal Shapley. */
AttributionOutput
attributeExact(const trace::TimeSeries &window, double pool_grams,
               const std::vector<std::size_t> &splits);

/**
 * Level 1: single-level sampled peak game over at most @p periods
 * coarse periods with @p permutations sampled permutations (clamped
 * to >= 1). Randomness comes from forked streams of @p base, so the
 * result is pure in (window, pool, periods, permutations, seed).
 */
AttributionOutput
attributeSampled(const trace::TimeSeries &window, double pool_grams,
                 std::size_t periods, std::size_t permutations,
                 const Rng &base);

/** Level 2: RUP-baseline constant intensity. */
AttributionOutput
attributeProportional(const trace::TimeSeries &window,
                      double pool_grams);

} // namespace fairco2::pipeline

#endif // FAIRCO2_PIPELINE_ATTRIBUTION_HH
