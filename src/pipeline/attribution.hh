/**
 * @file
 * The Shapley stage's degradation ladder.
 *
 * Up to five rungs, all of which preserve the efficiency axiom
 * (attributed + unattributed == pool) by construction:
 *
 *  - surrogate (only when PipelineConfig enables it): the
 *    guardrailed learned surrogate (shapley::SurrogateTemporalEngine)
 *    streams the same sliding window as the incremental rung but
 *    publishes model-predicted per-period shares whenever the
 *    guardrails hold, falling back to the wrapped exact engine
 *    per-advance otherwise; a CacheIntegrityError on the exact path
 *    still crashes the attempt and descends a rung.
 *  - incremental (only when PipelineConfig enables it): the
 *    sliding-window IncrementalTemporalEngine streams the demand
 *    window period by period, memoizing sub-game solves; a
 *    CacheIntegrityError (e.g. from the fault plan's `cache-corrupt`
 *    key) crashes the attempt and descends to the next rung.
 *  - exact: the full hierarchical Temporal Shapley attribution
 *    (TemporalShapley::attribute) — the paper's signal. Level 0 when
 *    incremental mode is off, the full-recompute fallback otherwise.
 *  - sampled: a single-level peak game over at most
 *    kSampledMaxPeriods coarse periods, solved by permutation
 *    sampling with a trial budget the supervisor shrinks as the
 *    deadline drains; intensities are normalized per Eq. 5
 *    (y_i = phi_i * C / sum_k phi_k q_k), so usage-weighted mass
 *    still sums to the pool.
 *  - proportional: the RUP baseline's constant intensity — no game
 *    at all, but still exactly efficient.
 *
 * The property tests assert the axiom at every rung within
 * kEfficiencyTolerance (relative); the chaos soak re-asserts it on
 * every degraded scenario.
 */

#ifndef FAIRCO2_PIPELINE_ATTRIBUTION_HH
#define FAIRCO2_PIPELINE_ATTRIBUTION_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/backend.hh"
#include "common/rng.hh"
#include "common/surrogate.hh"
#include "trace/timeseries.hh"

namespace fairco2::resilience
{
class FaultPlan;
}

namespace fairco2::pipeline
{

/** Ladder depth of the Shapley stage without the incremental rung
 *  (levels 0..2); incremental mode prepends one more level. */
constexpr std::uint32_t kShapleyMaxLevel = 2;

/** Players in the level-1 sampled peak game (must stay <= 64,
 *  the CoalitionGame mask width). */
constexpr std::size_t kSampledMaxPeriods = 60;

/** Relative efficiency tolerance every rung is tested against:
 *  |attributed + unattributed - pool| <= tol * pool. Level 0 and 2
 *  are exact up to rounding; level 1 normalizes sampled values, so
 *  all three sit far inside this bound. */
constexpr double kEfficiencyTolerance = 1e-6;

/** What every ladder rung produces. */
struct AttributionOutput
{
    trace::TimeSeries intensity; //!< g per resource-second, per step
    double attributedGrams = 0.0;
    double unattributedGrams = 0.0; //!< pool minus attributed
    std::size_t leafPeriods = 0;    //!< attribution granularity
    std::uint64_t operations = 0;   //!< solver work (level 0 only)
    /** Surrogate rung only: decisions taken while sliding. */
    std::uint64_t surrogateAccepts = 0;
    std::uint64_t surrogateRejects = 0;
};

/** Level 0: exact hierarchical Temporal Shapley. */
AttributionOutput
attributeExact(const trace::TimeSeries &window, double pool_grams,
               const std::vector<std::size_t> &splits);

/**
 * Level 1: single-level sampled peak game over at most @p periods
 * coarse periods with @p permutations sampled permutations (clamped
 * to >= 1). Randomness comes from forked streams of @p base, so the
 * result is pure in (window, pool, periods, permutations, seed).
 */
AttributionOutput
attributeSampled(const trace::TimeSeries &window, double pool_grams,
                 std::size_t periods, std::size_t permutations,
                 const Rng &base);

/** Level 2: RUP-baseline constant intensity. */
AttributionOutput
attributeProportional(const trace::TimeSeries &window,
                      double pool_grams);

/**
 * Incremental rung: stream @p window through a sliding
 * IncrementalTemporalEngine of @p window_periods periods of
 * @p period_samples samples each (0 derives a period size that makes
 * the window span half the trace, so the replay always slides) and
 * publish the newest period's intensity on every advance. Attribution covers the samples the sliding window visits
 * (a multiple of the period size); the pool share of any tail samples
 * stays unattributed, so attributed + unattributed == pool by
 * construction. @p inner_splits shape each period's inner hierarchy
 * and @p cache_capacity bounds the sub-game cache (0 = memoization
 * off); @p backend picks the blob-store combination holding it —
 * every combination yields byte-identical output. When @p plan
 * carries a nonzero `cache-corrupt` probability,
 * cache entries are deterministically corrupted before some advances;
 * the resulting CacheIntegrityError propagates to the caller (the
 * supervisor turns it into a stage crash and falls back to
 * attributeExact).
 */
AttributionOutput
attributeIncremental(const trace::TimeSeries &window,
                     double pool_grams, std::size_t window_periods,
                     std::size_t period_samples,
                     const std::vector<std::size_t> &inner_splits,
                     std::size_t cache_capacity,
                     const resilience::FaultPlan *plan = nullptr,
                     const cache::BackendConfig &backend =
                         cache::defaultBackend());

/**
 * Surrogate rung: attributeIncremental's sliding replay driven
 * through a guardrailed shapley::SurrogateTemporalEngine with
 * @p model and residual tolerance @p tolerance. Accepted advances
 * publish model-predicted shares (rescaled to the exact total, so
 * efficiency holds by construction); rejected advances fall through
 * to the wrapped exact engine in place. Decision totals land in the
 * output's surrogateAccepts/surrogateRejects. A null @p model makes
 * this bitwise attributeIncremental. CacheIntegrityError from the
 * exact path propagates like the incremental rung's.
 */
AttributionOutput attributeSurrogate(
    const trace::TimeSeries &window, double pool_grams,
    std::size_t window_periods, std::size_t period_samples,
    const std::vector<std::size_t> &inner_splits,
    std::size_t cache_capacity,
    std::shared_ptr<const surrogate::SurrogateModel> model,
    double tolerance, const resilience::FaultPlan *plan = nullptr,
    const cache::BackendConfig &backend = cache::defaultBackend());

} // namespace fairco2::pipeline

#endif // FAIRCO2_PIPELINE_ATTRIBUTION_HH
