#include "pipeline/backoff.hh"

#include <algorithm>
#include <cmath>

namespace fairco2::pipeline
{

std::uint64_t
backoffStream(std::uint32_t stage, std::uint32_t attempt)
{
    return (std::uint64_t{0xB0} << 56) |
        (static_cast<std::uint64_t>(stage) << 24) | attempt;
}

std::uint64_t
backoffDelayMs(const BackoffPolicy &policy, const Rng &base,
               std::uint32_t stage, std::uint32_t attempt)
{
    const std::uint32_t retries = attempt > 0 ? attempt - 1 : 0;
    double exp = static_cast<double>(policy.baseMs) *
        std::pow(policy.multiplier, static_cast<double>(retries));
    exp = std::min(exp, static_cast<double>(policy.capMs));

    Rng jitter = base.fork(backoffStream(stage, attempt));
    const double factor =
        1.0 + policy.jitterFraction * (jitter.uniform() - 0.5);
    const double delay = std::round(exp * factor);
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(delay));
}

} // namespace fairco2::pipeline
