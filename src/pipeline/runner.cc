#include "pipeline/runner.hh"

#include <algorithm>

#include "common/csv.hh"
#include "common/errors.hh"
#include "common/obs.hh"
#include "core/baselines.hh"
#include "forecast/forecaster.hh"
#include "resilience/faultplan.hh"

namespace fairco2::pipeline
{

namespace
{

/** Deterministic simulated cost of touching @p items data items. */
std::uint64_t
costMsFor(std::uint64_t items, std::uint64_t per_thousand,
          std::uint64_t floor_ms)
{
    return floor_ms + items * per_thousand / 1000;
}

} // namespace

PipelineResult
runAttributionPipeline(const PipelineConfig &config)
{
    FAIRCO2_SPAN("pipeline.run");
    PipelineResult result;
    Supervisor supervisor(config.supervisor);

    // --- stage 1: ingest -------------------------------------------
    const bool ingested = supervisor.runStage(
        "ingest", 0, [&](const StageAttempt &) {
            StageBodyResult r;
            if (!config.demandSeries.empty()) {
                // In-memory path still exercises the fault plan and
                // repair machinery, like loadSeriesColumn does.
                std::vector<double> values =
                    config.demandSeries.values();
                resilience::injectTelemetryFaults(
                    values, config.supervisor.faultPlan);
                resilience::repairNonFinite(
                    values, config.badRowPolicy,
                    "pipeline demand telemetry", &result.ingest);
                result.demand = trace::TimeSeries(
                    std::move(values),
                    config.demandSeries.stepSeconds());
            } else {
                result.demand = resilience::loadSeriesColumn(
                    config.demandPath, config.demandColumn,
                    config.stepSeconds, config.badRowPolicy,
                    &config.supervisor.faultPlan, &result.ingest);
            }
            if (!config.usageSeries.empty()) {
                result.consumers.clear();
                for (const auto &entry : config.usageSeries)
                    result.consumers.push_back(entry.first);
            } else if (!config.usagePath.empty()) {
                const auto table = readCsv(config.usagePath);
                result.consumers = table.header;
            }
            r.costMs = costMsFor(result.demand.size(), 20, 1);
            return r;
        });
    if (!ingested) {
        supervisor.skipStage("forecast", "ingest failed");
        supervisor.skipStage("shapley", "ingest failed");
        supervisor.skipStage("interference", "ingest failed");
        supervisor.skipStage("report", "ingest failed");
        supervisor.finalize(false);
        result.health = supervisor.health();
        return result;
    }

    // --- stage 2: forecast -----------------------------------------
    result.window = result.demand;
    if (config.horizonSteps == 0) {
        supervisor.skipStage("forecast", "no horizon configured");
    } else {
        supervisor.runStage(
            "forecast", 2, [&](const StageAttempt &a) {
                StageBodyResult r;
                forecast::SeasonalForecaster forecaster;
                if (a.level == 0) {
                    forecaster.fit(result.demand);
                    r.degraded = forecaster.degraded();
                    r.costMs =
                        costMsFor(result.demand.size(), 200, 5);
                } else if (a.level == 1) {
                    forecaster.fitNaive(result.demand);
                    r.degraded = true;
                    r.note = "seasonal-naive forecast";
                    r.costMs =
                        costMsFor(result.demand.size(), 20, 1);
                } else {
                    r.degraded = true;
                    r.note = "forecast skipped";
                    return r;
                }
                const auto horizon =
                    forecaster.forecast(config.horizonSteps);
                std::vector<double> values =
                    result.demand.values();
                values.insert(values.end(),
                              horizon.values().begin(),
                              horizon.values().end());
                result.window = trace::TimeSeries(
                    std::move(values),
                    result.demand.stepSeconds());
                return r;
            });
        // A Failed forecast stage (crashes all the way down the
        // ladder) leaves the window at the bare history — the run
        // proceeds; the health report carries the failure.
    }

    // --- stage 3: shapley ------------------------------------------
    // Optional rungs grow the ladder at the top; `rungs` maps the
    // supervisor's attempt level onto the shared rung numbering
    // (0 surrogate, 1 incremental, 2 exact, 3 sampled,
    // 4 proportional) so the bodies below stay identical for every
    // flag combination.
    const bool incremental = config.incrementalWindowPeriods > 0;
    const bool surrogate_on = config.surrogateModel != nullptr;
    std::vector<std::uint32_t> rungs;
    if (surrogate_on)
        rungs.push_back(0);
    if (incremental)
        rungs.push_back(1);
    rungs.push_back(2);
    rungs.push_back(3);
    rungs.push_back(4);
    const auto shapley_max_level =
        static_cast<std::uint32_t>(rungs.size() - 1);
    // Periods are leaves of the per-period hierarchy shaped by the
    // splits below the top level (both sliding rungs share this).
    std::vector<std::size_t> inner_splits;
    if (config.splits.size() > 1)
        inner_splits.assign(config.splits.begin() + 1,
                            config.splits.end());
    const std::size_t sliding_window_periods =
        config.incrementalWindowPeriods > 0
        ? config.incrementalWindowPeriods
        : 24;
    const bool attributed = supervisor.runStage(
        "shapley", shapley_max_level, [&](const StageAttempt &a) {
            StageBodyResult r;
            const std::uint32_t rung = rungs[a.level];
            if (rung == 0) {
                result.attribution = attributeSurrogate(
                    result.window, config.poolGrams,
                    sliding_window_periods, 0, inner_splits,
                    config.incrementalCacheCapacity,
                    config.surrogateModel, config.surrogateTol,
                    &config.supervisor.faultPlan);
                r.note = "surrogate attribution (" +
                    std::to_string(
                        result.attribution.surrogateAccepts) +
                    " accepted, " +
                    std::to_string(
                        result.attribution.surrogateRejects) +
                    " exact fallbacks)";
                r.costMs = costMsFor(
                    result.attribution.operations, 2, 5);
            } else if (rung == 1) {
                result.attribution = attributeIncremental(
                    result.window, config.poolGrams,
                    config.incrementalWindowPeriods, 0,
                    inner_splits,
                    config.incrementalCacheCapacity,
                    &config.supervisor.faultPlan);
                r.note = "incremental sliding-window attribution";
                r.costMs = costMsFor(
                    result.attribution.operations, 2, 5);
            } else if (rung == 2) {
                result.attribution = attributeExact(
                    result.window, config.poolGrams, config.splits);
                r.costMs = costMsFor(
                    result.attribution.operations, 2, 10);
            } else if (rung == 3) {
                // Shrinking trial budget: scale the permutation
                // count by the remaining share of the deadline and
                // halve it on every extra attempt at this rung.
                std::size_t perms = config.sampledPermutations;
                if (a.deadlineMs > 0) {
                    perms = static_cast<std::size_t>(
                        static_cast<double>(perms) *
                        static_cast<double>(a.remainingMs) /
                        static_cast<double>(a.deadlineMs));
                }
                perms >>= (a.attemptAtLevel - 1);
                perms = std::max<std::size_t>(16, perms);
                result.attribution = attributeSampled(
                    result.window, config.poolGrams,
                    kSampledMaxPeriods, perms,
                    Rng(config.supervisor.seed));
                r.degraded = true;
                r.note = "sampled attribution (" +
                    std::to_string(perms) + " permutations)";
                r.costMs = costMsFor(
                    perms * kSampledMaxPeriods, 1, 2);
            } else {
                result.attribution = attributeProportional(
                    result.window, config.poolGrams);
                r.degraded = true;
                r.note = "proportional (RUP) attribution";
                r.costMs = costMsFor(result.window.size(), 2, 1);
            }
            return r;
        });
    if (!attributed) {
        supervisor.skipStage("interference", "shapley failed");
        supervisor.skipStage("report", "shapley failed");
        supervisor.finalize(false);
        result.health = supervisor.health();
        return result;
    }

    // --- stage 4: interference billing -----------------------------
    bool billed = true;
    const bool have_usage = !config.usageSeries.empty() ||
        !config.usagePath.empty();
    if (!have_usage) {
        supervisor.skipStage("interference", "no usage configured");
    } else {
        billed = supervisor.runStage(
            "interference", 0, [&](const StageAttempt &) {
                StageBodyResult r;
                std::vector<
                    std::pair<std::string, trace::TimeSeries>>
                    columns;
                if (!config.usageSeries.empty()) {
                    columns = config.usageSeries;
                } else {
                    const auto table = readCsv(config.usagePath);
                    for (const auto &consumer : table.header) {
                        columns.emplace_back(
                            consumer,
                            trace::TimeSeries(
                                resilience::numericColumnWithPolicy(
                                    table, consumer,
                                    config.badRowPolicy,
                                    &config.supervisor.faultPlan,
                                    &result.ingest,
                                    config.usagePath + ":" +
                                        consumer),
                                config.stepSeconds));
                    }
                }
                // Bill over the shared history prefix; the forecast
                // horizon has no usage yet by definition.
                const auto rup = attributeProportional(
                    result.window, config.poolGrams);
                result.consumers.clear();
                result.fairGrams.clear();
                result.rupGrams.clear();
                std::uint64_t samples = 0;
                for (const auto &[consumer, usage] : columns) {
                    if (usage.size() > result.window.size())
                        throw FatalDataError(
                            "usage column '" + consumer + "' has " +
                            std::to_string(usage.size()) +
                            " rows; the window has only " +
                            std::to_string(result.window.size()));
                    const auto fair_slice =
                        result.attribution.intensity.slice(
                            0, usage.size());
                    const auto rup_slice =
                        rup.intensity.slice(0, usage.size());
                    result.consumers.push_back(consumer);
                    result.fairGrams.push_back(
                        core::attributeUsage(fair_slice, usage));
                    result.rupGrams.push_back(
                        core::attributeUsage(rup_slice, usage));
                    samples += usage.size();
                }
                r.costMs = costMsFor(samples, 5, 1);
                return r;
            });
    }
    if (!billed) {
        supervisor.skipStage("report", "interference failed");
        supervisor.finalize(false);
        result.health = supervisor.health();
        return result;
    }

    // --- stage 5: report -------------------------------------------
    const bool reported = supervisor.runStage(
        "report", 0, [&](const StageAttempt &) {
            StageBodyResult r;
            if (!config.signalOutPath.empty()) {
                CsvWriter csv(config.signalOutPath);
                csv.writeRow({"step", "time_s", "demand",
                              "intensity_g_per_unit_s",
                              "is_forecast"});
                const auto &window = result.window;
                for (std::size_t i = 0; i < window.size(); ++i) {
                    csv.writeNumericRow(
                        {static_cast<double>(i),
                         i * window.stepSeconds(), window[i],
                         result.attribution.intensity[i],
                         i >= result.demand.size() ? 1.0 : 0.0});
                }
            }
            if (!config.billsOutPath.empty() &&
                !result.consumers.empty()) {
                CsvWriter csv(config.billsOutPath);
                csv.writeRow(
                    {"consumer", "fair_grams", "rup_grams"});
                for (std::size_t i = 0;
                     i < result.consumers.size(); ++i) {
                    csv.writeRow(result.consumers[i],
                                 {result.fairGrams[i],
                                  result.rupGrams[i]});
                }
            }
            r.costMs = costMsFor(result.window.size(), 5, 1);
            return r;
        });

    supervisor.finalize(reported);
    result.health = supervisor.health();
    return result;
}

} // namespace fairco2::pipeline
