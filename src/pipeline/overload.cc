#include "overload.hh"

#include <algorithm>
#include <stdexcept>

#include "common/obs.hh"

namespace fairco2::pipeline
{

const char *
overloadLevelName(OverloadLevel level)
{
    switch (level) {
    case OverloadLevel::Normal:
        return "normal";
    case OverloadLevel::ShedFree:
        return "shed-free";
    case OverloadLevel::Proportional:
        return "proportional";
    }
    return "unknown";
}

OverloadGovernor::OverloadGovernor(const Config &config)
    : config_(config)
{
    if (config_.lowWatermarkPercent > config_.highWatermarkPercent)
        throw std::invalid_argument(
            "OverloadGovernor: low watermark above high watermark");
    config_.escalatePeriods = std::max(1u, config_.escalatePeriods);
    config_.recoverPeriods = std::max(1u, config_.recoverPeriods);
}

OverloadLevel
OverloadGovernor::observe(std::uint64_t offered,
                          std::uint64_t deferred,
                          std::uint64_t rejected)
{
    // pressure > watermark%  <=>  blocked * 100 > offered * watermark
    // — exact integer comparison, no floating point.
    const std::uint64_t blocked = deferred + rejected;
    const bool high =
        offered > 0 &&
        blocked * 100 > offered * config_.highWatermarkPercent;
    const bool low =
        offered == 0 ||
        blocked * 100 <= offered * config_.lowWatermarkPercent;

    if (high) {
        lowStreak_ = 0;
        if (++highStreak_ >= config_.escalatePeriods &&
            level_ != OverloadLevel::Proportional) {
            level_ = static_cast<OverloadLevel>(
                static_cast<std::uint8_t>(level_) + 1);
            ++escalations_;
            highStreak_ = 0;
            FAIRCO2_COUNT("server.overload.escalations", 1);
        }
    } else if (low) {
        highStreak_ = 0;
        if (++lowStreak_ >= config_.recoverPeriods &&
            level_ != OverloadLevel::Normal) {
            level_ = static_cast<OverloadLevel>(
                static_cast<std::uint8_t>(level_) - 1);
            ++recoveries_;
            lowStreak_ = 0;
            FAIRCO2_COUNT("server.overload.recoveries", 1);
        }
    } else {
        // Between the watermarks: hold the level, reset both dwells.
        highStreak_ = 0;
        lowStreak_ = 0;
    }
    FAIRCO2_GAUGE_SET("server.overload.level",
                      static_cast<double>(
                          static_cast<std::uint8_t>(level_)));
    return level_;
}

} // namespace fairco2::pipeline
