/**
 * @file
 * Hardened telemetry ingestion: strict-vs-recover policies for bad
 * CSV rows and non-finite samples.
 *
 * Production telemetry is not pristine — rows go missing, cells hold
 * garbage, sensors emit NaN. This module is the single choke point
 * where such defects are either *repaired and counted* or the run is
 * aborted with a row-level diagnostic; a poisoned sample never flows
 * silently into attribution. The policy is selected with the shared
 * `--on-bad-row={fail,skip,interpolate}` flag:
 *
 *  - fail: first defect throws IngestError naming the row and cause
 *    (front ends exit 2);
 *  - skip: defective samples are dropped (the time base compresses —
 *    use only when gaps are tolerable);
 *  - interpolate: defective samples are rebuilt by linear
 *    interpolation between the nearest good neighbours (edges take
 *    the nearest good value).
 *
 * Every defect and repair is counted in the IngestReport and in obs
 * counters under `resilience.ingest.*`.
 */

#ifndef FAIRCO2_RESILIENCE_INGEST_HH
#define FAIRCO2_RESILIENCE_INGEST_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/errors.hh"
#include "resilience/faultplan.hh"
#include "trace/timeseries.hh"

namespace fairco2
{

class FlagSet;

namespace resilience
{

/** What to do with a defective row/sample. */
enum class BadRowPolicy
{
    Fail,        //!< abort with a row-level diagnostic (exit 2)
    Skip,        //!< drop the sample
    Interpolate, //!< rebuild from the nearest good neighbours
};

/** Parse "fail" / "skip" / "interpolate"; throws invalid_argument. */
BadRowPolicy parseBadRowPolicy(const std::string &text);

/** Policy name for diagnostics. */
const char *badRowPolicyName(BadRowPolicy policy);

/** Register the shared `--on-bad-row` flag (default "fail"). */
void addBadRowFlag(FlagSet &flags, std::string *value);

/**
 * Parse a `--on-bad-row` value; on an unknown policy prints an error
 * and exits 2, mirroring FlagSet's handling of bad flag values.
 */
BadRowPolicy applyBadRowFlag(const std::string &value);

/** Defect and repair accounting for one ingestion pass. */
struct IngestReport
{
    std::size_t rowsTotal = 0;       //!< data rows examined
    std::size_t rowsBad = 0;         //!< rows with any defect
    std::size_t parseErrors = 0;     //!< non-numeric cell text
    std::size_t missingCells = 0;    //!< empty cell or short row
    std::size_t nonFinite = 0;       //!< NaN/Inf values
    std::size_t injectedDrops = 0;   //!< fault-plan injected losses
    std::size_t injectedCorruptions = 0; //!< fault-plan corruptions
    std::size_t repaired = 0;        //!< samples interpolated
    std::size_t skipped = 0;         //!< samples dropped

    /** Merge another pass (e.g. one per usage column). */
    void merge(const IngestReport &other);

    /** One-line human summary, e.g. for CLI footers. */
    std::string summary() const;
};

/** A defective row under the Fail policy; front ends exit 2. */
class IngestError : public FatalDataError
{
  public:
    IngestError(const std::string &context, std::size_t row,
                const std::string &cause);

    /** 1-based data row index (header excluded). */
    std::size_t row() const { return row_; }

  private:
    std::size_t row_;
};

/**
 * Extract one numeric column from a parsed CSV table under the given
 * policy. Cells are parsed strictly (full consumption — "12x" is a
 * parse error, not 12); defects are repaired, skipped, or fatal per
 * @p policy. An optional fault plan poisons rows deterministically
 * *before* validation, so injected faults flow through exactly the
 * recovery machinery real defects do. Throws IngestError (Fail
 * policy, or when no valid sample remains) and std::runtime_error
 * when the column is missing.
 *
 * @param context used in diagnostics, e.g. "demand.csv:demand".
 */
std::vector<double>
numericColumnWithPolicy(const CsvTable &table,
                        const std::string &column,
                        BadRowPolicy policy,
                        const FaultPlan *plan = nullptr,
                        IngestReport *report = nullptr,
                        const std::string &context = "");

/**
 * Read a CSV file and extract @p column as a TimeSeries with the
 * given step width, under @p policy. The common entry point for the
 * CLI and benches.
 */
trace::TimeSeries
loadSeriesColumn(const std::string &path, const std::string &column,
                 double step_seconds, BadRowPolicy policy,
                 const FaultPlan *plan = nullptr,
                 IngestReport *report = nullptr);

/**
 * Repair non-finite samples already in memory (e.g. after telemetry
 * fault injection) under @p policy. Fail throws IngestError;
 * Interpolate rebuilds in place; Skip removes the samples. Returns
 * the number of samples repaired or removed.
 */
std::size_t repairNonFinite(std::vector<double> &values,
                            BadRowPolicy policy,
                            const std::string &context,
                            IngestReport *report = nullptr);

/** Convenience overload over a TimeSeries (returns the repaired copy). */
trace::TimeSeries repairSeries(const trace::TimeSeries &series,
                               BadRowPolicy policy,
                               const std::string &context,
                               IngestReport *report = nullptr);

} // namespace resilience
} // namespace fairco2

#endif // FAIRCO2_RESILIENCE_INGEST_HH
