/**
 * @file
 * Graceful SIGINT/SIGTERM handling for long-running front ends.
 *
 * A production attribution run must not lose hours of Monte Carlo
 * work to a routine pod eviction. Front ends call
 * installShutdownHandler() once at startup; the handler only sets an
 * atomic flag (async-signal-safe), and cooperative loops poll
 * shutdownRequested() at natural boundaries — the checkpointed trial
 * loop checks before starting each chunk, and the pipeline
 * supervisor checks between stage attempts. The contract, tested by
 * the kill-signal ctest scripts:
 *
 *  1. the current checkpoint chunk finishes and is flushed to disk;
 *  2. a RunHealth report (when requested) is still written, marked
 *     `interrupted`;
 *  3. the process exits with kInterruptExitCode (130), so scripts
 *     can tell "stopped on request" from both success (0), bad
 *     input (2), and a crash (anything else).
 */

#ifndef FAIRCO2_RESILIENCE_SIGNALS_HH
#define FAIRCO2_RESILIENCE_SIGNALS_HH

namespace fairco2::resilience
{

/** Exit status for a run stopped by SIGINT/SIGTERM (128 + SIGINT). */
constexpr int kInterruptExitCode = 130;

/**
 * Install the SIGINT/SIGTERM handler (idempotent). The handler only
 * records the signal; it never exits, so in-flight work can finish
 * its current unit and flush state.
 */
void installShutdownHandler();

/** True once SIGINT or SIGTERM has been received. */
bool shutdownRequested();

/** The signal number received, or 0. */
int shutdownSignal();

/** Clear the flag (test support; never call from production code). */
void resetShutdownForTest();

} // namespace fairco2::resilience

#endif // FAIRCO2_RESILIENCE_SIGNALS_HH
