/**
 * @file
 * Versioned, checksummed checkpoint/resume for Monte Carlo harnesses.
 *
 * Long Monte Carlo runs are divided into fixed-size chunks of trials.
 * After each chunk completes, the full result payload plus a
 * completed-chunk bitmap is atomically rewritten to the checkpoint
 * file (write to `<path>.tmp`, then rename). Because every trial is a
 * pure function of `base.fork(trial)`, a resumed run recomputes only
 * the missing chunks and reproduces the uninterrupted run's output
 * byte for byte — for any `--threads N`.
 *
 * File layout (native endianness, all integers little-ended on the
 * platforms we build for):
 *
 *     magic      4 bytes  "FC2K"
 *     version    u32      1 (raw payload) or 2 (compressed payload)
 *     codec      u32      version 2 only: cache::Codec id
 *     fingerprint u64     first draw of base.fork(2^63) — ties the
 *                         file to the RNG seed of the run
 *     config_hash u64     FNV-1a over every config field
 *     trials     u64
 *     chunk_trials u64
 *     record_bytes u64    sizeof(Record)
 *     stored_bytes u64    version 2 only: compressed payload size
 *     bitmap     ceil(chunks/8) bytes, bit c = chunk c complete
 *     payload    trials * record_bytes (v1) / stored_bytes (v2)
 *     checksum   u64      FNV-1a over all preceding bytes
 *
 * Version 1 is written when CheckpointOptions::codec is identity —
 * the exact bytes of the pre-codec format, so identity builds stay
 * file-compatible. Version 2 stores the payload through a
 * `cache::` compressor (see src/cache/compr_api.hh); the reader
 * accepts both and always hands back the raw payload, so resuming a
 * v1 file into a compressing run (or vice versa) reproduces the
 * same records.
 *
 * A checkpoint that is truncated, corrupted, version-mismatched, or
 * from a different configuration is rejected with a CheckpointError
 * (front ends exit 2) — a bad resume never silently degrades results.
 */

#ifndef FAIRCO2_RESILIENCE_CHECKPOINT_HH
#define FAIRCO2_RESILIENCE_CHECKPOINT_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "cache/backend.hh"
#include "common/errors.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "resilience/signals.hh"

namespace fairco2::resilience
{

/** Unusable checkpoint file (corrupt, truncated, or mismatched). */
class CheckpointError : public FatalDataError
{
  public:
    explicit CheckpointError(const std::string &message)
        : FatalDataError(message)
    {
    }
};

/** Raw-payload checkpoint format version. */
constexpr std::uint32_t kCheckpointVersion = 1;

/** Compressed-payload checkpoint format version. */
constexpr std::uint32_t kCheckpointVersionCompressed = 2;

/** FNV-1a 64-bit offset basis / prime, shared by hash helpers. */
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/** FNV-1a over a byte range, chainable via @p hash. */
std::uint64_t fnv1a64(const void *data, std::size_t size,
                      std::uint64_t hash = kFnvOffset);

/** Fold one integer field into a config hash. */
std::uint64_t hashField(std::uint64_t hash, std::uint64_t value);

/** Fold one double field into a config hash (by bit pattern). */
std::uint64_t hashField(std::uint64_t hash, double value);

/**
 * The RNG stream reserved for the checkpoint fingerprint. Trials use
 * streams [0, trials), far below this.
 */
constexpr std::uint64_t kFingerprintStream =
    std::uint64_t{1} << 63;

/** Fingerprint tying a checkpoint to a run's RNG base. */
std::uint64_t checkpointFingerprint(const Rng &base);

/** Where and how densely to checkpoint; all optional. */
struct CheckpointOptions
{
    std::string checkpointPath; //!< write snapshots here (empty: off)
    std::string resumePath;     //!< restore from here first (empty: off)
    std::uint64_t chunkTrials = 0; //!< trials per chunk (0: one chunk)
    /** Payload codec for *written* snapshots (identity keeps the v1
     *  file format byte for byte); resumes auto-detect from the
     *  file, so any codec resumes any file. Defaults to the build's
     *  FAIRCO2_CACHE_COMPRESS selection. */
    cache::Codec codec = cache::defaultBackend().codec;

    /**
     * Test hook: stop after computing this many chunks this run,
     * simulating a kill mid-flight (0 = run to completion). The
     * checkpoint written so far stays on disk for a later resume.
     */
    std::uint64_t stopAfterChunks = 0;
};

/** What a checkpointed run actually did. */
struct CheckpointRunResult
{
    std::uint64_t totalChunks = 0;
    std::uint64_t resumedChunks = 0;  //!< restored from the file
    std::uint64_t computedChunks = 0; //!< computed this run
    bool complete = false;            //!< every chunk is done
    bool interrupted = false; //!< stopped early on SIGINT/SIGTERM
};

namespace detail
{

/** Raw checkpoint contents, independent of the record type. The
 *  payload is always the *decoded* bytes; @c codec records how the
 *  file stores (or should store) it on disk. */
struct CheckpointImage
{
    std::uint64_t fingerprint = 0;
    std::uint64_t configHash = 0;
    std::uint64_t trials = 0;
    std::uint64_t chunkTrials = 0;
    std::uint64_t recordBytes = 0;
    cache::Codec codec = cache::Codec::Identity;
    std::vector<std::uint8_t> bitmap;
    std::vector<std::uint8_t> payload;
};

/** Parse and checksum-verify a checkpoint file; throws CheckpointError. */
CheckpointImage readCheckpointFile(const std::string &path);

/** Atomically (tmp + rename) write a checkpoint file. */
void writeCheckpointFile(const std::string &path,
                         const CheckpointImage &image);

/**
 * Reject an image whose identity fields do not match the current
 * run; throws CheckpointError naming the mismatched field.
 */
void validateCheckpoint(const CheckpointImage &image,
                        const std::string &path,
                        std::uint64_t fingerprint,
                        std::uint64_t config_hash,
                        std::uint64_t trials,
                        std::uint64_t chunk_trials,
                        std::uint64_t record_bytes);

inline bool
bitmapGet(const std::vector<std::uint8_t> &bitmap, std::uint64_t chunk)
{
    return (bitmap[chunk / 8] >> (chunk % 8)) & 1u;
}

inline void
bitmapSet(std::vector<std::uint8_t> &bitmap, std::uint64_t chunk)
{
    bitmap[chunk / 8] |= static_cast<std::uint8_t>(1u << (chunk % 8));
}

} // namespace detail

/**
 * Run @p trials pure trials with chunk-level checkpointing. Each
 * trial t must be a pure function of t alone (draw randomness from
 * `base.fork(t)`), so recomputation after resume is bit-identical.
 * @p records is value-initialized to @p trials entries and filled in
 * place; @p trial_fn is `Record(std::uint64_t trial)`.
 *
 * With an empty checkpoint/resume path this degrades to a plain
 * parallel trial loop over chunks. Throws CheckpointError when the
 * resume file is unusable.
 */
template <typename Record, typename TrialFn>
CheckpointRunResult
runCheckpointedTrials(const CheckpointOptions &options, const Rng &base,
                      std::uint64_t config_hash, std::uint64_t trials,
                      std::vector<Record> &records, TrialFn &&trial_fn)
{
    static_assert(std::is_trivially_copyable_v<Record>,
                  "checkpoint records must be raw-copyable PODs");

    const std::uint64_t chunk_trials =
        options.chunkTrials > 0 ? options.chunkTrials : trials;
    const std::uint64_t num_chunks =
        trials == 0 ? 0 : (trials + chunk_trials - 1) / chunk_trials;

    CheckpointRunResult result;
    result.totalChunks = num_chunks;
    records.assign(trials, Record{});
    if (trials == 0) {
        result.complete = true;
        return result;
    }

    const std::uint64_t fingerprint = checkpointFingerprint(base);
    // `resumed` is frozen before the parallel loop; `done` is only
    // touched under commit_mutex (and read again after the join).
    std::vector<std::uint8_t> resumed((num_chunks + 7) / 8, 0);

    if (!options.resumePath.empty()) {
        auto image = detail::readCheckpointFile(options.resumePath);
        detail::validateCheckpoint(image, options.resumePath,
                                   fingerprint, config_hash, trials,
                                   chunk_trials, sizeof(Record));
        resumed = image.bitmap;
        for (std::uint64_t c = 0; c < num_chunks; ++c) {
            if (!detail::bitmapGet(resumed, c))
                continue;
            ++result.resumedChunks;
            const std::uint64_t first = c * chunk_trials;
            const std::uint64_t count =
                std::min(chunk_trials, trials - first);
            std::memcpy(records.data() + first,
                        image.payload.data() +
                            first * sizeof(Record),
                        count * sizeof(Record));
        }
    }

    std::vector<std::uint8_t> done = resumed;
    detail::CheckpointImage image;
    if (!options.checkpointPath.empty()) {
        image.codec = options.codec;
        image.fingerprint = fingerprint;
        image.configHash = config_hash;
        image.trials = trials;
        image.chunkTrials = chunk_trials;
        image.recordBytes = sizeof(Record);
        image.payload.resize(trials * sizeof(Record));
        // Seed the persistent payload with the resumed chunks so a
        // re-written checkpoint keeps them.
        std::memcpy(image.payload.data(), records.data(),
                    image.payload.size());
    }

    std::mutex commit_mutex;
    std::atomic<std::uint64_t> reserved{0};
    std::atomic<std::uint64_t> computed{0};

    const auto run_chunk = [&](std::uint64_t c) {
        if (detail::bitmapGet(resumed, c))
            return;
        // A shutdown signal stops *before* the next chunk starts;
        // chunks already in flight finish and commit normally, so
        // the checkpoint on disk always ends at a chunk boundary.
        if (shutdownRequested())
            return;
        if (options.stopAfterChunks > 0 &&
            reserved.fetch_add(1) >= options.stopAfterChunks)
            return;
        const std::uint64_t first = c * chunk_trials;
        const std::uint64_t last =
            std::min(first + chunk_trials, trials);
        for (std::uint64_t t = first; t < last; ++t)
            records[t] = trial_fn(t);
        computed.fetch_add(1);

        // Commit: only this chunk's own bytes are copied, so no
        // thread reads another chunk's records mid-write.
        std::lock_guard<std::mutex> lock(commit_mutex);
        detail::bitmapSet(done, c);
        if (options.checkpointPath.empty())
            return;
        std::memcpy(image.payload.data() + first * sizeof(Record),
                    records.data() + first,
                    (last - first) * sizeof(Record));
        image.bitmap = done;
        detail::writeCheckpointFile(options.checkpointPath, image);
    };
    parallel::parallelFor(
        0, static_cast<std::size_t>(num_chunks), 1,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t c = lo; c < hi; ++c)
                run_chunk(c);
        });

    result.computedChunks = computed.load();
    result.complete = true;
    for (std::uint64_t c = 0; c < num_chunks; ++c) {
        if (!detail::bitmapGet(done, c)) {
            result.complete = false;
            break;
        }
    }
    result.interrupted = !result.complete && shutdownRequested();
    return result;
}

} // namespace fairco2::resilience

#endif // FAIRCO2_RESILIENCE_CHECKPOINT_HH
