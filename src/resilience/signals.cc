#include "resilience/signals.hh"

#include <atomic>
#include <csignal>

namespace fairco2::resilience
{

namespace
{

// sig_atomic_t-compatible and lock-free: the handler may only touch
// async-signal-safe state, so the flag is a relaxed atomic int.
std::atomic<int> g_signal{0};

extern "C" void
onShutdownSignal(int signum)
{
    g_signal.store(signum, std::memory_order_relaxed);
}

} // namespace

void
installShutdownHandler()
{
    struct sigaction action = {};
    action.sa_handler = onShutdownSignal;
    sigemptyset(&action.sa_mask);
    // No SA_RESTART: a blocked read should come back with EINTR so
    // the front end reaches its next shutdownRequested() poll.
    action.sa_flags = 0;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

bool
shutdownRequested()
{
    return g_signal.load(std::memory_order_relaxed) != 0;
}

int
shutdownSignal()
{
    return g_signal.load(std::memory_order_relaxed);
}

void
resetShutdownForTest()
{
    g_signal.store(0, std::memory_order_relaxed);
}

} // namespace fairco2::resilience
