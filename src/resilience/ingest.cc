#include "resilience/ingest.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/flags.hh"
#include "common/obs.hh"

namespace fairco2::resilience
{

namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/** Per-sample defect classification, in diagnostic wording. */
enum class Defect
{
    None,
    ParseError,
    MissingCell,
    NonFinite,
    InjectedDrop,
    InjectedCorruption,
};

const char *
defectName(Defect defect)
{
    switch (defect) {
      case Defect::ParseError:
        return "non-numeric cell";
      case Defect::MissingCell:
        return "missing cell";
      case Defect::NonFinite:
        return "non-finite value";
      case Defect::InjectedDrop:
        return "injected dropout";
      case Defect::InjectedCorruption:
        return "injected corruption";
      case Defect::None:
        break;
    }
    return "ok";
}

void
countDefect(IngestReport &report, Defect defect)
{
    ++report.rowsBad;
    FAIRCO2_COUNT("resilience.ingest.bad_rows", 1);
    switch (defect) {
      case Defect::ParseError:
        ++report.parseErrors;
        FAIRCO2_COUNT("resilience.ingest.cause.parse", 1);
        break;
      case Defect::MissingCell:
        ++report.missingCells;
        FAIRCO2_COUNT("resilience.ingest.cause.missing", 1);
        break;
      case Defect::NonFinite:
        ++report.nonFinite;
        FAIRCO2_COUNT("resilience.ingest.cause.nonfinite", 1);
        break;
      case Defect::InjectedDrop:
        ++report.injectedDrops;
        FAIRCO2_COUNT("resilience.ingest.cause.injected_drop", 1);
        break;
      case Defect::InjectedCorruption:
        ++report.injectedCorruptions;
        FAIRCO2_COUNT("resilience.ingest.cause.injected_corrupt", 1);
        break;
      case Defect::None:
        break;
    }
}

/**
 * Strict full-consumption double parse. Unlike std::stod alone,
 * trailing garbage ("12x") and textual NaN/Inf are defects here —
 * telemetry columns are plain decimal numbers.
 */
Defect
parseCell(const std::string &text, double &value)
{
    if (text.empty())
        return Defect::MissingCell;
    std::size_t pos = 0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception &) {
        return Defect::ParseError;
    }
    if (pos != text.size())
        return Defect::ParseError;
    if (!std::isfinite(value))
        return Defect::NonFinite;
    return Defect::None;
}

/**
 * Linear interpolation repair over samples marked NaN. Edges take
 * the nearest finite value. Requires at least one finite sample.
 */
void
interpolateGaps(std::vector<double> &values)
{
    const std::size_t n = values.size();
    std::size_t prev_good = n; // n = "none yet"
    for (std::size_t i = 0; i < n; ++i) {
        if (!std::isnan(values[i])) {
            prev_good = i;
            continue;
        }
        // Find the end of this gap.
        std::size_t next_good = i;
        while (next_good < n && std::isnan(values[next_good]))
            ++next_good;
        for (std::size_t g = i; g < next_good; ++g) {
            if (prev_good == n && next_good == n) {
                break; // caller guarantees this cannot happen
            } else if (prev_good == n) {
                values[g] = values[next_good];
            } else if (next_good == n) {
                values[g] = values[prev_good];
            } else {
                const double span = static_cast<double>(
                    next_good - prev_good);
                const double frac =
                    static_cast<double>(g - prev_good) / span;
                values[g] = values[prev_good] * (1.0 - frac) +
                    values[next_good] * frac;
            }
        }
        i = next_good; // loop ++i moves past it; next_good is finite
        if (next_good < n)
            prev_good = next_good;
    }
}

} // namespace

void
IngestReport::merge(const IngestReport &other)
{
    rowsTotal += other.rowsTotal;
    rowsBad += other.rowsBad;
    parseErrors += other.parseErrors;
    missingCells += other.missingCells;
    nonFinite += other.nonFinite;
    injectedDrops += other.injectedDrops;
    injectedCorruptions += other.injectedCorruptions;
    repaired += other.repaired;
    skipped += other.skipped;
}

std::string
IngestReport::summary() const
{
    std::ostringstream out;
    out << rowsBad << " bad of " << rowsTotal << " rows ("
        << parseErrors << " parse, " << missingCells << " missing, "
        << nonFinite << " non-finite, "
        << injectedDrops + injectedCorruptions << " injected); "
        << repaired << " interpolated, " << skipped << " skipped";
    return out.str();
}

IngestError::IngestError(const std::string &context, std::size_t row,
                         const std::string &cause)
    : FatalDataError(context + ": row " + std::to_string(row) +
                     ": " + cause),
      row_(row)
{
}

BadRowPolicy
parseBadRowPolicy(const std::string &text)
{
    if (text == "fail")
        return BadRowPolicy::Fail;
    if (text == "skip")
        return BadRowPolicy::Skip;
    if (text == "interpolate")
        return BadRowPolicy::Interpolate;
    throw std::invalid_argument(
        "unknown bad-row policy '" + text +
        "' (known: fail, skip, interpolate)");
}

const char *
badRowPolicyName(BadRowPolicy policy)
{
    switch (policy) {
      case BadRowPolicy::Fail:
        return "fail";
      case BadRowPolicy::Skip:
        return "skip";
      case BadRowPolicy::Interpolate:
        return "interpolate";
    }
    return "unknown";
}

void
addBadRowFlag(FlagSet &flags, std::string *value)
{
    flags.addString("on-bad-row", value,
                    "bad-row policy: fail, skip, or interpolate");
}

BadRowPolicy
applyBadRowFlag(const std::string &value)
{
    try {
        return parseBadRowPolicy(value);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: --on-bad-row: %s\n",
                     error.what());
        std::exit(2);
    }
}

std::vector<double>
numericColumnWithPolicy(const CsvTable &table,
                        const std::string &column,
                        BadRowPolicy policy, const FaultPlan *plan,
                        IngestReport *report,
                        const std::string &context)
{
    const std::size_t col = table.columnIndex(column);
    if (col == std::string::npos)
        throw std::runtime_error("no such CSV column: " + column);

    const std::string where =
        context.empty() ? column : context;
    IngestReport local;
    IngestReport &rep = report ? *report : local;

    // Pass 1: parse strictly; defective samples become NaN markers.
    std::vector<double> values;
    values.reserve(table.rows.size());
    std::vector<std::size_t> bad_rows;
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        ++rep.rowsTotal;
        FAIRCO2_COUNT("resilience.ingest.rows", 1);

        double value = kNaN;
        Defect defect = Defect::None;
        if (plan && plan->fires(FaultSite::IngestDrop, r)) {
            defect = Defect::InjectedDrop;
            plan->noteInjected();
        } else if (col >= table.rows[r].size()) {
            defect = Defect::MissingCell;
        } else {
            defect = parseCell(table.rows[r][col], value);
            if (defect == Defect::None && plan &&
                plan->fires(FaultSite::IngestCorrupt, r)) {
                defect = Defect::InjectedCorruption;
                plan->noteInjected();
            }
        }

        if (defect == Defect::None) {
            values.push_back(value);
            continue;
        }
        countDefect(rep, defect);
        if (policy == BadRowPolicy::Fail)
            throw IngestError(where, r + 1, defectName(defect));
        if (policy == BadRowPolicy::Skip) {
            ++rep.skipped;
            FAIRCO2_COUNT("resilience.ingest.skipped", 1);
            continue;
        }
        values.push_back(kNaN);
        bad_rows.push_back(values.size() - 1);
    }

    if (policy == BadRowPolicy::Interpolate && !bad_rows.empty()) {
        if (bad_rows.size() == values.size())
            throw IngestError(where, 1,
                              "no valid samples to interpolate "
                              "from");
        interpolateGaps(values);
        rep.repaired += bad_rows.size();
        FAIRCO2_COUNT("resilience.ingest.repaired",
                      bad_rows.size());
    }
    if (values.empty())
        throw IngestError(where, 1, "no valid samples");
    return values;
}

trace::TimeSeries
loadSeriesColumn(const std::string &path, const std::string &column,
                 double step_seconds, BadRowPolicy policy,
                 const FaultPlan *plan, IngestReport *report)
{
    const auto table = readCsv(path);
    auto values = numericColumnWithPolicy(
        table, column, policy, plan, report, path + ":" + column);
    return trace::TimeSeries(std::move(values), step_seconds);
}

std::size_t
repairNonFinite(std::vector<double> &values, BadRowPolicy policy,
                const std::string &context, IngestReport *report)
{
    IngestReport local;
    IngestReport &rep = report ? *report : local;

    std::size_t defects = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (std::isfinite(values[i]))
            continue;
        ++defects;
        countDefect(rep, Defect::NonFinite);
        if (policy == BadRowPolicy::Fail)
            throw IngestError(context, i + 1,
                              defectName(Defect::NonFinite));
        // Normalize Inf to NaN so both repair paths see one marker.
        values[i] = kNaN;
    }
    rep.rowsTotal += values.size();
    if (defects == 0)
        return 0;

    if (policy == BadRowPolicy::Skip) {
        std::vector<double> kept;
        kept.reserve(values.size() - defects);
        for (double v : values) {
            if (!std::isnan(v))
                kept.push_back(v);
        }
        values = std::move(kept);
        rep.skipped += defects;
        FAIRCO2_COUNT("resilience.ingest.skipped", defects);
        if (values.empty())
            throw IngestError(context, 1, "no valid samples");
        return defects;
    }

    if (defects == values.size())
        throw IngestError(context, 1,
                          "no valid samples to interpolate from");
    interpolateGaps(values);
    rep.repaired += defects;
    FAIRCO2_COUNT("resilience.ingest.repaired", defects);
    return defects;
}

trace::TimeSeries
repairSeries(const trace::TimeSeries &series, BadRowPolicy policy,
             const std::string &context, IngestReport *report)
{
    std::vector<double> values = series.values();
    repairNonFinite(values, policy, context, report);
    return trace::TimeSeries(std::move(values),
                             series.stepSeconds());
}

} // namespace fairco2::resilience
