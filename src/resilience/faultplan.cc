#include "resilience/faultplan.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "common/flags.hh"
#include "common/obs.hh"

namespace fairco2::resilience
{

namespace
{

/** Full-consumption double parse; throws on garbage. */
double
strictDouble(const std::string &text)
{
    if (text.empty())
        throw std::invalid_argument("empty value");
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size())
        throw std::invalid_argument("trailing garbage in '" + text +
                                    "'");
    return v;
}

double
probability(const std::string &key, const std::string &text)
{
    const double p = strictDouble(text);
    if (!(p >= 0.0 && p <= 1.0))
        throw std::invalid_argument("fault-plan " + key +
                                    " must be in [0, 1], got '" +
                                    text + "'");
    return p;
}

/** Decision stream id: site in the top byte, index below. */
std::uint64_t
streamOf(FaultSite site, std::uint64_t index)
{
    return (static_cast<std::uint64_t>(site) << 56) ^
        (index & ((std::uint64_t{1} << 56) - 1));
}

} // namespace

FaultPlan &
FaultPlan::operator=(const FaultPlan &other)
{
    if (this == &other)
        return *this;
    spec_ = other.spec_;
    root_ = other.root_;
    active_ = other.active_;
    drop_ = other.drop_;
    corrupt_ = other.corrupt_;
    nan_ = other.nan_;
    nodeFail_ = other.nodeFail_;
    vmPreempt_ = other.vmPreempt_;
    stageCrash_ = other.stageCrash_;
    stageStall_ = other.stageStall_;
    stageTimeout_ = other.stageTimeout_;
    cacheCorrupt_ = other.cacheCorrupt_;
    primaryCrash_ = other.primaryCrash_;
    injected_.store(other.injected_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    plan.spec_ = spec;
    std::uint64_t seed = 1;

    std::string token;
    std::vector<std::string> tokens;
    for (char c : spec + ",") {
        if (c == ',') {
            if (!token.empty())
                tokens.push_back(token);
            token.clear();
        } else if (c != ' ') {
            token += c;
        }
    }

    for (const auto &entry : tokens) {
        const auto eq = entry.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "fault-plan entry '" + entry +
                "' is not key=value");
        const std::string key = entry.substr(0, eq);
        const std::string value = entry.substr(eq + 1);
        if (key == "seed") {
            const double v = strictDouble(value);
            if (v < 0.0 || v != std::floor(v))
                throw std::invalid_argument(
                    "fault-plan seed must be a non-negative "
                    "integer, got '" + value + "'");
            seed = static_cast<std::uint64_t>(v);
        } else if (key == "drop") {
            plan.drop_ = probability(key, value);
        } else if (key == "corrupt") {
            plan.corrupt_ = probability(key, value);
        } else if (key == "nan") {
            plan.nan_ = probability(key, value);
        } else if (key == "node-fail") {
            plan.nodeFail_ = probability(key, value);
        } else if (key == "vm-preempt") {
            plan.vmPreempt_ = probability(key, value);
        } else if (key == "stage-crash") {
            plan.stageCrash_ = probability(key, value);
        } else if (key == "stage-stall") {
            plan.stageStall_ = probability(key, value);
        } else if (key == "stage-timeout") {
            plan.stageTimeout_ = probability(key, value);
        } else if (key == "cache-corrupt") {
            plan.cacheCorrupt_ = probability(key, value);
        } else if (key == "primary-crash") {
            plan.primaryCrash_ = probability(key, value);
        } else {
            throw std::invalid_argument(
                "unknown fault-plan key '" + key +
                "' (known: seed, drop, corrupt, nan, node-fail, "
                "vm-preempt, stage-crash, stage-stall, "
                "stage-timeout, cache-corrupt, primary-crash)");
        }
    }

    // Salt keeps plan streams disjoint from simulation seeds.
    plan.root_ = Rng(seed ^ 0x9d5af0c6b2e17d35ULL);
    plan.active_ = plan.drop_ > 0.0 || plan.corrupt_ > 0.0 ||
        plan.nan_ > 0.0 || plan.nodeFail_ > 0.0 ||
        plan.vmPreempt_ > 0.0 || plan.stageCrash_ > 0.0 ||
        plan.stageStall_ > 0.0 || plan.stageTimeout_ > 0.0 ||
        plan.cacheCorrupt_ > 0.0 || plan.primaryCrash_ > 0.0;
    return plan;
}

double
FaultPlan::probabilityFor(FaultSite site) const
{
    switch (site) {
      case FaultSite::TelemetryDrop:
      case FaultSite::IngestDrop:
        return drop_;
      case FaultSite::TelemetryCorrupt:
      case FaultSite::IngestCorrupt:
        return corrupt_;
      case FaultSite::NanBoundary:
        return nan_;
      case FaultSite::NodeFail:
        return nodeFail_;
      case FaultSite::VmPreempt:
        return vmPreempt_;
      case FaultSite::StageCrash:
        return stageCrash_;
      case FaultSite::StageStall:
        return stageStall_;
      case FaultSite::StageTimeout:
        return stageTimeout_;
      case FaultSite::CacheCorrupt:
        return cacheCorrupt_;
      case FaultSite::PrimaryCrash:
        return primaryCrash_;
      default:
        return 0.0;
    }
}

bool
FaultPlan::fires(FaultSite site, std::uint64_t index) const
{
    const double p = probabilityFor(site);
    if (p <= 0.0)
        return false;
    Rng decision = root_.fork(streamOf(site, index));
    return decision.uniform() < p;
}

double
FaultPlan::draw(FaultSite site, std::uint64_t index, double lo,
                double hi) const
{
    Rng decision = root_.fork(streamOf(site, index));
    return decision.uniform(lo, hi);
}

double
FaultPlan::nodeFailureTime(std::size_t node, double horizon) const
{
    if (!fires(FaultSite::NodeFail, node))
        return -1.0;
    return draw(FaultSite::NodeFailTime, node, 0.0, horizon);
}

double
FaultPlan::vmPreemptionFraction(std::uint64_t vm) const
{
    if (!fires(FaultSite::VmPreempt, vm))
        return -1.0;
    return draw(FaultSite::VmPreemptTime, vm, 0.05, 0.95);
}

std::uint64_t
injectTelemetryFaults(std::vector<double> &values,
                      const FaultPlan &plan)
{
    if (!plan.active())
        return 0;
    std::uint64_t injected = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (plan.fires(FaultSite::TelemetryDrop, i)) {
            values[i] = std::numeric_limits<double>::quiet_NaN();
            ++injected;
            FAIRCO2_COUNT("resilience.fault.telemetry_drop", 1);
        } else if (plan.fires(FaultSite::TelemetryCorrupt, i)) {
            values[i] *=
                plan.draw(FaultSite::CorruptValue, i, -2.0, 2.0);
            ++injected;
            FAIRCO2_COUNT("resilience.fault.telemetry_corrupt", 1);
        }
    }
    plan.noteInjected(injected);
    return injected;
}

trace::TimeSeries
injectTelemetryFaults(const trace::TimeSeries &series,
                      const FaultPlan &plan, std::uint64_t *injected)
{
    std::vector<double> values = series.values();
    const std::uint64_t n = injectTelemetryFaults(values, plan);
    if (injected)
        *injected = n;
    return trace::TimeSeries(std::move(values),
                             series.stepSeconds());
}

std::uint64_t
injectBoundaryNans(std::vector<double> &values, const FaultPlan &plan)
{
    if (!plan.active())
        return 0;
    std::uint64_t injected = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (plan.fires(FaultSite::NanBoundary, i)) {
            values[i] = std::numeric_limits<double>::quiet_NaN();
            ++injected;
            FAIRCO2_COUNT("resilience.fault.nan_injected", 1);
        }
    }
    plan.noteInjected(injected);
    return injected;
}

void
addFaultPlanFlag(FlagSet &flags, std::string *spec)
{
    flags.addString(
        "fault-plan", spec,
        "deterministic fault injection spec, e.g. "
        "seed=42,drop=0.01,corrupt=0.005 (empty: no faults)");
}

FaultPlan
applyFaultPlanFlag(const std::string &spec)
{
    if (spec.empty())
        return FaultPlan();
    try {
        return FaultPlan::parse(spec);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: --fault-plan: %s\n",
                     error.what());
        std::exit(2);
    }
}

} // namespace fairco2::resilience
