#include "resilience/checkpoint.hh"

#include <cstdio>
#include <fstream>

#include "cache/compr_api.hh"

namespace fairco2::resilience
{

namespace
{

constexpr char kMagic[4] = {'F', 'C', '2', 'K'};
constexpr std::size_t kHeaderBytes =
    sizeof(kMagic) + sizeof(std::uint32_t) + 5 * sizeof(std::uint64_t);
// v2 inserts a u32 codec id after the version and a u64
// stored-payload size after record_bytes.
constexpr std::size_t kHeaderBytesV2 =
    kHeaderBytes + sizeof(std::uint32_t) + sizeof(std::uint64_t);

std::uint32_t
codecId(cache::Codec codec)
{
    return codec == cache::Codec::Lz ? 1u : 0u;
}

void
appendBytes(std::vector<std::uint8_t> &out, const void *data,
            std::size_t size)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    out.insert(out.end(), bytes, bytes + size);
}

std::uint64_t
readU64(const std::uint8_t *data)
{
    std::uint64_t value = 0;
    std::memcpy(&value, data, sizeof(value));
    return value;
}

} // namespace

std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t hash)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t
hashField(std::uint64_t hash, std::uint64_t value)
{
    return fnv1a64(&value, sizeof(value), hash);
}

std::uint64_t
hashField(std::uint64_t hash, double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return hashField(hash, bits);
}

std::uint64_t
checkpointFingerprint(const Rng &base)
{
    return base.fork(kFingerprintStream).next();
}

namespace detail
{

CheckpointImage
readCheckpointFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CheckpointError("cannot read checkpoint file: " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        throw CheckpointError("cannot read checkpoint file: " + path);

    if (bytes.size() < kHeaderBytes + sizeof(std::uint64_t))
        throw CheckpointError("truncated checkpoint: " + path);
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        throw CheckpointError("not a checkpoint file: " + path);

    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + sizeof(kMagic),
                sizeof(version));
    if (version != kCheckpointVersion &&
        version != kCheckpointVersionCompressed)
        throw CheckpointError(
            "unsupported checkpoint version " +
            std::to_string(version) + " (expected " +
            std::to_string(kCheckpointVersion) + " or " +
            std::to_string(kCheckpointVersionCompressed) + "): " +
            path);
    const bool compressed = version == kCheckpointVersionCompressed;
    const std::size_t header_bytes =
        compressed ? kHeaderBytesV2 : kHeaderBytes;
    if (bytes.size() < header_bytes + sizeof(std::uint64_t))
        throw CheckpointError("truncated checkpoint: " + path);

    const std::uint8_t *cursor =
        bytes.data() + sizeof(kMagic) + sizeof(version);
    CheckpointImage image;
    if (compressed) {
        std::uint32_t codec_id = 0;
        std::memcpy(&codec_id, cursor, sizeof(codec_id));
        cursor += sizeof(codec_id);
        if (codec_id == 0)
            image.codec = cache::Codec::Identity;
        else if (codec_id == 1)
            image.codec = cache::Codec::Lz;
        else
            throw CheckpointError("unknown checkpoint codec id " +
                                  std::to_string(codec_id) + ": " +
                                  path);
    }
    image.fingerprint = readU64(cursor);
    image.configHash = readU64(cursor + 8);
    image.trials = readU64(cursor + 16);
    image.chunkTrials = readU64(cursor + 24);
    image.recordBytes = readU64(cursor + 32);

    if (image.trials == 0 || image.chunkTrials == 0 ||
        image.recordBytes == 0)
        throw CheckpointError("corrupt checkpoint header: " + path);
    const std::uint64_t chunks =
        (image.trials + image.chunkTrials - 1) / image.chunkTrials;
    const std::uint64_t bitmap_bytes = (chunks + 7) / 8;
    const std::uint64_t payload_bytes =
        image.trials * image.recordBytes;
    const std::uint64_t stored_payload_bytes =
        compressed ? readU64(cursor + 40) : payload_bytes;
    const std::uint64_t expected = header_bytes + bitmap_bytes +
        stored_payload_bytes + sizeof(std::uint64_t);
    if (bytes.size() != expected)
        throw CheckpointError("truncated checkpoint: " + path);

    const std::uint64_t stored =
        readU64(bytes.data() + bytes.size() - sizeof(std::uint64_t));
    const std::uint64_t actual =
        fnv1a64(bytes.data(), bytes.size() - sizeof(std::uint64_t));
    if (stored != actual)
        throw CheckpointError("checkpoint checksum mismatch: " + path);

    const std::uint8_t *body = bytes.data() + header_bytes;
    image.bitmap.assign(body, body + bitmap_bytes);
    const std::uint8_t *stored_payload = body + bitmap_bytes;
    if (!compressed) {
        image.payload.assign(stored_payload,
                             stored_payload + payload_bytes);
        return image;
    }
    image.payload.resize(payload_bytes);
    try {
        if (image.codec == cache::Codec::Lz)
            cache::LzCompr::decompress(
                stored_payload, stored_payload_bytes,
                image.payload.data(), payload_bytes);
        else
            cache::IdentityCompr::decompress(
                stored_payload, stored_payload_bytes,
                image.payload.data(), payload_bytes);
    } catch (const cache::CorruptBlockError &e) {
        throw CheckpointError(
            std::string("checkpoint payload does not decompress (") +
            e.what() + "): " + path);
    }
    return image;
}

void
writeCheckpointFile(const std::string &path,
                    const CheckpointImage &image)
{
    // Identity keeps emitting the exact v1 byte stream; only a real
    // compressor switches the file to v2.
    const bool compressed = image.codec != cache::Codec::Identity;
    std::vector<std::uint8_t> stored_payload;
    if (compressed)
        stored_payload = cache::LzCompr::compress(
            image.payload.data(), image.payload.size());

    std::vector<std::uint8_t> bytes;
    bytes.reserve((compressed ? kHeaderBytesV2 : kHeaderBytes) +
                  image.bitmap.size() +
                  (compressed ? stored_payload.size()
                              : image.payload.size()) +
                  sizeof(std::uint64_t));
    appendBytes(bytes, kMagic, sizeof(kMagic));
    const std::uint32_t version = compressed
        ? kCheckpointVersionCompressed
        : kCheckpointVersion;
    appendBytes(bytes, &version, sizeof(version));
    if (compressed) {
        const std::uint32_t codec_id = codecId(image.codec);
        appendBytes(bytes, &codec_id, sizeof(codec_id));
    }
    appendBytes(bytes, &image.fingerprint, sizeof(std::uint64_t));
    appendBytes(bytes, &image.configHash, sizeof(std::uint64_t));
    appendBytes(bytes, &image.trials, sizeof(std::uint64_t));
    appendBytes(bytes, &image.chunkTrials, sizeof(std::uint64_t));
    appendBytes(bytes, &image.recordBytes, sizeof(std::uint64_t));
    if (compressed) {
        const std::uint64_t stored_payload_bytes =
            stored_payload.size();
        appendBytes(bytes, &stored_payload_bytes,
                    sizeof(stored_payload_bytes));
    }
    appendBytes(bytes, image.bitmap.data(), image.bitmap.size());
    if (compressed)
        appendBytes(bytes, stored_payload.data(),
                    stored_payload.size());
    else
        appendBytes(bytes, image.payload.data(),
                    image.payload.size());
    const std::uint64_t checksum =
        fnv1a64(bytes.data(), bytes.size());
    appendBytes(bytes, &checksum, sizeof(checksum));

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw CheckpointError("cannot write checkpoint file: " +
                                  tmp);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            throw CheckpointError("cannot write checkpoint file: " +
                                  tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw CheckpointError("cannot replace checkpoint file: " +
                              path);
}

void
validateCheckpoint(const CheckpointImage &image,
                   const std::string &path, std::uint64_t fingerprint,
                   std::uint64_t config_hash, std::uint64_t trials,
                   std::uint64_t chunk_trials,
                   std::uint64_t record_bytes)
{
    if (image.fingerprint != fingerprint)
        throw CheckpointError(
            "checkpoint seed fingerprint does not match this run: " +
            path);
    if (image.configHash != config_hash)
        throw CheckpointError(
            "checkpoint configuration does not match this run: " +
            path);
    if (image.trials != trials)
        throw CheckpointError(
            "checkpoint trial count " +
            std::to_string(image.trials) + " does not match " +
            std::to_string(trials) + ": " + path);
    if (image.chunkTrials != chunk_trials)
        throw CheckpointError(
            "checkpoint chunk size " +
            std::to_string(image.chunkTrials) + " does not match " +
            std::to_string(chunk_trials) + ": " + path);
    if (image.recordBytes != record_bytes)
        throw CheckpointError(
            "checkpoint record size " +
            std::to_string(image.recordBytes) + " does not match " +
            std::to_string(record_bytes) + ": " + path);
}

} // namespace detail

} // namespace fairco2::resilience
