#include "resilience/checkpoint.hh"

#include <cstdio>
#include <fstream>

namespace fairco2::resilience
{

namespace
{

constexpr char kMagic[4] = {'F', 'C', '2', 'K'};
constexpr std::size_t kHeaderBytes =
    sizeof(kMagic) + sizeof(std::uint32_t) + 5 * sizeof(std::uint64_t);

void
appendBytes(std::vector<std::uint8_t> &out, const void *data,
            std::size_t size)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    out.insert(out.end(), bytes, bytes + size);
}

std::uint64_t
readU64(const std::uint8_t *data)
{
    std::uint64_t value = 0;
    std::memcpy(&value, data, sizeof(value));
    return value;
}

} // namespace

std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t hash)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t
hashField(std::uint64_t hash, std::uint64_t value)
{
    return fnv1a64(&value, sizeof(value), hash);
}

std::uint64_t
hashField(std::uint64_t hash, double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return hashField(hash, bits);
}

std::uint64_t
checkpointFingerprint(const Rng &base)
{
    return base.fork(kFingerprintStream).next();
}

namespace detail
{

CheckpointImage
readCheckpointFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CheckpointError("cannot read checkpoint file: " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        throw CheckpointError("cannot read checkpoint file: " + path);

    if (bytes.size() < kHeaderBytes + sizeof(std::uint64_t))
        throw CheckpointError("truncated checkpoint: " + path);
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        throw CheckpointError("not a checkpoint file: " + path);

    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + sizeof(kMagic),
                sizeof(version));
    if (version != kCheckpointVersion)
        throw CheckpointError(
            "unsupported checkpoint version " +
            std::to_string(version) + " (expected " +
            std::to_string(kCheckpointVersion) + "): " + path);

    const std::uint8_t *cursor =
        bytes.data() + sizeof(kMagic) + sizeof(version);
    CheckpointImage image;
    image.fingerprint = readU64(cursor);
    image.configHash = readU64(cursor + 8);
    image.trials = readU64(cursor + 16);
    image.chunkTrials = readU64(cursor + 24);
    image.recordBytes = readU64(cursor + 32);

    if (image.trials == 0 || image.chunkTrials == 0 ||
        image.recordBytes == 0)
        throw CheckpointError("corrupt checkpoint header: " + path);
    const std::uint64_t chunks =
        (image.trials + image.chunkTrials - 1) / image.chunkTrials;
    const std::uint64_t bitmap_bytes = (chunks + 7) / 8;
    const std::uint64_t payload_bytes =
        image.trials * image.recordBytes;
    const std::uint64_t expected = kHeaderBytes + bitmap_bytes +
        payload_bytes + sizeof(std::uint64_t);
    if (bytes.size() != expected)
        throw CheckpointError("truncated checkpoint: " + path);

    const std::uint64_t stored =
        readU64(bytes.data() + bytes.size() - sizeof(std::uint64_t));
    const std::uint64_t actual =
        fnv1a64(bytes.data(), bytes.size() - sizeof(std::uint64_t));
    if (stored != actual)
        throw CheckpointError("checkpoint checksum mismatch: " + path);

    const std::uint8_t *body = bytes.data() + kHeaderBytes;
    image.bitmap.assign(body, body + bitmap_bytes);
    image.payload.assign(body + bitmap_bytes,
                         body + bitmap_bytes + payload_bytes);
    return image;
}

void
writeCheckpointFile(const std::string &path,
                    const CheckpointImage &image)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(kHeaderBytes + image.bitmap.size() +
                  image.payload.size() + sizeof(std::uint64_t));
    appendBytes(bytes, kMagic, sizeof(kMagic));
    appendBytes(bytes, &kCheckpointVersion,
                sizeof(kCheckpointVersion));
    appendBytes(bytes, &image.fingerprint, sizeof(std::uint64_t));
    appendBytes(bytes, &image.configHash, sizeof(std::uint64_t));
    appendBytes(bytes, &image.trials, sizeof(std::uint64_t));
    appendBytes(bytes, &image.chunkTrials, sizeof(std::uint64_t));
    appendBytes(bytes, &image.recordBytes, sizeof(std::uint64_t));
    appendBytes(bytes, image.bitmap.data(), image.bitmap.size());
    appendBytes(bytes, image.payload.data(), image.payload.size());
    const std::uint64_t checksum =
        fnv1a64(bytes.data(), bytes.size());
    appendBytes(bytes, &checksum, sizeof(checksum));

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw CheckpointError("cannot write checkpoint file: " +
                                  tmp);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            throw CheckpointError("cannot write checkpoint file: " +
                                  tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw CheckpointError("cannot replace checkpoint file: " +
                              path);
}

void
validateCheckpoint(const CheckpointImage &image,
                   const std::string &path, std::uint64_t fingerprint,
                   std::uint64_t config_hash, std::uint64_t trials,
                   std::uint64_t chunk_trials,
                   std::uint64_t record_bytes)
{
    if (image.fingerprint != fingerprint)
        throw CheckpointError(
            "checkpoint seed fingerprint does not match this run: " +
            path);
    if (image.configHash != config_hash)
        throw CheckpointError(
            "checkpoint configuration does not match this run: " +
            path);
    if (image.trials != trials)
        throw CheckpointError(
            "checkpoint trial count " +
            std::to_string(image.trials) + " does not match " +
            std::to_string(trials) + ": " + path);
    if (image.chunkTrials != chunk_trials)
        throw CheckpointError(
            "checkpoint chunk size " +
            std::to_string(image.chunkTrials) + " does not match " +
            std::to_string(chunk_trials) + ": " + path);
    if (image.recordBytes != record_bytes)
        throw CheckpointError(
            "checkpoint record size " +
            std::to_string(image.recordBytes) + " does not match " +
            std::to_string(record_bytes) + ": " + path);
}

} // namespace detail

} // namespace fairco2::resilience
