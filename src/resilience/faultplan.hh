/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * A FaultPlan turns a short spec string into a family of *pure*
 * fault decisions: whether telemetry sample i is dropped, whether
 * ingested row r is corrupted, whether node n fails during a
 * simulation, whether VM v is preempted. Every decision is derived
 * from the plan seed and the (site, index) pair through the same
 * counter-based Rng::fork machinery the Monte Carlo harnesses use,
 * so an injected fault pattern is bit-identical for any `--threads N`
 * and independent of the order in which call sites happen to query
 * the plan.
 *
 * Spec grammar (comma-separated key=value, all keys optional):
 *
 *     seed=42,drop=0.01,corrupt=0.005,nan=0.001,
 *     node-fail=0.02,vm-preempt=0.01,
 *     stage-crash=0.1,stage-stall=0.1,stage-timeout=0.05,
 *     cache-corrupt=0.1,primary-crash=0.1
 *
 * `drop`/`corrupt` poison telemetry samples and ingested CSV rows,
 * `nan` perturbs values at module boundaries, `node-fail` is the
 * per-node probability of one failure during a simulated horizon,
 * and `vm-preempt` is the per-VM probability of early termination.
 * The `stage-*` keys drive the pipeline supervisor
 * (fairco2::pipeline): per stage *attempt*, `stage-crash` makes the
 * attempt fail outright, `stage-stall` charges a deterministic chunk
 * of the stage's simulated deadline budget before the attempt runs,
 * and `stage-timeout` burns the attempt's whole remaining budget.
 * `cache-corrupt` flips one payload bit in the incremental Shapley
 * engine's sub-game cache before a window advance, so the engine's
 * checksum verification trips and the supervisor exercises the
 * incremental -> full-recompute degradation rung. `primary-crash`
 * is evaluated per arrival period by `fairco2 serve --standby`: the
 * first period it fires, the primary replica "dies" and the hot
 * standby fails over (fairco2::durability).
 * Probabilities must be in [0, 1]; a malformed spec throws
 * std::invalid_argument (front ends turn that into exit 2).
 */

#ifndef FAIRCO2_RESILIENCE_FAULTPLAN_HH
#define FAIRCO2_RESILIENCE_FAULTPLAN_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "trace/timeseries.hh"

namespace fairco2
{

class FlagSet;

namespace resilience
{

/** Where a fault decision applies; part of the decision's identity. */
enum class FaultSite : std::uint64_t
{
    TelemetryDrop = 1,    //!< generated telemetry sample lost
    TelemetryCorrupt = 2, //!< generated telemetry sample garbled
    IngestDrop = 3,       //!< ingested CSV row lost
    IngestCorrupt = 4,    //!< ingested CSV row garbled
    NanBoundary = 5,      //!< NaN injected at a module boundary
    NodeFail = 6,         //!< simulated node fails mid-horizon
    NodeFailTime = 7,     //!< when within the horizon it fails
    VmPreempt = 8,        //!< simulated VM preempted early
    VmPreemptTime = 9,    //!< how much of its lifetime survives
    CorruptValue = 10,    //!< replacement factor for corruption
    StageCrash = 11,      //!< pipeline stage attempt fails outright
    StageStall = 12,      //!< stage attempt stalls first
    StageTimeout = 13,    //!< stage attempt burns its whole budget
    StageStallMs = 14,    //!< stall length (fraction of deadline)
    CacheCorrupt = 15,    //!< incremental sub-game cache entry flips
    PrimaryCrash = 16,    //!< serve primary dies; standby fails over
};

/** Deterministic, thread-safe fault decision source. */
class FaultPlan
{
  public:
    /** Inactive plan: every decision is "no fault". */
    FaultPlan() = default;

    /** Parse a spec string; throws std::invalid_argument. */
    static FaultPlan parse(const std::string &spec);

    /** True when any fault probability is nonzero. */
    bool active() const { return active_; }

    /** The spec this plan was parsed from (empty when inactive). */
    const std::string &spec() const { return spec_; }

    /** Pure decision: does @p site fire for @p index? */
    bool fires(FaultSite site, std::uint64_t index) const;

    /**
     * Pure uniform draw in [lo, hi) for (site, index) — used for
     * fault *parameters* (failure time, preemption fraction,
     * corruption factor) so they are as order-independent as the
     * decisions themselves.
     */
    double draw(FaultSite site, std::uint64_t index, double lo,
                double hi) const;

    /**
     * Node failure time within [0, horizon) for node @p node, or a
     * negative value when the node does not fail under this plan.
     */
    double nodeFailureTime(std::size_t node, double horizon) const;

    /** Fraction of VM @p vm's lifetime that survives preemption,
     *  in [0.05, 0.95); negative when the VM is not preempted. */
    double vmPreemptionFraction(std::uint64_t vm) const;

    /** Total faults injected through this plan so far. */
    std::uint64_t injectedCount() const
    {
        return injected_.load(std::memory_order_relaxed);
    }

    /** Bump the injected-fault counter (call sites that fire). */
    void noteInjected(std::uint64_t n = 1) const
    {
        injected_.fetch_add(n, std::memory_order_relaxed);
    }

    double dropProbability() const { return drop_; }
    double corruptProbability() const { return corrupt_; }
    double nanProbability() const { return nan_; }
    double nodeFailProbability() const { return nodeFail_; }
    double vmPreemptProbability() const { return vmPreempt_; }
    double stageCrashProbability() const { return stageCrash_; }
    double stageStallProbability() const { return stageStall_; }
    double stageTimeoutProbability() const { return stageTimeout_; }
    double cacheCorruptProbability() const { return cacheCorrupt_; }
    double primaryCrashProbability() const { return primaryCrash_; }

    FaultPlan(const FaultPlan &other) { *this = other; }
    FaultPlan &operator=(const FaultPlan &other);

  private:
    double probabilityFor(FaultSite site) const;

    std::string spec_;
    Rng root_{0};
    bool active_ = false;
    double drop_ = 0.0;
    double corrupt_ = 0.0;
    double nan_ = 0.0;
    double nodeFail_ = 0.0;
    double vmPreempt_ = 0.0;
    double stageCrash_ = 0.0;
    double stageStall_ = 0.0;
    double stageTimeout_ = 0.0;
    double cacheCorrupt_ = 0.0;
    double primaryCrash_ = 0.0;
    mutable std::atomic<std::uint64_t> injected_{0};
};

/**
 * Poison a telemetry series in place: dropped samples become NaN and
 * corrupted samples are scaled by a deterministic factor in [-2, 2).
 * Returns the number of faults injected (also added to the plan's
 * counter and the resilience obs counters). Feed the result through
 * repairSeries() before attribution.
 */
std::uint64_t injectTelemetryFaults(std::vector<double> &values,
                                    const FaultPlan &plan);

/** Convenience overload over a TimeSeries. */
trace::TimeSeries injectTelemetryFaults(const trace::TimeSeries &series,
                                        const FaultPlan &plan,
                                        std::uint64_t *injected = nullptr);

/**
 * NaN perturbation at a module boundary: with the plan's `nan`
 * probability, value i becomes NaN. Returns faults injected.
 */
std::uint64_t injectBoundaryNans(std::vector<double> &values,
                                 const FaultPlan &plan);

/**
 * Register the shared `--fault-plan` flag. An empty value (the
 * default) leaves the plan inactive.
 */
void addFaultPlanFlag(FlagSet &flags, std::string *spec);

/**
 * Parse a `--fault-plan` value; on a malformed spec prints an error
 * and exits 2, mirroring FlagSet's handling of bad flag values.
 */
FaultPlan applyFaultPlanFlag(const std::string &spec);

} // namespace resilience
} // namespace fairco2

#endif // FAIRCO2_RESILIENCE_FAULTPLAN_HH
