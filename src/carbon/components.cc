#include "carbon/components.hh"

#include <cassert>

namespace fairco2::carbon
{

double
ComponentFootprint::embodiedPerWatt() const
{
    return tdpWatts > 0.0 ? embodiedKgCo2e / tdpWatts : 0.0;
}

CpuModel::CpuModel(double die_area_mm2, double kg_per_cm2, double yield,
                   double packaging_kg)
    : dieAreaMm2_(die_area_mm2), kgPerCm2_(kg_per_cm2), yield_(yield),
      packagingKg_(packaging_kg)
{
    assert(die_area_mm2 > 0.0);
    assert(kg_per_cm2 > 0.0);
    assert(yield > 0.0 && yield <= 1.0);
    assert(packaging_kg >= 0.0);
}

double
CpuModel::embodiedKgCo2e() const
{
    const double area_cm2 = dieAreaMm2_ / 100.0;
    return area_cm2 * kgPerCm2_ / yield_ + packagingKg_;
}

CpuModel
CpuModel::xeonGold6240r()
{
    // 24-core Cascade Lake die is ~478 mm^2 on Intel 14 nm. With an
    // ACT-style ~1.7 kgCO2e/cm^2 at 14 nm, 87.5% yield, and ~1 kg of
    // packaging overhead this lands on the paper's 10.27 kg per CPU.
    return CpuModel(478.0, 1.697, 0.875, 1.0);
}

DramModel::DramModel(double kg_per_gb)
    : kgPerGb_(kg_per_gb)
{
    assert(kg_per_gb > 0.0);
}

double
DramModel::embodiedKgCo2e(double gigabytes) const
{
    assert(gigabytes >= 0.0);
    return kgPerGb_ * gigabytes;
}

DramModel
DramModel::ddr4()
{
    // 0.765 kg/GB reproduces the paper's 146.87 kgCO2e for 192 GB.
    return DramModel(146.87 / 192.0);
}

SsdModel::SsdModel(double kg_per_gb)
    : kgPerGb_(kg_per_gb)
{
    assert(kg_per_gb > 0.0);
}

double
SsdModel::embodiedKgCo2e(double gigabytes) const
{
    assert(gigabytes >= 0.0);
    return kgPerGb_ * gigabytes;
}

PlatformModel::PlatformModel()
    // Dell R740 LCA: roughly 270 kg for mainboard/chassis/assembly and
    // 80 kg of power-delivery and cooling hardware at a ~700 W
    // reference configuration.
    : fixedKg_(270.0), powerCoolingKgRef_(80.0),
      referenceTdpWatts_(700.0)
{
}

double
PlatformModel::embodiedKgCo2e(double system_tdp_watts) const
{
    assert(system_tdp_watts >= 0.0);
    return fixedKg_ +
        powerCoolingKgRef_ * system_tdp_watts / referenceTdpWatts_;
}

} // namespace fairco2::carbon
