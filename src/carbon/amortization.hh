/**
 * @file
 * Amortization (carbon depreciation) schedules.
 *
 * Temporal Shapley first amortizes a server's cradle-to-gate carbon
 * into each accounting window (Section 5.1 uses uniform
 * amortization, citing the depreciation models of Ji et al.). The
 * choice of schedule shifts carbon between early and late life of
 * the hardware; the ablation bench quantifies the effect. All
 * schedules conserve the total: cumulative(lifetime) == total.
 */

#ifndef FAIRCO2_CARBON_AMORTIZATION_HH
#define FAIRCO2_CARBON_AMORTIZATION_HH

#include <memory>
#include <string>

namespace fairco2::carbon
{

/** A depreciation curve for a fixed carbon cost over a lifetime. */
class AmortizationSchedule
{
  public:
    /**
     * @param total_grams carbon to amortize.
     * @param lifetime_seconds service life of the hardware.
     */
    AmortizationSchedule(double total_grams,
                         double lifetime_seconds);
    virtual ~AmortizationSchedule() = default;

    double totalGrams() const { return totalGrams_; }
    double lifetimeSeconds() const { return lifetimeSeconds_; }

    /** Human-readable scheme name. */
    virtual std::string name() const = 0;

    /**
     * Carbon amortized into [0, age]; clamped to the total beyond
     * end-of-life. Monotone non-decreasing.
     */
    virtual double cumulativeGrams(double age_seconds) const = 0;

    /** Instantaneous rate at an age, grams per second. */
    virtual double ratePerSecond(double age_seconds) const = 0;

    /** Carbon amortized into the window [begin, end]. */
    double windowGrams(double begin_seconds,
                       double end_seconds) const;

  protected:
    double totalGrams_;
    double lifetimeSeconds_;
};

/** Straight-line: equal carbon per unit time (the paper's default). */
class UniformAmortization : public AmortizationSchedule
{
  public:
    using AmortizationSchedule::AmortizationSchedule;

    std::string name() const override;
    double cumulativeGrams(double age_seconds) const override;
    double ratePerSecond(double age_seconds) const override;
};

/**
 * Continuous declining-balance: the rate decays exponentially with
 * age (new hardware carries more of its manufacturing debt),
 * normalized so the lifetime total is fully amortized.
 */
class DecliningBalanceAmortization : public AmortizationSchedule
{
  public:
    /**
     * @param decay_factor end-of-life rate as a fraction of the
     *        initial rate, in (0, 1); smaller = steeper decline.
     */
    DecliningBalanceAmortization(double total_grams,
                                 double lifetime_seconds,
                                 double decay_factor = 0.25);

    std::string name() const override;
    double cumulativeGrams(double age_seconds) const override;
    double ratePerSecond(double age_seconds) const override;

  private:
    double lambda_; //!< decay constant, 1/seconds
};

/**
 * Continuous sum-of-years-digits analogue: rate declines linearly
 * from 2x the uniform rate to zero at end-of-life.
 */
class SumOfYearsAmortization : public AmortizationSchedule
{
  public:
    using AmortizationSchedule::AmortizationSchedule;

    std::string name() const override;
    double cumulativeGrams(double age_seconds) const override;
    double ratePerSecond(double age_seconds) const override;
};

/** Factory for the ablation sweeps. */
std::unique_ptr<AmortizationSchedule>
makeAmortization(const std::string &scheme, double total_grams,
                 double lifetime_seconds);

} // namespace fairco2::carbon

#endif // FAIRCO2_CARBON_AMORTIZATION_HH
