#include "carbon/server.hh"

#include <cassert>

namespace fairco2::carbon
{

double
ServerConfig::systemTdpWatts() const
{
    return numCpus * cpuTdpWatts + dramTdpWatts;
}

ServerConfig
ServerConfig::paperServer()
{
    return ServerConfig{};
}

double
EmbodiedBreakdown::totalKg() const
{
    return cpuKg + dramKg + ssdKg + platformKg;
}

double
PowerModel::watts(double utilization) const
{
    assert(utilization >= 0.0 && utilization <= 1.0 + 1e-9);
    return staticWatts + dynamicPeakWatts * utilization;
}

double
PowerModel::staticJoules(double seconds) const
{
    assert(seconds >= 0.0);
    return staticWatts * seconds;
}

ServerCarbonModel::ServerCarbonModel(const ServerConfig &config)
    : config_(config)
{
    const CpuModel cpu = CpuModel::xeonGold6240r();
    const DramModel dram = DramModel::ddr4();
    const SsdModel ssd;
    const PlatformModel platform;

    embodied_.cpuKg = cpu.embodiedKgCo2e() * config_.numCpus;
    embodied_.dramKg = dram.embodiedKgCo2e(config_.dramGb);
    embodied_.ssdKg = ssd.embodiedKgCo2e(config_.ssdGb);
    embodied_.platformKg =
        platform.embodiedKgCo2e(config_.systemTdpWatts());
}

double
ServerCarbonModel::embodiedGrams() const
{
    return embodied_.totalKg() * 1000.0;
}

namespace
{

/**
 * Split the shared (SSD + platform) carbon between the CPU and DRAM
 * pools proportional to TDP: power delivery, cooling, and board
 * infrastructure scale with the power they serve.
 */
double
poolGrams(double direct_kg, double tdp_watts, double other_tdp_watts,
          double shared_kg)
{
    const double tdp_total = tdp_watts + other_tdp_watts;
    const double share =
        tdp_total > 0.0 ? tdp_watts / tdp_total : 0.5;
    return (direct_kg + shared_kg * share) * 1000.0;
}

} // namespace

double
ServerCarbonModel::cpuPoolGrams() const
{
    return poolGrams(embodied_.cpuKg,
                     config_.numCpus * config_.cpuTdpWatts,
                     config_.dramTdpWatts,
                     embodied_.ssdKg + embodied_.platformKg);
}

double
ServerCarbonModel::memPoolGrams() const
{
    return poolGrams(embodied_.dramKg, config_.dramTdpWatts,
                     config_.numCpus * config_.cpuTdpWatts,
                     embodied_.ssdKg + embodied_.platformKg);
}

double
ServerCarbonModel::lifetimeSeconds() const
{
    return config_.lifetimeYears * 365.25 * 86400.0;
}

double
ServerCarbonModel::coreRateGramsPerSecond() const
{
    return cpuPoolGrams() /
        (lifetimeSeconds() * config_.totalCores());
}

double
ServerCarbonModel::memRateGramsPerSecond() const
{
    return memPoolGrams() / (lifetimeSeconds() * config_.dramGb);
}

std::vector<ComponentFootprint>
ServerCarbonModel::table1() const
{
    std::vector<ComponentFootprint> rows;
    rows.push_back({"DRAM", config_.dramTdpWatts, embodied_.dramKg});
    rows.push_back({"CPU", config_.cpuTdpWatts,
                    embodied_.cpuKg / config_.numCpus});
    return rows;
}

} // namespace fairco2::carbon
