/**
 * @file
 * Whole-server carbon model: bill of materials, per-resource embodied
 * rates after lifetime amortization, and the node power model.
 */

#ifndef FAIRCO2_CARBON_SERVER_HH
#define FAIRCO2_CARBON_SERVER_HH

#include <vector>

#include "carbon/components.hh"

namespace fairco2::carbon
{

/** Hardware configuration of one server node. */
struct ServerConfig
{
    int numCpus = 2;
    int coresPerCpu = 24;
    double cpuTdpWatts = 165.0;
    double dramGb = 192.0;
    double dramTdpWatts = 25.0;
    double ssdGb = 480.0;
    double lifetimeYears = 4.0;

    /** Physical cores across all sockets. */
    int totalCores() const { return numCpus * coresPerCpu; }

    /** Sum of component TDPs. */
    double systemTdpWatts() const;

    /** The paper's evaluation server (2x Xeon Gold 6240R). */
    static ServerConfig paperServer();
};

/** Embodied carbon of a server, itemized (kgCO2e). */
struct EmbodiedBreakdown
{
    double cpuKg = 0.0;       //!< all sockets together
    double dramKg = 0.0;
    double ssdKg = 0.0;
    double platformKg = 0.0;  //!< board, chassis, power, cooling

    double totalKg() const;
};

/**
 * Static + utilization-proportional node power model.
 *
 * Calibrated to the ~60/40 static/dynamic energy split reported for
 * Google data centers, which the paper uses as its operational model.
 */
struct PowerModel
{
    double staticWatts = 220.0;       //!< drawn whenever the node is on
    double dynamicPeakWatts = 230.0;  //!< extra at 100% CPU utilization

    /** Instantaneous power at CPU @p utilization in [0, 1]. */
    double watts(double utilization) const;

    /** Static energy in joules for @p seconds of uptime. */
    double staticJoules(double seconds) const;
};

/**
 * Server-level carbon model combining the component models.
 *
 * The SSD and platform carbon (which have no per-workload allocation
 * metric of their own) are folded into the CPU and DRAM pools
 * proportional to component TDP — power delivery and cooling scale
 * with the power they serve — giving the two per-resource rates every
 * attribution method in this repo consumes: gCO2e per core-second
 * and gCO2e per GB-second.
 */
class ServerCarbonModel
{
  public:
    explicit ServerCarbonModel(
        const ServerConfig &config = ServerConfig::paperServer());

    const ServerConfig &config() const { return config_; }
    const EmbodiedBreakdown &embodied() const { return embodied_; }
    const PowerModel &power() const { return power_; }

    /** Total embodied carbon of the node in grams. */
    double embodiedGrams() const;

    /** CPU pool carbon (cores + share of platform), grams. */
    double cpuPoolGrams() const;

    /** DRAM pool carbon (DIMMs + share of platform), grams. */
    double memPoolGrams() const;

    /**
     * Uniformly amortized embodied rate for one core,
     * gCO2e per core-second.
     */
    double coreRateGramsPerSecond() const;

    /**
     * Uniformly amortized embodied rate for one GB of DRAM,
     * gCO2e per GB-second.
     */
    double memRateGramsPerSecond() const;

    /** Lifetime in seconds used for amortization. */
    double lifetimeSeconds() const;

    /** The Table 1 rows: per-component TDP vs embodied carbon. */
    std::vector<ComponentFootprint> table1() const;

  private:
    ServerConfig config_;
    EmbodiedBreakdown embodied_;
    PowerModel power_;
};

} // namespace fairco2::carbon

#endif // FAIRCO2_CARBON_SERVER_HH
