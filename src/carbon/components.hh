/**
 * @file
 * Component-level embodied carbon models.
 *
 * These follow the spirit of architectural carbon tools (ACT, the imec
 * netzero model, the SSD model of Tannu & Nair) while being calibrated
 * to the per-component values the Fair-CO2 paper quotes for its
 * evaluation server (2x Xeon Gold 6240R, 192 GB DDR4, 480 GB SSD):
 * a 10.27 kgCO2e CPU at 165 W TDP and a 146.87 kgCO2e DRAM pool.
 */

#ifndef FAIRCO2_CARBON_COMPONENTS_HH
#define FAIRCO2_CARBON_COMPONENTS_HH

#include <string>
#include <vector>

namespace fairco2::carbon
{

/** One manufactured part in the server bill of materials. */
struct ComponentFootprint
{
    std::string name;
    double tdpWatts = 0.0;          //!< thermal design power
    double embodiedKgCo2e = 0.0;    //!< cradle-to-gate manufacturing

    /** kgCO2e per watt of TDP; the paper's Table 1 ratio column. */
    double embodiedPerWatt() const;
};

/**
 * ACT-style logic-die model: fab footprint scales with die area, with
 * per-process-node carbon-per-area capturing fab energy, gases, and
 * materials, divided by yield, plus per-package overhead.
 */
class CpuModel
{
  public:
    /**
     * @param die_area_mm2 total die area of the package.
     * @param kg_per_cm2 carbon per cm^2 for the node (fab CI included).
     * @param yield fraction of good dies (0, 1].
     * @param packaging_kg fixed per-package carbon.
     */
    CpuModel(double die_area_mm2, double kg_per_cm2, double yield,
             double packaging_kg);

    /** Embodied carbon in kgCO2e for one packaged CPU. */
    double embodiedKgCo2e() const;

    /** Cascade-Lake-class 24-core server die calibration. */
    static CpuModel xeonGold6240r();

  private:
    double dieAreaMm2_;
    double kgPerCm2_;
    double yield_;
    double packagingKg_;
};

/** DRAM embodied model: carbon per GB at a given density generation. */
class DramModel
{
  public:
    /** @param kg_per_gb manufacturing carbon per usable GB. */
    explicit DramModel(double kg_per_gb);

    /** Embodied carbon for @p gigabytes of memory. */
    double embodiedKgCo2e(double gigabytes) const;

    /** DDR4 calibration matching the paper's 192 GB pool. */
    static DramModel ddr4();

  private:
    double kgPerGb_;
};

/** SSD embodied model (Tannu & Nair rate: 0.16 kgCO2e per GB). */
class SsdModel
{
  public:
    explicit SsdModel(double kg_per_gb = 0.16);

    /** Embodied carbon for @p gigabytes of flash. */
    double embodiedKgCo2e(double gigabytes) const;

  private:
    double kgPerGb_;
};

/**
 * Mainboard, chassis, power delivery, and cooling modelled from the
 * Dell R740 life-cycle assessment, with the power/cooling share scaled
 * by the ratio of system TDP to the reference R740 TDP.
 */
class PlatformModel
{
  public:
    PlatformModel();

    /**
     * Embodied carbon for the non-IC platform at @p system_tdp_watts.
     */
    double embodiedKgCo2e(double system_tdp_watts) const;

  private:
    double fixedKg_;            //!< board + chassis + assembly
    double powerCoolingKgRef_;  //!< power/cooling at reference TDP
    double referenceTdpWatts_;
};

} // namespace fairco2::carbon

#endif // FAIRCO2_CARBON_COMPONENTS_HH
