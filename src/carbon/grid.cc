#include "carbon/grid.hh"

#include <cassert>
#include <cmath>

namespace fairco2::carbon
{

GridCarbonIntensity::GridCarbonIntensity(double g_per_kwh)
    : samples_{g_per_kwh}, periodSeconds_(1.0)
{
    assert(g_per_kwh >= 0.0);
}

GridCarbonIntensity::GridCarbonIntensity(std::vector<double> samples,
                                         double period_seconds)
    : samples_(std::move(samples)), periodSeconds_(period_seconds)
{
    assert(!samples_.empty());
    assert(period_seconds > 0.0);
}

double
GridCarbonIntensity::at(double seconds) const
{
    if (samples_.size() == 1)
        return samples_.front();
    const double span = periodSeconds_ * samples_.size();
    double t = std::fmod(seconds, span);
    if (t < 0.0)
        t += span;
    const auto idx = static_cast<std::size_t>(t / periodSeconds_);
    return samples_[idx < samples_.size() ? idx : samples_.size() - 1];
}

double
GridCarbonIntensity::gramsFor(double joules, double seconds) const
{
    assert(joules >= 0.0);
    return joules / kJoulesPerKwh * at(seconds);
}

double
GridCarbonIntensity::mean() const
{
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / samples_.size();
}

UniformAmortizer::UniformAmortizer(double total_grams,
                                   double lifetime_seconds)
    : totalGrams_(total_grams), lifetimeSeconds_(lifetime_seconds)
{
    assert(total_grams >= 0.0);
    assert(lifetime_seconds > 0.0);
}

double
UniformAmortizer::gramsPerSecond() const
{
    return totalGrams_ / lifetimeSeconds_;
}

double
UniformAmortizer::gramsFor(double seconds) const
{
    assert(seconds >= 0.0);
    return gramsPerSecond() * seconds;
}

} // namespace fairco2::carbon
