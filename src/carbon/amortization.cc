#include "carbon/amortization.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace fairco2::carbon
{

AmortizationSchedule::AmortizationSchedule(double total_grams,
                                           double lifetime_seconds)
    : totalGrams_(total_grams), lifetimeSeconds_(lifetime_seconds)
{
    assert(total_grams >= 0.0);
    assert(lifetime_seconds > 0.0);
}

double
AmortizationSchedule::windowGrams(double begin_seconds,
                                  double end_seconds) const
{
    assert(begin_seconds <= end_seconds);
    return cumulativeGrams(end_seconds) -
        cumulativeGrams(begin_seconds);
}

std::string
UniformAmortization::name() const
{
    return "uniform";
}

double
UniformAmortization::cumulativeGrams(double age_seconds) const
{
    const double clamped =
        std::clamp(age_seconds, 0.0, lifetimeSeconds_);
    return totalGrams_ * clamped / lifetimeSeconds_;
}

double
UniformAmortization::ratePerSecond(double age_seconds) const
{
    if (age_seconds < 0.0 || age_seconds > lifetimeSeconds_)
        return 0.0;
    return totalGrams_ / lifetimeSeconds_;
}

DecliningBalanceAmortization::DecliningBalanceAmortization(
    double total_grams, double lifetime_seconds, double decay_factor)
    : AmortizationSchedule(total_grams, lifetime_seconds)
{
    assert(decay_factor > 0.0 && decay_factor < 1.0);
    // rate(t) = rate(0) * exp(-lambda t); rate(L)/rate(0) =
    // decay_factor fixes lambda.
    lambda_ = -std::log(decay_factor) / lifetime_seconds;
}

std::string
DecliningBalanceAmortization::name() const
{
    return "declining-balance";
}

double
DecliningBalanceAmortization::cumulativeGrams(
    double age_seconds) const
{
    const double t =
        std::clamp(age_seconds, 0.0, lifetimeSeconds_);
    const double denom =
        1.0 - std::exp(-lambda_ * lifetimeSeconds_);
    return totalGrams_ * (1.0 - std::exp(-lambda_ * t)) / denom;
}

double
DecliningBalanceAmortization::ratePerSecond(double age_seconds) const
{
    if (age_seconds < 0.0 || age_seconds > lifetimeSeconds_)
        return 0.0;
    const double denom =
        1.0 - std::exp(-lambda_ * lifetimeSeconds_);
    return totalGrams_ * lambda_ *
        std::exp(-lambda_ * age_seconds) / denom;
}

std::string
SumOfYearsAmortization::name() const
{
    return "sum-of-years";
}

double
SumOfYearsAmortization::cumulativeGrams(double age_seconds) const
{
    const double t =
        std::clamp(age_seconds, 0.0, lifetimeSeconds_);
    const double l = lifetimeSeconds_;
    // Integral of the linearly declining rate 2C/L * (1 - t/L).
    return totalGrams_ * (2.0 * l * t - t * t) / (l * l);
}

double
SumOfYearsAmortization::ratePerSecond(double age_seconds) const
{
    if (age_seconds < 0.0 || age_seconds > lifetimeSeconds_)
        return 0.0;
    return 2.0 * totalGrams_ / lifetimeSeconds_ *
        (1.0 - age_seconds / lifetimeSeconds_);
}

std::unique_ptr<AmortizationSchedule>
makeAmortization(const std::string &scheme, double total_grams,
                 double lifetime_seconds)
{
    if (scheme == "uniform") {
        return std::make_unique<UniformAmortization>(
            total_grams, lifetime_seconds);
    }
    if (scheme == "declining-balance") {
        return std::make_unique<DecliningBalanceAmortization>(
            total_grams, lifetime_seconds);
    }
    if (scheme == "sum-of-years") {
        return std::make_unique<SumOfYearsAmortization>(
            total_grams, lifetime_seconds);
    }
    throw std::invalid_argument("unknown amortization scheme: " +
                                scheme);
}

} // namespace fairco2::carbon
