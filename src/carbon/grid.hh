/**
 * @file
 * Grid carbon intensity: converts operational energy to carbon.
 */

#ifndef FAIRCO2_CARBON_GRID_HH
#define FAIRCO2_CARBON_GRID_HH

#include <vector>

namespace fairco2::carbon
{

/** Joules per kilowatt-hour. */
constexpr double kJoulesPerKwh = 3.6e6;

/**
 * Time-varying grid carbon intensity in gCO2e/kWh.
 *
 * Backed by a step-wise series sampled at a fixed period; a constant
 * intensity is the single-sample special case.
 */
class GridCarbonIntensity
{
  public:
    /** Constant intensity of @p g_per_kwh. */
    explicit GridCarbonIntensity(double g_per_kwh);

    /**
     * Piecewise-constant series: @p samples at @p period_seconds
     * spacing starting at time zero. Times beyond the series wrap
     * around (the series is treated as periodic).
     */
    GridCarbonIntensity(std::vector<double> samples,
                        double period_seconds);

    /** Intensity at time @p seconds, in gCO2e/kWh. */
    double at(double seconds) const;

    /** Carbon in grams for @p joules consumed at time @p seconds. */
    double gramsFor(double joules, double seconds = 0.0) const;

    /** Mean intensity across the backing series. */
    double mean() const;

  private:
    std::vector<double> samples_;
    double periodSeconds_;
};

/**
 * Uniform amortization of a fixed carbon cost over a lifetime:
 * the scheme the paper applies before Temporal Shapley refines it.
 */
class UniformAmortizer
{
  public:
    /**
     * @param total_grams carbon to amortize.
     * @param lifetime_seconds period it is spread across.
     */
    UniformAmortizer(double total_grams, double lifetime_seconds);

    /** Amortized rate in grams per second. */
    double gramsPerSecond() const;

    /** Carbon assigned to a window of @p seconds. */
    double gramsFor(double seconds) const;

  private:
    double totalGrams_;
    double lifetimeSeconds_;
};

} // namespace fairco2::carbon

#endif // FAIRCO2_CARBON_GRID_HH
