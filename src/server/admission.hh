/**
 * @file
 * Token-bucket admission control for telemetry batches.
 *
 * Every tenant class owns an integer token bucket; admitting one
 * batch costs one token. Buckets refill once per period (refill
 * amount and burst cap are integers, so admission decisions are a
 * pure function of the arrival order — never of floating point or
 * timing). The per-class split favors paid tiers: Reserved gets half
 * the global admission rate, Standard 35%, Free the remainder, with
 * every class guaranteed at least one token per period.
 *
 * A batch that finds its bucket empty is *deferred* — re-offered at
 * the next period's arrival tick, once; a second failure rejects it.
 * Rejected and deferred batches are counted in the
 * `server.admission.{admitted,deferred,rejected}` obs counters and
 * in the controller's own totals. The server's close watermark
 * leaves room for one deferral, so a deferred-then-admitted batch
 * still lands before its periods close and admission never changes
 * the fleet demand aggregate — only *whether* a tenant's telemetry
 * makes it in.
 *
 * Admission runs serially inside the arrival event (the event loop
 * is single-threaded), so the controller needs no synchronization
 * and its decisions are shard-count independent by construction.
 */

#ifndef FAIRCO2_SERVER_ADMISSION_HH
#define FAIRCO2_SERVER_ADMISSION_HH

#include <array>
#include <cstdint>

#include "server/tenants.hh"

namespace fairco2::server
{

/** Integer token bucket: refill per period, capped burst. */
class TokenBucket
{
  public:
    TokenBucket() = default;

    TokenBucket(std::uint64_t rate_per_period, std::uint64_t burst)
        : rate_(rate_per_period), burst_(burst), tokens_(burst)
    {
    }

    /** Add one period's tokens, clamped to the burst cap. */
    void
    refill()
    {
        tokens_ = std::min(burst_, tokens_ + rate_);
    }

    /** Take one token; false when the bucket is empty. */
    bool
    tryTake()
    {
        if (tokens_ == 0)
            return false;
        --tokens_;
        return true;
    }

    std::uint64_t tokens() const { return tokens_; }
    std::uint64_t ratePerPeriod() const { return rate_; }
    std::uint64_t burst() const { return burst_; }

  private:
    std::uint64_t rate_ = 0;
    std::uint64_t burst_ = 0;
    std::uint64_t tokens_ = 0;
};

/** What the controller decided for one offered batch. */
enum class AdmissionDecision : std::uint8_t
{
    Admitted = 0, //!< token taken; batch goes to its shard
    Deferred = 1, //!< re-offer at the next period (once)
    Rejected = 2, //!< dropped; telemetry lost for those periods
};

/** Stable lower-case label, for counters and reports. */
const char *admissionDecisionName(AdmissionDecision decision);

/** Per-class token buckets with a defer-once overflow policy. */
class AdmissionController
{
  public:
    struct Config
    {
        /** Global admitted batches per period across all classes
         *  (0 = unlimited: every offer admitted). */
        std::uint64_t ratePerPeriod = 0;
        /** Burst multiplier: each bucket holds burstPeriods x its
         *  per-period rate. */
        std::uint64_t burstPeriods = 2;
    };

    struct Totals
    {
        std::uint64_t offered = 0;
        std::uint64_t admitted = 0;
        std::uint64_t deferred = 0;
        std::uint64_t rejected = 0;
    };

    explicit AdmissionController(const Config &config);

    /** Refill every class bucket — call once per period, before that
     *  period's arrivals. */
    void beginPeriod();

    /**
     * Decide one offered batch. @p deferred marks a batch already
     * deferred once — it is admitted or rejected, never re-deferred.
     * Updates totals and the server.admission.* obs counters.
     */
    AdmissionDecision offer(TenantClass cls, bool deferred);

    /**
     * WAL replay: re-apply one logged Admitted decision — take the
     * class token and bump offered/admitted, exactly what offer()
     * did on the primary. Returns false when the bucket is empty,
     * which can only mean the log does not match this controller's
     * state (the caller raises WalIntegrityError).
     */
    bool replayAdmit(TenantClass cls);

    /** WAL replay: re-apply one tick's non-admitted outcomes in
     *  aggregate (deferred/rejected offers touch totals only, never
     *  the buckets, so counts are sufficient). */
    void replayNonAdmitted(std::uint64_t deferred,
                           std::uint64_t rejected);

    const Totals &totals() const { return totals_; }

    const TokenBucket &bucket(TenantClass cls) const
    {
        return buckets_[static_cast<std::size_t>(cls)];
    }

    bool unlimited() const { return unlimited_; }

  private:
    Config config_;
    bool unlimited_ = false;
    std::array<TokenBucket, kTenantClasses> buckets_;
    Totals totals_;
};

} // namespace fairco2::server

#endif // FAIRCO2_SERVER_ADMISSION_HH
