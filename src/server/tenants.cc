#include "tenants.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fairco2::server
{

namespace
{

/** Periods per simulated "day" for the diurnal demand carrier. */
constexpr double kDiurnalPeriods = 24.0;

constexpr double kPi = 3.14159265358979323846;

} // namespace

const char *
tenantClassName(TenantClass cls)
{
    switch (cls) {
    case TenantClass::Reserved:
        return "reserved";
    case TenantClass::Standard:
        return "standard";
    case TenantClass::Free:
        return "free";
    }
    return "unknown";
}

TenantPopulation::TenantPopulation(const Config &config)
    : config_(config), zipf_(config.tenants, config.zipfS),
      base_(config.seed)
{
    if (config_.periodSamples == 0)
        throw std::invalid_argument(
            "TenantPopulation: periodSamples must be > 0");
    if (config_.maxBatchPeriods == 0)
        throw std::invalid_argument(
            "TenantPopulation: maxBatchPeriods must be > 0");
    // Top 1% Reserved (at least one tenant), next 9% Standard.
    reservedRanks_ = std::max<std::size_t>(1, config_.tenants / 100);
    standardRanks_ = std::max(reservedRanks_ + 1,
                              config_.tenants / 10);
    standardRanks_ = std::min(standardRanks_, config_.tenants);
}

TenantClass
TenantPopulation::classOf(std::uint64_t tenant) const
{
    if (tenant < reservedRanks_)
        return TenantClass::Reserved;
    if (tenant < standardRanks_)
        return TenantClass::Standard;
    return TenantClass::Free;
}

std::uint32_t
TenantPopulation::batchPeriods(std::uint64_t tenant) const
{
    // Push cadence tracks rank: rank 0 pushes every period, cadence
    // grows ~logarithmically with rank so the tail batches up to the
    // cap. Pure integer-valued function of (tenant, config).
    const double rank = static_cast<double>(tenant + 1);
    const auto cadence = static_cast<std::uint64_t>(
        1.0 + std::floor(std::log2(rank) / 2.0));
    return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        cadence, 1, config_.maxBatchPeriods));
}

std::uint32_t
TenantPopulation::phaseOffset(std::uint64_t tenant) const
{
    const std::uint32_t interval = batchPeriods(tenant);
    if (interval == 1)
        return 0;
    // Stream 0 of the tenant's fork is reserved for the phase; period
    // materialization forks on (period + 1) so the streams never
    // collide.
    Rng rng = base_.fork(tenant).fork(0);
    return static_cast<std::uint32_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(interval) - 1));
}

bool
TenantPopulation::pushesAt(std::uint64_t tenant,
                           std::uint64_t period) const
{
    const std::uint32_t interval = batchPeriods(tenant);
    return period % interval == phaseOffset(tenant);
}

BatchRef
TenantPopulation::batchAt(std::uint64_t tenant,
                          std::uint64_t period) const
{
    BatchRef batch;
    batch.tenant = tenant;
    batch.period = period;
    // A batch covers the closed periods [period - interval, period),
    // clipped at period 0: the very first push may cover nothing.
    const std::uint32_t interval = batchPeriods(tenant);
    batch.coveredPeriods = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(interval, period));
    return batch;
}

std::uint64_t
TenantPopulation::baseUnits(std::uint64_t tenant) const
{
    const double mean = static_cast<double>(config_.meanDemandUnits) *
                        weight(tenant);
    const auto units = static_cast<std::uint64_t>(std::llround(mean));
    return std::max<std::uint64_t>(1, units);
}

std::vector<std::uint64_t>
TenantPopulation::materializePeriod(std::uint64_t tenant,
                                    std::uint64_t period) const
{
    // Pure in (seed, tenant, period): the stream is re-derived from
    // the root on every call, so materialization order — and hence
    // shard/thread assignment — cannot change the samples.
    Rng rng = base_.fork(tenant).fork(period + 1);
    const std::uint64_t base = baseUnits(tenant);
    const std::size_t samples = config_.periodSamples;
    std::vector<std::uint64_t> out(samples);
    for (std::size_t s = 0; s < samples; ++s) {
        const double phase =
            (static_cast<double>(period) +
             static_cast<double>(s) / static_cast<double>(samples)) /
            kDiurnalPeriods;
        const double diurnal = 1.0 + 0.5 * std::sin(2.0 * kPi * phase);
        const double jitter = 0.75 + 0.5 * rng.uniform();
        out[s] = static_cast<std::uint64_t>(std::llround(
            static_cast<double>(base) * diurnal * jitter));
    }
    return out;
}

std::vector<std::uint64_t>
TenantPopulation::materializeBatch(const BatchRef &batch) const
{
    std::vector<std::uint64_t> out(
        static_cast<std::size_t>(batch.coveredPeriods) *
        config_.periodSamples);
    for (std::uint32_t p = 0; p < batch.coveredPeriods; ++p) {
        const std::uint64_t period =
            batch.period - batch.coveredPeriods + p;
        const std::vector<std::uint64_t> samples =
            materializePeriod(batch.tenant, period);
        std::copy(samples.begin(), samples.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(
                                    p * config_.periodSamples));
    }
    return out;
}

} // namespace fairco2::server
