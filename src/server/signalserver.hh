/**
 * @file
 * Sharded multi-tenant live-signal server.
 *
 * SignalServer is the deployment shape of the paper's live carbon
 * signal: N simulated tenants (server::TenantPopulation) push
 * telemetry batches through token-bucket admission
 * (server::AdmissionController) into S shards, each shard owns an
 * IncrementalTemporalEngine for its tenants' demand, and a fleet
 * engine attributes the aggregate. Every closed period publishes a
 * snapshot through parallel::SnapshotCell, so currentIntensity()
 * readers are wait-free while the writer streams.
 *
 * ## Determinism contract
 *
 * The published fleet signal is **bit-identical** for any
 * `--shards S` and `--threads N` at the same seed:
 *
 *  - Tenant demand is materialized in *integer* demand units, pure
 *    in (seed, tenant, period) via counter-derived Rng streams.
 *  - Per-shard accumulation sums uint64; the fleet aggregate is the
 *    associative integer sum over shards, so it cannot depend on the
 *    shard partition or summation order.
 *  - Admission runs serially inside the (single-threaded) event
 *    loop's arrival event, in tenant-rank order, before any shard
 *    assignment — decisions are shard-independent by construction.
 *  - The fleet engine consumes the shard-independent aggregate, so
 *    its published intensity is too. Parallelism (materialization
 *    and per-shard engine computes via fairco2::parallel) only
 *    touches shard-local state.
 *
 * Per-*shard* signals are attributed for observability (each shard's
 * slice of the window pool, split by integer usage share); they
 * depend on the shard partition by identity — at S=1 the shard
 * signal equals the fleet signal, which the tests pin down.
 *
 * ## Timing
 *
 * Each period p takes two event-loop ticks: arrivals at tick 2p
 * (admission + shard inbox routing), close at tick 2p+1
 * (materialize, ingest, attribute, publish). The close watermark is
 * maxBatchPeriods + 1 periods: period q closes at p = q + watermark,
 * by which time every batch covering q — including one admission
 * deferral — has arrived, so admission can only *drop* telemetry,
 * never reorder it.
 *
 * ## Degradation
 *
 * A pipeline::OverloadGovernor watches per-period admission pressure
 * and walks Normal -> ShedFree (Free-tier batches rejected up front)
 * -> Proportional (published intensity degrades to the RUP baseline
 * while engines keep ingesting, so recovery is instant). The fault
 * plan's `cache-corrupt` key flips fleet-engine cache entries; the
 * resulting CacheIntegrityError is answered by rebuilding the fleet
 * engine from the retained window samples, and the republished
 * signal is identical to a fault-free run — memoization is an
 * optimization, never an input.
 */

#ifndef FAIRCO2_SERVER_SIGNALSERVER_HH
#define FAIRCO2_SERVER_SIGNALSERVER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/parallel.hh"
#include "core/signalcore.hh"
#include "pipeline/overload.hh"
#include "resilience/faultplan.hh"
#include "server/admission.hh"
#include "server/eventloop.hh"
#include "server/tenants.hh"
#include "shapley/incremental.hh"

namespace fairco2::server
{

/** Hard cap on shards — the snapshot POD embeds one intensity slot
 *  per shard, and SnapshotCell payloads must be fixed-size. */
constexpr std::size_t kMaxShards = 64;

/**
 * One published snapshot of the live signal. Trivially copyable on
 * purpose: this is the SnapshotCell payload wait-free readers copy.
 */
struct ServerSnapshot
{
    std::uint64_t version = 0; //!< publish count, starts at 1
    std::uint64_t period = 0;  //!< newest attributed period
    double fleetIntensity = 0.0;  //!< newest-period mean, g/res-s
    double fleetDemandUnits = 0.0; //!< newest period, total units
    std::uint64_t admitted = 0;   //!< running admission totals
    std::uint64_t deferred = 0;
    std::uint64_t rejected = 0;
    std::uint32_t overloadLevel = 0; //!< pipeline::OverloadLevel
    std::uint32_t shards = 0;
    /** Newest-period mean intensity per shard (slots >= shards are
     *  zero). */
    std::array<double, kMaxShards> shardIntensity{};
};

/** Everything `fairco2 serve` configures. */
struct ServerConfig
{
    std::size_t tenants = 1000;
    std::size_t shards = 4;     //!< 1..kMaxShards
    double zipfS = 1.1;
    /** Admitted batches per period across all classes (0 = no
     *  admission limit). */
    std::uint64_t admissionRate = 0;
    /** Periods of tenant arrivals to simulate (the tail is drained
     *  so exactly this many periods close). */
    std::uint64_t durationPeriods = 48;
    std::size_t windowPeriods = 8;   //!< engine window W
    std::size_t periodSamples = 12;  //!< samples per period M
    std::size_t cacheCapacity = 64;  //!< engine sub-game cache
    /** Memo-cache blob-store backend for every shard engine and the
     *  fleet engine. */
    cache::BackendConfig cacheBackend = cache::defaultBackend();
    std::vector<std::size_t> innerSplits{}; //!< periods' inner tree
    double stepSeconds = 300.0;
    double poolGramsPerSecond = 0.35;
    std::uint64_t seed = 42;
    std::size_t maxBatchPeriods = 8;
    std::uint64_t meanDemandUnits = 1u << 20;
    resilience::FaultPlan faultPlan;
    pipeline::OverloadGovernor::Config overload;
};

/** What one run produced, for reports and tests. */
struct ServerReport
{
    std::uint64_t periodsClosed = 0;
    std::uint64_t publishes = 0;
    AdmissionController::Totals admission;
    std::uint64_t batchesShed = 0;   //!< rejected by overload level
    std::uint64_t samplesIngested = 0;
    std::uint64_t eventsExecuted = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t engineRebuilds = 0;
    std::uint64_t overloadEscalations = 0;
    std::uint64_t overloadRecoveries = 0;
    std::uint32_t finalOverloadLevel = 0;
    double attributedGrams = 0.0; //!< fleet, summed over publishes
    /** Fleet newest-period mean intensity per publish — THE signal;
     *  the determinism golden compares this bit for bit. */
    std::vector<double> publishedIntensity;
    /** Absolute period index per publish. */
    std::vector<std::uint64_t> publishedPeriods;

    /** FNV-1a over the raw bytes of publishedIntensity — a compact
     *  bit-exactness fingerprint for goldens and CLI output. */
    std::uint64_t signalSignature() const;
};

/** The sharded live-signal server. */
class SignalServer
{
  public:
    /** Validates the config; throws std::invalid_argument on
     *  out-of-range values (front ends map that to exit 2). */
    explicit SignalServer(const ServerConfig &config);
    ~SignalServer();

    SignalServer(const SignalServer &) = delete;
    SignalServer &operator=(const SignalServer &) = delete;

    /**
     * Drive the event loop to completion: durationPeriods arrival
     * periods plus the drain tail. Call at most once per instance.
     * Readers may call snapshot()/currentIntensity() concurrently
     * from any thread while this runs.
     */
    ServerReport run();

    /** Wait-free copy of the latest published snapshot. */
    ServerSnapshot snapshot() const { return cell_.read(); }

    /** Wait-free read of the latest fleet intensity (0 until the
     *  first window publishes). */
    double currentIntensity() const
    {
        return cell_.read().fleetIntensity;
    }

    const ServerConfig &config() const { return config_; }

    const TenantPopulation &population() const { return population_; }

    /** Snapshot publications so far. */
    std::uint64_t publishes() const { return cell_.publishes(); }

  private:
    /** Shard-local mutable state; only its owning chunk touches it
     *  inside a parallel region. */
    struct Shard
    {
        /** Engine ownership + fault recovery via the shared core. */
        std::unique_ptr<core::IncrementalSignalCore> core;
        /** Materialized-but-unclosed demand: absolute period ->
         *  per-sample units. */
        std::vector<std::vector<std::uint64_t>> pending;
        std::vector<std::uint64_t> pendingPeriods;
        /** Per-period unit sums of the in-window periods (deque
         *  parallel to the engine's window). */
        std::deque<std::uint64_t> windowUnitSums;
        /** Batches admitted this period, awaiting materialization. */
        std::vector<BatchRef> inbox;
        /** Scratch: the closed period's samples / newest intensity. */
        std::vector<std::uint64_t> closedUnits;
        double newestIntensityMean = 0.0;
        std::uint64_t samplesIngested = 0;
    };

    void handleArrivals(std::uint64_t period);
    void handleClose(std::uint64_t period);
    void closePeriod(std::uint64_t period);
    void offerBatch(const BatchRef &batch);
    static std::vector<std::uint64_t> &
    pendingFor(Shard &shard, std::uint64_t period,
               std::size_t period_samples);

    ServerConfig config_;
    TenantPopulation population_;
    AdmissionController admission_;
    pipeline::OverloadGovernor governor_;
    EventLoop loop_;
    std::vector<Shard> shards_;
    std::unique_ptr<core::IncrementalSignalCore> fleet_;
    /** Fleet per-period unit sums of the in-window periods — the
     *  integer usage shares behind shard pools and the proportional
     *  fallback intensity. */
    std::deque<std::uint64_t> fleetWindowSums_;
    /** Batches deferred at the previous arrival tick. */
    std::vector<BatchRef> deferred_;
    std::uint64_t watermark_ = 0;
    std::uint64_t periodsClosed_ = 0;
    parallel::SnapshotCell<ServerSnapshot> cell_;
    ServerReport report_;
    bool ran_ = false;
};

} // namespace fairco2::server

#endif // FAIRCO2_SERVER_SIGNALSERVER_HH
