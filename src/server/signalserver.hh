/**
 * @file
 * Sharded multi-tenant live-signal server.
 *
 * SignalServer is the deployment shape of the paper's live carbon
 * signal: N simulated tenants (server::TenantPopulation) push
 * telemetry batches through token-bucket admission
 * (server::AdmissionController) into S shards, each shard owns an
 * IncrementalTemporalEngine for its tenants' demand, and a fleet
 * engine attributes the aggregate. Every closed period publishes a
 * snapshot through parallel::SnapshotCell, so currentIntensity()
 * readers are wait-free while the writer streams. The per-tick state
 * machine itself lives in server::Replica; SignalServer drives one
 * (or two) replicas through the deterministic event loop and owns
 * everything around them: publication, reporting, and durability.
 *
 * ## Determinism contract
 *
 * The published fleet signal is **bit-identical** for any
 * `--shards S` and `--threads N` at the same seed:
 *
 *  - Tenant demand is materialized in *integer* demand units, pure
 *    in (seed, tenant, period) via counter-derived Rng streams.
 *  - Per-shard accumulation sums uint64; the fleet aggregate is the
 *    associative integer sum over shards, so it cannot depend on the
 *    shard partition or summation order.
 *  - Admission runs serially inside the (single-threaded) event
 *    loop's arrival event, in tenant-rank order, before any shard
 *    assignment — decisions are shard-independent by construction.
 *  - The fleet engine consumes the shard-independent aggregate, so
 *    its published intensity is too. Parallelism (materialization
 *    and per-shard engine computes via fairco2::parallel) only
 *    touches shard-local state.
 *
 * Per-*shard* signals are attributed for observability (each shard's
 * slice of the window pool, split by integer usage share); they
 * depend on the shard partition by identity — at S=1 the shard
 * signal equals the fleet signal, which the tests pin down.
 *
 * ## Timing
 *
 * Each period p takes two event-loop ticks: arrivals at tick 2p
 * (admission + shard inbox routing), close at tick 2p+1
 * (materialize, ingest, attribute, publish). The close watermark is
 * maxBatchPeriods + 1 periods: period q closes at p = q + watermark,
 * by which time every batch covering q — including one admission
 * deferral — has arrived, so admission can only *drop* telemetry,
 * never reorder it.
 *
 * ## Durability (`--wal-dir`)
 *
 * With a WAL directory configured, every arrival tick appends one
 * durability::WalTickRecord — admitted batches, deferrals, and the
 * admission/governor outcome — in a single flushed write (group
 * commit per tick), sealing fixed-capacity segments with an atomic
 * tmp+rename. `--recover` replays an existing log by re-driving the
 * event loop from it: logged ticks are applied through
 * Replica::applyArrivalsReplay (with cross-checks that raise
 * WalIntegrityError on any divergence), so a server killed at any
 * tick republishes byte-identical signals. A torn tail is dropped at
 * the first bad checksum with a named diagnostic; damage to sealed
 * history is always an error. `--standby` keeps a second Replica in
 * lockstep by replaying sealed segments as they ship; the fault
 * plan's `primary-crash` site kills the primary at a deterministic
 * arrival tick and the standby finishes catch-up from disk and takes
 * over publishing with no missing period and zero divergence. A
 * periodic anti-entropy scrub re-derives the window digests from the
 * log and compares them to the live replica's.
 *
 * ## Degradation
 *
 * A pipeline::OverloadGovernor watches per-period admission pressure
 * and walks Normal -> ShedFree (Free-tier batches rejected up front)
 * -> Proportional (published intensity degrades to the RUP baseline
 * while engines keep ingesting, so recovery is instant). The fault
 * plan's `cache-corrupt` key flips fleet-engine cache entries; the
 * resulting CacheIntegrityError is answered by rebuilding the fleet
 * engine from the retained window samples, and the republished
 * signal is identical to a fault-free run — memoization is an
 * optimization, never an input.
 */

#ifndef FAIRCO2_SERVER_SIGNALSERVER_HH
#define FAIRCO2_SERVER_SIGNALSERVER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "durability/wal.hh"
#include "server/eventloop.hh"
#include "server/replica.hh"
#include "server/tenants.hh"

namespace fairco2::server
{

/**
 * One published snapshot of the live signal. Trivially copyable on
 * purpose: this is the SnapshotCell payload wait-free readers copy.
 */
struct ServerSnapshot
{
    std::uint64_t version = 0; //!< publish count, starts at 1
    std::uint64_t period = 0;  //!< newest attributed period
    double fleetIntensity = 0.0;  //!< newest-period mean, g/res-s
    double fleetDemandUnits = 0.0; //!< newest period, total units
    std::uint64_t admitted = 0;   //!< running admission totals
    std::uint64_t deferred = 0;
    std::uint64_t rejected = 0;
    std::uint32_t overloadLevel = 0; //!< pipeline::OverloadLevel
    std::uint32_t shards = 0;
    /** Newest-period mean intensity per shard (slots >= shards are
     *  zero). */
    std::array<double, kMaxShards> shardIntensity{};
};

/** What one run produced, for reports and tests. */
struct ServerReport
{
    std::uint64_t periodsClosed = 0;
    std::uint64_t publishes = 0;
    AdmissionController::Totals admission;
    std::uint64_t batchesShed = 0;   //!< rejected by overload level
    std::uint64_t samplesIngested = 0;
    std::uint64_t eventsExecuted = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t engineRebuilds = 0;
    std::uint64_t overloadEscalations = 0;
    std::uint64_t overloadRecoveries = 0;
    std::uint32_t finalOverloadLevel = 0;
    double attributedGrams = 0.0; //!< fleet, summed over publishes
    /** Fleet newest-period mean intensity per publish — THE signal;
     *  the determinism golden compares this bit for bit. */
    std::vector<double> publishedIntensity;
    /** Absolute period index per publish. */
    std::vector<std::uint64_t> publishedPeriods;

    // --- durability (all zero/false when --wal-dir is off) ---
    std::uint64_t walRecords = 0;        //!< appended this run
    std::uint64_t walSegmentsSealed = 0; //!< sealed this run
    std::uint64_t walRawBytes = 0;       //!< record bytes pre-codec
    std::uint64_t walStoredBytes = 0;    //!< frame bytes on disk
    bool recovered = false;          //!< --recover replay happened
    std::uint64_t replayedRecords = 0; //!< log ticks re-driven
    bool droppedWalTail = false;     //!< torn tail suffix dropped
    std::string walTailDiagnostic;   //!< names the drop point
    std::uint64_t scrubRuns = 0;
    std::uint64_t scrubMismatches = 0;
    bool failedOver = false;         //!< primary-crash fired
    std::uint64_t failoverPeriod = 0; //!< arrival period it fired at
    std::uint64_t standbyReplayedRecords = 0;
    /** Publishes the standby reproduced and compared bitwise against
     *  the primary's (every one must match or the run aborts). */
    std::uint64_t standbyPublishChecks = 0;
    bool interrupted = false;        //!< SIGINT/SIGTERM drain

    // --- surrogate (all zero when --surrogate is off) ---
    std::uint64_t surrogateAccepts = 0; //!< fleet predictions shipped
    std::uint64_t surrogateRejects = 0; //!< guardrail fallbacks

    /** FNV-1a over the raw bytes of publishedIntensity — a compact
     *  bit-exactness fingerprint for goldens and CLI output. */
    std::uint64_t signalSignature() const;
};

/** The sharded live-signal server. */
class SignalServer
{
  public:
    /** Validates the config; throws std::invalid_argument on
     *  out-of-range values (front ends map that to exit 2). */
    explicit SignalServer(const ServerConfig &config);
    ~SignalServer();

    SignalServer(const SignalServer &) = delete;
    SignalServer &operator=(const SignalServer &) = delete;

    /**
     * Drive the event loop to completion: durationPeriods arrival
     * periods plus the drain tail. Call at most once per instance.
     * Readers may call snapshot()/currentIntensity() concurrently
     * from any thread while this runs. Throws
     * durability::WalIntegrityError on unusable or divergent WAL
     * state (front ends map that to exit 2 like any FatalDataError).
     */
    ServerReport run();

    /** Wait-free copy of the latest published snapshot. */
    ServerSnapshot snapshot() const { return cell_.read(); }

    /** Wait-free read of the latest fleet intensity (0 until the
     *  first window publishes). */
    double currentIntensity() const
    {
        return cell_.read().fleetIntensity;
    }

    const ServerConfig &config() const { return config_; }

    const TenantPopulation &population() const { return population_; }

    /** Snapshot publications so far. */
    std::uint64_t publishes() const { return cell_.publishes(); }

  private:
    Replica &active();
    void setupDurability();
    void handleArrivals(std::uint64_t period);
    void handleClose(std::uint64_t period);
    void publishOutcome(const Replica::CloseOutcome &outcome);
    void failover(std::uint64_t period);
    void syncStandbyFromDisk(bool sealed_only);
    void replayIntoStandby(const durability::WalTickRecord &record);
    void runScrub(std::uint64_t period);
    [[noreturn]] void killNow();

    ServerConfig config_;
    TenantPopulation population_;
    EventLoop loop_;
    std::unique_ptr<Replica> primary_;
    std::unique_ptr<Replica> standby_;
    std::unique_ptr<durability::WalWriter> wal_;
    std::uint64_t configHash_ = 0;
    /** Recovery: logged ticks to re-drive before live serving. */
    std::vector<durability::WalTickRecord> replay_;
    std::size_t replayNext_ = 0;
    /** Arrival ticks the primary has processed (replayed or live);
     *  the standby never replays past this. */
    std::uint64_t primaryRecords_ = 0;
    /** Records the standby has replayed (global record index). */
    std::uint64_t standbyConsumed_ = 0;
    /** Next primary publish index the standby must reproduce. */
    std::size_t standbyPublishIndex_ = 0;
    bool crashed_ = false; //!< primary-crash fired; standby serves
    bool halted_ = false;  //!< haltAtTick stopped the loop abruptly
    std::uint64_t watermark_ = 0;
    parallel::SnapshotCell<ServerSnapshot> cell_;
    ServerReport report_;
    bool ran_ = false;
};

} // namespace fairco2::server

#endif // FAIRCO2_SERVER_SIGNALSERVER_HH
