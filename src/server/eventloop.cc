#include "eventloop.hh"

#include <stdexcept>
#include <utility>

namespace fairco2::server
{

void
EventLoop::at(std::uint64_t tick, Callback fn)
{
    if (tick < now_)
        throw std::logic_error(
            "EventLoop::at: cannot schedule in the past");
    queue_.push(Event{tick, nextSeq_++, std::move(fn)});
}

void
EventLoop::after(std::uint64_t delay, Callback fn)
{
    at(now_ + delay, std::move(fn));
}

std::uint64_t
EventLoop::run()
{
    stopped_ = false;
    std::uint64_t ran = 0;
    while (!queue_.empty() && !stopped_) {
        // priority_queue::top is const; the callback is moved out via
        // const_cast, which is safe because pop() follows immediately
        // and nothing reads the moved-from event.
        Event &top = const_cast<Event &>(queue_.top());
        now_ = top.tick;
        Callback fn = std::move(top.fn);
        queue_.pop();
        fn();
        ++ran;
        ++executed_;
    }
    return ran;
}

} // namespace fairco2::server
