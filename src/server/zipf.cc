#include "zipf.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fairco2::server
{

Zipf::Zipf(std::size_t n, double s) : s_(s)
{
    if (n == 0)
        throw std::invalid_argument("Zipf: population must be > 0");
    if (s < 0.0 || !std::isfinite(s))
        throw std::invalid_argument(
            "Zipf: exponent must be finite and >= 0");

    weights_.resize(n);
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        weights_[r] = std::pow(static_cast<double>(r + 1), -s);
        total += weights_[r];
    }
    double running = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        weights_[r] /= total;
        running += weights_[r];
        cdf_[r] = running;
    }
    cdf_[n - 1] = 1.0; // absorb rounding so sample(u<1) never falls off
}

std::size_t
Zipf::sample(double u) const
{
    if (u < 0.0)
        u = 0.0;
    if (u >= 1.0)
        return cdf_.size() - 1;
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace fairco2::server
