/**
 * @file
 * Simulated multi-tenant telemetry population.
 *
 * The live-signal server is driven by N simulated tenants whose
 * arrival weights follow a Zipf(s) law over their rank: tenant 0 is
 * the fleet's heaviest pusher, the long tail barely registers. Three
 * service classes fall out of the same ranking — the top 1% of ranks
 * are Reserved capacity, the next 9% Standard, the rest Free tier —
 * and the admission controller gives each class its own token
 * bucket.
 *
 * Tenants push telemetry in *batches*: tenant t pushes every
 * batchPeriods(t) periods (heavy tenants push every period, tail
 * tenants accumulate up to Config::maxBatchPeriods periods before
 * pushing), and a batch offered at period p covers the closed
 * periods [p - batchPeriods(t), p). Per-tenant phase offsets stagger
 * the pushes so arrivals do not synchronize.
 *
 * Everything here is a pure function of (Config, tenant, period):
 * demand samples are materialized on demand from
 * `Rng(seed).fork(tenant).fork(period)` and expressed in **integer
 * demand units**. Integer units are the keystone of the server's
 * cross-shard determinism contract — per-shard sums are uint64 and
 * the fleet aggregate is an associative integer sum, so the fleet
 * demand series (and hence the published signal) is bit-identical
 * for any shard and thread count.
 */

#ifndef FAIRCO2_SERVER_TENANTS_HH
#define FAIRCO2_SERVER_TENANTS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "server/zipf.hh"

namespace fairco2::server
{

/** Service class of a tenant, by popularity rank tier. */
enum class TenantClass : std::uint8_t
{
    Reserved = 0, //!< top 1% of ranks (at least one tenant)
    Standard = 1, //!< next 9% of ranks
    Free = 2,     //!< the long tail
};

/** Number of TenantClass values (bucket array size). */
constexpr std::size_t kTenantClasses = 3;

/** Stable lower-case label, for counters and reports. */
const char *tenantClassName(TenantClass cls);

/**
 * One offered telemetry batch: tenant @p tenant pushing the closed
 * periods [period - coveredPeriods, period) at period @p period.
 */
struct BatchRef
{
    std::uint64_t tenant = 0;
    std::uint64_t period = 0;
    std::uint32_t coveredPeriods = 1;
    bool deferred = false; //!< retried after a Deferred decision
};

/** Deterministic Zipf-weighted tenant population. */
class TenantPopulation
{
  public:
    struct Config
    {
        std::size_t tenants = 1000; //!< population size N (>= 1)
        double zipfS = 1.1;         //!< Zipf skew exponent (>= 0)
        std::uint64_t seed = 42;    //!< root of all tenant streams
        std::size_t periodSamples = 12; //!< samples per period
        /** Cap on batchPeriods(t); also bounds how late a batch can
         *  arrive, which sets the server's close watermark. */
        std::size_t maxBatchPeriods = 8;
        /** Mean fleet-wide demand units per sample, split over
         *  tenants by Zipf weight. */
        std::uint64_t meanDemandUnits = 1u << 20;
    };

    explicit TenantPopulation(const Config &config);

    const Config &config() const { return config_; }

    std::size_t size() const { return config_.tenants; }

    /** Normalized Zipf arrival weight of @p tenant. */
    double weight(std::uint64_t tenant) const
    {
        return zipf_.weight(static_cast<std::size_t>(tenant));
    }

    /** Service class of @p tenant (by rank tier). */
    TenantClass classOf(std::uint64_t tenant) const;

    /** Periods between pushes for @p tenant: 1 for heavy ranks,
     *  growing with rank, clamped to Config::maxBatchPeriods. */
    std::uint32_t batchPeriods(std::uint64_t tenant) const;

    /** Deterministic phase offset in [0, batchPeriods(t)). */
    std::uint32_t phaseOffset(std::uint64_t tenant) const;

    /** True when @p tenant offers a batch at period @p period. */
    bool pushesAt(std::uint64_t tenant, std::uint64_t period) const;

    /** The batch @p tenant offers at @p period (requires
     *  pushesAt(tenant, period)). Covered periods are clipped at
     *  period 0 for the first push. */
    BatchRef batchAt(std::uint64_t tenant, std::uint64_t period) const;

    /**
     * Materialize @p tenant's demand for @p period: periodSamples
     * integer demand units, pure in (seed, tenant, period). The
     * shape is a diurnal sinusoid over a 24-period day plus
     * per-sample jitter, scaled by the tenant's Zipf weight.
     */
    std::vector<std::uint64_t>
    materializePeriod(std::uint64_t tenant, std::uint64_t period) const;

    /** Sum of materializePeriod over a batch's covered periods,
     *  per sample offset — what a shard ingests per batch. */
    std::vector<std::uint64_t> materializeBatch(const BatchRef &batch) const;

    /** Mean demand units per sample for @p tenant (the diurnal
     *  carrier's midline before jitter). */
    std::uint64_t baseUnits(std::uint64_t tenant) const;

  private:
    Config config_;
    Zipf zipf_;
    Rng base_;
    std::size_t reservedRanks_; //!< ranks [0, reservedRanks_)
    std::size_t standardRanks_; //!< ranks [reserved, standardRanks_)
};

} // namespace fairco2::server

#endif // FAIRCO2_SERVER_TENANTS_HH
