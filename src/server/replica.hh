/**
 * @file
 * One live-signal replica: the deterministic server state machine.
 *
 * Replica is everything a serve run mutates per tick — admission
 * buckets, overload governor, shard engines, the fleet engine and its
 * window sums — factored out of SignalServer so the same machine can
 * be driven two ways:
 *
 *  - **live**: applyArrivalsLive() makes admission decisions from the
 *    tenant population and emits one durability::WalTickRecord
 *    describing them (the unit the write-ahead log appends);
 *  - **replay**: applyArrivalsReplay() re-applies a logged record —
 *    admitted batches take their class tokens, aggregate outcomes
 *    update totals, the governor observes the same deltas — and then
 *    cross-checks the record's running totals, bucket tokens, and
 *    governor level against the rebuilt state. Any divergence raises
 *    durability::WalIntegrityError; a WAL replay can be wrong loudly,
 *    never silently.
 *
 * Both paths feed the identical applyClose(), so a replica recovered
 * from the log publishes byte-identical intensities to one that never
 * crashed, and a hot standby replaying shipped segments stays bitwise
 * in lockstep with the primary. windowDigests() exposes the FNV
 * fingerprint of the in-window per-period unit sums that the
 * anti-entropy scrub compares against the log-derived digests.
 */

#ifndef FAIRCO2_SERVER_REPLICA_HH
#define FAIRCO2_SERVER_REPLICA_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cache/backend.hh"
#include "core/signalcore.hh"
#include "durability/wal.hh"
#include "pipeline/overload.hh"
#include "resilience/faultplan.hh"
#include "server/admission.hh"
#include "server/tenants.hh"

namespace fairco2::server
{

/** Hard cap on shards — the snapshot POD embeds one intensity slot
 *  per shard, and SnapshotCell payloads must be fixed-size. */
constexpr std::size_t kMaxShards = 64;

/** Sentinel for "no tick": the durability kill/halt hooks are off. */
constexpr std::uint64_t kNoTick = ~std::uint64_t{0};

/** Durability knobs for `fairco2 serve` (all off by default). */
struct DurabilityOptions
{
    /** WAL directory; empty disables durability entirely. */
    std::string walDir;
    /** Replay an existing WAL in walDir before serving new periods;
     *  without it a non-empty WAL directory is refused. */
    bool recover = false;
    /** Run a hot-standby replica that replays sealed segments as
     *  they ship and takes over on the fault plan's primary-crash. */
    bool standby = false;
    /** Codec for WAL record payloads (per record, falls back to
     *  identity storage when compression does not pay). */
    cache::Codec walCodec = cache::Codec::Identity;
    /** Records per segment before the seal + rotate. */
    std::uint64_t walSegmentRecords = 16;
    /** Run the anti-entropy scrub every this many periods
     *  (0 = never; requires walDir). */
    std::uint64_t scrubPeriods = 8;
    /** Test hook: _exit(137) — a kill -9 — right after the handler
     *  at this event-loop tick (arrival ticks are 2p, closes 2p+1). */
    std::uint64_t killAtTick = kNoTick;
    /** Test hook: with killAtTick on an arrival tick, write only half
     *  of that tick's WAL frame first — a torn group commit. */
    bool killTorn = false;
    /** Test hook: stop the event loop after this tick without
     *  sealing the WAL tail — an in-process abrupt stop. */
    std::uint64_t haltAtTick = kNoTick;
};

/** Learned-surrogate knobs for `fairco2 serve` (off by default).
 *  Only the *fleet* engine gets the surrogate — the published fleet
 *  signal is its output — while shard engines stay exact. */
struct SurrogateOptions
{
    /** Use the surrogate on the fleet engine; requires a model. */
    bool enabled = false;
    /** Trained model (loaded by the CLI); null with enabled keeps
     *  the run exact — the warned fallback, never a crash. */
    std::shared_ptr<const surrogate::SurrogateModel> model;
    /** Residual-guardrail share tolerance. */
    double tolerance = 0.01;
};

/** Everything `fairco2 serve` configures. */
struct ServerConfig
{
    std::size_t tenants = 1000;
    std::size_t shards = 4;     //!< 1..kMaxShards
    double zipfS = 1.1;
    /** Admitted batches per period across all classes (0 = no
     *  admission limit). */
    std::uint64_t admissionRate = 0;
    /** Periods of tenant arrivals to simulate (the tail is drained
     *  so exactly this many periods close). */
    std::uint64_t durationPeriods = 48;
    std::size_t windowPeriods = 8;   //!< engine window W
    std::size_t periodSamples = 12;  //!< samples per period M
    std::size_t cacheCapacity = 64;  //!< engine sub-game cache
    /** Memo-cache blob-store backend for every shard engine and the
     *  fleet engine. */
    cache::BackendConfig cacheBackend = cache::defaultBackend();
    std::vector<std::size_t> innerSplits{}; //!< periods' inner tree
    double stepSeconds = 300.0;
    double poolGramsPerSecond = 0.35;
    std::uint64_t seed = 42;
    std::size_t maxBatchPeriods = 8;
    std::uint64_t meanDemandUnits = 1u << 20;
    resilience::FaultPlan faultPlan;
    pipeline::OverloadGovernor::Config overload;
    DurabilityOptions durability;
    SurrogateOptions surrogate;
};

/**
 * Hash of every config field the published signal depends on —
 * stamped into WAL segment headers so a log is only ever replayed
 * against the run shape that wrote it. Deliberately excludes shards,
 * threads, and the cache backend: the signal is provably independent
 * of them, so a WAL written at --shards 4 replays at --shards 8.
 */
std::uint64_t serverConfigHash(const ServerConfig &config);

/** The replica state machine (see file comment). */
class Replica
{
  public:
    /** What one close tick produced. */
    struct CloseOutcome
    {
        bool closed = false;     //!< a period left the watermark
        bool published = false;  //!< the fleet window was full
        std::uint64_t period = 0;   //!< the closed period q
        double fleetIntensity = 0.0; //!< newest-period mean, g/res-s
        double attributedGrams = 0.0;
        std::uint64_t fleetUnits = 0; //!< closed period, total units
        bool faultInjected = false;   //!< cache-corrupt fired
        /** Newest-period mean intensity per shard. */
        std::array<double, kMaxShards> shardIntensity{};
    };

    Replica(const ServerConfig &config,
            const TenantPopulation &population);
    ~Replica();

    Replica(const Replica &) = delete;
    Replica &operator=(const Replica &) = delete;

    /** Live arrival tick for @p period: retries first, then fresh
     *  offers in tenant-rank order; returns the tick's WAL record. */
    durability::WalTickRecord applyArrivalsLive(std::uint64_t period);

    /** Replay a logged arrival tick; throws WalIntegrityError when
     *  the rebuilt state diverges from the record's cross-checks. */
    void applyArrivalsReplay(const durability::WalTickRecord &record);

    /** Close tick for @p period: materialize admitted batches and,
     *  once the watermark passes, close and attribute period
     *  `period - watermark`. */
    CloseOutcome applyClose(std::uint64_t period);

    /** Scrub fingerprint of the live window state (fleet + shards). */
    durability::WindowDigests windowDigests() const;

    const AdmissionController &admission() const { return admission_; }
    const pipeline::OverloadGovernor &governor() const
    {
        return governor_;
    }
    std::uint64_t watermark() const { return watermark_; }
    std::uint64_t periodsClosed() const { return periodsClosed_; }
    std::uint64_t batchesShed() const { return batchesShed_; }
    std::uint64_t faultsInjected() const { return faultsInjected_; }
    std::uint64_t samplesIngested() const;
    std::uint64_t engineRebuilds() const;

    /** Fleet-engine surrogate decision totals (all zero when the
     *  surrogate is off). */
    shapley::SurrogateTemporalEngine::Counters
    surrogateCounters() const;

  private:
    /** Shard-local mutable state; only its owning chunk touches it
     *  inside a parallel region. */
    struct Shard
    {
        /** Engine ownership + fault recovery via the shared core. */
        std::unique_ptr<core::IncrementalSignalCore> core;
        /** Materialized-but-unclosed demand: absolute period ->
         *  per-sample units. */
        std::vector<std::vector<std::uint64_t>> pending;
        std::vector<std::uint64_t> pendingPeriods;
        /** Per-period unit sums of the in-window periods (deque
         *  parallel to the engine's window). */
        std::deque<std::uint64_t> windowUnitSums;
        /** Batches admitted this period, awaiting materialization. */
        std::vector<BatchRef> inbox;
        /** Scratch: the closed period's samples / newest intensity. */
        std::vector<std::uint64_t> closedUnits;
        double newestIntensityMean = 0.0;
        std::uint64_t samplesIngested = 0;
    };

    void offerLive(const BatchRef &batch,
                   durability::WalTickRecord &record);
    CloseOutcome closePeriod(std::uint64_t period);
    static std::vector<std::uint64_t> &
    pendingFor(Shard &shard, std::uint64_t period,
               std::size_t period_samples);

    const ServerConfig &config_;
    const TenantPopulation &population_;
    AdmissionController admission_;
    pipeline::OverloadGovernor governor_;
    std::vector<Shard> shards_;
    std::unique_ptr<core::IncrementalSignalCore> fleet_;
    /** Fleet per-period unit sums of the in-window periods — the
     *  integer usage shares behind shard pools and the proportional
     *  fallback intensity. */
    std::deque<std::uint64_t> fleetWindowSums_;
    /** Batches deferred at the previous arrival tick. */
    std::vector<BatchRef> deferred_;
    std::uint64_t watermark_ = 0;
    std::uint64_t periodsClosed_ = 0;
    std::uint64_t batchesShed_ = 0;
    std::uint64_t faultsInjected_ = 0;
};

} // namespace fairco2::server

#endif // FAIRCO2_SERVER_REPLICA_HH
