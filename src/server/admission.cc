#include "admission.hh"

#include <algorithm>

#include "common/obs.hh"

namespace fairco2::server
{

const char *
admissionDecisionName(AdmissionDecision decision)
{
    switch (decision) {
    case AdmissionDecision::Admitted:
        return "admitted";
    case AdmissionDecision::Deferred:
        return "deferred";
    case AdmissionDecision::Rejected:
        return "rejected";
    }
    return "unknown";
}

AdmissionController::AdmissionController(const Config &config)
    : config_(config), unlimited_(config.ratePerPeriod == 0)
{
    if (unlimited_)
        return;
    const std::uint64_t rate = config_.ratePerPeriod;
    const std::uint64_t burst = std::max<std::uint64_t>(
        1, config_.burstPeriods);
    // Class split: Reserved 50%, Standard 35%, Free the remainder —
    // every class keeps at least one token per period so no tier
    // starves outright.
    const std::uint64_t reserved = std::max<std::uint64_t>(
        1, rate / 2);
    const std::uint64_t standard = std::max<std::uint64_t>(
        1, (rate * 35) / 100);
    const std::uint64_t free = std::max<std::uint64_t>(
        1, rate - std::min(rate, reserved + standard));
    buckets_[static_cast<std::size_t>(TenantClass::Reserved)] =
        TokenBucket(reserved, reserved * burst);
    buckets_[static_cast<std::size_t>(TenantClass::Standard)] =
        TokenBucket(standard, standard * burst);
    buckets_[static_cast<std::size_t>(TenantClass::Free)] =
        TokenBucket(free, free * burst);
}

void
AdmissionController::beginPeriod()
{
    if (unlimited_)
        return;
    for (TokenBucket &bucket : buckets_)
        bucket.refill();
}

AdmissionDecision
AdmissionController::offer(TenantClass cls, bool deferred)
{
    ++totals_.offered;
    const bool taken =
        unlimited_ ||
        buckets_[static_cast<std::size_t>(cls)].tryTake();
    if (taken) {
        ++totals_.admitted;
        FAIRCO2_COUNT("server.admission.admitted", 1);
        return AdmissionDecision::Admitted;
    }
    if (!deferred) {
        ++totals_.deferred;
        FAIRCO2_COUNT("server.admission.deferred", 1);
        return AdmissionDecision::Deferred;
    }
    ++totals_.rejected;
    FAIRCO2_COUNT("server.admission.rejected", 1);
    return AdmissionDecision::Rejected;
}

bool
AdmissionController::replayAdmit(TenantClass cls)
{
    if (!unlimited_ &&
        !buckets_[static_cast<std::size_t>(cls)].tryTake())
        return false;
    ++totals_.offered;
    ++totals_.admitted;
    FAIRCO2_COUNT("server.admission.admitted", 1);
    return true;
}

void
AdmissionController::replayNonAdmitted(std::uint64_t deferred,
                                       std::uint64_t rejected)
{
    totals_.offered += deferred + rejected;
    totals_.deferred += deferred;
    totals_.rejected += rejected;
    FAIRCO2_COUNT("server.admission.deferred", deferred);
    FAIRCO2_COUNT("server.admission.rejected", rejected);
}

} // namespace fairco2::server
