/**
 * @file
 * Zipf-distributed popularity weights for the tenant population.
 *
 * Fair-CO2's live-signal workload is dominated by a small number of
 * heavy tenants: a handful of large services push most of the
 * telemetry while a long tail of small tenants barely registers.
 * Zipf(s) over ranks 0..n-1 captures that skew with one parameter —
 * weight(r) ∝ 1/(r+1)^s — and is the standard shape for cloud
 * multi-tenancy studies (s ≈ 0.9–1.2 matches production traces).
 *
 * The class precomputes the normalized weights and their cumulative
 * sums once, so weight lookup is O(1) and inverse-CDF sampling is a
 * binary search. Everything is a pure function of (n, s); no RNG
 * state lives here — callers feed their own uniform variates into
 * sample(), which keeps all randomness in counter-derived Rng
 * streams and the weights bit-identical across thread/shard counts.
 */

#ifndef FAIRCO2_SERVER_ZIPF_HH
#define FAIRCO2_SERVER_ZIPF_HH

#include <cstddef>
#include <vector>

namespace fairco2::server
{

/** Normalized Zipf(s) weights over ranks 0..n-1. */
class Zipf
{
  public:
    /**
     * Build the distribution. Throws std::invalid_argument when
     * @p n == 0 or @p s < 0.
     */
    Zipf(std::size_t n, double s);

    std::size_t size() const { return weights_.size(); }

    double exponent() const { return s_; }

    /** Normalized weight of @p rank (weights sum to 1). */
    double weight(std::size_t rank) const { return weights_[rank]; }

    /**
     * Inverse-CDF sample: smallest rank whose cumulative weight
     * exceeds @p u, for u in [0, 1). Out-of-range u is clamped.
     */
    std::size_t sample(double u) const;

  private:
    double s_;
    std::vector<double> weights_;
    std::vector<double> cdf_;
};

} // namespace fairco2::server

#endif // FAIRCO2_SERVER_ZIPF_HH
