/**
 * @file
 * Deterministic discrete-event loop for the live-signal server.
 *
 * Simulated time is a bare integer tick counter; events are
 * callbacks scheduled at a tick and executed in (tick, insertion
 * order) order, so two events at the same tick run FIFO. The loop is
 * single-threaded by design — determinism comes from the total event
 * order being a pure function of what was scheduled, never of wall
 * clock or thread timing. Parallelism lives *inside* event handlers
 * (the server's period-close handler fans out over shards through
 * fairco2::parallel), which keeps the bit-identity contract intact.
 *
 * Handlers may schedule further events, including at the current
 * tick (they run after every already-queued event of that tick).
 * Scheduling an event in the past is rejected — replaying history
 * would silently break the monotone-time invariant every handler
 * relies on.
 */

#ifndef FAIRCO2_SERVER_EVENTLOOP_HH
#define FAIRCO2_SERVER_EVENTLOOP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace fairco2::server
{

/** Single-threaded deterministic event loop on integer ticks. */
class EventLoop
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated tick (the tick of the running event, or of
     *  the next event once run() returns). */
    std::uint64_t now() const { return now_; }

    /**
     * Schedule @p fn at tick @p tick. Throws std::logic_error when
     * @p tick is in the past (tick < now()).
     */
    void at(std::uint64_t tick, Callback fn);

    /** Schedule @p fn @p delay ticks after now(). */
    void after(std::uint64_t delay, Callback fn);

    /**
     * Run events in (tick, insertion) order until the queue is empty
     * or stop() is called. Returns the number of events executed.
     */
    std::uint64_t run();

    /** Ask the loop to return after the current event completes. */
    void stop() { stopped_ = true; }

    /** Events scheduled but not yet executed. */
    std::size_t pending() const { return queue_.size(); }

    /** Events executed so far. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        std::uint64_t tick;
        std::uint64_t seq; //!< insertion order; breaks tick ties
        Callback fn;
    };

    /** Min-heap order: earliest tick first, FIFO within a tick. */
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.tick != b.tick)
                return a.tick > b.tick;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::uint64_t now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    bool stopped_ = false;
};

} // namespace fairco2::server

#endif // FAIRCO2_SERVER_EVENTLOOP_HH
