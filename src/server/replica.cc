#include "replica.hh"

#include <algorithm>
#include <utility>

#include "common/obs.hh"
#include "common/parallel.hh"
#include "resilience/checkpoint.hh"

namespace fairco2::server
{

namespace
{

durability::WalBatch
toWalBatch(const BatchRef &batch)
{
    durability::WalBatch out;
    out.tenant = batch.tenant;
    out.period = batch.period;
    out.coveredPeriods = batch.coveredPeriods;
    out.deferred = batch.deferred ? 1 : 0;
    return out;
}

BatchRef
fromWalBatch(const durability::WalBatch &batch)
{
    BatchRef out;
    out.tenant = batch.tenant;
    out.period = batch.period;
    out.coveredPeriods = batch.coveredPeriods;
    out.deferred = batch.deferred != 0;
    return out;
}

[[noreturn]] void
replayDiverged(std::uint64_t period, const std::string &field,
               std::uint64_t got, std::uint64_t logged)
{
    throw durability::WalIntegrityError(
        "wal replay diverged at period " + std::to_string(period) +
        ": " + field + " is " + std::to_string(got) +
        ", log says " + std::to_string(logged));
}

} // namespace

std::uint64_t
serverConfigHash(const ServerConfig &config)
{
    using resilience::fnv1a64;
    std::uint64_t hash = fnv1a64("fairco2-serve-wal", 17);
    const auto mix = [&hash](const auto &value) {
        hash = fnv1a64(&value, sizeof(value), hash);
    };
    mix(config.tenants);
    mix(config.zipfS);
    mix(config.admissionRate);
    mix(config.durationPeriods);
    mix(config.windowPeriods);
    mix(config.periodSamples);
    mix(config.stepSeconds);
    mix(config.poolGramsPerSecond);
    mix(config.seed);
    mix(config.maxBatchPeriods);
    mix(config.meanDemandUnits);
    mix(config.overload.highWatermarkPercent);
    mix(config.overload.lowWatermarkPercent);
    mix(config.overload.escalatePeriods);
    mix(config.overload.recoverPeriods);
    for (std::size_t split : config.innerSplits)
        mix(split);
    // The fault plan changes shed/crash decisions, so a log is only
    // replayable under the plan that wrote it.
    if (!config.faultPlan.spec().empty())
        hash = fnv1a64(config.faultPlan.spec().data(),
                       config.faultPlan.spec().size(), hash);
    // The surrogate changes which path publishes the fleet signal,
    // so the model identity and tolerance are signal-affecting —
    // a log written with a model replays only against that model.
    const bool surrogate_on =
        config.surrogate.enabled && config.surrogate.model;
    mix(surrogate_on);
    if (surrogate_on) {
        mix(config.surrogate.tolerance);
        const std::uint64_t model_id =
            config.surrogate.model->checksum();
        mix(model_id);
    }
    return hash;
}

Replica::Replica(const ServerConfig &config,
                 const TenantPopulation &population)
    : config_(config), population_(population),
      admission_([&] {
          AdmissionController::Config ac;
          ac.ratePerPeriod = config.admissionRate;
          return ac;
      }()),
      governor_(config.overload)
{
    // Period q closes once every batch covering it — including one
    // admission deferral — must have arrived.
    watermark_ = config_.maxBatchPeriods + 1;

    core::IncrementalSignalCore::Config cc;
    cc.windowPeriods = config_.windowPeriods;
    cc.periodSamples = config_.periodSamples;
    cc.stepSeconds = config_.stepSeconds;
    cc.innerSplits = config_.innerSplits;
    cc.cacheCapacity = config_.cacheCapacity;
    cc.cacheBackend = config_.cacheBackend;
    cc.poolGramsPerSecond = config_.poolGramsPerSecond;
    cc.seed = config_.seed;

    shards_.resize(config_.shards);
    for (Shard &shard : shards_)
        shard.core =
            std::make_unique<core::IncrementalSignalCore>(cc);
    // Only the fleet engine — whose newest-period publication *is*
    // the served signal — gets the surrogate; shard engines stay
    // exact so the per-shard intensities remain reference values.
    if (config_.surrogate.enabled && config_.surrogate.model) {
        cc.surrogateModel = config_.surrogate.model;
        cc.surrogateTol = config_.surrogate.tolerance;
    }
    fleet_ = std::make_unique<core::IncrementalSignalCore>(cc);
}

shapley::SurrogateTemporalEngine::Counters
Replica::surrogateCounters() const
{
    return fleet_->surrogateCounters();
}

Replica::~Replica() = default;

std::vector<std::uint64_t> &
Replica::pendingFor(Shard &shard, std::uint64_t period,
                    std::size_t period_samples)
{
    for (std::size_t i = 0; i < shard.pendingPeriods.size(); ++i)
        if (shard.pendingPeriods[i] == period)
            return shard.pending[i];
    shard.pendingPeriods.push_back(period);
    shard.pending.emplace_back(period_samples, 0);
    return shard.pending.back();
}

void
Replica::offerLive(const BatchRef &batch,
                   durability::WalTickRecord &record)
{
    const TenantClass cls = population_.classOf(batch.tenant);
    // Overload levels >= ShedFree reject Free-tier batches before
    // they can drain the token buckets.
    if (governor_.level() != pipeline::OverloadLevel::Normal &&
        cls == TenantClass::Free) {
        ++batchesShed_;
        FAIRCO2_COUNT("server.admission.shed", 1);
        return;
    }
    const AdmissionDecision decision =
        admission_.offer(cls, batch.deferred);
    switch (decision) {
    case AdmissionDecision::Admitted:
        shards_[batch.tenant % config_.shards].inbox.push_back(batch);
        record.admitted.push_back(toWalBatch(batch));
        break;
    case AdmissionDecision::Deferred: {
        BatchRef retry = batch;
        retry.deferred = true;
        deferred_.push_back(retry);
        break;
    }
    case AdmissionDecision::Rejected:
        break;
    }
}

durability::WalTickRecord
Replica::applyArrivalsLive(std::uint64_t period)
{
    durability::WalTickRecord record;
    record.period = period;

    admission_.beginPeriod();
    const AdmissionController::Totals before = admission_.totals();
    const std::uint64_t shed_before = batchesShed_;

    // Batches deferred at the previous period go first — they have
    // already waited one period and the watermark only covers one
    // deferral.
    std::vector<BatchRef> retries;
    retries.swap(deferred_);
    for (const BatchRef &batch : retries)
        offerLive(batch, record);

    // Fresh offers in tenant-rank order (the Zipf head pushes
    // first). Serial and shard-agnostic: this order is part of the
    // determinism contract.
    if (period < config_.durationPeriods) {
        for (std::uint64_t t = 0; t < population_.size(); ++t) {
            if (!population_.pushesAt(t, period))
                continue;
            const BatchRef batch = population_.batchAt(t, period);
            if (batch.coveredPeriods == 0)
                continue; // first push before any period closed
            offerLive(batch, record);
        }
    }

    const AdmissionController::Totals after = admission_.totals();
    record.offeredDelta = after.offered - before.offered;
    record.deferredDelta = after.deferred - before.deferred;
    record.rejectedDelta = after.rejected - before.rejected;
    record.shedDelta = batchesShed_ - shed_before;
    governor_.observe(record.offeredDelta, record.deferredDelta,
                      record.rejectedDelta);

    for (const BatchRef &batch : deferred_)
        record.deferredOut.push_back(toWalBatch(batch));
    record.totalOffered = after.offered;
    record.totalAdmitted = after.admitted;
    record.totalDeferred = after.deferred;
    record.totalRejected = after.rejected;
    for (std::size_t c = 0; c < kTenantClasses; ++c)
        record.bucketTokens[c] =
            admission_.bucket(static_cast<TenantClass>(c)).tokens();
    record.overloadLevel =
        static_cast<std::uint32_t>(governor_.level());
    // Running fleet surrogate decision totals as of this tick: every
    // accept/reject of the preceding close ticks is on the record,
    // so replay can prove it re-took the same decisions.
    const auto surrogate_totals = fleet_->surrogateCounters();
    record.surrogateAccepts = surrogate_totals.accepts;
    record.surrogateRejects = surrogate_totals.rejects;
    return record;
}

void
Replica::applyArrivalsReplay(const durability::WalTickRecord &record)
{
    admission_.beginPeriod();

    // Replay applies the *logged* decisions rather than re-deriving
    // them: admitted batches take their class tokens and land in
    // their shard inboxes; deferred/rejected offers update totals in
    // aggregate; the next tick's retry set is the logged one.
    deferred_.clear();
    for (const durability::WalBatch &batch : record.admitted) {
        const TenantClass cls = population_.classOf(batch.tenant);
        if (!admission_.replayAdmit(cls))
            throw durability::WalIntegrityError(
                "wal replay diverged at period " +
                std::to_string(record.period) +
                ": logged admission of tenant " +
                std::to_string(batch.tenant) +
                " found an empty token bucket");
        shards_[batch.tenant % config_.shards].inbox.push_back(
            fromWalBatch(batch));
    }
    admission_.replayNonAdmitted(record.deferredDelta,
                                 record.rejectedDelta);
    batchesShed_ += record.shedDelta;
    FAIRCO2_COUNT("server.admission.shed", record.shedDelta);
    governor_.observe(record.offeredDelta, record.deferredDelta,
                      record.rejectedDelta);
    for (const durability::WalBatch &batch : record.deferredOut)
        deferred_.push_back(fromWalBatch(batch));

    // Cross-checks: the record carries the primary's running totals,
    // bucket tokens, and governor level after this tick. A replayed
    // state that disagrees means the log and the configuration do
    // not describe the same run — fail loudly, never publish from it.
    const AdmissionController::Totals &totals = admission_.totals();
    if (totals.offered != record.totalOffered)
        replayDiverged(record.period, "offered total",
                       totals.offered, record.totalOffered);
    if (totals.admitted != record.totalAdmitted)
        replayDiverged(record.period, "admitted total",
                       totals.admitted, record.totalAdmitted);
    if (totals.deferred != record.totalDeferred)
        replayDiverged(record.period, "deferred total",
                       totals.deferred, record.totalDeferred);
    if (totals.rejected != record.totalRejected)
        replayDiverged(record.period, "rejected total",
                       totals.rejected, record.totalRejected);
    for (std::size_t c = 0; c < kTenantClasses; ++c) {
        const std::uint64_t tokens =
            admission_.bucket(static_cast<TenantClass>(c)).tokens();
        if (tokens != record.bucketTokens[c])
            replayDiverged(record.period,
                           "class " + std::to_string(c) +
                               " bucket tokens",
                           tokens, record.bucketTokens[c]);
    }
    const auto level =
        static_cast<std::uint32_t>(governor_.level());
    if (level != record.overloadLevel)
        replayDiverged(record.period, "overload level", level,
                       record.overloadLevel);
    // The replayed fleet engine re-takes every surrogate
    // accept/reject decision from the same guardrails; its running
    // totals must match what the primary logged, byte for byte.
    const auto surrogate_totals = fleet_->surrogateCounters();
    if (surrogate_totals.accepts != record.surrogateAccepts)
        replayDiverged(record.period, "surrogate accepts",
                       surrogate_totals.accepts,
                       record.surrogateAccepts);
    if (surrogate_totals.rejects != record.surrogateRejects)
        replayDiverged(record.period, "surrogate rejects",
                       surrogate_totals.rejects,
                       record.surrogateRejects);
}

Replica::CloseOutcome
Replica::applyClose(std::uint64_t period)
{
    const std::size_t S = config_.shards;
    const std::size_t M = config_.periodSamples;

    // Materialize this period's admitted batches into shard-local
    // pending accumulators; when a period is closing, extract its
    // samples. One chunk per shard: all mutation is shard-local, so
    // the region is race-free and — because materialization is pure
    // in (seed, tenant, period) — thread-count independent.
    const bool closing = period >= watermark_;
    const std::uint64_t q = closing ? period - watermark_ : 0;
    parallel::parallelFor(0, S, 1, [&](std::size_t lo,
                                       std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
            Shard &shard = shards_[s];
            for (const BatchRef &batch : shard.inbox) {
                for (std::uint32_t p = 0; p < batch.coveredPeriods;
                     ++p) {
                    const std::uint64_t covered =
                        batch.period - batch.coveredPeriods + p;
                    const std::vector<std::uint64_t> units =
                        population_.materializePeriod(batch.tenant,
                                                      covered);
                    std::vector<std::uint64_t> &pending =
                        pendingFor(shard, covered, M);
                    for (std::size_t i = 0; i < M; ++i)
                        pending[i] += units[i];
                }
                shard.samplesIngested +=
                    static_cast<std::uint64_t>(
                        batch.coveredPeriods) *
                    M;
            }
            shard.inbox.clear();
            if (!closing)
                continue;
            shard.closedUnits.assign(M, 0);
            for (std::size_t i = 0; i < shard.pendingPeriods.size();
                 ++i) {
                if (shard.pendingPeriods[i] != q)
                    continue;
                shard.closedUnits = std::move(shard.pending[i]);
                shard.pending.erase(
                    shard.pending.begin() +
                    static_cast<std::ptrdiff_t>(i));
                shard.pendingPeriods.erase(
                    shard.pendingPeriods.begin() +
                    static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
    });

    if (!closing)
        return CloseOutcome{};
    return closePeriod(q);
}

Replica::CloseOutcome
Replica::closePeriod(std::uint64_t period)
{
    const std::size_t S = config_.shards;
    const std::size_t M = config_.periodSamples;
    const std::size_t W = config_.windowPeriods;
    const double pool_window = config_.poolGramsPerSecond *
                               config_.stepSeconds *
                               static_cast<double>(M) *
                               static_cast<double>(W);
    CloseOutcome outcome;
    outcome.closed = true;
    outcome.period = period;

    // Fleet aggregate: an associative integer sum over shards, so it
    // is identical for any shard partition — the keystone of the
    // bit-identity contract.
    std::vector<std::uint64_t> fleet_units(M, 0);
    for (std::size_t s = 0; s < S; ++s) {
        std::uint64_t shard_sum = 0;
        for (std::size_t i = 0; i < M; ++i) {
            fleet_units[i] += shards_[s].closedUnits[i];
            shard_sum += shards_[s].closedUnits[i];
        }
        shards_[s].windowUnitSums.push_back(shard_sum);
        if (shards_[s].windowUnitSums.size() > W)
            shards_[s].windowUnitSums.pop_front();
    }
    std::uint64_t fleet_sum = 0;
    for (std::size_t i = 0; i < M; ++i)
        fleet_sum += fleet_units[i];
    fleetWindowSums_.push_back(fleet_sum);
    if (fleetWindowSums_.size() > W)
        fleetWindowSums_.pop_front();
    std::uint64_t fleet_window_units = 0;
    for (std::uint64_t sum : fleetWindowSums_)
        fleet_window_units += sum;
    outcome.fleetUnits = fleet_sum;

    // Per-shard attribution (observability only — shard signals
    // depend on the partition by identity). Each shard's slice of
    // the window pool is its integer usage share.
    parallel::parallelFor(0, S, 1, [&](std::size_t lo,
                                       std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
            Shard &shard = shards_[s];
            for (std::size_t i = 0; i < M; ++i)
                shard.core->push(
                    static_cast<double>(shard.closedUnits[i]));
            shard.newestIntensityMean = 0.0;
            if (!shard.core->ready())
                continue;
            std::uint64_t shard_window_units = 0;
            for (std::uint64_t sum : shard.windowUnitSums)
                shard_window_units += sum;
            const double shard_pool =
                fleet_window_units == 0
                    ? 0.0
                    : pool_window *
                          (static_cast<double>(shard_window_units) /
                           static_cast<double>(fleet_window_units));
            shard.newestIntensityMean =
                shard.core->publishNewest(shard_pool)
                    .newestMeanIntensity;
        }
    });

    // Fleet attribution — the published signal. Serial, fed by the
    // shard-independent aggregate. The core recovers from injected
    // cache corruption by rebuilding its engine from the retained
    // window samples; the engine's cache-state-independence contract
    // makes the republished signal identical to a fault-free run.
    for (std::size_t i = 0; i < M; ++i)
        fleet_->push(static_cast<double>(fleet_units[i]));
    ++periodsClosed_;

    if (!fleet_->ready())
        return outcome;

    if (config_.faultPlan.active() &&
        config_.faultPlan.fires(resilience::FaultSite::CacheCorrupt,
                                period) &&
        fleet_->corruptCacheEntryForTest()) {
        config_.faultPlan.noteInjected();
        ++faultsInjected_;
        outcome.faultInjected = true;
        FAIRCO2_COUNT("resilience.fault.cache_corrupt", 1);
    }
    const auto publication = fleet_->publishNewest(pool_window);
    double fleet_mean = publication.newestMeanIntensity;
    outcome.attributedGrams = publication.attributedGrams;

    // Overload level Proportional degrades the *published* value to
    // the RUP baseline's constant intensity while the engines keep
    // ingesting, so recovery republishes exact values immediately.
    if (governor_.level() == pipeline::OverloadLevel::Proportional &&
        fleet_window_units > 0) {
        fleet_mean = pool_window /
                     (static_cast<double>(fleet_window_units) *
                      config_.stepSeconds);
        FAIRCO2_COUNT("server.publish.proportional", 1);
    }

    outcome.published = true;
    outcome.fleetIntensity = fleet_mean;
    for (std::size_t s = 0; s < S; ++s)
        outcome.shardIntensity[s] = shards_[s].newestIntensityMean;
    return outcome;
}

durability::WindowDigests
Replica::windowDigests() const
{
    durability::WindowDigests out;
    out.fleet = durability::windowSumDigest(
        periodsClosed_,
        std::vector<std::uint64_t>(fleetWindowSums_.begin(),
                                   fleetWindowSums_.end()));
    out.shard.reserve(shards_.size());
    for (const Shard &shard : shards_)
        out.shard.push_back(durability::windowSumDigest(
            periodsClosed_,
            std::vector<std::uint64_t>(shard.windowUnitSums.begin(),
                                       shard.windowUnitSums.end())));
    return out;
}

std::uint64_t
Replica::samplesIngested() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.samplesIngested;
    return total;
}

std::uint64_t
Replica::engineRebuilds() const
{
    return fleet_->rebuilds();
}

} // namespace fairco2::server
