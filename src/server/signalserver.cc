#include "signalserver.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "common/obs.hh"
#include "resilience/checkpoint.hh"
#include "resilience/signals.hh"

namespace fairco2::server
{

std::uint64_t
ServerReport::signalSignature() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    if (!publishedIntensity.empty())
        hash = resilience::fnv1a64(
            publishedIntensity.data(),
            publishedIntensity.size() * sizeof(double), hash);
    return hash;
}

SignalServer::SignalServer(const ServerConfig &config)
    : config_(config), population_([&] {
          TenantPopulation::Config pc;
          pc.tenants = config.tenants;
          pc.zipfS = config.zipfS;
          pc.seed = config.seed;
          pc.periodSamples = config.periodSamples;
          pc.maxBatchPeriods = config.maxBatchPeriods;
          pc.meanDemandUnits = config.meanDemandUnits;
          return pc;
      }())
{
    if (config_.shards == 0 || config_.shards > kMaxShards)
        throw std::invalid_argument(
            "SignalServer: shards must be in [1, 64]");
    if (config_.durationPeriods == 0)
        throw std::invalid_argument(
            "SignalServer: duration must be > 0 periods");
    if (config_.windowPeriods == 0 || config_.periodSamples == 0)
        throw std::invalid_argument(
            "SignalServer: window and period sizes must be > 0");
    if (config_.stepSeconds <= 0.0 ||
        !std::isfinite(config_.stepSeconds))
        throw std::invalid_argument(
            "SignalServer: step seconds must be positive");
    if (config_.poolGramsPerSecond < 0.0 ||
        !std::isfinite(config_.poolGramsPerSecond))
        throw std::invalid_argument(
            "SignalServer: pool rate must be finite and >= 0");
    const DurabilityOptions &dur = config_.durability;
    if (dur.walDir.empty()) {
        if (dur.recover)
            throw std::invalid_argument(
                "SignalServer: recovery requires a wal directory");
        if (dur.standby)
            throw std::invalid_argument(
                "SignalServer: a hot standby requires a wal "
                "directory");
        if (dur.killTorn)
            throw std::invalid_argument(
                "SignalServer: a torn kill requires a wal "
                "directory");
    }
    if (dur.walSegmentRecords == 0)
        throw std::invalid_argument(
            "SignalServer: wal segment capacity must be >= 1");

    // Period q closes once every batch covering it — including one
    // admission deferral — must have arrived.
    watermark_ = config_.maxBatchPeriods + 1;
}

SignalServer::~SignalServer() = default;

Replica &
SignalServer::active()
{
    return crashed_ ? *standby_ : *primary_;
}

void
SignalServer::setupDurability()
{
    const DurabilityOptions &dur = config_.durability;
    if (dur.walDir.empty())
        return;
    configHash_ = serverConfigHash(config_);

    durability::WalWriter::Options wo;
    wo.dir = dur.walDir;
    wo.configHash = configHash_;
    wo.codec = dur.walCodec;
    wo.segmentRecords = dur.walSegmentRecords;
    wo.onSeal = [this](std::uint64_t) {
        // Ship the sealed segment: the standby replays from disk one
        // tick later (after this tick's close), never from the
        // primary's memory.
        if (standby_ == nullptr || crashed_)
            return;
        loop_.after(1, [this] {
            if (!crashed_)
                syncStandbyFromDisk(true);
        });
    };

    std::vector<durability::WalTickRecord> tail;
    if (dur.recover) {
        durability::WalLoadResult load =
            durability::loadWal(dur.walDir, configHash_);
        report_.recovered = true;
        report_.droppedWalTail = load.droppedTail;
        report_.walTailDiagnostic = load.tailDiagnostic;
        wo.firstSegmentIndex = load.nextSegmentIndex;
        wo.firstRecordIndex = load.records.size() - load.tailRecords;
        tail.assign(load.records.end() -
                        static_cast<std::ptrdiff_t>(load.tailRecords),
                    load.records.end());
        replay_ = std::move(load.records);
        FAIRCO2_COUNT("durability.recover.records",
                      replay_.size());
    } else {
        // A fresh run must not silently clobber (or interleave with)
        // an existing log.
        namespace fs = std::filesystem;
        for (const auto &entry : fs::directory_iterator(dur.walDir))
            if (entry.path().filename().string().rfind("wal-", 0) ==
                0)
                throw durability::WalIntegrityError(
                    "wal directory '" + dur.walDir +
                    "' already holds a log; pass --recover to "
                    "replay it or point --wal-dir at a fresh "
                    "directory");
    }
    wal_ = std::make_unique<durability::WalWriter>(wo);
    if (!tail.empty())
        wal_->adoptTail(tail);
}

void
SignalServer::killNow()
{
    // Simulate kill -9 as the shell reports it (128 + SIGKILL):
    // no stdio flush, no destructors, no WAL seal.
    std::_Exit(137);
}

void
SignalServer::publishOutcome(const Replica::CloseOutcome &outcome)
{
    Replica &rep = active();
    const AdmissionController::Totals &totals =
        rep.admission().totals();
    ServerSnapshot snap;
    snap.version = cell_.publishes() + 1;
    snap.period = outcome.period;
    snap.fleetIntensity = outcome.fleetIntensity;
    snap.fleetDemandUnits = static_cast<double>(outcome.fleetUnits);
    snap.admitted = totals.admitted;
    snap.deferred = totals.deferred;
    snap.rejected = totals.rejected;
    snap.overloadLevel =
        static_cast<std::uint32_t>(rep.governor().level());
    snap.shards = static_cast<std::uint32_t>(config_.shards);
    snap.shardIntensity = outcome.shardIntensity;
    cell_.publish(snap);

    report_.attributedGrams += outcome.attributedGrams;
    report_.publishedIntensity.push_back(outcome.fleetIntensity);
    report_.publishedPeriods.push_back(outcome.period);
    FAIRCO2_COUNT("server.publishes", 1);
    FAIRCO2_GAUGE_SET("server.fleet.intensity",
                      outcome.fleetIntensity);
    FAIRCO2_GAUGE_SET("server.fleet.demand_units",
                      static_cast<double>(outcome.fleetUnits));
}

void
SignalServer::replayIntoStandby(
    const durability::WalTickRecord &record)
{
    standby_->applyArrivalsReplay(record);
    ++standbyConsumed_;
    ++report_.standbyReplayedRecords;
    const Replica::CloseOutcome outcome =
        standby_->applyClose(record.period);
    if (!outcome.published)
        return;
    // Zero-divergence contract: every publish the standby reproduces
    // must match the primary's bit for bit.
    if (standbyPublishIndex_ >= report_.publishedIntensity.size())
        throw durability::WalIntegrityError(
            "standby replay of period " +
            std::to_string(record.period) +
            " published ahead of the primary");
    const double expect =
        report_.publishedIntensity[standbyPublishIndex_];
    if (std::memcmp(&outcome.fleetIntensity, &expect,
                    sizeof(double)) != 0)
        throw durability::WalIntegrityError(
            "standby diverged from the primary at publish " +
            std::to_string(standbyPublishIndex_) + " (period " +
            std::to_string(outcome.period) + ")");
    ++standbyPublishIndex_;
    ++report_.standbyPublishChecks;
}

void
SignalServer::syncStandbyFromDisk(bool sealed_only)
{
    const durability::WalLoadResult load =
        durability::loadWal(config_.durability.walDir, configHash_);
    std::size_t limit = load.records.size();
    if (sealed_only)
        limit -= static_cast<std::size_t>(load.tailRecords);
    // Never replay past the primary: during recovery the log already
    // holds ticks the primary has not re-driven yet.
    limit = std::min<std::size_t>(limit, primaryRecords_);
    for (std::size_t i = standbyConsumed_; i < limit; ++i)
        replayIntoStandby(load.records[i]);
}

void
SignalServer::failover(std::uint64_t period)
{
    crashed_ = true;
    config_.faultPlan.noteInjected();
    report_.failedOver = true;
    report_.failoverPeriod = period;
    FAIRCO2_COUNT("durability.failover", 1);
    // Catch up from the log on disk — tail segment included; the
    // dead primary's memory is gone by definition.
    syncStandbyFromDisk(false);
    // No-missing-period contract: after catch-up the standby's next
    // publish continues the primary's stream exactly.
    if (standbyPublishIndex_ != report_.publishedIntensity.size())
        throw durability::WalIntegrityError(
            "failover at period " + std::to_string(period) +
            " left a publish gap: standby reproduced " +
            std::to_string(standbyPublishIndex_) + " of " +
            std::to_string(report_.publishedIntensity.size()) +
            " publishes");
}

void
SignalServer::handleArrivals(std::uint64_t period)
{
    const DurabilityOptions &dur = config_.durability;

    // Graceful drain: stop at a tick boundary, seal the WAL tail so
    // a later --recover resumes from a clean log, and report the
    // interruption (the CLI exits 130).
    if (resilience::shutdownRequested()) {
        report_.interrupted = true;
        if (wal_ != nullptr)
            wal_->seal();
        loop_.stop();
        return;
    }

    if (standby_ != nullptr && !crashed_ &&
        config_.faultPlan.active() &&
        config_.faultPlan.fires(resilience::FaultSite::PrimaryCrash,
                                period))
        failover(period);

    const std::uint64_t tick = loop_.now(); // == 2 * period
    const bool kill_here = dur.killAtTick == tick;
    Replica &rep = active();

    if (replayNext_ < replay_.size()) {
        // Recovery: re-drive the logged tick (already in the WAL —
        // nothing is appended).
        const durability::WalTickRecord &record = replay_[replayNext_];
        if (record.period != period)
            throw durability::WalIntegrityError(
                "wal record " + std::to_string(replayNext_) +
                " is for period " + std::to_string(record.period) +
                ", expected " + std::to_string(period));
        rep.applyArrivalsReplay(record);
        ++replayNext_;
        ++report_.replayedRecords;
    } else {
        const durability::WalTickRecord record =
            rep.applyArrivalsLive(period);
        if (wal_ != nullptr) {
            if (kill_here && dur.killTorn) {
                wal_->appendTorn(record);
                killNow();
            }
            wal_->append(record);
        }
    }
    ++primaryRecords_;

    if (kill_here)
        killNow();
    if (dur.haltAtTick == tick) {
        halted_ = true;
        loop_.stop();
    }
}

void
SignalServer::handleClose(std::uint64_t period)
{
    const Replica::CloseOutcome outcome = active().applyClose(period);
    if (outcome.published)
        publishOutcome(outcome);

    const DurabilityOptions &dur = config_.durability;
    if (dur.killAtTick == loop_.now())
        killNow();
    if (dur.haltAtTick == loop_.now()) {
        halted_ = true;
        loop_.stop();
    }
}

void
SignalServer::runScrub(std::uint64_t period)
{
    // Anti-entropy: re-derive the window digests purely from the log
    // on disk and compare them to the serving replica's live state.
    durability::WalLoadResult load =
        durability::loadWal(config_.durability.walDir, configHash_);
    // During recovery the log extends past the loop's progress; only
    // ticks up to this period have been applied.
    if (load.records.size() > period + 1)
        load.records.resize(period + 1);
    const durability::WindowDigests derived =
        durability::deriveWindowDigests(
            load.records, config_.shards, config_.windowPeriods,
            watermark_,
            [this](std::uint64_t tenant, std::uint64_t p) {
                std::uint64_t units = 0;
                for (std::uint64_t sample :
                     population_.materializePeriod(tenant, p))
                    units += sample;
                return units;
            });
    const durability::WindowDigests live = active().windowDigests();
    ++report_.scrubRuns;
    FAIRCO2_COUNT("durability.scrub.runs", 1);
    if (!(derived == live)) {
        ++report_.scrubMismatches;
        FAIRCO2_COUNT("durability.scrub.mismatches", 1);
        throw durability::WalIntegrityError(
            "anti-entropy scrub mismatch at period " +
            std::to_string(period) +
            ": wal-derived window digests disagree with the live "
            "replica");
    }
}

ServerReport
SignalServer::run()
{
    if (ran_)
        throw std::logic_error("SignalServer::run: already ran");
    ran_ = true;

    primary_ = std::make_unique<Replica>(config_, population_);
    if (config_.durability.standby)
        standby_ = std::make_unique<Replica>(config_, population_);
    setupDurability();

    // Two ticks per period: arrivals at 2p, close at 2p+1. Arrival
    // ticks keep firing through the drain tail so deferred batches
    // are still decided and the governor keeps observing.
    const std::uint64_t horizon =
        config_.durationPeriods + watermark_;
    for (std::uint64_t p = 0; p < horizon; ++p) {
        loop_.at(2 * p, [this, p] { handleArrivals(p); });
        loop_.at(2 * p + 1, [this, p] { handleClose(p); });
    }
    // Scrub events land after the close at the same tick (scheduled
    // later at the same tick number => higher insertion seq).
    const std::uint64_t scrub_every =
        config_.durability.scrubPeriods;
    if (wal_ != nullptr && scrub_every > 0)
        for (std::uint64_t p = scrub_every; p < horizon;
             p += scrub_every)
            loop_.at(2 * p + 1, [this, p] { runScrub(p); });
    loop_.run();

    // Clean finish (not a simulated crash): seal the tail so the log
    // is all-sealed, then let the standby drain it completely — the
    // lockstep check covers every publish of the run.
    if (wal_ != nullptr && !halted_ && !report_.interrupted) {
        wal_->seal();
        if (standby_ != nullptr && !crashed_)
            syncStandbyFromDisk(false);
    }
    if (wal_ != nullptr && report_.interrupted && standby_ != nullptr &&
        !crashed_)
        syncStandbyFromDisk(false);

    Replica &rep = active();
    report_.periodsClosed = rep.periodsClosed();
    report_.publishes = cell_.publishes();
    report_.admission = rep.admission().totals();
    report_.batchesShed = rep.batchesShed();
    report_.eventsExecuted = loop_.executed();
    report_.faultsInjected =
        rep.faultsInjected() + (report_.failedOver ? 1 : 0);
    report_.engineRebuilds = rep.engineRebuilds();
    report_.overloadEscalations = rep.governor().escalations();
    report_.overloadRecoveries = rep.governor().recoveries();
    report_.finalOverloadLevel =
        static_cast<std::uint32_t>(rep.governor().level());
    report_.samplesIngested = rep.samplesIngested();
    const auto surrogate_totals = rep.surrogateCounters();
    report_.surrogateAccepts = surrogate_totals.accepts;
    report_.surrogateRejects = surrogate_totals.rejects;
    if (wal_ != nullptr) {
        report_.walRecords = wal_->recordsAppended();
        report_.walSegmentsSealed = wal_->segmentsSealed();
        report_.walRawBytes = wal_->rawBytes();
        report_.walStoredBytes = wal_->storedBytes();
    }
    FAIRCO2_COUNT("server.samples.ingested",
                  report_.samplesIngested);
    return report_;
}

} // namespace fairco2::server
