#include "signalserver.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/obs.hh"

namespace fairco2::server
{

namespace
{

/** FNV-1a over raw bytes. */
std::uint64_t
fnv1a(const void *data, std::size_t bytes, std::uint64_t hash)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace

std::uint64_t
ServerReport::signalSignature() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    if (!publishedIntensity.empty())
        hash = fnv1a(publishedIntensity.data(),
                     publishedIntensity.size() * sizeof(double), hash);
    return hash;
}

SignalServer::SignalServer(const ServerConfig &config)
    : config_(config),
      population_([&] {
          TenantPopulation::Config pc;
          pc.tenants = config.tenants;
          pc.zipfS = config.zipfS;
          pc.seed = config.seed;
          pc.periodSamples = config.periodSamples;
          pc.maxBatchPeriods = config.maxBatchPeriods;
          pc.meanDemandUnits = config.meanDemandUnits;
          return pc;
      }()),
      admission_([&] {
          AdmissionController::Config ac;
          ac.ratePerPeriod = config.admissionRate;
          return ac;
      }()),
      governor_(config.overload)
{
    if (config_.shards == 0 || config_.shards > kMaxShards)
        throw std::invalid_argument(
            "SignalServer: shards must be in [1, 64]");
    if (config_.durationPeriods == 0)
        throw std::invalid_argument(
            "SignalServer: duration must be > 0 periods");
    if (config_.windowPeriods == 0 || config_.periodSamples == 0)
        throw std::invalid_argument(
            "SignalServer: window and period sizes must be > 0");
    if (config_.stepSeconds <= 0.0 ||
        !std::isfinite(config_.stepSeconds))
        throw std::invalid_argument(
            "SignalServer: step seconds must be positive");
    if (config_.poolGramsPerSecond < 0.0 ||
        !std::isfinite(config_.poolGramsPerSecond))
        throw std::invalid_argument(
            "SignalServer: pool rate must be finite and >= 0");

    // Period q closes once every batch covering it — including one
    // admission deferral — must have arrived.
    watermark_ = config_.maxBatchPeriods + 1;

    core::IncrementalSignalCore::Config cc;
    cc.windowPeriods = config_.windowPeriods;
    cc.periodSamples = config_.periodSamples;
    cc.stepSeconds = config_.stepSeconds;
    cc.innerSplits = config_.innerSplits;
    cc.cacheCapacity = config_.cacheCapacity;
    cc.cacheBackend = config_.cacheBackend;
    cc.poolGramsPerSecond = config_.poolGramsPerSecond;
    cc.seed = config_.seed;

    shards_.resize(config_.shards);
    for (Shard &shard : shards_)
        shard.core =
            std::make_unique<core::IncrementalSignalCore>(cc);
    fleet_ = std::make_unique<core::IncrementalSignalCore>(cc);
}

SignalServer::~SignalServer() = default;

std::vector<std::uint64_t> &
SignalServer::pendingFor(Shard &shard, std::uint64_t period,
                         std::size_t period_samples)
{
    for (std::size_t i = 0; i < shard.pendingPeriods.size(); ++i)
        if (shard.pendingPeriods[i] == period)
            return shard.pending[i];
    shard.pendingPeriods.push_back(period);
    shard.pending.emplace_back(period_samples, 0);
    return shard.pending.back();
}

void
SignalServer::offerBatch(const BatchRef &batch)
{
    const TenantClass cls = population_.classOf(batch.tenant);
    // Overload levels >= ShedFree reject Free-tier batches before
    // they can drain the token buckets.
    if (governor_.level() != pipeline::OverloadLevel::Normal &&
        cls == TenantClass::Free) {
        ++report_.batchesShed;
        FAIRCO2_COUNT("server.admission.shed", 1);
        return;
    }
    const AdmissionDecision decision =
        admission_.offer(cls, batch.deferred);
    switch (decision) {
    case AdmissionDecision::Admitted:
        shards_[batch.tenant % config_.shards].inbox.push_back(batch);
        break;
    case AdmissionDecision::Deferred: {
        BatchRef retry = batch;
        retry.deferred = true;
        deferred_.push_back(retry);
        break;
    }
    case AdmissionDecision::Rejected:
        break;
    }
}

void
SignalServer::handleArrivals(std::uint64_t period)
{
    admission_.beginPeriod();
    const AdmissionController::Totals before = admission_.totals();

    // Batches deferred at the previous period go first — they have
    // already waited one period and the watermark only covers one
    // deferral.
    std::vector<BatchRef> retries;
    retries.swap(deferred_);
    for (const BatchRef &batch : retries)
        offerBatch(batch);

    // Fresh offers in tenant-rank order (the Zipf head pushes
    // first). Serial and shard-agnostic: this order is part of the
    // determinism contract.
    if (period < config_.durationPeriods) {
        for (std::uint64_t t = 0; t < population_.size(); ++t) {
            if (!population_.pushesAt(t, period))
                continue;
            const BatchRef batch = population_.batchAt(t, period);
            if (batch.coveredPeriods == 0)
                continue; // first push before any period closed
            offerBatch(batch);
        }
    }

    const AdmissionController::Totals after = admission_.totals();
    governor_.observe(after.offered - before.offered,
                      after.deferred - before.deferred,
                      after.rejected - before.rejected);
}

void
SignalServer::handleClose(std::uint64_t period)
{
    const std::size_t S = config_.shards;
    const std::size_t M = config_.periodSamples;

    // Materialize this period's admitted batches into shard-local
    // pending accumulators; when a period is closing, extract its
    // samples. One chunk per shard: all mutation is shard-local, so
    // the region is race-free and — because materialization is pure
    // in (seed, tenant, period) — thread-count independent.
    const bool closing = period >= watermark_;
    const std::uint64_t q = closing ? period - watermark_ : 0;
    parallel::parallelFor(0, S, 1, [&](std::size_t lo,
                                       std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
            Shard &shard = shards_[s];
            for (const BatchRef &batch : shard.inbox) {
                for (std::uint32_t p = 0; p < batch.coveredPeriods;
                     ++p) {
                    const std::uint64_t covered =
                        batch.period - batch.coveredPeriods + p;
                    const std::vector<std::uint64_t> units =
                        population_.materializePeriod(batch.tenant,
                                                      covered);
                    std::vector<std::uint64_t> &pending =
                        pendingFor(shard, covered, M);
                    for (std::size_t i = 0; i < M; ++i)
                        pending[i] += units[i];
                }
                shard.samplesIngested +=
                    static_cast<std::uint64_t>(
                        batch.coveredPeriods) *
                    M;
            }
            shard.inbox.clear();
            if (!closing)
                continue;
            shard.closedUnits.assign(M, 0);
            for (std::size_t i = 0; i < shard.pendingPeriods.size();
                 ++i) {
                if (shard.pendingPeriods[i] != q)
                    continue;
                shard.closedUnits = std::move(shard.pending[i]);
                shard.pending.erase(
                    shard.pending.begin() +
                    static_cast<std::ptrdiff_t>(i));
                shard.pendingPeriods.erase(
                    shard.pendingPeriods.begin() +
                    static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
    });

    if (closing)
        closePeriod(q);
}

void
SignalServer::closePeriod(std::uint64_t period)
{
    const std::size_t S = config_.shards;
    const std::size_t M = config_.periodSamples;
    const std::size_t W = config_.windowPeriods;
    const double pool_window = config_.poolGramsPerSecond *
                               config_.stepSeconds *
                               static_cast<double>(M) *
                               static_cast<double>(W);

    // Fleet aggregate: an associative integer sum over shards, so it
    // is identical for any shard partition — the keystone of the
    // bit-identity contract.
    std::vector<std::uint64_t> fleet_units(M, 0);
    for (std::size_t s = 0; s < S; ++s) {
        std::uint64_t shard_sum = 0;
        for (std::size_t i = 0; i < M; ++i) {
            fleet_units[i] += shards_[s].closedUnits[i];
            shard_sum += shards_[s].closedUnits[i];
        }
        shards_[s].windowUnitSums.push_back(shard_sum);
        if (shards_[s].windowUnitSums.size() > W)
            shards_[s].windowUnitSums.pop_front();
    }
    std::uint64_t fleet_sum = 0;
    for (std::size_t i = 0; i < M; ++i)
        fleet_sum += fleet_units[i];
    fleetWindowSums_.push_back(fleet_sum);
    if (fleetWindowSums_.size() > W)
        fleetWindowSums_.pop_front();
    std::uint64_t fleet_window_units = 0;
    for (std::uint64_t sum : fleetWindowSums_)
        fleet_window_units += sum;

    // Per-shard attribution (observability only — shard signals
    // depend on the partition by identity). Each shard's slice of
    // the window pool is its integer usage share.
    parallel::parallelFor(0, S, 1, [&](std::size_t lo,
                                       std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
            Shard &shard = shards_[s];
            for (std::size_t i = 0; i < M; ++i)
                shard.core->push(
                    static_cast<double>(shard.closedUnits[i]));
            shard.newestIntensityMean = 0.0;
            if (!shard.core->ready())
                continue;
            std::uint64_t shard_window_units = 0;
            for (std::uint64_t sum : shard.windowUnitSums)
                shard_window_units += sum;
            const double shard_pool =
                fleet_window_units == 0
                    ? 0.0
                    : pool_window *
                          (static_cast<double>(shard_window_units) /
                           static_cast<double>(fleet_window_units));
            shard.newestIntensityMean =
                shard.core->publishNewest(shard_pool)
                    .newestMeanIntensity;
        }
    });

    // Fleet attribution — the published signal. Serial, fed by the
    // shard-independent aggregate. The core recovers from injected
    // cache corruption by rebuilding its engine from the retained
    // window samples; the engine's cache-state-independence contract
    // makes the republished signal identical to a fault-free run.
    for (std::size_t i = 0; i < M; ++i)
        fleet_->push(static_cast<double>(fleet_units[i]));
    ++periodsClosed_;

    if (!fleet_->ready())
        return;

    if (config_.faultPlan.active() &&
        config_.faultPlan.fires(resilience::FaultSite::CacheCorrupt,
                                period) &&
        fleet_->corruptCacheEntryForTest()) {
        config_.faultPlan.noteInjected();
        ++report_.faultsInjected;
        FAIRCO2_COUNT("resilience.fault.cache_corrupt", 1);
    }
    const auto publication = fleet_->publishNewest(pool_window);
    double fleet_mean = publication.newestMeanIntensity;
    const double attributed = publication.attributedGrams;
    report_.engineRebuilds = fleet_->rebuilds();

    // Overload level Proportional degrades the *published* value to
    // the RUP baseline's constant intensity while the engines keep
    // ingesting, so recovery republishes exact values immediately.
    if (governor_.level() == pipeline::OverloadLevel::Proportional &&
        fleet_window_units > 0) {
        fleet_mean = pool_window /
                     (static_cast<double>(fleet_window_units) *
                      config_.stepSeconds);
        FAIRCO2_COUNT("server.publish.proportional", 1);
    }

    const AdmissionController::Totals &totals = admission_.totals();
    ServerSnapshot snap;
    snap.version = cell_.publishes() + 1;
    snap.period = period;
    snap.fleetIntensity = fleet_mean;
    snap.fleetDemandUnits = static_cast<double>(fleet_sum);
    snap.admitted = totals.admitted;
    snap.deferred = totals.deferred;
    snap.rejected = totals.rejected;
    snap.overloadLevel =
        static_cast<std::uint32_t>(governor_.level());
    snap.shards = static_cast<std::uint32_t>(S);
    for (std::size_t s = 0; s < S; ++s)
        snap.shardIntensity[s] = shards_[s].newestIntensityMean;
    cell_.publish(snap);

    report_.attributedGrams += attributed;
    report_.publishedIntensity.push_back(fleet_mean);
    report_.publishedPeriods.push_back(period);
    FAIRCO2_COUNT("server.publishes", 1);
    FAIRCO2_GAUGE_SET("server.fleet.intensity", fleet_mean);
    FAIRCO2_GAUGE_SET("server.fleet.demand_units",
                      static_cast<double>(fleet_sum));
}

ServerReport
SignalServer::run()
{
    if (ran_)
        throw std::logic_error("SignalServer::run: already ran");
    ran_ = true;

    // Two ticks per period: arrivals at 2p, close at 2p+1. Arrival
    // ticks keep firing through the drain tail so deferred batches
    // are still decided and the governor keeps observing.
    const std::uint64_t horizon =
        config_.durationPeriods + watermark_;
    for (std::uint64_t p = 0; p < horizon; ++p) {
        loop_.at(2 * p, [this, p] { handleArrivals(p); });
        loop_.at(2 * p + 1, [this, p] { handleClose(p); });
    }
    loop_.run();

    report_.periodsClosed = periodsClosed_;
    report_.publishes = cell_.publishes();
    report_.admission = admission_.totals();
    report_.eventsExecuted = loop_.executed();
    report_.overloadEscalations = governor_.escalations();
    report_.overloadRecoveries = governor_.recoveries();
    report_.finalOverloadLevel =
        static_cast<std::uint32_t>(governor_.level());
    report_.samplesIngested = 0;
    for (const Shard &shard : shards_)
        report_.samplesIngested += shard.samplesIngested;
    FAIRCO2_COUNT("server.samples.ingested",
                  report_.samplesIngested);
    return report_;
}

} // namespace fairco2::server
