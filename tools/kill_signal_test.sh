#!/usr/bin/env bash
# Kill-signal contract for the checkpointed Monte Carlo benches:
# SIGTERM mid-run must (1) let the in-flight chunk finish and flush
# the checkpoint, (2) exit with 130, and (3) leave a checkpoint a
# later --resume run completes into output byte-identical to an
# uninterrupted run. Driven by ctest (label: resilience).
#
# Usage: kill_signal_test.sh <fig7_binary> <work_dir>
set -u

bin="$1"
work="$2"

rm -rf "$work"
mkdir -p "$work"
cd "$work"

# Sized so the run takes seconds: the kill always lands mid-flight,
# never after completion.
args=(--trials 3000 --max-workloads 19 --chunk-trials 20 --threads 2)

"$bin" "${args[@]}" --checkpoint ck >interrupted.log 2>&1 &
pid=$!
# Wait for the first committed chunk, then pull the plug.
for _ in $(seq 1 200); do
    [ -f ck ] && break
    sleep 0.05
done
if ! [ -f ck ]; then
    echo "FAIL: no checkpoint file appeared within 10s"
    kill -KILL "$pid" 2>/dev/null
    exit 1
fi
kill -TERM "$pid"
wait "$pid"
rc=$?
if [ "$rc" -ne 130 ]; then
    echo "FAIL: expected exit 130 after SIGTERM, got $rc"
    cat interrupted.log
    exit 1
fi
if ! grep -q "interrupted: checkpoint flushed" interrupted.log; then
    echo "FAIL: missing flush note in interrupted run"
    cat interrupted.log
    exit 1
fi

"$bin" "${args[@]}" --checkpoint ck --resume ck >resumed.log 2>&1
rc=$?
if [ "$rc" -ne 0 ]; then
    echo "FAIL: resume expected exit 0, got $rc"
    cat resumed.log
    exit 1
fi
if ! grep -q "chunks resumed" resumed.log; then
    echo "FAIL: resume did not restore any chunks"
    cat resumed.log
    exit 1
fi

"$bin" "${args[@]}" >plain.log 2>&1
rc=$?
if [ "$rc" -ne 0 ]; then
    echo "FAIL: uninterrupted run expected exit 0, got $rc"
    cat plain.log
    exit 1
fi

# Identical output modulo the checkpoint-status and wall-clock perf
# lines.
if ! diff <(grep -v 'checkpoint:\|perf:' resumed.log) \
          <(grep -v 'perf:' plain.log); then
    echo "FAIL: resumed output differs from uninterrupted run"
    exit 1
fi

echo "PASS: kill -> 130 -> resume is byte-identical"
