# CTest script: checkpoint/resume for the end-to-end bench's per-VM
# billing pass. A run stopped after its first chunk
# (--stop-after-chunks, the deterministic stand-in for a kill) and
# later resumed must write bench_out/e2e_vm_bills.csv byte-identical
# to the uninterrupted run's — including when the resume runs at a
# different thread count.

set(args --days 0.5 --arrivals-per-hour 120 --chunk-trials 50)

function(run_e2e label dir expected_rc)
    execute_process(COMMAND ${E2E_BIN} ${ARGN}
        WORKING_DIRECTORY ${dir}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out ERROR_VARIABLE err)
    if(NOT rc EQUAL ${expected_rc})
        message(FATAL_ERROR
                "${label}: expected exit ${expected_rc}, got ${rc}\n"
                "stdout: ${out}\nstderr: ${err}")
    endif()
endfunction()

foreach(dir full resumed threaded)
    file(REMOVE_RECURSE ${WORK_DIR}/${dir})
    file(MAKE_DIRECTORY ${WORK_DIR}/${dir})
endforeach()

# Reference: one uninterrupted run.
run_e2e("uninterrupted" ${WORK_DIR}/full 0 ${args})

# Stop after the first committed chunk, then resume to completion.
run_e2e("partial" ${WORK_DIR}/resumed 0
    ${args} --checkpoint ck --stop-after-chunks 1)
if(EXISTS ${WORK_DIR}/resumed/bench_out/e2e_vm_bills.csv)
    message(FATAL_ERROR "partial run must not write bills")
endif()
run_e2e("resume" ${WORK_DIR}/resumed 0
    ${args} --checkpoint ck --resume ck)

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/full/bench_out/e2e_vm_bills.csv
    ${WORK_DIR}/resumed/bench_out/e2e_vm_bills.csv
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "resumed bills differ from uninterrupted run")
endif()

# Same dance at --threads 2: chunk scheduling must not leak into the
# bills.
run_e2e("partial t2" ${WORK_DIR}/threaded 0
    ${args} --threads 2 --checkpoint ck --stop-after-chunks 1)
run_e2e("resume t2" ${WORK_DIR}/threaded 0
    ${args} --threads 2 --checkpoint ck --resume ck)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/full/bench_out/e2e_vm_bills.csv
    ${WORK_DIR}/threaded/bench_out/e2e_vm_bills.csv
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "threaded resume bills differ")
endif()

message(STATUS "e2e checkpoint/resume bills are byte-identical")
