# CTest script: CLI half of the backend-matrix differential suite.
# `fairco2 signal --incremental` must write byte-identical output
# for every --cache-backend / --cache-compress combination (the
# cache is an optimization, never an input), and the degenerate
# --cache-capacity 0 request must be rejected with exit 2 and a
# diagnostic instead of constructing a cache that cannot hold the
# live window.

file(MAKE_DIRECTORY ${WORK_DIR})

# A deterministic sawtooth demand day: enough periods for several
# window advances with --window 4 --period-samples 24.
set(demand_csv ${WORK_DIR}/demand.csv)
file(WRITE ${demand_csv} "demand\n")
foreach(i RANGE 0 287)
    math(EXPR level "20 + 7 * (${i} % 13)")
    file(APPEND ${demand_csv} "${level}\n")
endforeach()

set(common_args
    signal --incremental --demand ${demand_csv}
    --pool-grams 1000 --window 4 --period-samples 24 --splits 4,6)

# Reference: the default backend at the default capacity.
set(reference_csv ${WORK_DIR}/signal_reference.csv)
execute_process(
    COMMAND ${FAIRCO2_BIN} ${common_args} --out ${reference_csv}
    RESULT_VARIABLE reference_rc ERROR_VARIABLE reference_err)
if(NOT reference_rc EQUAL 0)
    message(FATAL_ERROR
            "reference incremental signal failed: ${reference_err}")
endif()

# Every backend spec x codec x capacity must reproduce the reference
# bytes exactly. Capacity 1 maximises eviction churn; 64 keeps the
# whole window resident.
set(backends
    "lru,malloc,mutex" "lru,arena,sharded" "clock,malloc,sharded"
    "clock,arena,mutex")
set(codecs identity lz)
foreach(backend IN LISTS backends)
    foreach(codec IN LISTS codecs)
        foreach(capacity 1 64)
            set(out_csv ${WORK_DIR}/signal_variant.csv)
            file(REMOVE ${out_csv})
            execute_process(
                COMMAND ${FAIRCO2_BIN} ${common_args}
                        --cache-backend ${backend}
                        --cache-compress ${codec}
                        --cache-capacity ${capacity}
                        --out ${out_csv}
                RESULT_VARIABLE variant_rc
                ERROR_VARIABLE variant_err)
            if(NOT variant_rc EQUAL 0)
                message(FATAL_ERROR
                        "backend ${backend}+${codec} cap "
                        "${capacity} failed: ${variant_err}")
            endif()
            execute_process(
                COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${reference_csv} ${out_csv}
                RESULT_VARIABLE same_rc)
            if(NOT same_rc EQUAL 0)
                message(FATAL_ERROR
                        "backend ${backend}+${codec} cap "
                        "${capacity} diverged from the reference "
                        "signal bytes")
            endif()
        endforeach()
    endforeach()
endforeach()

# Degenerate capacity: exit 2 plus a diagnostic naming the flag, for
# zero and negative values.
foreach(bad_capacity 0 -3)
    execute_process(
        COMMAND ${FAIRCO2_BIN} ${common_args}
                --cache-capacity ${bad_capacity}
                --out ${WORK_DIR}/unwritten.csv
        RESULT_VARIABLE bad_rc ERROR_VARIABLE bad_err)
    if(NOT bad_rc EQUAL 2)
        message(FATAL_ERROR
                "--cache-capacity ${bad_capacity} exited "
                "${bad_rc}, expected 2")
    endif()
    if(NOT bad_err MATCHES "cache-capacity")
        message(FATAL_ERROR
                "--cache-capacity ${bad_capacity} diagnostic does "
                "not name the flag: ${bad_err}")
    endif()
endforeach()

# A malformed backend spec or codec must also exit 2 with the valid
# spellings in the diagnostic.
execute_process(
    COMMAND ${FAIRCO2_BIN} ${common_args} --cache-backend fifo
            --out ${WORK_DIR}/unwritten.csv
    RESULT_VARIABLE spec_rc ERROR_VARIABLE spec_err)
if(NOT spec_rc EQUAL 2 OR NOT spec_err MATCHES "cache-backend")
    message(FATAL_ERROR
            "bad --cache-backend spec: exit ${spec_rc}, "
            "diagnostic: ${spec_err}")
endif()
execute_process(
    COMMAND ${FAIRCO2_BIN} ${common_args} --cache-compress zstd
            --out ${WORK_DIR}/unwritten.csv
    RESULT_VARIABLE codec_rc ERROR_VARIABLE codec_err)
if(NOT codec_rc EQUAL 2 OR NOT codec_err MATCHES "cache-compress")
    message(FATAL_ERROR
            "bad --cache-compress codec: exit ${codec_rc}, "
            "diagnostic: ${codec_err}")
endif()

message(STATUS "CLI backend matrix byte-identical OK")
