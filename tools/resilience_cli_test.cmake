# CTest script: the CLI's failure contract. Bad input — a defective
# row under the strict policy, a malformed fault plan, a duplicate
# flag, a garbled list value — must exit 2 with a diagnostic, never
# exit 0 with silently wrong numbers and never crash (exit 1). Also
# exercises the fault-injection path end to end: an injected-fault
# run must be deterministic and must differ from the clean run.

file(MAKE_DIRECTORY ${WORK_DIR})

set(demand_csv ${GOLDEN_DIR}/demand.csv)
set(degraded_csv ${GOLDEN_DIR}/demand_degraded.csv)

function(expect_exit_2 label)
    execute_process(COMMAND ${FAIRCO2_BIN} ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out ERROR_VARIABLE err)
    if(NOT rc EQUAL 2)
        message(FATAL_ERROR
                "${label}: expected exit 2, got ${rc}\n"
                "stdout: ${out}\nstderr: ${err}")
    endif()
    if(err STREQUAL "")
        message(FATAL_ERROR "${label}: exit 2 with no diagnostic")
    endif()
endfunction()

function(expect_ok label)
    execute_process(COMMAND ${FAIRCO2_BIN} ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "${label}: expected exit 0, got ${rc}\n"
                "stdout: ${out}\nstderr: ${err}")
    endif()
endfunction()

# Strict policy (the default): a defective row is fatal with a
# row-level diagnostic.
expect_exit_2("strict bad row"
    signal --demand ${degraded_csv} --pool-grams 5000
    --out ${WORK_DIR}/unused.csv)

# Malformed fault plans.
expect_exit_2("fault-plan out of range"
    signal --demand ${demand_csv} --pool-grams 5000
    --fault-plan drop=2.0 --out ${WORK_DIR}/unused.csv)
expect_exit_2("fault-plan unknown key"
    signal --demand ${demand_csv} --pool-grams 5000
    --fault-plan explode=0.1 --out ${WORK_DIR}/unused.csv)

# Unknown bad-row policy.
expect_exit_2("unknown bad-row policy"
    signal --demand ${demand_csv} --pool-grams 5000
    --on-bad-row=explode --out ${WORK_DIR}/unused.csv)

# Duplicate and malformed flags.
expect_exit_2("duplicate flag"
    signal --demand ${demand_csv} --demand ${demand_csv}
    --pool-grams 5000 --out ${WORK_DIR}/unused.csv)
expect_exit_2("malformed splits"
    signal --demand ${demand_csv} --pool-grams 5000
    --splits 10,,8 --out ${WORK_DIR}/unused.csv)
expect_exit_2("trailing garbage numeric"
    signal --demand ${demand_csv} --pool-grams 5e3x
    --out ${WORK_DIR}/unused.csv)

# Injected faults recover deterministically: same plan, same bytes;
# and the faulted output must actually differ from the clean one.
expect_ok("clean reference"
    signal --demand ${demand_csv} --pool-grams 5000 --splits 4,6
    --out ${WORK_DIR}/clean.csv)
expect_ok("faulted run A"
    signal --demand ${demand_csv} --pool-grams 5000 --splits 4,6
    --fault-plan seed=9,drop=0.1 --on-bad-row=interpolate
    --out ${WORK_DIR}/fault_a.csv)
expect_ok("faulted run B"
    signal --demand ${demand_csv} --pool-grams 5000 --splits 4,6
    --fault-plan seed=9,drop=0.1 --on-bad-row=interpolate
    --out ${WORK_DIR}/fault_b.csv)
expect_ok("faulted run, two threads"
    signal --demand ${demand_csv} --pool-grams 5000 --splits 4,6
    --fault-plan seed=9,drop=0.1 --on-bad-row=interpolate
    --threads 2 --out ${WORK_DIR}/fault_t2.csv)

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/fault_a.csv ${WORK_DIR}/fault_b.csv
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fault injection is not deterministic")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/fault_a.csv ${WORK_DIR}/fault_t2.csv
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "fault injection depends on the thread count")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/fault_a.csv ${WORK_DIR}/clean.csv
    RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR
            "fault plan seed=9,drop=0.1 injected nothing")
endif()

# Injected faults under the strict policy are fatal like real ones.
expect_exit_2("strict policy vs injected fault"
    signal --demand ${demand_csv} --pool-grams 5000
    --fault-plan seed=9,drop=0.1 --out ${WORK_DIR}/unused.csv)

message(STATUS "fairco2 CLI resilience contract OK")
