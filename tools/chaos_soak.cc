/**
 * @file
 * Chaos-soak harness for the supervised attribution pipeline.
 *
 *   chaos_soak --scenarios 200 --seed 42 [--threads N] [--verbose]
 *
 * Each scenario derives a fault plan, supervision knobs, and a
 * synthetic demand window from `Rng(seed).fork(scenario)`, runs the
 * full pipeline in-process, and asserts the robustness invariants:
 *
 *  I1  no exception escapes a supervised run;
 *  I2  the exit-code contract holds (0 iff an attribution vector was
 *      produced; interrupted/fatal paths never appear here);
 *  I3  the health report is arithmetically consistent (backoff list
 *      length == retries, retries < attempts, level <= floor, ...);
 *  I4  the injected-fault counts in the health report match an
 *      independent recomputation from the fault plan's purity —
 *      attempt a of stage s queries index (s << 16) | a, so the
 *      expected counts follow from the reported attempt counts;
 *  I5  a fault-free scenario is fully Ok (no degradation, exit 0);
 *  I6  whenever output was produced — at any ladder rung — the
 *      efficiency axiom holds: |attributed + unattributed - pool|
 *      <= 1e-6 * pool, and per-consumer bills are finite;
 *  I7  the run is deterministic: re-running a scenario yields a
 *      byte-identical health report.
 *
 * Exit status: 0 when every scenario satisfies every invariant,
 * 1 otherwise (each violation is printed).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.hh"
#include "common/parallel.hh"
#include "pipeline/runner.hh"
#include "resilience/faultplan.hh"
#include "trace/generators.hh"

using namespace fairco2;

namespace
{

struct ScenarioStats
{
    std::size_t produced = 0;
    std::size_t degraded = 0;
    std::size_t failed = 0;
    std::size_t faultFree = 0;
    std::uint64_t injected = 0;
    std::size_t violations = 0;
};

bool verbose_output = false;

void
violation(ScenarioStats &stats, std::size_t scenario,
          const std::string &what)
{
    ++stats.violations;
    std::fprintf(stderr, "VIOLATION scenario %zu: %s\n", scenario,
                 what.c_str());
}

/** Draw a probability that is zero in ~40% of scenarios. */
double
maybeProbability(Rng &rng, double max_p)
{
    if (rng.uniform() < 0.4)
        return 0.0;
    return rng.uniform(0.0, max_p);
}

std::string
formatProbability(double p)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", p);
    return buf;
}

/** Compose a fault-plan spec for this scenario (may be fault-free). */
std::string
scenarioFaultSpec(Rng &rng, std::uint64_t plan_seed)
{
    // Every ~6th scenario is deliberately fault-free so the pristine
    // path (I5) is swept too, not just the chaos paths.
    if (rng.uniform() < 0.15)
        return "";
    const double crash = maybeProbability(rng, 0.5);
    const double stall = maybeProbability(rng, 0.5);
    const double timeout = maybeProbability(rng, 0.35);
    const double drop = maybeProbability(rng, 0.05);
    const double nan = maybeProbability(rng, 0.02);
    if (crash + stall + timeout + drop + nan == 0.0)
        return "";
    std::string spec = "seed=" + std::to_string(plan_seed);
    if (crash > 0.0)
        spec += ",stage-crash=" + formatProbability(crash);
    if (stall > 0.0)
        spec += ",stage-stall=" + formatProbability(stall);
    if (timeout > 0.0)
        spec += ",stage-timeout=" + formatProbability(timeout);
    if (drop > 0.0)
        spec += ",drop=" + formatProbability(drop);
    if (nan > 0.0)
        spec += ",nan=" + formatProbability(nan);
    return spec;
}

/** I3 + I4: health internals vs an independent plan recomputation. */
void
checkHealth(ScenarioStats &stats, std::size_t scenario,
            const pipeline::RunHealth &health,
            const resilience::FaultPlan &plan)
{
    using resilience::FaultSite;
    for (std::size_t i = 0; i < health.stages.size(); ++i) {
        const auto &stage = health.stages[i];
        const std::string where =
            "stage '" + stage.name + "': ";
        if (stage.status == pipeline::StageStatus::Skipped) {
            if (stage.attempts != 0)
                violation(stats, scenario,
                          where + "skipped but attempted");
            continue;
        }
        if (stage.attempts == 0) {
            violation(stats, scenario, where + "ran with 0 attempts");
            continue;
        }
        if (stage.backoffMs.size() != stage.retries)
            violation(stats, scenario,
                      where + "backoff list does not match retries");
        if (stage.retries >= stage.attempts)
            violation(stats, scenario,
                      where + "more retries than attempts allow");
        if (stage.endMs < stage.startMs)
            violation(stats, scenario, where + "negative duration");

        std::uint64_t want_crashes = 0, want_stalls = 0,
                      want_timeouts = 0;
        for (std::uint32_t a = 1; a <= stage.attempts; ++a) {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(i) << 16) | a;
            if (plan.fires(FaultSite::StageStall, key))
                ++want_stalls;
            const bool crash =
                plan.fires(FaultSite::StageCrash, key);
            if (crash)
                ++want_crashes;
            else if (plan.fires(FaultSite::StageTimeout, key))
                ++want_timeouts;
        }
        if (stage.injectedCrashes != want_crashes)
            violation(stats, scenario,
                      where + "injected crashes " +
                          std::to_string(stage.injectedCrashes) +
                          " != plan schedule " +
                          std::to_string(want_crashes));
        if (stage.injectedStalls != want_stalls)
            violation(stats, scenario,
                      where + "injected stalls " +
                          std::to_string(stage.injectedStalls) +
                          " != plan schedule " +
                          std::to_string(want_stalls));
        if (stage.injectedTimeouts != want_timeouts)
            violation(stats, scenario,
                      where + "injected timeouts " +
                          std::to_string(stage.injectedTimeouts) +
                          " != plan schedule " +
                          std::to_string(want_timeouts));
    }
}

void
runScenario(std::size_t scenario, const Rng &root,
            ScenarioStats &stats)
{
    Rng rng = root.fork(scenario);

    // A small but realistic window: 2 days of 5-minute samples at a
    // modest fleet scale, plus a quarter-day forecast horizon.
    trace::AzureLikeGenerator::Config gen;
    gen.days = 2.0;
    gen.baseCores = 2000.0;
    trace::AzureLikeGenerator generator(gen);
    Rng demand_rng = rng.fork(1);
    const auto demand = generator.generate(demand_rng);

    pipeline::PipelineConfig config;
    config.demandSeries = demand;
    config.poolGrams = 1e6;
    config.splits = {6, 4, 4};
    config.horizonSteps = 72;
    config.sampledPermutations = 128;
    config.badRowPolicy = resilience::BadRowPolicy::Interpolate;

    // Two consumers sharing the window's demand 60/40.
    std::vector<double> heavy(demand.size()), light(demand.size());
    for (std::size_t i = 0; i < demand.size(); ++i) {
        heavy[i] = 0.6 * demand[i];
        light[i] = 0.4 * demand[i];
    }
    config.usageSeries.emplace_back(
        "heavy", trace::TimeSeries(heavy, demand.stepSeconds()));
    config.usageSeries.emplace_back(
        "light", trace::TimeSeries(light, demand.stepSeconds()));

    Rng knobs = rng.fork(2);
    config.supervisor.seed = knobs.next();
    config.supervisor.stageDeadlineMs =
        static_cast<std::uint64_t>(knobs.uniformInt(50, 3000));
    config.supervisor.maxRetries =
        static_cast<std::uint32_t>(knobs.uniformInt(0, 4));
    const std::string spec =
        scenarioFaultSpec(knobs, knobs.next() & 0xffffff);
    if (!spec.empty())
        config.supervisor.faultPlan =
            resilience::FaultPlan::parse(spec);
    const bool fault_free = spec.empty();
    if (fault_free) {
        ++stats.faultFree;
        // A tight deadline degrades a run all by itself (that is the
        // ladder working as designed), so the pristine-path check
        // needs a budget every stage can meet at full fidelity.
        config.supervisor.stageDeadlineMs = std::max<std::uint64_t>(
            config.supervisor.stageDeadlineMs, 2000);
    }

    pipeline::PipelineResult result;
    try {
        result = pipeline::runAttributionPipeline(config);
    } catch (const std::exception &error) {
        // I1: nothing may escape a supervised run on clean input.
        violation(stats, scenario,
                  std::string("exception escaped: ") + error.what());
        return;
    }
    const auto &health = result.health;
    stats.injected += config.supervisor.faultPlan.injectedCount();

    // I2: exit-code contract.
    if (health.exitCode != 0 && health.exitCode != 1)
        violation(stats, scenario,
                  "unexpected exit code " +
                      std::to_string(health.exitCode));
    if ((health.exitCode == 0) != health.produced)
        violation(stats, scenario,
                  "exit code disagrees with produced flag");

    if (health.produced)
        ++stats.produced;
    else
        ++stats.failed;
    if (health.degraded)
        ++stats.degraded;

    // I3 + I4.
    checkHealth(stats, scenario, health,
                config.supervisor.faultPlan);

    // I5: a fault-free scenario must be pristine.
    if (fault_free &&
        (!health.ok || health.degraded || health.exitCode != 0))
        violation(stats, scenario,
                  "fault-free scenario did not end fully Ok");

    // I6: efficiency axiom at whatever rung produced the output.
    if (health.produced) {
        const double pool = config.poolGrams;
        const double closure = result.attribution.attributedGrams +
            result.attribution.unattributedGrams - pool;
        if (!(std::fabs(closure) <=
              pipeline::kEfficiencyTolerance * pool))
            violation(stats, scenario,
                      "efficiency axiom violated by " +
                          std::to_string(closure) + " g");
        for (std::size_t i = 0; i < result.fairGrams.size(); ++i) {
            if (!std::isfinite(result.fairGrams[i]) ||
                !std::isfinite(result.rupGrams[i]))
                violation(stats, scenario,
                          "non-finite bill for consumer " +
                              result.consumers[i]);
        }
    }

    // I7: byte-identical health on a re-run.
    auto config2 = config;
    try {
        const auto rerun = pipeline::runAttributionPipeline(config2);
        if (rerun.health.toJson() != health.toJson())
            violation(stats, scenario,
                      "health report not deterministic");
    } catch (const std::exception &error) {
        violation(stats, scenario,
                  std::string("exception on re-run: ") +
                      error.what());
    }

    if (verbose_output) {
        std::printf("scenario %zu: %s%s plan='%s' deadline=%llu\n",
                    scenario,
                    health.produced ? "produced" : "FAILED",
                    health.degraded ? " degraded" : "",
                    spec.c_str(),
                    static_cast<unsigned long long>(
                        config.supervisor.stageDeadlineMs));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::int64_t scenarios = 200;
    std::int64_t seed = 42;
    FlagSet flags("chaos_soak: seeded fault-scenario sweep over the "
                  "supervised attribution pipeline");
    flags.addInt("scenarios", &scenarios, "scenarios to sweep");
    flags.addInt("seed", &seed, "root scenario seed");
    flags.addBool("verbose", &verbose_output,
                  "print one line per scenario");
    std::int64_t threads = 0;
    parallel::addThreadsFlag(flags, &threads);
    if (!flags.parse(argc, argv))
        return 0;
    parallel::applyThreadsFlag(threads);
    if (scenarios <= 0 || seed < 0) {
        std::fprintf(stderr,
                     "error: --scenarios must be positive and "
                     "--seed non-negative\n");
        return 2;
    }

    const Rng root(static_cast<std::uint64_t>(seed));
    ScenarioStats stats;
    for (std::size_t s = 0;
         s < static_cast<std::size_t>(scenarios); ++s)
        runScenario(s, root, stats);

    std::printf("chaos_soak: %lld scenarios (%zu fault-free) | "
                "%zu produced (%zu degraded), %zu failed | "
                "%llu faults injected | %zu violations\n",
                static_cast<long long>(scenarios), stats.faultFree,
                stats.produced, stats.degraded, stats.failed,
                static_cast<unsigned long long>(stats.injected),
                stats.violations);
    return stats.violations == 0 ? 0 : 1;
}
