#!/usr/bin/env bash
# Kill-replay contract for the durable live-signal server: kill -9
# (simulated via --kill-at-tick, which _exit(137)s with no flush, no
# destructors, no WAL seal) at EVERY event-loop tick of a serve run,
# recover each log with --recover, and require the republished signal
# signature to be byte-identical to an uninterrupted run's. A torn
# group commit (--kill-torn, half a frame on disk) must recover the
# same way, dropping the torn tail with a named diagnostic. Driven by
# ctest (label: durability).
#
# Usage: wal_kill_sweep.sh <fairco2_binary> <work_dir>
set -u

bin="$1"
work="$2"

rm -rf "$work"
mkdir -p "$work"
cd "$work"

# Small but non-trivial: admission-limited (deferrals + sheds +
# governor transitions all occur) with watermark 4 => horizon 14
# periods => 28 event-loop ticks.
args=(serve --tenants 120 --shards 2 --duration-periods 10
      --window 4 --period-samples 6 --max-batch-periods 3
      --admission-rate 36)

signature_of() {
    sed -n 's/.*signature \([0-9a-f]*\).*/\1/p' "$1"
}

# Preflight death tests: an unusable --wal-dir is bad input (exit 2
# with a diagnostic, before the event loop starts), never a crash.
# Both variants stay root-proof: they break on shape, not on
# permission bits.
touch notadir
"$bin" "${args[@]}" --wal-dir notadir >preflight.log 2>&1
if [ $? -ne 2 ] || ! grep -q "not a directory" preflight.log; then
    echo "FAIL: --wal-dir <file> must exit 2 with a diagnostic"
    cat preflight.log
    exit 1
fi
"$bin" "${args[@]}" --wal-dir notadir/sub >preflight.log 2>&1
if [ $? -ne 2 ] || ! grep -q "wal-dir" preflight.log; then
    echo "FAIL: --wal-dir under a file must exit 2 with a diagnostic"
    cat preflight.log
    exit 1
fi

"$bin" "${args[@]}" >plain.log 2>&1
if [ $? -ne 0 ]; then
    echo "FAIL: uninterrupted run expected exit 0"
    cat plain.log
    exit 1
fi
want=$(signature_of plain.log)
if [ -z "$want" ]; then
    echo "FAIL: no signature in uninterrupted run"
    cat plain.log
    exit 1
fi

ticks=28
for tick in $(seq 0 $((ticks - 1))); do
    rm -rf wal
    "$bin" "${args[@]}" --wal-dir wal --kill-at-tick "$tick" \
        >killed.log 2>&1
    rc=$?
    if [ "$rc" -ne 137 ]; then
        echo "FAIL: kill at tick $tick expected exit 137, got $rc"
        cat killed.log
        exit 1
    fi
    "$bin" "${args[@]}" --wal-dir wal --recover >recovered.log 2>&1
    rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "FAIL: recover after kill at tick $tick: exit $rc"
        cat recovered.log
        exit 1
    fi
    got=$(signature_of recovered.log)
    if [ "$got" != "$want" ]; then
        echo "FAIL: kill at tick $tick recovered signature $got," \
             "want $want"
        cat recovered.log
        exit 1
    fi
done

# Torn group commit: the kill lands halfway through an arrival
# tick's WAL frame. Recovery must name the dropped tail and still
# republish the identical signal.
for tick in 6 14; do
    rm -rf wal
    "$bin" "${args[@]}" --wal-dir wal --kill-at-tick "$tick" \
        --kill-torn >killed.log 2>&1
    rc=$?
    if [ "$rc" -ne 137 ]; then
        echo "FAIL: torn kill at tick $tick expected 137, got $rc"
        cat killed.log
        exit 1
    fi
    "$bin" "${args[@]}" --wal-dir wal --recover >recovered.log 2>&1
    rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "FAIL: recover after torn kill at tick $tick: exit $rc"
        cat recovered.log
        exit 1
    fi
    if ! grep -q "dropped torn wal tail" recovered.log; then
        echo "FAIL: torn kill at tick $tick recovered without the" \
             "torn-tail diagnostic"
        cat recovered.log
        exit 1
    fi
    got=$(signature_of recovered.log)
    if [ "$got" != "$want" ]; then
        echo "FAIL: torn kill at tick $tick recovered signature" \
             "$got, want $want"
        exit 1
    fi
done

# Compressed WAL, same contract at one representative tick.
rm -rf wal
"$bin" "${args[@]}" --wal-dir wal --wal-compress \
    --kill-at-tick 9 >killed.log 2>&1
if [ $? -ne 137 ]; then
    echo "FAIL: compressed kill expected 137"
    cat killed.log
    exit 1
fi
"$bin" "${args[@]}" --wal-dir wal --wal-compress --recover \
    >recovered.log 2>&1
if [ $? -ne 0 ]; then
    echo "FAIL: compressed recover failed"
    cat recovered.log
    exit 1
fi
got=$(signature_of recovered.log)
if [ "$got" != "$want" ]; then
    echo "FAIL: compressed recovery signature $got, want $want"
    exit 1
fi

# A dirty log without --recover is refused (exit 2), not clobbered.
"$bin" "${args[@]}" --wal-dir wal >dirty.log 2>&1
if [ $? -ne 2 ] || ! grep -q "already holds a log" dirty.log; then
    echo "FAIL: dirty --wal-dir without --recover must exit 2"
    cat dirty.log
    exit 1
fi

echo "PASS: kill -9 at every tick -> recover is byte-identical"
