/**
 * @file
 * Standalone command-line front end: run Fair-CO2 attribution on
 * CSV telemetry without writing C++.
 *
 *   fairco2 signal   --demand demand.csv --pool-grams 1e6
 *                    [--column demand] [--step-seconds 300]
 *                    [--splits 10,9,8,12] [--incremental
 *                    --window 24 --period-samples 0
 *                    --cache-capacity 64
 *                    --cache-backend lru,malloc,mutex
 *                    --cache-compress identity]
 *                    [--surrogate --surrogate-model m.fc2s
 *                    --surrogate-tol 0.01] --out signal.csv
 *   fairco2 bill     --signal signal.csv --usage usage.csv
 *                    --out bills.csv
 *   fairco2 forecast --demand demand.csv --horizon-steps 2592
 *                    [--column demand] [--step-seconds 300]
 *                    --out forecast.csv
 *   fairco2 run      --demand demand.csv --pool-grams 1e6
 *                    [--usage usage.csv] [--horizon-steps 288]
 *                    [--deadline-ms 2000] [--max-retries 3]
 *                    [--health-out health.json] [--seed 42]
 *                    --out signal.csv [--bills-out bills.csv]
 *   fairco2 serve    [--tenants 1000] [--shards 4] [--zipf-s 1.1]
 *                    [--admission-rate 0] [--duration-periods 48]
 *                    [--window 8] [--period-samples 12]
 *                    [--cache-capacity 64] [--seed 42]
 *                    [--cache-backend lru,malloc,mutex]
 *                    [--cache-compress identity]
 *                    [--wal-dir wal/ [--recover] [--standby]
 *                     [--wal-compress] [--wal-segment-records 16]
 *                     [--scrub-periods 8]]
 *                    [--surrogate --surrogate-model m.fc2s
 *                     --surrogate-tol 0.01]
 *                    [--out served.csv]
 *   fairco2 train-surrogate --out m.fc2s [--train-windows 512]
 *                    [--window 24] [--period-samples 12]
 *                    [--lambda 1e-8] [--seed 42]
 *                    [--demand demand.csv [--column demand]]
 *
 * `signal` turns a demand series into a Temporal Shapley intensity
 * signal — classically in one full solve, or with `--incremental`
 * through the sliding-window engine whose memoized sub-games are
 * observable via the `shapley.cache.*` counters in `--metrics-out`,
 * or with `--surrogate` through the guardrailed learned surrogate
 * (`train-surrogate` fits it; accepted predictions skip the exact
 * solve, every guardrail miss falls back to it per-advance);
 * `bill` integrates per-consumer usage columns against a
 * signal; `forecast` extends a demand series Prophet-style. `run`
 * drives the whole flow (ingest -> forecast -> Shapley ->
 * interference billing -> report) under the fairco2::pipeline
 * supervisor: per-stage deadlines on a simulated clock, bounded
 * deterministic retries, circuit breakers, and the degradation
 * ladder, with an honest RunHealth JSON written to `--health-out`.
 * `serve` drives the sharded multi-tenant live-signal server: a
 * deterministic discrete-event loop pushes Zipf-skewed tenant
 * telemetry through token-bucket admission into per-shard
 * incremental engines; the published fleet signal is bit-identical
 * for any `--shards`/`--threads` at the same seed, and the summary
 * line prints its FNV-1a signature. With `--wal-dir` every arrival
 * tick is group-committed to a checksummed write-ahead log;
 * `--recover` replays it byte-identically after a kill at any tick,
 * and `--standby` keeps a hot replica in lockstep that fails over on
 * the fault plan's `primary-crash` with no missing period.
 *
 * All commands accept `--on-bad-row={fail,skip,interpolate}` for
 * defective telemetry rows and `--fault-plan <spec>` for
 * deterministic fault injection; exit status 2 means bad input (a
 * malformed flag or unusable data), distinct from a crash. SIGINT/
 * SIGTERM stop the run at the next supervision boundary, still flush
 * the health report, and exit 130.
 */

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cache/backend.hh"
#include "common/csv.hh"
#include "common/errors.hh"
#include "common/flags.hh"
#include "common/obs.hh"
#include "common/parallel.hh"
#include "common/surrogate.hh"
#include "core/baselines.hh"
#include "core/temporal.hh"
#include "durability/wal.hh"
#include "forecast/forecaster.hh"
#include "pipeline/health.hh"
#include "pipeline/overload.hh"
#include "pipeline/runner.hh"
#include "resilience/faultplan.hh"
#include "resilience/ingest.hh"
#include "resilience/signals.hh"
#include "server/signalserver.hh"
#include "shapley/surrogate.hh"
#include "trace/timeseries.hh"

using namespace fairco2;

namespace
{

/** Parse "10,9,8,12" into split counts; malformed lists exit 2. */
std::vector<std::size_t>
parseSplits(const std::string &text)
{
    try {
        return parsePositiveIntList(text);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: --splits: %s\n", error.what());
        std::exit(2);
    }
}

/** Shared `--cache-backend`/`--cache-compress` flag plumbing for the
 *  commands that own an incremental engine. Every backend combination
 *  publishes byte-identical signals (ctest -L backends proves it), so
 *  these are pure capacity/CPU trade-offs, never correctness knobs. */
struct CacheBackendFlags
{
    std::string backendText =
        cache::backendSpec(cache::defaultBackend());
    std::string compressText =
        cache::codecName(cache::defaultBackend().codec);

    void add(FlagSet &flags)
    {
        flags.addString("cache-backend", &backendText,
                        "memo-cache backend spec "
                        "policy[,alloc[,lock]] from lru|clock, "
                        "malloc|arena, mutex|sharded (results are "
                        "byte-identical for every combination)");
        flags.addString("cache-compress", &compressText,
                        "memo-cache blob codec: identity | lz "
                        "(lz trades CPU for more windows per MiB)");
    }

    /** Parse both flags; malformed specs exit 2 like any bad flag. */
    cache::BackendConfig apply() const
    {
        cache::BackendConfig backend;
        try {
            backend = cache::parseBackendSpec(backendText);
        } catch (const std::invalid_argument &error) {
            std::fprintf(stderr, "error: --cache-backend: %s\n",
                         error.what());
            std::exit(2);
        }
        try {
            backend.codec = cache::parseCodec(compressText);
        } catch (const std::invalid_argument &error) {
            std::fprintf(stderr, "error: --cache-compress: %s\n",
                         error.what());
            std::exit(2);
        }
        return backend;
    }
};

/** Shared `--surrogate`/`--surrogate-model`/`--surrogate-tol`
 *  plumbing for the commands that can run the guardrailed learned
 *  surrogate. The fallback contract: a missing or unset model file
 *  degrades to the exact engine with a one-line warning — never a
 *  crash — while a *corrupt* model file is bad input (exit 2). */
struct SurrogateFlags
{
    bool enabled = false;
    std::string modelPath;
    double tolerance = 0.01;

    void add(FlagSet &flags)
    {
        flags.addBool("surrogate", &enabled,
                      "predict per-period Shapley shares with the "
                      "trained surrogate model when its guardrails "
                      "hold, falling back to the exact engine "
                      "per-advance otherwise (requires "
                      "--surrogate-model; see train-surrogate)");
        flags.addString("surrogate-model", &modelPath,
                        "trained surrogate model file (from "
                        "`fairco2 train-surrogate`); missing file: "
                        "warn and stay exact");
        flags.addDouble("surrogate-tol", &tolerance,
                        "surrogate residual guardrail: worst "
                        "relative per-period share deviation from "
                        "the closed form an accepted prediction may "
                        "carry (must be positive and finite)");
    }

    /**
     * Validate and load. Returns the model, or null when the
     * surrogate is off or has no usable model file (the warned
     * exact fallback). Exits 2 on an invalid tolerance or a
     * corrupt model file.
     */
    std::shared_ptr<const surrogate::SurrogateModel> apply() const
    {
        surrogate::requireSurrogateTol(tolerance);
        if (!enabled)
            return nullptr;
        if (modelPath.empty()) {
            std::fprintf(stderr,
                         "warning: --surrogate without "
                         "--surrogate-model: no trained model, "
                         "falling back to the exact engine\n");
            return nullptr;
        }
        if (!std::filesystem::exists(modelPath)) {
            std::fprintf(stderr,
                         "warning: --surrogate-model '%s' not "
                         "found, falling back to the exact "
                         "engine\n",
                         modelPath.c_str());
            return nullptr;
        }
        // A file that exists but does not verify is bad input: the
        // FatalDataError propagates to main's handler (exit 2).
        return std::make_shared<const surrogate::SurrogateModel>(
            surrogate::loadModel(modelPath));
    }
};

/** Shared ingestion/fault flags and their parsed forms. */
struct ResilienceFlags
{
    std::string badRowText = "fail";
    std::string faultPlanText;
    resilience::BadRowPolicy policy = resilience::BadRowPolicy::Fail;
    resilience::FaultPlan plan;
    resilience::IngestReport report;

    void add(FlagSet &flags)
    {
        resilience::addBadRowFlag(flags, &badRowText);
        resilience::addFaultPlanFlag(flags, &faultPlanText);
    }

    void apply()
    {
        policy = resilience::applyBadRowFlag(badRowText);
        plan = resilience::applyFaultPlanFlag(faultPlanText);
    }

    /** Log the ingest outcome when anything was defective. */
    void note() const
    {
        if (report.rowsBad > 0)
            std::fprintf(stderr, "ingest: %s\n",
                         report.summary().c_str());
    }
};

trace::TimeSeries
loadColumn(const std::string &path, const std::string &column,
           double step_seconds, ResilienceFlags &res)
{
    return resilience::loadSeriesColumn(path, column, step_seconds,
                                        res.policy, &res.plan,
                                        &res.report);
}

int
runSignal(int argc, char **argv)
{
    std::string demand_path, out_path = "signal.csv";
    std::string column = "demand";
    std::string splits_text = "10,9,8,12";
    double step_seconds = 300.0;
    double pool_grams = 0.0;
    bool incremental = false;
    std::int64_t horizon_steps = 0;
    std::int64_t window_periods = 24;
    std::int64_t period_samples = 0;
    std::int64_t cache_capacity = 64;
    FlagSet flags("fairco2 signal: demand CSV -> Temporal Shapley "
                  "intensity CSV");
    flags.addString("demand", &demand_path, "input demand CSV");
    flags.addString("column", &column, "demand column name");
    flags.addDouble("step-seconds", &step_seconds,
                    "sample width of the input");
    flags.addDouble("pool-grams", &pool_grams,
                    "fixed carbon to attribute over the window");
    flags.addString("splits", &splits_text,
                    "hierarchical split counts, comma-separated");
    flags.addInt("horizon-steps", &horizon_steps,
                 "forecast steps appended to the window before "
                 "attribution (0: none; classic mode only)");
    flags.addBool("incremental", &incremental,
                  "attribute via the sliding-window incremental "
                  "engine instead of one full solve (attributes "
                  "measured demand only: no projected intensity)");
    flags.addInt("window", &window_periods,
                 "incremental: sliding-window size in periods");
    flags.addInt("period-samples", &period_samples,
                 "incremental: samples per period (0: derive so the "
                 "window spans half the trace)");
    flags.addInt("cache-capacity", &cache_capacity,
                 "incremental: sub-game memo entries (must be "
                 ">= 1)");
    CacheBackendFlags cache_flags;
    cache_flags.add(flags);
    SurrogateFlags surrogate_flags;
    surrogate_flags.add(flags);
    flags.addString("out", &out_path, "output CSV path");
    std::int64_t threads = 0;
    parallel::addThreadsFlag(flags, &threads);
    obs::ObsFlags obs_flags;
    obs::addObsFlags(flags, &obs_flags);
    ResilienceFlags res;
    res.add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    parallel::applyThreadsFlag(threads);
    obs::applyObsFlags(obs_flags);
    res.apply();
    const cache::BackendConfig cache_backend = cache_flags.apply();
    const auto surrogate_model = surrogate_flags.apply();
    FAIRCO2_SPAN("cli.signal");
    if (demand_path.empty() || pool_grams <= 0.0) {
        std::fprintf(stderr,
                     "error: --demand and a positive --pool-grams "
                     "are required\n");
        return 2;
    }

    // --surrogate rides the same sliding-window replay as
    // --incremental (the surrogate engine wraps the incremental
    // one), so both modes share the window-shape constraints.
    const bool sliding = incremental || surrogate_flags.enabled;
    if (sliding && (window_periods <= 0 || period_samples < 0)) {
        std::fprintf(stderr,
                     "error: --window must be positive; "
                     "--period-samples must be non-negative\n");
        return 2;
    }
    // A capacity of 0 would silently disable memoization — the whole
    // point of --incremental — so it is a flag error, not a mode.
    if (incremental && cache_capacity <= 0) {
        std::fprintf(stderr,
                     "error: --cache-capacity must be >= 1 with "
                     "--incremental (got %lld): the sliding engine "
                     "needs a live sub-game memo cache; capacity "
                     "only changes solve cost, never the published "
                     "signal\n",
                     static_cast<long long>(cache_capacity));
        return 2;
    }
    if (horizon_steps < 0) {
        std::fprintf(stderr,
                     "error: --horizon-steps must be "
                     "non-negative\n");
        return 2;
    }
    // The sliding engines attribute measured demand only — a
    // forecast horizon would silently be dropped, so combining the
    // flags is a contract violation, not a no-op.
    if (sliding && horizon_steps > 0) {
        std::fprintf(stderr,
                     "error: --horizon-steps cannot be combined "
                     "with --incremental or --surrogate (the "
                     "sliding engines attribute measured demand "
                     "only; use `fairco2 run --incremental-window` "
                     "for a supervised horizon blend)\n");
        return 2;
    }

    auto demand =
        loadColumn(demand_path, column, step_seconds, res);
    res.note();
    const std::size_t history_len = demand.size();
    if (horizon_steps > 0) {
        try {
            demand = forecast::SeasonalForecaster()
                         .extendWithForecast(
                             demand, static_cast<std::size_t>(
                                         horizon_steps));
        } catch (const std::invalid_argument &error) {
            std::fprintf(stderr,
                         "error: --horizon-steps: %s\n",
                         error.what());
            return 2;
        }
    }
    const auto splits = parseSplits(splits_text);

    trace::TimeSeries intensity;
    double attributed_grams = 0.0;
    double unattributed_grams = 0.0;
    std::uint64_t surrogate_accepts = 0;
    std::uint64_t surrogate_rejects = 0;
    if (sliding) {
        // The --window flag replaces the top-level split count; the
        // remaining splits shape each period's inner hierarchy.
        std::vector<std::size_t> inner_splits;
        if (splits.size() > 1)
            inner_splits.assign(splits.begin() + 1, splits.end());
        pipeline::AttributionOutput result;
        if (surrogate_flags.enabled) {
            result = pipeline::attributeSurrogate(
                demand, pool_grams,
                static_cast<std::size_t>(window_periods),
                static_cast<std::size_t>(period_samples),
                inner_splits,
                static_cast<std::size_t>(cache_capacity),
                surrogate_model, surrogate_flags.tolerance,
                &res.plan, cache_backend);
            surrogate_accepts = result.surrogateAccepts;
            surrogate_rejects = result.surrogateRejects;
        } else {
            result = pipeline::attributeIncremental(
                demand, pool_grams,
                static_cast<std::size_t>(window_periods),
                static_cast<std::size_t>(period_samples),
                inner_splits,
                static_cast<std::size_t>(cache_capacity), &res.plan,
                cache_backend);
        }
        intensity = std::move(result.intensity);
        attributed_grams = result.attributedGrams;
        unattributed_grams = result.unattributedGrams;
    } else {
        auto result = core::TemporalShapley().attribute(
            demand, pool_grams, splits);
        intensity = std::move(result.intensity);
        attributed_grams = result.attributedGrams;
        unattributed_grams = result.unattributedGrams;
    }

    CsvWriter csv(out_path);
    csv.writeRow({"step", "time_s", "demand",
                  "intensity_g_per_unit_s"});
    for (std::size_t i = 0; i < demand.size(); ++i) {
        csv.writeNumericRow({static_cast<double>(i),
                             i * step_seconds, demand[i],
                             intensity[i]});
    }
    std::printf("signal: %zu samples, %.6g g attributed "
                "(%.6g g dropped) -> %s\n",
                demand.size(), attributed_grams,
                unattributed_grams, out_path.c_str());
    if (horizon_steps > 0)
        std::printf("signal: %zu measured + %lld forecast steps "
                    "attributed together\n",
                    history_len,
                    static_cast<long long>(horizon_steps));
    if (surrogate_flags.enabled)
        std::printf("signal: surrogate %llu accepted, %llu exact "
                    "fallbacks\n",
                    static_cast<unsigned long long>(
                        surrogate_accepts),
                    static_cast<unsigned long long>(
                        surrogate_rejects));
    if (sliding)
        // Honest reporting: in sliding mode there is no
        // projected tail (LiveIntensityService::projectedIntensity
        // is empty by contract), so say so instead of implying one.
        std::printf("signal: projected intensity n/a in "
                    "sliding mode (measured demand only)\n");
    return 0;
}

int
runBill(int argc, char **argv)
{
    std::string signal_path, usage_path, out_path = "bills.csv";
    FlagSet flags("fairco2 bill: usage CSV x intensity CSV -> "
                  "per-consumer carbon");
    flags.addString("signal", &signal_path,
                    "intensity CSV from `fairco2 signal`");
    flags.addString("usage", &usage_path,
                    "usage CSV: one numeric column per consumer");
    flags.addString("out", &out_path, "output CSV path");
    std::int64_t threads = 0;
    parallel::addThreadsFlag(flags, &threads);
    obs::ObsFlags obs_flags;
    obs::addObsFlags(flags, &obs_flags);
    ResilienceFlags res;
    res.add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    parallel::applyThreadsFlag(threads);
    obs::applyObsFlags(obs_flags);
    res.apply();
    FAIRCO2_SPAN("cli.bill");
    if (signal_path.empty() || usage_path.empty()) {
        std::fprintf(stderr,
                     "error: --signal and --usage are required\n");
        return 2;
    }

    const auto signal_table = readCsv(signal_path);
    const auto step_col = signal_table.numericColumn("time_s");
    const double step = step_col.size() > 1
        ? step_col[1] - step_col[0]
        : 1.0;
    const trace::TimeSeries intensity(
        resilience::numericColumnWithPolicy(
            signal_table, "intensity_g_per_unit_s", res.policy,
            &res.plan, &res.report,
            signal_path + ":intensity_g_per_unit_s"),
        step);

    const auto usage_table = readCsv(usage_path);
    CsvWriter csv(out_path);
    csv.writeRow({"consumer", "grams"});
    double total = 0.0;
    for (const auto &consumer : usage_table.header) {
        const trace::TimeSeries usage(
            resilience::numericColumnWithPolicy(
                usage_table, consumer, res.policy, &res.plan,
                &res.report, usage_path + ":" + consumer),
            step);
        if (usage.size() != intensity.size()) {
            std::fprintf(stderr,
                         "error: usage column '%s' has %zu rows; "
                         "signal has %zu\n",
                         consumer.c_str(), usage.size(),
                         intensity.size());
            return 2;
        }
        const double grams =
            core::attributeUsage(intensity, usage);
        csv.writeRow(consumer, {grams});
        total += grams;
    }
    res.note();
    std::printf("bill: %zu consumers, %.6g g total -> %s\n",
                usage_table.header.size(), total,
                out_path.c_str());
    return 0;
}

int
runForecast(int argc, char **argv)
{
    std::string demand_path, out_path = "forecast.csv";
    std::string column = "demand";
    double step_seconds = 300.0;
    std::int64_t horizon_steps = 2592;
    FlagSet flags("fairco2 forecast: extend a demand CSV with a "
                  "seasonal forecast");
    flags.addString("demand", &demand_path, "input demand CSV");
    flags.addString("column", &column, "demand column name");
    flags.addDouble("step-seconds", &step_seconds,
                    "sample width of the input");
    flags.addInt("horizon-steps", &horizon_steps,
                 "steps to forecast past the end");
    flags.addString("out", &out_path, "output CSV path");
    std::int64_t threads = 0;
    parallel::addThreadsFlag(flags, &threads);
    obs::ObsFlags obs_flags;
    obs::addObsFlags(flags, &obs_flags);
    ResilienceFlags res;
    res.add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    parallel::applyThreadsFlag(threads);
    obs::applyObsFlags(obs_flags);
    res.apply();
    FAIRCO2_SPAN("cli.forecast");
    if (demand_path.empty() || horizon_steps <= 0) {
        std::fprintf(stderr,
                     "error: --demand and a positive "
                     "--horizon-steps are required\n");
        return 2;
    }

    const auto history =
        loadColumn(demand_path, column, step_seconds, res);
    res.note();
    forecast::SeasonalForecaster forecaster;
    const auto blended = forecaster.extendWithForecast(
        history, static_cast<std::size_t>(horizon_steps));

    CsvWriter csv(out_path);
    csv.writeRow({"step", "time_s", "demand", "is_forecast"});
    for (std::size_t i = 0; i < blended.size(); ++i) {
        csv.writeNumericRow(
            {static_cast<double>(i), i * step_seconds, blended[i],
             i >= history.size() ? 1.0 : 0.0});
    }
    std::printf("forecast: %zu history + %lld forecast steps -> "
                "%s\n",
                history.size(),
                static_cast<long long>(horizon_steps),
                out_path.c_str());
    return 0;
}

int
runPipeline(int argc, char **argv)
{
    pipeline::PipelineConfig config;
    std::string splits_text = "10,9,8,12";
    std::string health_out;
    std::int64_t horizon_steps = 0;
    std::int64_t deadline_ms = 2000;
    std::int64_t max_retries = 3;
    std::int64_t seed = 42;
    std::int64_t incremental_window = 0;
    FlagSet flags("fairco2 run: supervised end-to-end attribution "
                  "(ingest -> forecast -> Shapley -> billing -> "
                  "report)");
    flags.addString("demand", &config.demandPath,
                    "input demand CSV");
    flags.addString("column", &config.demandColumn,
                    "demand column name");
    flags.addString("usage", &config.usagePath,
                    "optional usage CSV: one column per consumer");
    flags.addDouble("step-seconds", &config.stepSeconds,
                    "sample width of the input");
    flags.addDouble("pool-grams", &config.poolGrams,
                    "fixed carbon to attribute over the window");
    flags.addString("splits", &splits_text,
                    "hierarchical split counts, comma-separated");
    flags.addInt("horizon-steps", &horizon_steps,
                 "forecast steps appended to the window (0: none)");
    flags.addInt("deadline-ms", &deadline_ms,
                 "per-stage deadline budget, simulated ms");
    flags.addInt("max-retries", &max_retries,
                 "extra attempts per degradation-ladder rung");
    flags.addInt("seed", &seed,
                 "run seed (backoff jitter, sampled attribution)");
    flags.addInt("incremental-window", &incremental_window,
                 "sliding-window periods for the incremental "
                 "Shapley rung (0: classic exact-first ladder)");
    SurrogateFlags surrogate_flags;
    surrogate_flags.add(flags);
    flags.addString("out", &config.signalOutPath,
                    "signal output CSV path");
    flags.addString("bills-out", &config.billsOutPath,
                    "per-consumer bills output CSV path");
    flags.addString("health-out", &health_out,
                    "RunHealth JSON output path");
    std::int64_t threads = 0;
    parallel::addThreadsFlag(flags, &threads);
    obs::ObsFlags obs_flags;
    obs::addObsFlags(flags, &obs_flags);
    ResilienceFlags res;
    res.add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    parallel::applyThreadsFlag(threads);
    obs::applyObsFlags(obs_flags);
    res.apply();
    FAIRCO2_SPAN("cli.run");
    if (config.demandPath.empty() || config.poolGrams <= 0.0) {
        std::fprintf(stderr,
                     "error: --demand and a positive --pool-grams "
                     "are required\n");
        return 2;
    }
    if (deadline_ms <= 0 || max_retries < 0 || horizon_steps < 0 ||
        seed < 0 || incremental_window < 0) {
        std::fprintf(stderr,
                     "error: --deadline-ms must be positive; "
                     "--max-retries, --horizon-steps, --seed, and "
                     "--incremental-window must be non-negative\n");
        return 2;
    }
    // Fail fast on unwritable outputs — before any stage runs, not
    // after the attribution is already computed.
    requireWritableFlagPath("health-out", health_out);
    requireWritableFlagPath("out", config.signalOutPath);
    requireWritableFlagPath("bills-out", config.billsOutPath);

    config.splits = parseSplits(splits_text);
    config.horizonSteps = static_cast<std::size_t>(horizon_steps);
    config.incrementalWindowPeriods =
        static_cast<std::size_t>(incremental_window);
    config.surrogateModel = surrogate_flags.apply();
    config.surrogateTol = surrogate_flags.tolerance;
    config.badRowPolicy = res.policy;
    config.supervisor.stageDeadlineMs =
        static_cast<std::uint64_t>(deadline_ms);
    config.supervisor.maxRetries =
        static_cast<std::uint32_t>(max_retries);
    config.supervisor.seed = static_cast<std::uint64_t>(seed);
    config.supervisor.faultPlan = res.plan;

    resilience::installShutdownHandler();
    const auto result = pipeline::runAttributionPipeline(config);
    if (result.ingest.rowsBad > 0)
        std::fprintf(stderr, "ingest: %s\n",
                     result.ingest.summary().c_str());
    if (!health_out.empty())
        pipeline::writeRunHealth(health_out, result.health);

    const auto &health = result.health;
    std::printf("run: %s%s | %zu window samples, %.6g g attributed "
                "(%.6g g dropped)",
                health.produced ? "produced" : "no output",
                health.degraded ? " (degraded)" : "",
                result.window.size(),
                result.attribution.attributedGrams,
                result.attribution.unattributedGrams);
    for (const auto &stage : health.stages) {
        std::printf(" | %s=%s", stage.name.c_str(),
                    pipeline::stageStatusName(stage.status));
    }
    std::printf("\n");
    return health.exitCode;
}

int
runServe(int argc, char **argv)
{
    std::string out_path;
    std::int64_t tenants = 1000;
    std::int64_t shards = 4;
    double zipf_s = 1.1;
    std::int64_t admission_rate = 0;
    std::int64_t duration_periods = 48;
    std::int64_t window_periods = 8;
    std::int64_t period_samples = 12;
    std::int64_t cache_capacity = 64;
    std::int64_t max_batch_periods = 8;
    double pool_rate = 0.35;
    double step_seconds = 300.0;
    std::int64_t seed = 42;
    std::string wal_dir;
    bool recover = false;
    bool standby = false;
    bool wal_compress = false;
    std::int64_t wal_segment_records = 16;
    std::int64_t scrub_periods = 8;
    std::int64_t kill_at_tick = -1;
    bool kill_torn = false;
    FlagSet flags("fairco2 serve: sharded multi-tenant live-signal "
                  "server (deterministic simulation)");
    flags.addInt("tenants", &tenants,
                 "simulated tenant population size");
    flags.addInt("shards", &shards,
                 "engine shards (1..64); the published fleet signal "
                 "is bit-identical for any value");
    flags.addDouble("zipf-s", &zipf_s,
                    "Zipf skew of tenant arrival weights");
    flags.addInt("admission-rate", &admission_rate,
                 "admitted batches per period across all classes "
                 "(0: unlimited)");
    flags.addInt("duration-periods", &duration_periods,
                 "periods of tenant arrivals to simulate");
    flags.addInt("window", &window_periods,
                 "sliding attribution window, periods");
    flags.addInt("period-samples", &period_samples,
                 "telemetry samples per period");
    flags.addInt("cache-capacity", &cache_capacity,
                 "per-engine sub-game memo entries (0: memoization "
                 "off)");
    CacheBackendFlags cache_flags;
    cache_flags.add(flags);
    SurrogateFlags surrogate_flags;
    surrogate_flags.add(flags);
    flags.addInt("max-batch-periods", &max_batch_periods,
                 "most periods one tenant batch may cover (sets the "
                 "close watermark)");
    flags.addDouble("pool-grams-per-second", &pool_rate,
                    "fleet fixed-carbon rate amortized over the "
                    "window");
    flags.addDouble("step-seconds", &step_seconds,
                    "telemetry sample width, seconds");
    flags.addInt("seed", &seed, "root seed for all tenant streams");
    flags.addString("out", &out_path,
                    "optional published-signal CSV path");
    flags.addString("wal-dir", &wal_dir,
                    "write-ahead-log directory: every arrival tick "
                    "is group-committed so a killed run replays "
                    "byte-identically (empty: durability off)");
    flags.addBool("recover", &recover,
                  "replay the existing log in --wal-dir before "
                  "serving new periods");
    flags.addBool("standby", &standby,
                  "run a hot-standby replica that replays sealed "
                  "segments and takes over on the fault plan's "
                  "primary-crash");
    flags.addBool("wal-compress", &wal_compress,
                  "lz-compress WAL record payloads (per record, "
                  "falls back to raw when not smaller)");
    flags.addInt("wal-segment-records", &wal_segment_records,
                 "records per WAL segment before the seal + rotate");
    flags.addInt("scrub-periods", &scrub_periods,
                 "anti-entropy scrub cadence in periods: re-derive "
                 "window digests from the WAL and compare to live "
                 "state (0: never)");
    flags.addInt("kill-at-tick", &kill_at_tick,
                 "test hook: _exit(137) after this event-loop tick, "
                 "simulating kill -9 (-1: off)");
    flags.addBool("kill-torn", &kill_torn,
                  "test hook: with --kill-at-tick on an arrival "
                  "tick, tear that tick's WAL frame mid-write "
                  "first");
    std::int64_t threads = 0;
    parallel::addThreadsFlag(flags, &threads);
    obs::ObsFlags obs_flags;
    obs::addObsFlags(flags, &obs_flags);
    ResilienceFlags res;
    res.add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    parallel::applyThreadsFlag(threads);
    obs::applyObsFlags(obs_flags);
    res.apply();
    const cache::BackendConfig cache_backend = cache_flags.apply();
    const auto surrogate_model = surrogate_flags.apply();
    FAIRCO2_SPAN("cli.serve");
    if (tenants <= 0 || shards <= 0 ||
        shards > static_cast<std::int64_t>(server::kMaxShards) ||
        duration_periods <= 0 || window_periods <= 0 ||
        period_samples <= 0 || max_batch_periods <= 0 ||
        cache_capacity < 0 || admission_rate < 0 || seed < 0 ||
        zipf_s < 0.0 || pool_rate < 0.0 || step_seconds <= 0.0) {
        std::fprintf(stderr,
                     "error: --tenants, --shards (<= 64), "
                     "--duration-periods, --window, "
                     "--period-samples, --max-batch-periods, and "
                     "--step-seconds must be positive; --zipf-s, "
                     "--admission-rate, --cache-capacity, --seed, "
                     "and --pool-grams-per-second must be "
                     "non-negative\n");
        return 2;
    }
    if (wal_segment_records <= 0 || scrub_periods < 0 ||
        kill_at_tick < -1) {
        std::fprintf(stderr,
                     "error: --wal-segment-records must be positive; "
                     "--scrub-periods must be non-negative; "
                     "--kill-at-tick must be >= -1\n");
        return 2;
    }
    if (wal_dir.empty() && (recover || standby || kill_torn)) {
        std::fprintf(stderr,
                     "error: --recover, --standby, and --kill-torn "
                     "require --wal-dir\n");
        return 2;
    }
    requireWritableFlagPath("out", out_path);
    if (!wal_dir.empty()) {
        // Preflight before the event loop ever starts: an unwritable
        // or non-directory --wal-dir is bad input, not a crash.
        const std::string problem = durability::walDirError(wal_dir);
        if (!problem.empty()) {
            std::fprintf(stderr, "error: --wal-dir: %s\n",
                         problem.c_str());
            return 2;
        }
    }

    server::ServerConfig config;
    config.tenants = static_cast<std::size_t>(tenants);
    config.shards = static_cast<std::size_t>(shards);
    config.zipfS = zipf_s;
    config.admissionRate =
        static_cast<std::uint64_t>(admission_rate);
    config.durationPeriods =
        static_cast<std::uint64_t>(duration_periods);
    config.windowPeriods = static_cast<std::size_t>(window_periods);
    config.periodSamples = static_cast<std::size_t>(period_samples);
    config.cacheCapacity = static_cast<std::size_t>(cache_capacity);
    config.cacheBackend = cache_backend;
    config.maxBatchPeriods =
        static_cast<std::size_t>(max_batch_periods);
    config.poolGramsPerSecond = pool_rate;
    config.stepSeconds = step_seconds;
    config.seed = static_cast<std::uint64_t>(seed);
    config.faultPlan = res.plan;
    config.durability.walDir = wal_dir;
    config.durability.recover = recover;
    config.durability.standby = standby;
    config.durability.walCodec =
        wal_compress ? cache::Codec::Lz : cache::Codec::Identity;
    config.durability.walSegmentRecords =
        static_cast<std::uint64_t>(wal_segment_records);
    config.durability.scrubPeriods =
        static_cast<std::uint64_t>(scrub_periods);
    if (kill_at_tick >= 0)
        config.durability.killAtTick =
            static_cast<std::uint64_t>(kill_at_tick);
    config.durability.killTorn = kill_torn;
    config.surrogate.enabled =
        surrogate_flags.enabled && surrogate_model != nullptr;
    config.surrogate.model = surrogate_model;
    config.surrogate.tolerance = surrogate_flags.tolerance;

    resilience::installShutdownHandler();
    server::SignalServer srv(config);
    const auto report = srv.run();

    if (!out_path.empty()) {
        CsvWriter csv(out_path);
        csv.writeRow({"period", "time_s",
                      "fleet_intensity_g_per_unit_s"});
        for (std::size_t i = 0;
             i < report.publishedIntensity.size(); ++i) {
            csv.writeNumericRow(
                {static_cast<double>(report.publishedPeriods[i]),
                 static_cast<double>(report.publishedPeriods[i]) *
                     step_seconds *
                     static_cast<double>(period_samples),
                 report.publishedIntensity[i]});
        }
    }

    std::printf("serve: %lld tenants x %lld shards, %llu periods "
                "closed, %llu publishes, signature %016llx\n",
                static_cast<long long>(tenants),
                static_cast<long long>(shards),
                static_cast<unsigned long long>(
                    report.periodsClosed),
                static_cast<unsigned long long>(report.publishes),
                static_cast<unsigned long long>(
                    report.signalSignature()));
    std::printf("serve: admission offered %llu admitted %llu "
                "deferred %llu rejected %llu shed %llu | "
                "overload=%s (up %llu, down %llu) | rebuilds %llu\n",
                static_cast<unsigned long long>(
                    report.admission.offered),
                static_cast<unsigned long long>(
                    report.admission.admitted),
                static_cast<unsigned long long>(
                    report.admission.deferred),
                static_cast<unsigned long long>(
                    report.admission.rejected),
                static_cast<unsigned long long>(report.batchesShed),
                pipeline::overloadLevelName(
                    static_cast<pipeline::OverloadLevel>(
                        report.finalOverloadLevel)),
                static_cast<unsigned long long>(
                    report.overloadEscalations),
                static_cast<unsigned long long>(
                    report.overloadRecoveries),
                static_cast<unsigned long long>(
                    report.engineRebuilds));
    if (config.surrogate.enabled)
        std::printf("serve: surrogate %llu accepted, %llu exact "
                    "fallbacks\n",
                    static_cast<unsigned long long>(
                        report.surrogateAccepts),
                    static_cast<unsigned long long>(
                        report.surrogateRejects));
    if (!wal_dir.empty()) {
        if (report.droppedWalTail)
            std::fprintf(stderr, "serve: %s\n",
                         report.walTailDiagnostic.c_str());
        std::printf(
            "serve: wal %llu records in %llu sealed segments "
            "(%llu raw -> %llu stored bytes)%s | replayed %llu | "
            "scrubs %llu\n",
            static_cast<unsigned long long>(report.walRecords),
            static_cast<unsigned long long>(
                report.walSegmentsSealed),
            static_cast<unsigned long long>(report.walRawBytes),
            static_cast<unsigned long long>(report.walStoredBytes),
            report.recovered ? " (recovered)" : "",
            static_cast<unsigned long long>(report.replayedRecords),
            static_cast<unsigned long long>(report.scrubRuns));
        if (standby) {
            std::string failover_note;
            if (report.failedOver)
                failover_note =
                    " | failover at period " +
                    std::to_string(report.failoverPeriod);
            std::printf(
                "serve: standby replayed %llu records, matched "
                "%llu publishes%s\n",
                static_cast<unsigned long long>(
                    report.standbyReplayedRecords),
                static_cast<unsigned long long>(
                    report.standbyPublishChecks),
                failover_note.c_str());
        }
    }
    if (!out_path.empty())
        std::printf("serve: published signal -> %s\n",
                    out_path.c_str());
    if (report.interrupted) {
        std::fprintf(stderr,
                     "serve: interrupted by signal %d; wal tail "
                     "sealed\n",
                     resilience::shutdownSignal());
        return resilience::kInterruptExitCode;
    }
    return 0;
}

int
runTrainSurrogate(int argc, char **argv)
{
    std::string out_path = "surrogate.fc2s";
    std::string demand_path;
    std::string column = "demand";
    double step_seconds = 300.0;
    double lambda = 1e-8;
    std::int64_t train_windows = 512;
    std::int64_t window_periods = 24;
    std::int64_t period_samples = 12;
    std::int64_t seed = 42;
    FlagSet flags("fairco2 train-surrogate: fit the guardrailed "
                  "Shapley-share surrogate on exact peak-game "
                  "solves");
    flags.addString("out", &out_path,
                    "trained model output path (binary, "
                    "checksummed)");
    flags.addString("demand", &demand_path,
                    "optional demand CSV to train on via sliding "
                    "windows (empty: deterministic synthetic "
                    "diurnal corpus)");
    flags.addString("column", &column, "demand column name");
    flags.addDouble("step-seconds", &step_seconds,
                    "sample width of the input");
    flags.addInt("train-windows", &train_windows,
                 "synthetic training windows, each one exact "
                 "peak-game solve (ignored with --demand)");
    flags.addInt("window", &window_periods,
                 "sliding-window size in periods (must match the "
                 "--window the model will serve)");
    flags.addInt("period-samples", &period_samples,
                 "samples per period (must match serving)");
    flags.addDouble("lambda", &lambda,
                    "ridge regularization strength");
    flags.addInt("seed", &seed, "synthetic-corpus seed");
    std::int64_t threads = 0;
    parallel::addThreadsFlag(flags, &threads);
    obs::ObsFlags obs_flags;
    obs::addObsFlags(flags, &obs_flags);
    ResilienceFlags res;
    res.add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    parallel::applyThreadsFlag(threads);
    obs::applyObsFlags(obs_flags);
    res.apply();
    FAIRCO2_SPAN("cli.train_surrogate");
    if (out_path.empty()) {
        std::fprintf(stderr, "error: --out is required\n");
        return 2;
    }
    if (train_windows <= 0 || window_periods < 2 ||
        period_samples <= 0 || step_seconds <= 0.0 ||
        lambda < 0.0 || seed < 0) {
        std::fprintf(stderr,
                     "error: --train-windows and --period-samples "
                     "must be positive; --window must be >= 2; "
                     "--step-seconds must be positive; --lambda "
                     "and --seed must be non-negative\n");
        return 2;
    }
    requireWritableFlagPath("out", out_path);

    shapley::SurrogateTrainConfig config;
    config.windows = static_cast<std::size_t>(train_windows);
    config.windowPeriods = static_cast<std::size_t>(window_periods);
    config.periodSamples = static_cast<std::size_t>(period_samples);
    config.stepSeconds = step_seconds;
    config.lambda = lambda;
    config.seed = static_cast<std::uint64_t>(seed);

    surrogate::SurrogateModel model;
    if (!demand_path.empty()) {
        const auto series =
            loadColumn(demand_path, column, step_seconds, res);
        res.note();
        model = shapley::trainSurrogateModelOnSeries(series, config);
    } else {
        model = shapley::trainSurrogateModel(config);
    }
    surrogate::saveModel(model, out_path);
    std::printf(
        "train-surrogate: %llu windows, train rmse %.3e, held-out "
        "share error p50 %.3e p95 %.3e, checksum %016llx -> %s\n",
        static_cast<unsigned long long>(model.trainedOnWindows),
        model.trainRmse, model.heldOutP50, model.heldOutP95,
        static_cast<unsigned long long>(model.checksum()),
        out_path.c_str());
    return 0;
}

void
usage()
{
    std::printf(
        "fairco2 <command> [flags]\n\n"
        "Commands:\n"
        "  signal    demand CSV -> Temporal Shapley intensity CSV\n"
        "  bill      usage CSV x intensity CSV -> per-consumer "
        "carbon\n"
        "  forecast  extend a demand CSV with a seasonal forecast\n"
        "  run       supervised end-to-end pipeline with deadlines,\n"
        "            retries, breakers, and a degradation ladder\n"
        "  serve     sharded multi-tenant live-signal server\n"
        "            (deterministic simulation; bit-identical for\n"
        "            any --shards/--threads at the same seed)\n"
        "  train-surrogate\n"
        "            fit the guardrailed Shapley-share surrogate\n"
        "            on exact peak-game solves (serve/signal/run\n"
        "            load it via --surrogate-model)\n"
        "\nRun `fairco2 <command> --help` for command flags.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    // Shift argv so each command's FlagSet sees its own flags.
    argv[1] = argv[0];
    try {
        if (command == "signal")
            return runSignal(argc - 1, argv + 1);
        if (command == "bill")
            return runBill(argc - 1, argv + 1);
        if (command == "forecast")
            return runForecast(argc - 1, argv + 1);
        if (command == "run")
            return runPipeline(argc - 1, argv + 1);
        if (command == "serve")
            return runServe(argc - 1, argv + 1);
        if (command == "train-surrogate")
            return runTrainSurrogate(argc - 1, argv + 1);
        if (command == "--help" || command == "-h") {
            usage();
            return 0;
        }
    } catch (const FatalDataError &error) {
        // Unusable input under the active policy — same exit code
        // as a malformed flag, so scripts can tell it from a crash.
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    std::fprintf(stderr, "unknown command: %s\n\n",
                 command.c_str());
    usage();
    return 2;
}
