# CTest script: golden-file regression over the fairco2 CLI. The
# checked-in fixtures under tests/golden/ pin the exact bytes of the
# signal and bill outputs; any formatting or numerical drift fails
# the diff. The signal pass is repeated under --threads 2 and with
# the obs outputs enabled, so both the bit-identity guarantee of the
# parallel layer and the never-perturb-results guarantee of the
# observability layer are part of the contract.

file(MAKE_DIRECTORY ${WORK_DIR})

set(demand_csv ${GOLDEN_DIR}/demand.csv)
set(usage_csv ${GOLDEN_DIR}/usage.csv)

function(run_fairco2)
    execute_process(COMMAND ${FAIRCO2_BIN} ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out ERROR_VARIABLE out)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "fairco2 ${ARGN} failed: ${out}")
    endif()
endfunction()

function(diff_against_golden produced golden what)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${produced} ${golden}
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "${what}: ${produced} differs from golden "
                "${golden}")
    endif()
endfunction()

# Serial reference run.
run_fairco2(signal --demand ${demand_csv} --pool-grams 5000
            --splits 4,6 --out ${WORK_DIR}/signal.csv)
diff_against_golden(${WORK_DIR}/signal.csv
                    ${GOLDEN_DIR}/expected_signal.csv
                    "signal (serial)")

run_fairco2(bill --signal ${WORK_DIR}/signal.csv
            --usage ${usage_csv} --out ${WORK_DIR}/bills.csv)
diff_against_golden(${WORK_DIR}/bills.csv
                    ${GOLDEN_DIR}/expected_bills.csv "bill")

# The same bytes must come out under a different thread count.
run_fairco2(signal --demand ${demand_csv} --pool-grams 5000
            --splits 4,6 --threads 2
            --out ${WORK_DIR}/signal_t2.csv)
diff_against_golden(${WORK_DIR}/signal_t2.csv
                    ${GOLDEN_DIR}/expected_signal.csv
                    "signal (--threads 2)")

# ... and with observability enabled: instrumentation must never
# change results. The dumps themselves just need to materialize.
run_fairco2(signal --demand ${demand_csv} --pool-grams 5000
            --splits 4,6
            --metrics-out ${WORK_DIR}/metrics.json
            --trace-out ${WORK_DIR}/trace.json
            --out ${WORK_DIR}/signal_obs.csv)
diff_against_golden(${WORK_DIR}/signal_obs.csv
                    ${GOLDEN_DIR}/expected_signal.csv
                    "signal (obs enabled)")
foreach(dump metrics.json trace.json)
    if(NOT EXISTS ${WORK_DIR}/${dump})
        message(FATAL_ERROR "obs dump ${dump} was not written")
    endif()
endforeach()
file(READ ${WORK_DIR}/trace.json trace_text)
if(NOT trace_text MATCHES "traceEvents")
    message(FATAL_ERROR "trace.json has no traceEvents array")
endif()

# Degraded-mode regression: a fixture with dropouts, corrupt cells,
# and non-finite values must interpolate to the exact checked-in
# bytes — recovery is deterministic, not best-effort. Repeated at
# --threads 2: the repair happens before the parallel attribution,
# so thread count must not perturb a single byte.
set(degraded_csv ${GOLDEN_DIR}/demand_degraded.csv)
run_fairco2(signal --demand ${degraded_csv} --pool-grams 5000
            --splits 4,6 --on-bad-row=interpolate
            --out ${WORK_DIR}/signal_degraded.csv)
diff_against_golden(${WORK_DIR}/signal_degraded.csv
                    ${GOLDEN_DIR}/expected_signal_degraded.csv
                    "signal (degraded, interpolate)")

run_fairco2(signal --demand ${degraded_csv} --pool-grams 5000
            --splits 4,6 --on-bad-row=interpolate --threads 2
            --out ${WORK_DIR}/signal_degraded_t2.csv)
diff_against_golden(${WORK_DIR}/signal_degraded_t2.csv
                    ${GOLDEN_DIR}/expected_signal_degraded.csv
                    "signal (degraded, --threads 2)")

message(STATUS "fairco2 CLI golden outputs OK")
