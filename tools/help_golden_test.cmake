# CTest script: the CLI's --help output is part of the documented
# contract. tests/golden/help.txt pins the exact bytes of the
# top-level usage plus every subcommand's flag listing; README's flag
# reference is reconciled against this fixture, so any flag added,
# removed, or reworded without a docs pass fails this diff.
#
# Regenerate after an intentional change:
#   { fairco2 --help; echo "===="; \
#     for c in signal bill forecast run serve train-surrogate; do \
#       fairco2 $c --help; echo "===="; done; } \
#     > tests/golden/help.txt

file(MAKE_DIRECTORY ${WORK_DIR})
set(produced ${WORK_DIR}/help.txt)
file(WRITE ${produced} "")

function(append_help)
    execute_process(COMMAND ${FAIRCO2_BIN} ${ARGN} --help
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "fairco2 ${ARGN} --help exited ${rc}: ${err}")
    endif()
    file(APPEND ${produced} "${out}====\n")
endfunction()

# Top level prints the command list without a ==== of its own.
execute_process(COMMAND ${FAIRCO2_BIN} --help
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fairco2 --help exited ${rc}: ${err}")
endif()
file(WRITE ${produced} "${out}====\n")

foreach(cmd signal bill forecast run serve train-surrogate)
    append_help(${cmd})
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${produced} ${GOLDEN_DIR}/help.txt
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "fairco2 --help drifted from tests/golden/help.txt; "
            "update the fixture AND the README flag table together "
            "(produced: ${produced})")
endif()

message(STATUS "fairco2 --help matches the golden fixture")
