#!/usr/bin/env bash
# Graceful-drain contract for `fairco2 serve`: SIGTERM mid-run must
# (1) finish the in-flight tick and seal the WAL tail, (2) exit 130,
# and (3) leave a log that --recover completes into the signature an
# uninterrupted run publishes. Driven by ctest (label: durability).
#
# Usage: serve_signal_test.sh <fairco2_binary> <work_dir>
set -u

bin="$1"
work="$2"

rm -rf "$work"
mkdir -p "$work"
cd "$work"

# Sized so the run takes a couple of seconds: the signal always
# lands mid-run, never after completion. Scrub is off — it reloads
# the whole log each run and has its own coverage; this test is
# about the drain.
args=(serve --tenants 1000 --duration-periods 4000 --window 8
      --wal-segment-records 64 --scrub-periods 0)

signature_of() {
    sed -n 's/.*signature \([0-9a-f]*\).*/\1/p' "$1"
}

"$bin" "${args[@]}" --wal-dir wal >interrupted.log 2>&1 &
pid=$!
# Wait for the first sealed segment, then send the drain signal.
for _ in $(seq 1 200); do
    [ -e wal/wal-000001.seg ] && break
    sleep 0.05
done
if ! [ -e wal/wal-000001.seg ]; then
    echo "FAIL: no sealed wal segment appeared within 10s"
    kill -KILL "$pid" 2>/dev/null
    exit 1
fi
kill -TERM "$pid"
wait "$pid"
rc=$?
if [ "$rc" -ne 130 ]; then
    echo "FAIL: expected exit 130 after SIGTERM, got $rc"
    cat interrupted.log
    exit 1
fi
if ! grep -q "interrupted by signal" interrupted.log; then
    echo "FAIL: missing drain note in interrupted run"
    cat interrupted.log
    exit 1
fi
# The drain sealed the tail: nothing `.open` may remain.
if ls wal/*.open >/dev/null 2>&1; then
    echo "FAIL: drain left an unsealed wal tail"
    ls wal
    exit 1
fi

"$bin" "${args[@]}" --wal-dir wal --recover >recovered.log 2>&1
rc=$?
if [ "$rc" -ne 0 ]; then
    echo "FAIL: recover expected exit 0, got $rc"
    cat recovered.log
    exit 1
fi
if ! grep -q "replayed" recovered.log; then
    echo "FAIL: recover did not report replayed records"
    cat recovered.log
    exit 1
fi

"$bin" "${args[@]}" >plain.log 2>&1
rc=$?
if [ "$rc" -ne 0 ]; then
    echo "FAIL: uninterrupted run expected exit 0, got $rc"
    cat plain.log
    exit 1
fi

got=$(signature_of recovered.log)
want=$(signature_of plain.log)
if [ -z "$want" ] || [ "$got" != "$want" ]; then
    echo "FAIL: recovered signature '$got' != uninterrupted '$want'"
    exit 1
fi

echo "PASS: SIGTERM -> 130 -> sealed tail -> recover is identical"
