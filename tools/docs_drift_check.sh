#!/bin/sh
# Docs-drift gate: the CLI's documented flag surface must match the
# binary's real one.
#
#   tools/docs_drift_check.sh <fairco2-binary> [repo-root]
#
# Three checks, all on `--flag` tokens:
#
#  1. tests/golden/help.txt mentions no flag the binary's --help does
#     not expose (the byte-exact diff lives in the cli_help_golden
#     ctest; this catches a stale fixture even when that test is
#     skipped);
#  2. every backticked flag in README.md's flag tables exists on the
#     binary (or in the small allowlist of bench/harness-only flags);
#  3. every backticked flag in docs/ARCHITECTURE.md and
#     docs/SIGNAL_PIPELINE.md exists the same way.
#
# Exit 1 on any drift, with the offending tokens named.

set -eu

BIN=${1:?usage: docs_drift_check.sh <fairco2-binary> [repo-root]}
ROOT=${2:-$(dirname "$0")/..}

if [ ! -x "$BIN" ]; then
    echo "docs_drift_check: binary '$BIN' not found or not executable" >&2
    exit 1
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Flags only bench binaries / test harnesses expose; they are
# documented in README but are not part of the fairco2 CLI surface.
cat > "$WORK/allow.txt" <<'EOF'
--help
--trials
--scenarios
--smoke
--days
--readers
--checkpoint
--resume
--chunk-trials
--checkpoint-compress
--stop-after-chunks
EOF

# 1. The binary's real flag surface, across every subcommand.
: > "$WORK/live_raw.txt"
for cmd in signal bill forecast run serve train-surrogate; do
    "$BIN" "$cmd" --help >> "$WORK/live_raw.txt"
done
"$BIN" --help >> "$WORK/live_raw.txt"
grep -o -- '--[a-z][a-z0-9-]*' "$WORK/live_raw.txt" \
    | sort -u > "$WORK/live.txt"
sort -u "$WORK/live.txt" "$WORK/allow.txt" > "$WORK/known.txt"

fail=0

check_file() {
    # $1: file to scan, $2: extraction pattern description
    file=$1
    [ -f "$file" ] || { echo "docs_drift_check: missing $file" >&2
                        fail=1; return; }
    grep -o -- '`--[a-z][a-z0-9-]*' "$file" | tr -d '`' \
        | sort -u > "$WORK/mentioned.txt" || true
    bad=$(comm -23 "$WORK/mentioned.txt" "$WORK/known.txt" || true)
    if [ -n "$bad" ]; then
        echo "docs_drift_check: $file mentions flags the fairco2" \
             "binary does not expose:" >&2
        echo "$bad" >&2
        fail=1
    fi
}

# 2. The pinned --help fixture cannot claim flags the binary lost.
grep -o -- '--[a-z][a-z0-9-]*' "$ROOT/tests/golden/help.txt" \
    | sort -u > "$WORK/golden.txt"
stale=$(comm -23 "$WORK/golden.txt" "$WORK/live.txt" || true)
if [ -n "$stale" ]; then
    echo "docs_drift_check: tests/golden/help.txt mentions flags" \
         "the binary does not expose:" >&2
    echo "$stale" >&2
    fail=1
fi

# 3. The prose docs.
check_file "$ROOT/README.md"
check_file "$ROOT/docs/ARCHITECTURE.md"
check_file "$ROOT/docs/SIGNAL_PIPELINE.md"

if [ "$fail" -ne 0 ]; then
    echo "docs_drift_check: FAILED" >&2
    exit 1
fi
echo "docs_drift_check: documented flags all exist on the binary"
