# CTest script: drive the fairco2 CLI end to end and verify the
# billed total matches the attributed pool.

file(MAKE_DIRECTORY ${WORK_DIR})

# A two-consumer day: consumer a runs at 60 units for the first half,
# consumer b at 20 units all day. Demand = a + b.
set(demand_csv ${WORK_DIR}/demand.csv)
set(usage_csv ${WORK_DIR}/usage.csv)
file(WRITE ${demand_csv} "demand\n")
file(WRITE ${usage_csv} "a,b\n")
foreach(i RANGE 0 287)
    if(i LESS 144)
        file(APPEND ${demand_csv} "80\n")
        file(APPEND ${usage_csv} "60,20\n")
    else()
        file(APPEND ${demand_csv} "20\n")
        file(APPEND ${usage_csv} "0,20\n")
    endif()
endforeach()

execute_process(
    COMMAND ${FAIRCO2_BIN} signal --demand ${demand_csv}
            --pool-grams 1000 --splits 4,6
            --out ${WORK_DIR}/signal.csv
    RESULT_VARIABLE signal_rc OUTPUT_VARIABLE signal_out)
if(NOT signal_rc EQUAL 0)
    message(FATAL_ERROR "fairco2 signal failed: ${signal_out}")
endif()

execute_process(
    COMMAND ${FAIRCO2_BIN} bill --signal ${WORK_DIR}/signal.csv
            --usage ${usage_csv} --out ${WORK_DIR}/bills.csv
    RESULT_VARIABLE bill_rc OUTPUT_VARIABLE bill_out)
if(NOT bill_rc EQUAL 0)
    message(FATAL_ERROR "fairco2 bill failed: ${bill_out}")
endif()

execute_process(
    COMMAND ${FAIRCO2_BIN} forecast --demand ${demand_csv}
            --horizon-steps 48 --out ${WORK_DIR}/forecast.csv
    RESULT_VARIABLE fc_rc OUTPUT_VARIABLE fc_out)
if(NOT fc_rc EQUAL 0)
    message(FATAL_ERROR "fairco2 forecast failed: ${fc_out}")
endif()

# Conservation: bills sum to the 1000 g pool.
file(STRINGS ${WORK_DIR}/bills.csv bill_lines)
set(total 0)
foreach(line IN LISTS bill_lines)
    if(line MATCHES "^[ab],(.+)$")
        math(EXPR dummy "0") # placeholder; arithmetic done below
        set(grams ${CMAKE_MATCH_1})
        # CMake math() is integer-only; accumulate via string and
        # check with a tolerance comparison after scaling.
        string(REGEX REPLACE "\\..*$" "" grams_int ${grams})
        math(EXPR total "${total} + ${grams_int}")
    endif()
endforeach()
if(total LESS 998 OR total GREATER 1001)
    message(FATAL_ERROR
            "billed total ${total} g != 1000 g pool")
endif()

# The forecast output must contain history + horizon rows (+header).
file(STRINGS ${WORK_DIR}/forecast.csv fc_lines)
list(LENGTH fc_lines fc_count)
if(NOT fc_count EQUAL 337)
    message(FATAL_ERROR
            "forecast.csv has ${fc_count} lines, expected 337")
endif()

message(STATUS "fairco2 CLI end-to-end OK (billed ~${total} g)")
