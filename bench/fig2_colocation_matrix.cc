/**
 * @file
 * Figure 2: pairwise colocation characterization. (a) runtime
 * increase of each workload against each colocation partner;
 * (b) change in RUP-attributed dynamic energy versus running in
 * isolation. Full matrices go to CSV; the text output summarizes
 * per-workload sensitivity (row averages) and inflicted pressure
 * (column averages) plus the paper's NBODY/CH callout.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/flags.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "workload/interference.hh"
#include "workload/suite.hh"

using namespace fairco2;
using workload::Suite;

int
main(int argc, char **argv)
{
    FlagSet flags("Figure 2: pairwise colocation matrix");
    std::int64_t threads = 0;
    obs::ObsFlags obs_flags;
    bench::addCommonFlags(flags, &threads, &obs_flags);
    if (!flags.parse(argc, argv))
        return 0;
    bench::applyCommonFlags(threads, obs_flags);

    const Suite suite;
    const workload::InterferenceModel model;
    const std::size_t n = suite.size();

    // runtime_pct[i][j]: runtime increase of i when colocated with
    // j. energy_pct[i][j]: change in i's RUP-attributed dynamic
    // energy under that pairing versus isolation.
    std::vector<std::vector<double>> runtime_pct(
        n, std::vector<double>(n, 0.0));
    std::vector<std::vector<double>> energy_pct(
        n, std::vector<double>(n, 0.0));

    for (std::size_t i = 0; i < n; ++i) {
        const auto &wi = suite.at(i);
        const auto iso_i = model.isolated(wi);
        for (std::size_t j = 0; j < n; ++j) {
            const auto &wj = suite.at(j);
            const auto [mi, mj] = model.colocatedPair(wi, wj);
            runtime_pct[i][j] =
                (mi.runtimeSeconds / iso_i.runtimeSeconds - 1.0) *
                100.0;

            // RUP attributes the node's dynamic energy by CPU-
            // utilization-time share.
            const double node_energy = mi.dynamicEnergyJoules +
                mj.dynamicEnergyJoules;
            const double ui = mi.cpuUtilization * mi.runtimeSeconds;
            const double uj = mj.cpuUtilization * mj.runtimeSeconds;
            const double attributed =
                node_energy * ui / (ui + uj);
            energy_pct[i][j] =
                (attributed / iso_i.dynamicEnergyJoules - 1.0) *
                100.0;
        }
    }

    // Full matrices to CSV.
    CsvWriter csv(bench::csvPath("fig2_colocation_matrix"));
    {
        std::vector<std::string> header{"metric", "workload"};
        for (std::size_t j = 0; j < n; ++j)
            header.push_back(suite.at(j).name);
        csv.writeRow(header);
        for (std::size_t i = 0; i < n; ++i) {
            csv.writeRow(std::vector<std::string>{
                             "runtime_increase_pct",
                             suite.at(i).name},
                         runtime_pct[i]);
        }
        for (std::size_t i = 0; i < n; ++i) {
            csv.writeRow(std::vector<std::string>{
                             "energy_attr_change_pct",
                             suite.at(i).name},
                         energy_pct[i]);
        }
    }

    TextTable table("Figure 2 summary: interference suffered and "
                    "inflicted (percent)");
    table.setHeader({"Workload", "Avg runtime +%", "Max runtime +%",
                     "Avg inflicted +%", "Avg energy-attr +%"});
    for (std::size_t i = 0; i < n; ++i) {
        double suffered = 0.0, inflicted = 0.0, energy = 0.0;
        double worst = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i)
                continue;
            suffered += runtime_pct[i][j];
            inflicted += runtime_pct[j][i];
            energy += energy_pct[i][j];
            worst = std::max(worst, runtime_pct[i][j]);
        }
        const double denom = static_cast<double>(n - 1);
        table.addRow(suite.at(i).name,
                     {suffered / denom, worst, inflicted / denom,
                      energy / denom},
                     1);
    }
    table.print();

    const auto nbody =
        static_cast<std::size_t>(workload::WorkloadId::NBODY);
    const auto ch =
        static_cast<std::size_t>(workload::WorkloadId::CH);
    std::printf("\nHeadline pairing (paper: NBODY +87%%, CH "
                "+39%%):\n");
    bench::paperVsMeasured("NBODY runtime increase next to CH", 87.0,
                           runtime_pct[nbody][ch], "%");
    bench::paperVsMeasured("CH runtime increase next to NBODY", 39.0,
                           runtime_pct[ch][nbody], "%");
    std::printf("CSV written to %s\n",
                bench::csvPath("fig2_colocation_matrix").c_str());
    return 0;
}
