/**
 * @file
 * Figure 12: FAISS carbon-latency Pareto fronts at two grid carbon
 * intensities (a Sweden-like clean grid and a CAISO-like average
 * grid). The Pareto-optimal set of core allocation, batch size, and
 * index choice shifts with the grid intensity; the carbon-optimal
 * algorithm crosses from IVF to HNSW as intensity rises.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "carbon/server.hh"
#include "common/csv.hh"
#include "common/flags.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "optimize/sweep.hh"
#include "workload/perfmodel.hh"

using namespace fairco2;
using optimize::CarbonObjective;
using optimize::faissSweep;
using optimize::paretoFront;
using workload::FaissModel;

namespace
{

constexpr double kOfferedQps = 500.0;

/** Per-query carbon serving the offered load (or a huge sentinel
 *  when the configuration cannot absorb it). */
double
perQueryGrams(const CarbonObjective &objective,
              const FaissModel &model,
              const optimize::FaissSweepPoint &p)
{
    if (model.throughputQps(p.config) < kOfferedQps)
        return 1e300;
    return objective
               .faissServiceRate(model, p.config, kOfferedQps)
               .totalGrams() /
        kOfferedQps;
}

void
reportFront(const carbon::ServerCarbonModel &server,
            const FaissModel &model, double grid_ci,
            const char *label, CsvWriter &csv)
{
    const CarbonObjective objective(server, grid_ci);
    const auto points = faissSweep(model, objective);

    std::vector<double> latency, carbon;
    for (const auto &p : points) {
        const double g = perQueryGrams(objective, model, p);
        // Push configurations that cannot serve the load to the
        // far corner so they never enter the front.
        latency.push_back(g >= 1e300 ? 1e300
                                     : p.tailLatencySeconds);
        carbon.push_back(g);
    }
    const auto front = paretoFront(latency, carbon);

    TextTable table(std::string("Figure 12: Pareto front at ") +
                    label);
    table.setHeader({"Index", "Cores", "Batch", "Tail latency (s)",
                     "gCO2e per 1k queries"});
    for (std::size_t idx : front) {
        const auto &p = points[idx];
        table.addRow(workload::faissIndexName(p.config.index),
                     {p.config.cores, p.config.batch,
                      p.tailLatencySeconds,
                      carbon[idx] * 1000.0},
                     3);
    }
    table.print();

    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        if (carbon[i] >= 1e300)
            continue; // cannot serve the offered load
        const bool on_front =
            std::find(front.begin(), front.end(), i) != front.end();
        csv.writeRow(
            std::vector<std::string>{
                label, workload::faissIndexName(p.config.index)},
            {grid_ci, p.config.cores, p.config.batch,
             p.tailLatencySeconds, carbon[i],
             on_front ? 1.0 : 0.0});
    }

    // Carbon-optimal point under the paper's 2 s SLO.
    double best = 1e300;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].tailLatencySeconds > 2.0)
            continue;
        if (carbon[i] < best) {
            best = carbon[i];
            best_idx = i;
        }
    }
    const auto &p = points[best_idx];
    std::printf("  Carbon-optimal at %s under 2 s SLO: %s, %g "
                "cores, batch %g\n\n",
                label, workload::faissIndexName(p.config.index),
                p.config.cores, p.config.batch);
}

} // namespace

int
main(int argc, char **argv)
{
    double clean_ci = 30.0;  // Sweden-like grid
    double dirty_ci = 250.0; // CAISO-like average
    FlagSet flags("Figure 12: FAISS carbon-latency Pareto fronts");
    flags.addDouble("clean-ci", &clean_ci,
                    "low grid intensity (g/kWh)");
    flags.addDouble("dirty-ci", &dirty_ci,
                    "high grid intensity (g/kWh)");
    std::int64_t threads = 0;
    obs::ObsFlags obs_flags;
    bench::addCommonFlags(flags, &threads, &obs_flags);
    if (!flags.parse(argc, argv))
        return 0;
    bench::applyCommonFlags(threads, obs_flags);

    const carbon::ServerCarbonModel server;
    const FaissModel model;

    CsvWriter csv(bench::csvPath("fig12_faiss_pareto"));
    csv.writeRow({"scenario", "index", "grid_ci", "cores", "batch",
                  "tail_latency_s", "g_per_query", "on_front"});

    reportFront(server, model, clean_ci, "Sweden-like grid", csv);
    reportFront(server, model, dirty_ci, "CAISO-like grid", csv);

    // Locate the IVF -> HNSW crossover (paper: ~90 g/kWh).
    double crossover = -1.0;
    for (double ci = 0.0; ci <= 400.0; ci += 5.0) {
        const CarbonObjective objective(server, ci);
        const auto points = faissSweep(model, objective);
        double best = 1e300;
        workload::FaissIndex index = workload::FaissIndex::IVF;
        for (const auto &p : points) {
            if (p.tailLatencySeconds > 2.0)
                continue;
            const double g = perQueryGrams(objective, model, p);
            if (g < best) {
                best = g;
                index = p.config.index;
            }
        }
        if (index == workload::FaissIndex::HNSW) {
            crossover = ci;
            break;
        }
    }
    std::printf("Carbon-optimal index switches IVF -> HNSW at "
                "~%.0f g/kWh ", crossover);
    bench::paperVsMeasured("(paper crossover)", 90.0, crossover,
                           "g/kWh");
    std::printf("CSV written to %s\n",
                bench::csvPath("fig12_faiss_pareto").c_str());
    return 0;
}
