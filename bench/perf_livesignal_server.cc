/**
 * @file
 * Sharded live-signal server under load: drives a SignalServer over
 * a large Zipf-skewed tenant population while reader threads hammer
 * the wait-free snapshot cell, and records pushes/sec, reads/sec,
 * and the p99 read latency into bench_out/perf_summary.json (plus a
 * row in bench_out/perf_trajectory.csv).
 *
 * The default configuration sustains 100k simulated tenants; CI runs
 * `--smoke`, which shrinks the population and duration to a
 * seconds-scale check that the bench (and the reader/writer overlap)
 * still works.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/flags.hh"
#include "durability/wal.hh"
#include "server/signalserver.hh"

using namespace fairco2;

namespace
{

/** One reader thread's tally: latencies are recorded per read until
 *  the reservation fills, counts keep going regardless. */
struct ReaderTally
{
    std::vector<double> latenciesUs;
    std::uint64_t reads = 0;
    std::uint64_t versionsSeen = 0; //!< distinct snapshot versions
};

/** Spin on snapshot() until @p stop, timing every read. */
void
readLoop(const server::SignalServer &srv,
         const std::atomic<bool> &stop, ReaderTally &tally)
{
    constexpr std::size_t kMaxSamples = 1u << 22;
    tally.latenciesUs.reserve(1u << 20);
    std::uint64_t last_version = 0;
    while (!stop.load(std::memory_order_acquire)) {
        const bench::WallTimer timer;
        const server::ServerSnapshot snap = srv.snapshot();
        const double micros = timer.seconds() * 1e6;
        ++tally.reads;
        if (snap.version != last_version) {
            last_version = snap.version;
            ++tally.versionsSeen;
        }
        if (tally.latenciesUs.size() < kMaxSamples)
            tally.latenciesUs.push_back(micros);
    }
}

double
percentile(std::vector<double> &values, double p)
{
    if (values.empty())
        return 0.0;
    const std::size_t rank = static_cast<std::size_t>(
        p * static_cast<double>(values.size() - 1));
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(rank),
                     values.end());
    return values[rank];
}

} // namespace

int
main(int argc, char **argv)
{
    std::int64_t tenants = 100000;
    std::int64_t shards = 8;
    double zipf_s = 1.1;
    std::int64_t admission_rate = 0;
    std::int64_t duration_periods = 24;
    std::int64_t readers = 2;
    std::int64_t seed = 42;
    std::string wal_dir;
    bool wal_compress = false;
    bool smoke = false;
    FlagSet flags("perf_livesignal_server: sharded live-signal "
                  "server throughput and wait-free read latency");
    flags.addInt("tenants", &tenants, "simulated tenant count");
    flags.addInt("shards", &shards, "engine shards (1..64)");
    flags.addDouble("zipf-s", &zipf_s, "Zipf skew exponent");
    flags.addInt("admission-rate", &admission_rate,
                 "admitted batches per period (0: unlimited)");
    flags.addInt("duration-periods", &duration_periods,
                 "arrival periods to simulate");
    flags.addInt("readers", &readers,
                 "snapshot reader threads run alongside the server");
    flags.addInt("seed", &seed, "population seed");
    flags.addString("wal-dir", &wal_dir,
                    "also time a WAL-enabled run (in <dir>/run, "
                    "recreated) and record the durability overhead");
    flags.addBool("wal-compress", &wal_compress,
                  "use the LZ codec for the WAL run's records");
    flags.addBool("smoke", &smoke,
                  "CI mode: shrink to a seconds-scale check");
    std::int64_t threads = 0;
    obs::ObsFlags obs_flags;
    bench::addCommonFlags(flags, &threads, &obs_flags);
    if (!flags.parse(argc, argv))
        return 0;
    bench::applyCommonFlags(threads, obs_flags);
    if (smoke) {
        tenants = std::min<std::int64_t>(tenants, 5000);
        duration_periods = std::min<std::int64_t>(duration_periods,
                                                  12);
        readers = std::min<std::int64_t>(readers, 1);
    }
    if (tenants <= 0 || shards <= 0 ||
        shards > static_cast<std::int64_t>(server::kMaxShards) ||
        duration_periods <= 0 || readers < 0 ||
        admission_rate < 0) {
        std::fprintf(stderr,
                     "error: --tenants/--duration-periods must be "
                     "positive, --shards in 1..%zu, --readers and "
                     "--admission-rate >= 0\n",
                     server::kMaxShards);
        return 2;
    }

    server::ServerConfig config;
    config.tenants = static_cast<std::size_t>(tenants);
    config.shards = static_cast<std::size_t>(shards);
    config.zipfS = zipf_s;
    config.admissionRate =
        static_cast<std::uint64_t>(admission_rate);
    config.durationPeriods =
        static_cast<std::uint64_t>(duration_periods);
    config.seed = static_cast<std::uint64_t>(seed);
    server::SignalServer srv(config);

    std::atomic<bool> stop{false};
    std::vector<ReaderTally> tallies(
        static_cast<std::size_t>(readers));
    std::vector<std::thread> reader_threads;
    reader_threads.reserve(tallies.size());
    for (auto &tally : tallies)
        reader_threads.emplace_back(
            [&srv, &stop, &tally] { readLoop(srv, stop, tally); });

    const bench::WallTimer timer;
    const server::ServerReport report = srv.run();
    const double wall_seconds = timer.seconds();

    stop.store(true, std::memory_order_release);
    for (auto &thread : reader_threads)
        thread.join();

    std::vector<double> latencies;
    std::uint64_t reads = 0;
    for (auto &tally : tallies) {
        reads += tally.reads;
        latencies.insert(latencies.end(),
                         tally.latenciesUs.begin(),
                         tally.latenciesUs.end());
    }
    const double pushes_per_sec = wall_seconds > 0.0
        ? static_cast<double>(report.samplesIngested) / wall_seconds
        : 0.0;
    const double reads_per_sec = wall_seconds > 0.0
        ? static_cast<double>(reads) / wall_seconds
        : 0.0;
    const double p50_us = percentile(latencies, 0.50);
    const double p99_us = percentile(latencies, 0.99);

    std::printf("perf_livesignal_server: %lld tenants, %lld shards, "
                "%llu periods closed, %llu publishes\n",
                static_cast<long long>(tenants),
                static_cast<long long>(shards),
                static_cast<unsigned long long>(
                    report.periodsClosed),
                static_cast<unsigned long long>(report.publishes));
    std::printf("  ingest: %llu samples in %.3f s (%.0f pushes/s)\n",
                static_cast<unsigned long long>(
                    report.samplesIngested),
                wall_seconds, pushes_per_sec);
    std::printf("  readers: %lld threads, %llu reads (%.0f reads/s) "
                " p50 %.3f us  p99 %.3f us\n",
                static_cast<long long>(readers),
                static_cast<unsigned long long>(reads),
                reads_per_sec, p50_us, p99_us);
    std::printf("  signal signature: %016llx\n",
                static_cast<unsigned long long>(
                    report.signalSignature()));

    std::ostringstream extra;
    extra << "\"tenants\": " << tenants
          << ", \"shards\": " << shards
          << ", \"pushes_per_sec\": " << pushes_per_sec
          << ", \"reads_per_sec\": " << reads_per_sec
          << ", \"read_p50_us\": " << p50_us
          << ", \"read_p99_us\": " << p99_us;

    if (!wal_dir.empty()) {
        // Durability overhead: the identical run with group-committed
        // WAL appends (no reader threads — this isolates the write
        // path). The published signal must not move; the ratio and
        // the per-tick log volume are what perf_summary tracks.
        namespace fs = std::filesystem;
        const std::string run_dir =
            (fs::path(wal_dir) / "run").string();
        fs::remove_all(run_dir);
        const std::string problem =
            durability::walDirError(run_dir);
        if (!problem.empty()) {
            std::fprintf(stderr, "error: --wal-dir: %s\n",
                         problem.c_str());
            return 2;
        }
        server::ServerConfig wal_config = config;
        wal_config.durability.walDir = run_dir;
        wal_config.durability.walCodec = wal_compress
            ? cache::Codec::Lz
            : cache::Codec::Identity;
        wal_config.durability.scrubPeriods = 0;
        server::SignalServer wal_srv(wal_config);
        const bench::WallTimer wal_timer;
        const server::ServerReport wal_report = wal_srv.run();
        const double wal_seconds = wal_timer.seconds();
        if (wal_report.signalSignature() !=
            report.signalSignature()) {
            std::fprintf(stderr,
                         "error: WAL run changed the published "
                         "signal signature\n");
            return 1;
        }
        const double wal_pushes_per_sec = wal_seconds > 0.0
            ? static_cast<double>(wal_report.samplesIngested) /
                wal_seconds
            : 0.0;
        const double ratio = pushes_per_sec > 0.0
            ? wal_pushes_per_sec / pushes_per_sec
            : 0.0;
        const double ticks = wal_report.walRecords > 0
            ? static_cast<double>(wal_report.walRecords)
            : 1.0;
        const double raw_per_tick =
            static_cast<double>(wal_report.walRawBytes) / ticks;
        const double stored_per_tick =
            static_cast<double>(wal_report.walStoredBytes) / ticks;
        std::printf("  wal: %.0f pushes/s (%.3fx of plain), "
                    "%.0f raw B/tick -> %.0f stored B/tick (%s)\n",
                    wal_pushes_per_sec, ratio, raw_per_tick,
                    stored_per_tick,
                    wal_compress ? "lz" : "identity");
        extra << ", \"wal_pushes_per_sec\": " << wal_pushes_per_sec
              << ", \"wal_pushes_per_sec_ratio\": " << ratio
              << ", \"wal_raw_bytes_per_tick\": " << raw_per_tick
              << ", \"wal_stored_bytes_per_tick\": "
              << stored_per_tick
              << ", \"wal_compress\": "
              << (wal_compress ? "true" : "false");
    }
    bench::recordPerf("perf_livesignal_server",
                      report.samplesIngested, wall_seconds,
                      report.faultsInjected, extra.str());
    return 0;
}
