/**
 * @file
 * Ablation: spatio-temporal shifting. Three regions with distinct
 * grid mixes (CAISO-like solar, coal-heavy flat, hydro-clean flat)
 * and their own live embodied intensity signals; a population of
 * flexible batch jobs is placed carbon-optimally in space and time
 * and compared against home-region, earliest-start execution —
 * quantifying how much of the paper's "per-workload spatio-temporal
 * shifting" opportunity the live signals unlock.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "carbon/server.hh"
#include "common/csv.hh"
#include "common/flags.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/temporal.hh"
#include "optimize/spatial.hh"
#include "trace/generators.hh"

using namespace fairco2;
using optimize::Region;
using optimize::SpatialJob;

namespace
{

/** Region with an Azure-like demand signal and a CI profile. */
Region
makeRegion(const std::string &name, double night_ci,
           double midday_ci, double base_cores, double scarcity,
           Rng &rng, const carbon::ServerCarbonModel &server)
{
    Region region;
    region.name = name;

    trace::GridCiGenerator::Config ci_config;
    ci_config.days = 7.0;
    ci_config.stepSeconds = 3600.0;
    ci_config.nightGPerKwh = night_ci;
    ci_config.middayGPerKwh = midday_ci;
    region.gridCi = trace::GridCiGenerator(ci_config).generate(rng);

    trace::AzureLikeGenerator::Config demand_config;
    demand_config.days = 7.0;
    demand_config.baseCores = base_cores;
    const auto demand = trace::AzureLikeGenerator(demand_config)
                            .generate(rng)
                            .resampleMean(12);
    // A capacity-constrained region amortizes more embodied carbon
    // per used core-second (peakier demand, lower utilization).
    const double pool = scarcity * server.coreRateGramsPerSecond() *
        demand.mean() * 7.0 * 86400.0;
    region.coreIntensity = core::TemporalShapley()
                               .attribute(demand, pool, {7, 24})
                               .intensity;
    return region;
}

} // namespace

int
main(int argc, char **argv)
{
    std::int64_t num_jobs = 300;
    std::int64_t seed = 5;
    FlagSet flags("Ablation: spatio-temporal shifting across three "
                  "regions");
    flags.addInt("jobs", &num_jobs, "flexible batch jobs");
    flags.addInt("seed", &seed, "RNG seed");
    std::int64_t threads = 0;
    obs::ObsFlags obs_flags;
    bench::addCommonFlags(flags, &threads, &obs_flags);
    if (!flags.parse(argc, argv))
        return 0;
    bench::applyCommonFlags(threads, obs_flags);

    Rng rng(static_cast<std::uint64_t>(seed));
    const carbon::ServerCarbonModel server;

    // Region mix: solar-dipped CAISO-like, coal-heavy flat, clean
    // hydro with a busier (more embodied-expensive) fleet.
    std::vector<Region> regions;
    regions.push_back(makeRegion("caiso", 320.0, 90.0, 150000.0,
                                  1.0, rng, server));
    regions.push_back(makeRegion("coal", 720.0, 680.0, 150000.0,
                                  1.0, rng, server));
    regions.push_back(makeRegion("hydro", 45.0, 40.0, 60000.0,
                                  5.0, rng, server));

    const std::size_t horizon = regions[0].gridCi.size();
    std::vector<SpatialJob> jobs;
    for (std::int64_t k = 0; k < num_jobs; ++k) {
        SpatialJob job;
        job.cores = 8.0 * (1 + rng.index(12));
        job.wattsPerCore = rng.uniform(1.5, 4.0);
        job.durationSlices = 1 + rng.index(8);
        const std::size_t latest_fit =
            horizon - job.durationSlices;
        job.earliestStart = rng.index(latest_fit + 1);
        job.latestStart = std::min(job.earliestStart + 24,
                                   latest_fit);
        job.homeRegion = rng.index(regions.size());
        jobs.push_back(job);
    }

    const optimize::SpatioTemporalPlacer placer;
    const auto result = placer.place(jobs, regions);

    std::vector<std::size_t> per_region(regions.size(), 0);
    for (const auto &p : result.placements)
        ++per_region[p.region];

    TextTable table("Spatio-temporal shifting of " +
                    std::to_string(num_jobs) +
                    " flexible jobs (one week)");
    table.setHeader({"Quantity", "Value"});
    table.addRow({"baseline carbon (kg)",
                  TextTable::fmt(result.baselineGrams / 1e3, 1)});
    table.addRow({"optimized carbon (kg)",
                  TextTable::fmt(result.optimizedGrams / 1e3, 1)});
    table.addRow({"savings (%)",
                  TextTable::fmt(result.savingsPercent, 1)});
    table.addRow({"jobs moved across regions",
                  std::to_string(result.jobsMoved)});
    table.addRow({"jobs shifted in time",
                  std::to_string(result.jobsShifted)});
    for (std::size_t r = 0; r < regions.size(); ++r) {
        table.addRow({"jobs landing in " + regions[r].name,
                      std::to_string(per_region[r])});
    }
    table.print();

    std::printf(
        "\nSpatial freedom compounds temporal freedom: the clean "
        "region absorbs\nenergy-heavy jobs until its (scarcer) "
        "capacity makes embodied carbon\nbind, while solar dips "
        "soak up the rest — both visible only through\nthe "
        "per-region live intensity signals Fair-CO2 provides.\n");

    CsvWriter csv(bench::csvPath("ablation_spatial_shifting"));
    csv.writeRow({"job", "home", "chosen_region", "start",
                  "baseline_g", "optimized_g"});
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        const auto &p = result.placements[j];
        csv.writeRow(
            std::vector<std::string>{
                std::to_string(j), regions[jobs[j].homeRegion].name,
                regions[p.region].name},
            {static_cast<double>(p.start), p.baselineGrams,
             p.grams});
    }
    std::printf("CSV written to %s\n",
                bench::csvPath("ablation_spatial_shifting")
                    .c_str());
    return 0;
}
