/**
 * @file
 * Microbenchmarks for the Shapley engines: the exponential exact
 * solver versus the polynomial peak-game closed form and the full
 * hierarchical Temporal Shapley pass — the computational-efficiency
 * story of Section 5.1.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/temporal.hh"
#include "resilience/faultplan.hh"
#include "resilience/ingest.hh"
#include "shapley/exact.hh"
#include "shapley/peak.hh"
#include "shapley/sampling.hh"
#include "trace/generators.hh"

using namespace fairco2;

namespace
{

/** The shared `--fault-plan`; inactive unless the flag was given. */
resilience::FaultPlan g_fault_plan;

std::vector<double>
randomPeaks(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> peaks(n);
    for (auto &p : peaks)
        p = rng.uniform(0.0, 1000.0);
    return peaks;
}

void
BM_ExactShapleyPeakGame(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const shapley::PeakGame game(randomPeaks(n, 7));
    for (auto _ : state) {
        auto phi = shapley::exactShapley(game);
        benchmark::DoNotOptimize(phi);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_ClosedFormPeakShapley(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto peaks = randomPeaks(n, 7);
    for (auto _ : state) {
        auto phi = shapley::peakGameShapley(peaks);
        benchmark::DoNotOptimize(phi);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_SampledShapley(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const shapley::PeakGame game(randomPeaks(n, 7));
    Rng rng(11);
    for (auto _ : state) {
        auto phi = shapley::sampledShapley(game, rng, 100);
        benchmark::DoNotOptimize(phi);
    }
}

void
BM_AntitheticSampledShapley(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const shapley::PeakGame game(randomPeaks(n, 7));
    Rng rng(12);
    for (auto _ : state) {
        auto phi = shapley::antitheticSampledShapley(game, rng, 50);
        benchmark::DoNotOptimize(phi);
    }
}

void
BM_StratifiedSampledShapley(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const shapley::PeakGame game(randomPeaks(n, 7));
    Rng rng(13);
    for (auto _ : state) {
        auto phi = shapley::stratifiedSampledShapley(game, rng, 8);
        benchmark::DoNotOptimize(phi);
    }
}

void
BM_TemporalShapleyMonth(benchmark::State &state)
{
    trace::AzureLikeGenerator::Config config;
    config.days = 30.0;
    Rng rng(42);
    auto demand =
        trace::AzureLikeGenerator(config).generate(rng);
    if (g_fault_plan.active()) {
        // Degraded variant: poison then repair the demand series,
        // so the timing includes the resilience path.
        demand = resilience::repairSeries(
            resilience::injectTelemetryFaults(demand, g_fault_plan),
            resilience::BadRowPolicy::Interpolate,
            "perf_shapley_engines demand");
    }
    const core::TemporalShapley engine;
    const std::vector<std::size_t> splits{10, 9, 8, 12};
    for (auto _ : state) {
        auto result = engine.attribute(demand, 1e6, splits);
        benchmark::DoNotOptimize(result);
    }
}

} // namespace

// Exact enumeration doubles in cost per added player.
BENCHMARK(BM_ExactShapleyPeakGame)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(18)
    ->Complexity();

// The closed form handles five orders of magnitude more players.
BENCHMARK(BM_ClosedFormPeakShapley)
    ->Arg(8)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(131072)
    ->Complexity(benchmark::oNLogN);

BENCHMARK(BM_SampledShapley)->Arg(16)->Arg(64);
BENCHMARK(BM_AntitheticSampledShapley)->Arg(16)->Arg(64);
BENCHMARK(BM_StratifiedSampledShapley)->Arg(16)->Arg(32);

BENCHMARK(BM_TemporalShapleyMonth);

namespace
{

/**
 * Strip the common flags — `--threads N`, `--metrics-out PATH`,
 * `--trace-out PATH`, `--fault-plan SPEC` (and their `=` forms) —
 * before google-benchmark takes ownership of the rest of the command
 * line, then apply them. Returns the new argc.
 */
int
consumeCommonFlags(int argc, char **argv)
{
    std::int64_t threads = 0;
    fairco2::obs::ObsFlags obs_flags;
    std::string fault_plan_text;
    const struct {
        const char *name;
        std::string *value;
    } string_flags[] = {
        {"--metrics-out", &obs_flags.metricsOut},
        {"--trace-out", &obs_flags.traceOut},
        {"--fault-plan", &fault_plan_text},
    };
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        bool consumed = false;
        if (arg == "--threads" && i + 1 < argc) {
            threads = std::stoll(argv[++i]);
            consumed = true;
        } else if (arg.rfind("--threads=", 0) == 0) {
            threads = std::stoll(arg.substr(std::strlen("--threads=")));
            consumed = true;
        } else {
            for (const auto &flag : string_flags) {
                const std::string eq = std::string(flag.name) + "=";
                if (arg == flag.name && i + 1 < argc) {
                    *flag.value = argv[++i];
                    consumed = true;
                } else if (arg.rfind(eq, 0) == 0) {
                    *flag.value = arg.substr(eq.size());
                    consumed = true;
                }
                if (consumed)
                    break;
            }
        }
        if (!consumed)
            argv[out++] = argv[i];
    }
    fairco2::bench::applyCommonFlags(threads, obs_flags);
    g_fault_plan =
        fairco2::resilience::applyFaultPlanFlag(fault_plan_text);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    argc = consumeCommonFlags(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    const fairco2::bench::WallTimer suite_timer;
    benchmark::RunSpecifiedBenchmarks();
    const double suite_seconds = suite_timer.seconds();
    benchmark::Shutdown();

    // A dedicated headline timing for the perf trajectory: one exact
    // 20-player solve (2^20 coalitions), the parallelized hot loop.
    constexpr std::size_t kHeadlinePlayers = 20;
    const shapley::PeakGame game(randomPeaks(kHeadlinePlayers, 7));
    const fairco2::bench::WallTimer exact_timer;
    const auto phi = shapley::exactShapley(game);
    fairco2::bench::recordPerf("perf_shapley_engines/exact_n20",
                               std::size_t{1} << kHeadlinePlayers,
                               exact_timer.seconds());
    fairco2::bench::recordPerf("perf_shapley_engines", 1,
                               suite_seconds,
                               g_fault_plan.injectedCount());
    return phi.empty() ? 1 : 0;
}
