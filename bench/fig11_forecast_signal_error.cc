/**
 * @file
 * Figure 11: robustness of the live embodied-carbon intensity
 * signal to demand-forecast error. The signal computed from the
 * true 30-day trace is compared with one computed from 21 days of
 * truth plus a 9-day forecast. Paper: 2.30% MAPE, 15.72%
 * worst-case error over the forecast window.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "carbon/server.hh"
#include "common/csv.hh"
#include "common/flags.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/temporal.hh"
#include "forecast/forecaster.hh"
#include "trace/generators.hh"

using namespace fairco2;

int
main(int argc, char **argv)
{
    std::int64_t seed = 42;
    FlagSet flags("Figure 11: intensity-signal error under "
                  "forecasting");
    flags.addInt("seed", &seed, "trace RNG seed");
    std::int64_t threads = 0;
    obs::ObsFlags obs_flags;
    bench::addCommonFlags(flags, &threads, &obs_flags);
    if (!flags.parse(argc, argv))
        return 0;
    bench::applyCommonFlags(threads, obs_flags);

    trace::AzureLikeGenerator::Config config;
    config.days = 30.0;
    Rng rng(static_cast<std::uint64_t>(seed));
    const auto truth =
        trace::AzureLikeGenerator(config).generate(rng);
    const auto split =
        static_cast<std::size_t>(21.0 * 86400.0 / 300.0);

    forecast::SeasonalForecaster forecaster;
    const auto blended = forecaster.extendWithForecast(
        truth.slice(0, split), truth.size() - split);

    const core::TemporalShapley engine;
    const carbon::ServerCarbonModel server;
    const double monthly = server.coreRateGramsPerSecond() *
        truth.mean() * 30.0 * 86400.0;
    const std::vector<std::size_t> splits{10, 9, 8, 12};

    const auto sig_true = engine.attribute(truth, monthly, splits);
    const auto sig_fcst =
        engine.attribute(blended, monthly, splits);

    // Error over the 9 forecast days.
    std::vector<double> a, b;
    for (std::size_t i = split; i < truth.size(); ++i) {
        a.push_back(sig_true.intensity[i]);
        b.push_back(sig_fcst.intensity[i]);
    }
    const double mape = meanAbsolutePercentageError(a, b);
    const double worst = worstAbsolutePercentageError(a, b);

    TextTable table("Figure 11: embodied-intensity error from "
                    "forecasting (forecast window)");
    table.setHeader({"Metric", "Value (%)"});
    table.addRow("signal MAPE", {mape}, 2);
    table.addRow("signal worst-case error", {worst}, 2);
    table.print();

    std::printf("\nPaper reference:\n");
    bench::paperVsMeasured("intensity MAPE", 2.30, mape, "%");
    bench::paperVsMeasured("intensity worst-case error", 15.72,
                           worst, "%");

    // Per-forecast-day error profile.
    TextTable daily("Per-day signal MAPE over the forecast window");
    daily.setHeader({"Forecast day", "MAPE (%)"});
    const std::size_t steps_per_day = 288;
    for (std::size_t d = 0; d < 9; ++d) {
        std::vector<double> da, db;
        for (std::size_t i = d * steps_per_day;
             i < (d + 1) * steps_per_day && i < a.size(); ++i) {
            da.push_back(a[i]);
            db.push_back(b[i]);
        }
        daily.addRow("+" + std::to_string(d + 1),
                     {meanAbsolutePercentageError(da, db)}, 2);
    }
    daily.print();

    CsvWriter csv(bench::csvPath("fig11_forecast_signal_error"));
    csv.writeRow({"step", "time_s", "true_intensity",
                  "forecast_intensity", "error_pct"});
    for (std::size_t i = 0; i < truth.size(); ++i) {
        const double t = sig_true.intensity[i];
        const double f = sig_fcst.intensity[i];
        const double err =
            t != 0.0 ? (f - t) / t * 100.0 : 0.0;
        csv.writeNumericRow({static_cast<double>(i),
                             i * truth.stepSeconds(), t, f, err});
    }
    std::printf("CSV written to %s\n",
                bench::csvPath("fig11_forecast_signal_error")
                    .c_str());
    return 0;
}
