/**
 * @file
 * Ablation: amortization (carbon depreciation) schedule. Fair-CO2
 * first amortizes server embodied carbon into the accounting window
 * (the paper uses uniform amortization); this bench quantifies how
 * the alternative depreciation curves of Ji et al. shift a month's
 * carbon across the server's life, and therefore scale every
 * attribution downstream.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "carbon/amortization.hh"
#include "carbon/server.hh"
#include "common/csv.hh"
#include "common/flags.hh"
#include "common/parallel.hh"
#include "common/table.hh"

using namespace fairco2;
using carbon::makeAmortization;

int
main(int argc, char **argv)
{
    FlagSet flags("Ablation: amortization schedule for embodied "
                  "carbon");
    std::int64_t threads = 0;
    obs::ObsFlags obs_flags;
    bench::addCommonFlags(flags, &threads, &obs_flags);
    if (!flags.parse(argc, argv))
        return 0;
    bench::applyCommonFlags(threads, obs_flags);

    const carbon::ServerCarbonModel server;
    const double total = server.embodiedGrams();
    const double lifetime = server.lifetimeSeconds();
    const double month = 30.0 * 86400.0;
    const double lifetime_months = lifetime / month;

    const std::vector<std::string> schemes{
        "uniform", "declining-balance", "sum-of-years"};

    TextTable table("Monthly embodied share (kgCO2e) by server age "
                    "and amortization scheme");
    std::vector<std::string> header{"Age (months)"};
    for (const auto &s : schemes)
        header.push_back(s);
    header.push_back("decl./unif. ratio");
    table.setHeader(header);

    CsvWriter csv(bench::csvPath("ablation_amortization"));
    csv.writeRow({"age_months", "uniform_kg",
                  "declining_balance_kg", "sum_of_years_kg"});

    for (double age_month = 0.0;
         age_month < lifetime_months - 0.5; age_month += 6.0) {
        const double begin = age_month * month;
        const double end = begin + month;
        std::vector<double> row;
        for (const auto &s : schemes) {
            const auto schedule =
                makeAmortization(s, total, lifetime);
            row.push_back(schedule->windowGrams(begin, end) /
                          1000.0);
        }
        std::vector<double> cells = row;
        cells.push_back(row[1] / row[0]);
        table.addRow(TextTable::fmt(age_month, 0), cells, 2);
        csv.writeNumericRow({age_month, row[0], row[1], row[2]});
    }
    table.print();

    std::printf(
        "\nThe monthly pool every Temporal Shapley signal divides "
        "is a pure scale\nfactor on the attribution, so the scheme "
        "choice moves a workload's bill\nby up to the ratio column "
        "— material for young fleets, a wash at\nmid-life. "
        "Fair-CO2's fairness comparisons are invariant to it.\n");
    std::printf("CSV written to %s\n",
                bench::csvPath("ablation_amortization").c_str());
    return 0;
}
