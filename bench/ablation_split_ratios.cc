/**
 * @file
 * Ablation: hierarchical split ratios. Temporal Shapley's hierarchy
 * (the paper's 10/9/8/12) is a computational device: the exact
 * single-level attribution over all 8640 five-minute periods is
 * itself tractable with the closed form, so the hierarchy's
 * fidelity cost can be measured directly. This bench sweeps split
 * configurations and reports intensity-signal deviation from the
 * flat solution, operation counts, and wall-clock time.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/flags.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/temporal.hh"
#include "trace/generators.hh"

using namespace fairco2;

namespace
{

struct SplitConfig
{
    const char *label;
    std::vector<std::size_t> splits;
};

} // namespace

int
main(int argc, char **argv)
{
    std::int64_t seed = 42;
    FlagSet flags("Ablation: Temporal Shapley split-ratio choices");
    flags.addInt("seed", &seed, "trace RNG seed");
    std::int64_t threads = 0;
    obs::ObsFlags obs_flags;
    bench::addCommonFlags(flags, &threads, &obs_flags);
    if (!flags.parse(argc, argv))
        return 0;
    bench::applyCommonFlags(threads, obs_flags);

    trace::AzureLikeGenerator::Config config;
    config.days = 30.0;
    Rng rng(static_cast<std::uint64_t>(seed));
    const auto demand =
        trace::AzureLikeGenerator(config).generate(rng);
    const double total = 1.0e6;
    const core::TemporalShapley engine;

    // Flat reference: all 8640 leaves as one game.
    const auto flat = engine.attribute(demand, total, {8640});

    const std::vector<SplitConfig> configs{
        {"flat 8640 (reference)", {8640}},
        {"paper 10/9/8/12", {10, 9, 8, 12}},
        {"days 30/288", {30, 288}},
        {"coarse 5/4/432", {5, 4, 432}},
        {"two-level 96/90", {96, 90}},
        {"deep 2/2/2/2/540", {2, 2, 2, 2, 540}},
    };

    TextTable table("Split-ratio ablation on the 30-day trace "
                    "(8640 leaves)");
    table.setHeader({"Configuration", "Ops", "Wall ms",
                     "Signal MAPE vs flat (%)",
                     "Worst dev (%)"});
    CsvWriter csv(bench::csvPath("ablation_split_ratios"));
    csv.writeRow({"config", "operations", "wall_ms", "mape_pct",
                  "worst_pct"});

    for (const auto &cfg : configs) {
        const auto start = std::chrono::steady_clock::now();
        const auto result =
            engine.attribute(demand, total, cfg.splits);
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();

        const double mape = meanAbsolutePercentageError(
            flat.intensity.values(), result.intensity.values());
        const double worst = worstAbsolutePercentageError(
            flat.intensity.values(), result.intensity.values());

        table.addRow(cfg.label,
                     {static_cast<double>(result.operations), ms,
                      mape, worst},
                     2);
        csv.writeRow(cfg.label,
                     {static_cast<double>(result.operations), ms,
                      mape, worst});
    }
    table.print();

    std::printf(
        "\nThe hierarchy exists for data-availability and "
        "streaming reasons\n(attribute a month before its 5-minute "
        "detail is retained); with the\nclosed-form peak-game "
        "solver even the flat solve is sub-millisecond,\nand it is "
        "the fidelity reference: hierarchical configurations trade\n"
        "signal accuracy for locality, with wider top levels "
        "tracking the flat\nsolution better. (Ops is the "
        "quadratic-equivalent count of Eq. 7; the\nclosed form "
        "actually runs in O(M log M) per level.)\n");
    std::printf("CSV written to %s\n",
                bench::csvPath("ablation_split_ratios").c_str());
    return 0;
}
