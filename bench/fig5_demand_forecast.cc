/**
 * @file
 * Figure 5: forecast data-center CPU demand with 21 days of history
 * and a 9-day horizon, Prophet-style (trend + Fourier seasonality).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/flags.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "forecast/forecaster.hh"
#include "trace/generators.hh"

using namespace fairco2;

int
main(int argc, char **argv)
{
    std::int64_t seed = 42;
    std::int64_t history_days = 21;
    std::int64_t horizon_days = 9;
    FlagSet flags("Figure 5: demand forecasting");
    flags.addInt("seed", &seed, "trace RNG seed");
    flags.addInt("history-days", &history_days,
                 "days of history to fit");
    flags.addInt("horizon-days", &horizon_days,
                 "days to forecast");
    std::int64_t threads = 0;
    obs::ObsFlags obs_flags;
    bench::addCommonFlags(flags, &threads, &obs_flags);
    if (!flags.parse(argc, argv))
        return 0;
    bench::applyCommonFlags(threads, obs_flags);

    trace::AzureLikeGenerator::Config config;
    config.days =
        static_cast<double>(history_days + horizon_days);
    Rng rng(static_cast<std::uint64_t>(seed));
    const auto truth =
        trace::AzureLikeGenerator(config).generate(rng);

    const auto steps_per_day = static_cast<std::size_t>(
        86400.0 / truth.stepSeconds());
    const std::size_t split = history_days * steps_per_day;

    forecast::SeasonalForecaster forecaster;
    forecaster.fit(truth.slice(0, split));
    const auto horizon = forecaster.forecast(truth.size() - split);

    TextTable table("Figure 5: per-day forecast error (MAPE, %)");
    table.setHeader({"Forecast day", "MAPE (%)",
                     "Actual mean (cores)",
                     "Forecast mean (cores)"});
    for (std::int64_t d = 0; d < horizon_days; ++d) {
        std::vector<double> actual, predicted;
        for (std::size_t i = d * steps_per_day;
             i < (d + 1) * steps_per_day &&
             split + i < truth.size();
             ++i) {
            actual.push_back(truth[split + i]);
            predicted.push_back(horizon[i]);
        }
        OnlineStats a, p;
        for (double v : actual)
            a.add(v);
        for (double v : predicted)
            p.add(v);
        table.addRow("+" + std::to_string(d + 1),
                     {meanAbsolutePercentageError(actual, predicted),
                      a.mean(), p.mean()},
                     2);
    }
    table.print();

    std::vector<double> actual(truth.values().begin() + split,
                               truth.values().end());
    const double overall =
        meanAbsolutePercentageError(actual, horizon.values());
    std::printf("\nOverall %lld-day demand-forecast MAPE: %.2f%%\n",
                static_cast<long long>(horizon_days), overall);

    CsvWriter csv(bench::csvPath("fig5_demand_forecast"));
    csv.writeRow({"step", "time_s", "actual_cores",
                  "forecast_cores"});
    for (std::size_t i = 0; i < truth.size(); ++i) {
        const double predicted =
            i < split ? truth[i] : horizon[i - split];
        csv.writeNumericRow({static_cast<double>(i),
                             i * truth.stepSeconds(), truth[i],
                             predicted});
    }
    std::printf("CSV written to %s\n",
                bench::csvPath("fig5_demand_forecast").c_str());
    return 0;
}
