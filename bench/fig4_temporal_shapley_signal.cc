/**
 * @file
 * Figure 4 (plus the Section 5.1 computational-efficiency claim):
 * hierarchical Temporal Shapley turns a 30-day, 5-minute demand
 * trace into a dynamic embodied-carbon intensity signal with split
 * ratios 10 / 9 / 8 / 12, at polynomial cost — versus the 2^N cost
 * of the workload-level ground truth.
 */

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "carbon/server.hh"
#include "common/csv.hh"
#include "common/flags.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/temporal.hh"
#include "trace/generators.hh"

using namespace fairco2;

int
main(int argc, char **argv)
{
    std::int64_t seed = 42;
    double days = 30.0;
    FlagSet flags(
        "Figure 4: hierarchical Temporal Shapley intensity signal");
    flags.addInt("seed", &seed, "trace RNG seed");
    flags.addDouble("days", &days, "trace length in days");
    std::int64_t threads = 0;
    obs::ObsFlags obs_flags;
    bench::addCommonFlags(flags, &threads, &obs_flags);
    if (!flags.parse(argc, argv))
        return 0;
    bench::applyCommonFlags(threads, obs_flags);

    trace::AzureLikeGenerator::Config config;
    config.days = days;
    Rng rng(static_cast<std::uint64_t>(seed));
    const auto demand =
        trace::AzureLikeGenerator(config).generate(rng);

    const carbon::ServerCarbonModel server;
    // Monthly share of the CPU pool, scaled from one node to the
    // synthetic fleet (demand is in cores).
    const double fleet_cores = demand.mean();
    const double monthly_grams = server.coreRateGramsPerSecond() *
        fleet_cores * days * 86400.0;

    const std::vector<std::size_t> splits{10, 9, 8, 12};
    const auto start = std::chrono::steady_clock::now();
    const auto result = core::TemporalShapley().attribute(
        demand, monthly_grams, splits);
    const auto elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    TextTable table("Figure 4: Temporal Shapley signal, 30 days -> "
                    "5 minutes (splits 10/9/8/12)");
    table.setHeader({"Quantity", "Value"});
    table.addRow({"leaf periods",
                  std::to_string(result.leafPeriods)});
    table.addRow({"Shapley calculations",
                  std::to_string(result.operations)});
    table.addRow({"wall-clock seconds", TextTable::fmt(elapsed, 3)});
    table.addRow({"carbon attributed (g)",
                  TextTable::fmt(result.attributedGrams, 1)});
    table.addRow({"carbon dropped (g)",
                  TextTable::fmt(result.unattributedGrams, 3)});

    // Signal statistics: the dynamic range is the point.
    const auto summary = Summary::of(result.intensity.values());
    table.addRow({"intensity min (g/core-s)",
                  TextTable::fmt(summary.min * 1e6, 3) + "e-6"});
    table.addRow({"intensity mean (g/core-s)",
                  TextTable::fmt(summary.mean * 1e6, 3) + "e-6"});
    table.addRow({"intensity max (g/core-s)",
                  TextTable::fmt(summary.max * 1e6, 3) + "e-6"});
    table.addRow({"peak/trough ratio",
                  TextTable::fmt(summary.max / summary.min, 2)});
    table.print();

    // The at-scale comparison from Section 5.1: a month of the
    // Azure trace holds ~2M VMs; ground-truth Shapley costs 2^N.
    const double log10_ground_truth = 2.0e6 * std::log10(2.0);
    std::printf(
        "\nGround-truth Shapley over the Azure trace's ~2M VMs "
        "needs ~10^%.0f\nevaluations; this run needed %llu "
        "(polynomial in the split ratios).\n",
        log10_ground_truth,
        static_cast<unsigned long long>(result.operations));

    // Hour-averaged signal for day 1 (the figure's visual shape).
    TextTable day("Day-1 hourly embodied intensity "
                  "(1e-6 g per core-second)");
    day.setHeader({"Hour", "Intensity", "Demand (cores)"});
    const auto hourly = result.intensity.resampleMean(12);
    const auto hourly_demand = demand.resampleMean(12);
    for (std::size_t h = 0; h < 24; ++h) {
        day.addRow(std::to_string(h),
                   {hourly[h] * 1e6, hourly_demand[h]}, 3);
    }
    day.print();

    CsvWriter csv(bench::csvPath("fig4_temporal_shapley_signal"));
    csv.writeRow({"step", "time_s", "demand_cores",
                  "intensity_g_per_core_s"});
    for (std::size_t i = 0; i < demand.size(); ++i) {
        csv.writeNumericRow({static_cast<double>(i),
                             i * demand.stepSeconds(), demand[i],
                             result.intensity[i]});
    }
    std::printf("CSV written to %s\n",
                bench::csvPath("fig4_temporal_shapley_signal")
                    .c_str());
    return 0;
}
