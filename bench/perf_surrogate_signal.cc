/**
 * @file
 * Guardrailed learned surrogate vs cache-cold exact sliding-window
 * Temporal Shapley.
 *
 * Trains the ridge surrogate in-process on one Azure-like demand
 * trace (trainSurrogateModelOnSeries), then streams a *different*
 * seed's trace through two engines that publish the same sliding
 * window with memoization off (cache capacity 0, the cache-cold
 * worst case the surrogate exists to beat):
 *
 *  - the bare IncrementalTemporalEngine — every advance re-solves
 *    the window from its samples;
 *  - a SurrogateTemporalEngine over an identical inner engine —
 *    accepted advances publish model predictions from the streaming
 *    sketches without touching a sample.
 *
 * Times only the computeNewestPeriod advances (best of three runs),
 * asserts the published signal's mean absolute percentage error
 * against the exact stream stays under 1%, asserts conservation
 * (attributed + unattributed == the advance's pool share) on every
 * surrogate advance, and records speedup_x / mape_pct / accept_rate
 * into bench_out/perf_summary.json. The full run additionally
 * enforces the >= 7.7x per-advance speedup target; `--smoke` shrinks
 * the trace to a seconds-scale CI check that keeps the error and
 * conservation assertions but only reports the measured speedup.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "bench_util.hh"
#include "common/flags.hh"
#include "common/rng.hh"
#include "shapley/incremental.hh"
#include "shapley/surrogate.hh"
#include "trace/generators.hh"

using namespace fairco2;

namespace
{

struct AdvanceRecord
{
    std::vector<double> intensity; //!< flat per-sample values
    double periodGrams = 0.0;
    double attributedGrams = 0.0;
    double unattributedGrams = 0.0;
};

struct StreamOutcome
{
    std::vector<AdvanceRecord> advances;
    double wallSeconds = 0.0;
};

/** Integer-quantized Azure-like trace, matching the live server's
 *  telemetry contract (src/server/tenants.hh). */
trace::TimeSeries
makeTrace(std::uint64_t seed, double days, double step_seconds)
{
    Rng rng(seed);
    trace::AzureLikeGenerator::Config config;
    config.days = days;
    config.stepSeconds = step_seconds;
    auto generated = trace::AzureLikeGenerator(config).generate(rng);
    std::vector<double> quantized(generated.size());
    for (std::size_t i = 0; i < generated.size(); ++i)
        quantized[i] = std::round(generated[i]);
    return trace::TimeSeries(std::move(quantized), step_seconds);
}

/** Drive one engine over the trace, timing only the window advances
 *  (the steady-state cost of a live deployment). Works for the bare
 *  IncrementalTemporalEngine and its surrogate wrapper. */
template <typename Engine>
StreamOutcome
streamTrace(Engine &engine, const trace::TimeSeries &demand,
            double pool_grams)
{
    StreamOutcome outcome;
    std::uint64_t closed = 0;
    for (std::size_t i = 0; i < demand.size(); ++i) {
        engine.pushSample(demand[i]);
        if (engine.periodsClosed() == closed)
            continue;
        closed = engine.periodsClosed();
        if (!engine.windowReady())
            continue;
        const bench::WallTimer timer;
        const auto result = engine.computeNewestPeriod(pool_grams);
        outcome.wallSeconds += timer.seconds();
        AdvanceRecord record;
        record.intensity.assign(result.intensity.begin(),
                                result.intensity.end());
        record.periodGrams = result.periodGrams;
        record.attributedGrams = result.attributedGrams;
        record.unattributedGrams = result.unattributedGrams;
        outcome.advances.push_back(std::move(record));
    }
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    std::int64_t seed = 42;
    std::int64_t window_periods = 24;
    std::int64_t period_samples = 720;
    double days = 7.0;
    double tolerance = 0.01;
    bool smoke = false;
    FlagSet flags("perf_surrogate_signal: guardrailed learned "
                  "surrogate vs cache-cold exact sliding-window "
                  "Temporal Shapley");
    flags.addInt("seed", &seed,
                 "measurement-trace seed (training uses seed + 1)");
    flags.addInt("window", &window_periods,
                 "sliding-window size in periods");
    flags.addInt("period-samples", &period_samples,
                 "telemetry samples per period");
    flags.addDouble("days", &days, "trace length in days");
    flags.addDouble("surrogate-tol", &tolerance,
                    "residual-guardrail share tolerance");
    flags.addBool("smoke", &smoke,
                  "CI mode: shrink to a seconds-scale check (keeps "
                  "the error/conservation assertions, reports but "
                  "does not enforce the speedup target)");
    std::int64_t threads = 0;
    obs::ObsFlags obs_flags;
    bench::addCommonFlags(flags, &threads, &obs_flags);
    if (!flags.parse(argc, argv))
        return 0;
    bench::applyCommonFlags(threads, obs_flags);
    if (smoke) {
        days = std::min(days, 2.0);
        period_samples =
            std::min<std::int64_t>(period_samples, 180);
    }
    if (window_periods < 2 || period_samples <= 0 || days <= 0.0 ||
        !(tolerance > 0.0) || !std::isfinite(tolerance)) {
        std::fprintf(stderr,
                     "error: --window must be >= 2; "
                     "--period-samples and --days must be positive; "
                     "--surrogate-tol must be a positive finite "
                     "share tolerance\n");
        return 2;
    }

    const double step_seconds = 5.0;
    const auto W = static_cast<std::size_t>(window_periods);
    const auto M = static_cast<std::size_t>(period_samples);
    const double pool_grams = 1.0e6;

    // Train on one trace, measure on another: the bench's accept
    // rate is an out-of-sample number, not training-set recall.
    const auto training = makeTrace(
        static_cast<std::uint64_t>(seed) + 1, days, step_seconds);
    shapley::SurrogateTrainConfig train_config;
    train_config.windowPeriods = W;
    train_config.periodSamples = M;
    train_config.stepSeconds = step_seconds;
    train_config.seed = static_cast<std::uint64_t>(seed);
    const auto model = std::make_shared<
        const surrogate::SurrogateModel>(
        shapley::trainSurrogateModelOnSeries(training,
                                             train_config));
    const auto demand =
        makeTrace(static_cast<std::uint64_t>(seed), days,
                  step_seconds);

    // Cache capacity 0 on both sides: the cache-cold worst case,
    // where every exact advance pays the full window re-solve.
    shapley::IncrementalTemporalEngine::Config inner_config;
    inner_config.windowPeriods = W;
    inner_config.periodSamples = M;
    inner_config.stepSeconds = step_seconds;
    inner_config.cacheCapacity = 0;

    // Best of three repetitions per engine: the timed region is
    // small, so one cold run would otherwise dominate the ratio.
    constexpr int kRepetitions = 3;
    StreamOutcome exact;
    for (int r = 0; r < kRepetitions; ++r) {
        shapley::IncrementalTemporalEngine engine(inner_config);
        auto rerun = streamTrace(engine, demand, pool_grams);
        if (r == 0 || rerun.wallSeconds < exact.wallSeconds)
            exact = std::move(rerun);
    }
    StreamOutcome surrogate;
    std::uint64_t accepts = 0, rejects = 0;
    for (int r = 0; r < kRepetitions; ++r) {
        shapley::SurrogateTemporalEngine::Config config;
        config.engine = inner_config;
        config.model = model;
        config.tolerance = tolerance;
        shapley::SurrogateTemporalEngine engine(config);
        auto rerun = streamTrace(engine, demand, pool_grams);
        if (r == 0 || rerun.wallSeconds < surrogate.wallSeconds) {
            surrogate = std::move(rerun);
            accepts = engine.counters().accepts;
            rejects = engine.counters().rejects;
        }
    }

    if (surrogate.advances.size() != exact.advances.size() ||
        surrogate.advances.empty()) {
        std::fprintf(stderr,
                     "FAIL: advance counts diverged (%zu surrogate "
                     "vs %zu exact)\n",
                     surrogate.advances.size(),
                     exact.advances.size());
        return 1;
    }

    // Signal error: mean absolute percentage deviation of the
    // published newest-period intensity from the exact stream.
    double mape_sum = 0.0;
    std::size_t mape_points = 0;
    for (std::size_t a = 0; a < exact.advances.size(); ++a) {
        const auto &sv = surrogate.advances[a].intensity;
        const auto &ev = exact.advances[a].intensity;
        if (sv.size() != ev.size()) {
            std::fprintf(stderr,
                         "FAIL: advance %zu published %zu vs %zu "
                         "samples\n",
                         a, sv.size(), ev.size());
            return 1;
        }
        for (std::size_t i = 0; i < ev.size(); ++i) {
            if (ev[i] <= 0.0)
                continue;
            mape_sum += std::abs(sv[i] - ev[i]) / ev[i];
            ++mape_points;
        }
        // Conservation on every surrogate advance: the published
        // period's pool share splits exactly into attributed +
        // unattributed mass.
        const auto &adv = surrogate.advances[a];
        const double drift = std::abs(
            adv.attributedGrams + adv.unattributedGrams -
            adv.periodGrams);
        if (drift > 1e-9 * pool_grams) {
            std::fprintf(stderr,
                         "FAIL: advance %zu conservation drift "
                         "%.3e g\n",
                         a, drift);
            return 1;
        }
    }
    const double mape_pct = mape_points > 0
        ? 100.0 * mape_sum / static_cast<double>(mape_points)
        : 0.0;
    const double accept_rate = accepts + rejects > 0
        ? static_cast<double>(accepts) /
            static_cast<double>(accepts + rejects)
        : 0.0;
    const double speedup = surrogate.wallSeconds > 0.0
        ? exact.wallSeconds / surrogate.wallSeconds
        : 0.0;

    std::printf("perf_surrogate_signal: %zu samples, %zu window "
                "advances\n",
                demand.size(), surrogate.advances.size());
    std::printf("  surrogate: %.4f s  exact (cache-cold): %.4f s  "
                "speedup: %.2fx\n",
                surrogate.wallSeconds, exact.wallSeconds, speedup);
    std::printf("  accepted %llu / rejected %llu (accept rate "
                "%.3f)  signal MAPE %.4f%%\n",
                static_cast<unsigned long long>(accepts),
                static_cast<unsigned long long>(rejects),
                accept_rate, mape_pct);

    if (mape_pct >= 1.0) {
        std::fprintf(stderr,
                     "FAIL: signal MAPE %.4f%% >= 1%%\n", mape_pct);
        return 1;
    }
    if (accepts == 0) {
        std::fprintf(stderr,
                     "FAIL: the surrogate accepted nothing — the "
                     "measured stream is pure exact fallback\n");
        return 1;
    }
    if (!smoke && speedup < 7.7) {
        std::fprintf(stderr,
                     "FAIL: per-advance speedup %.2fx < 7.7x "
                     "target\n",
                     speedup);
        return 1;
    }

    std::ostringstream extra;
    extra << "\"speedup_x\": " << speedup
          << ", \"mape_pct\": " << mape_pct
          << ", \"accept_rate\": " << accept_rate;
    bench::recordPerf("perf_surrogate_signal.surrogate",
                      surrogate.advances.size(),
                      surrogate.wallSeconds, 0, extra.str());
    bench::recordPerf("perf_surrogate_signal.exact",
                      exact.advances.size(), exact.wallSeconds);
    return 0;
}
