/**
 * @file
 * Figure 9: attribution equity across workload types. Top panels:
 * the distribution of each workload's own deviation from the ground
 * truth under RUP and Fair-CO2. Bottom panels: the distribution of
 * each workload's *partners'* deviations — does sitting next to a
 * given workload make your bill unfair?
 */

#include <array>
#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/flags.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "montecarlo/colocmc.hh"

using namespace fairco2;

int
main(int argc, char **argv)
{
    std::int64_t trials = 2000;
    std::int64_t seed = 1;
    FlagSet flags("Figure 9: per-workload attribution equity "
                  "(paper scale: --trials 10000)");
    flags.addInt("trials", &trials, "number of random scenarios");
    flags.addInt("seed", &seed, "RNG seed");
    std::int64_t threads = 0;
    obs::ObsFlags obs_flags;
    bench::addCommonFlags(flags, &threads, &obs_flags);
    if (!flags.parse(argc, argv))
        return 0;
    bench::applyCommonFlags(threads, obs_flags);

    montecarlo::ColocMcConfig config;
    config.trials = static_cast<std::size_t>(trials);
    config.minWorkloads = 4;
    config.maxWorkloads = 40;
    config.collectRecords = true;

    const montecarlo::ColocationMonteCarlo mc;
    Rng rng(static_cast<std::uint64_t>(seed));
    const auto out = mc.run(config, rng);

    const auto &suite = mc.suite();
    const std::size_t n = suite.size();

    // own[i]: deviations of workload type i itself.
    // partner[i]: deviations of whoever was paired with type i.
    std::vector<std::vector<double>> own_rup(n), own_fair(n);
    std::vector<std::vector<double>> partner_rup(n),
        partner_fair(n);
    std::vector<std::size_t> isolated_count(n, 0);

    // Records are emitted per scenario in member order; partner
    // linkage is by suite id of the realized partner.
    for (const auto &rec : out.records) {
        own_rup[rec.suiteId].push_back(rec.devRup);
        own_fair[rec.suiteId].push_back(rec.devFairCo2);
        if (rec.partnerSuiteId == static_cast<std::size_t>(-1)) {
            ++isolated_count[rec.suiteId];
            continue;
        }
        partner_rup[rec.partnerSuiteId].push_back(rec.devRup);
        partner_fair[rec.partnerSuiteId].push_back(rec.devFairCo2);
    }

    TextTable own("Figure 9 (top): own deviation distribution by "
                  "workload (%)");
    own.setHeader({"Workload", "RUP mean", "RUP p95", "Fair mean",
                   "Fair p95", "Samples"});
    for (std::size_t i = 0; i < n; ++i) {
        if (own_rup[i].empty())
            continue;
        const auto r = Summary::of(own_rup[i]);
        const auto f = Summary::of(own_fair[i]);
        own.addRow(suite.at(i).name,
                   {r.mean, r.p95, f.mean, f.p95,
                    static_cast<double>(r.count)},
                   2);
    }
    own.print();

    TextTable partners("Figure 9 (bottom): partner deviation "
                       "distribution by workload (%)");
    partners.setHeader({"Next to", "RUP mean", "RUP p95",
                        "Fair mean", "Fair p95", "Samples"});
    for (std::size_t i = 0; i < n; ++i) {
        if (partner_rup[i].empty())
            continue;
        const auto r = Summary::of(partner_rup[i]);
        const auto f = Summary::of(partner_fair[i]);
        partners.addRow(suite.at(i).name,
                        {r.mean, r.p95, f.mean, f.p95,
                         static_cast<double>(r.count)},
                        2);
    }
    partners.print();

    // Cross-workload equity: spread of per-type mean deviations.
    std::vector<double> rup_means, fair_means;
    for (std::size_t i = 0; i < n; ++i) {
        if (own_rup[i].empty())
            continue;
        rup_means.push_back(Summary::of(own_rup[i]).mean);
        fair_means.push_back(Summary::of(own_fair[i]).mean);
    }
    const auto rup_spread = Summary::of(rup_means);
    const auto fair_spread = Summary::of(fair_means);
    std::printf(
        "\nEquity across workload types (spread of per-type mean "
        "deviation):\n"
        "  RUP      : min %.2f%%  max %.2f%%  stddev %.2f%%\n"
        "  Fair-CO2 : min %.2f%%  max %.2f%%  stddev %.2f%%\n",
        rup_spread.min, rup_spread.max, rup_spread.stddev,
        fair_spread.min, fair_spread.max, fair_spread.stddev);

    CsvWriter csv(bench::csvPath("fig9_workload_equity"));
    csv.writeRow({"workload", "partner", "dev_rup", "dev_fair"});
    for (const auto &rec : out.records) {
        const std::string partner =
            rec.partnerSuiteId == static_cast<std::size_t>(-1)
                ? "(isolated)"
                : suite.at(rec.partnerSuiteId).name;
        csv.writeRow(
            std::vector<std::string>{suite.at(rec.suiteId).name,
                                     partner},
            {rec.devRup, rec.devFairCo2});
    }
    std::printf("CSV written to %s\n",
                bench::csvPath("fig9_workload_equity").c_str());
    return 0;
}
