/**
 * @file
 * Theory check (Section 5.1, "Theoretical limits of Temporal
 * Shapley"): in the stylized K-short / (N-K)-long scenario the
 * paper derives a closed-form over-attribution of long-running
 * workloads. This bench (1) validates the closed form against the
 * real attribution pipeline, (2) shows the bias against the exact
 * workload-level Shapley ground truth, and (3) demonstrates the
 * span discount the paper proposes as future work.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/flags.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "core/discount.hh"

using namespace fairco2;

int
main(int argc, char **argv)
{
    std::int64_t n = 12;
    std::int64_t k = 9;
    std::int64_t m = 6;
    double p = 0.3;
    FlagSet flags("Theory: unit resource-time over-attribution of "
                  "long-running workloads");
    flags.addInt("n", &n, "total workloads");
    flags.addInt("k", &k, "short-lived workloads (k < n)");
    flags.addInt("m", &m, "attribution periods");
    flags.addDouble("p", &p, "off-peak demand fraction (0, 1)");
    std::int64_t threads = 0;
    obs::ObsFlags obs_flags;
    bench::addCommonFlags(flags, &threads, &obs_flags);
    if (!flags.parse(argc, argv))
        return 0;
    bench::applyCommonFlags(threads, obs_flags);

    const double total = 1000.0;
    const auto analysis = core::unitResourceTimeAnalysis(
        static_cast<std::size_t>(n), static_cast<std::size_t>(k),
        static_cast<std::size_t>(m), p, total);

    const auto schedule = core::stylizedLongShortSchedule(
        static_cast<std::size_t>(n), static_cast<std::size_t>(k),
        static_cast<std::size_t>(m), p);
    const auto result = core::attributeSchedule(schedule, total);

    const double short_sim = result.fairCo2[0];
    const double long_sim =
        result.fairCo2[static_cast<std::size_t>(k)];
    const double short_truth = result.groundTruth[0];
    const double long_truth =
        result.groundTruth[static_cast<std::size_t>(k)];

    TextTable table("Per-workload attribution in the stylized "
                    "scenario (grams)");
    table.setHeader({"Quantity", "Short workload",
                     "Long workload"});
    table.addRow("closed-form analysis (Sec 5.1)",
                 {analysis.shortWorkloadGrams,
                  analysis.longWorkloadGrams},
                 2);
    table.addRow("Temporal Shapley (pipeline)",
                 {short_sim, long_sim}, 2);
    table.addRow("exact workload Shapley",
                 {short_truth, long_truth}, 2);
    table.print();

    std::printf(
        "\nPredicted per-long-workload bias: %.2f g; pipeline bias "
        "vs ground truth: %.2f g\n"
        "(The closed form assumes every workload holds 1/N of the "
        "first period's\ndemand; the single-reservation schedule "
        "splits that demand differently,\nso magnitudes shift while "
        "the direction and structure of the bias hold.)\n",
        analysis.overattributionGrams, long_sim - long_truth);

    // Span-discount sweep.
    std::vector<std::size_t> spans;
    for (const auto &w : schedule.workloads())
        spans.push_back(w.durationSlices);

    TextTable sweep("Span-discount sweep: total |deviation| from "
                    "the exact ground truth (grams)");
    sweep.setHeader({"kappa", "Total abs deviation",
                     "Long-workload bias"});
    CsvWriter csv(bench::csvPath("theory_overattribution"));
    csv.writeRow({"kappa", "total_abs_dev", "long_bias"});
    for (double kappa :
         {0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8}) {
        const auto discounted = core::spanDiscountedAttribution(
            result.fairCo2, spans, kappa);
        double dev = 0.0;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(n); ++i) {
            dev += std::abs(discounted[i] -
                            result.groundTruth[i]);
        }
        const double bias =
            discounted[static_cast<std::size_t>(k)] - long_truth;
        sweep.addRow(TextTable::fmt(kappa, 2), {dev, bias}, 2);
        csv.writeNumericRow({kappa, dev, bias});
    }
    sweep.print();

    std::printf(
        "\nA moderate span discount removes most of the bias the\n"
        "analysis predicts — the 'discount for long-running\n"
        "workloads' the paper leaves as future work.\n");
    std::printf("CSV written to %s\n",
                bench::csvPath("theory_overattribution").c_str());
    return 0;
}
